package hics

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

// pushAll feeds rows into a stream and returns the flattened score
// sequence in emission order.
func pushAll(t *testing.T, s *Stream, rows [][]float64, drainEach bool) []StreamResult {
	t.Helper()
	var out []StreamResult
	for i, r := range rows {
		res, err := s.Push(context.Background(), r)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		out = append(out, res...)
		if drainEach {
			if err := s.Drain(context.Background()); err != nil {
				t.Fatalf("drain after push %d: %v", i, err)
			}
		}
	}
	return out
}

// TestStreamNeverRefitMatchesScoreBatch pins the acceptance guarantee:
// a warm stream with RefitEvery=0 scores exactly like Model.ScoreBatch
// on the same rows.
func TestStreamNeverRefitMatchesScoreBatch(t *testing.T) {
	train := demoRows(31, 150, 3)
	live := demoRows(32, 60, 3)
	m, err := Fit(train, Options{M: 10, Seed: 31, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.ScoreBatch(live)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewStream(StreamOptions{Window: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := pushAll(t, s, live, false)
	if len(got) != len(live) {
		t.Fatalf("stream emitted %d results for %d rows", len(got), len(live))
	}
	for i, r := range got {
		if r.Index != i || r.Refits != 0 {
			t.Fatalf("result %d = %+v, want index %d refits 0", i, r, i)
		}
		if r.Score != want[i] {
			t.Errorf("stream score %d = %v, ScoreBatch %v", i, r.Score, want[i])
		}
	}
}

// TestStreamColdWarmupMatchesTrainingScores: the warmup flush of a cold
// stream is bit-identical to the training scores of a Fit on the same
// window, and later rows score out of sample against it.
func TestStreamColdWarmupMatchesTrainingScores(t *testing.T) {
	rows := demoRows(33, 80, 3)
	const window = 50
	s, err := NewStream(Options{M: 10, Seed: 33, TopK: 5}, StreamOptions{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := pushAll(t, s, rows, false)
	if len(got) != len(rows) {
		t.Fatalf("stream emitted %d results for %d rows", len(got), len(rows))
	}
	m, err := Fit(rows[:window], Options{M: 10, Seed: 33, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	train := m.TrainingScores()
	for i := 0; i < window; i++ {
		if got[i].Score != train[i] {
			t.Errorf("warmup score %d = %v, training score %v", i, got[i].Score, train[i])
		}
	}
	rest, err := m.ScoreBatch(rows[window:])
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range rest {
		if got[window+i].Score != want {
			t.Errorf("post-warmup score %d = %v, ScoreBatch %v", window+i, got[window+i].Score, want)
		}
	}
}

// TestStreamSyncDeterminism pins the tentpole determinism guarantee: a
// synchronous-refit stream over a fixed input produces bit-identical
// scores across runs and across Workers settings.
func TestStreamSyncDeterminism(t *testing.T) {
	rows := demoRows(34, 120, 3)
	run := func(workers int) []StreamResult {
		s, err := NewStream(Options{M: 10, Seed: 34, TopK: 5, MinPts: 5},
			StreamOptions{Window: 40, RefitEvery: 25, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		return pushAll(t, s, rows, false)
	}
	base := run(0)
	if n := len(base); n != len(rows) {
		t.Fatalf("emitted %d results for %d rows", n, len(rows))
	}
	last := base[len(base)-1]
	if last.Refits == 0 {
		t.Fatalf("stream never refitted: %+v", last)
	}
	for _, workers := range []int{1, 3} {
		other := run(workers)
		for i := range base {
			if base[i] != other[i] {
				t.Fatalf("workers=%d diverges at %d: %+v vs %+v", workers, i, base[i], other[i])
			}
		}
	}
	rerun := run(0)
	for i := range base {
		if base[i] != rerun[i] {
			t.Fatalf("rerun diverges at %d: %+v vs %+v", i, base[i], rerun[i])
		}
	}
}

// TestStreamRefitChangesScores: after a refit the stream scores against
// the new window's model — a point that drifted into the data's new
// regime stops looking outlying.
func TestStreamRefitChangesScores(t *testing.T) {
	rows := demoRows(35, 90, 3)
	withRefit, err := NewStream(Options{M: 10, Seed: 35, MinPts: 5, TopK: 3},
		StreamOptions{Window: 30, RefitEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer withRefit.Close()
	frozen, err := NewStream(Options{M: 10, Seed: 35, MinPts: 5, TopK: 3},
		StreamOptions{Window: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer frozen.Close()
	a := pushAll(t, withRefit, rows, false)
	b := pushAll(t, frozen, rows, false)
	if withRefit.Refits() == 0 {
		t.Fatal("refitting stream recorded no refits")
	}
	if frozen.Refits() != 0 {
		t.Fatalf("frozen stream refitted %d times", frozen.Refits())
	}
	diverged := false
	for i := range a {
		if a[i].Score != b[i].Score {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("refits never changed a score; the model swap is not taking effect")
	}
}

// TestStreamAsyncSyncParity: an async stream drained after every push
// produces the synchronous score sequence bit-for-bit.
func TestStreamAsyncSyncParity(t *testing.T) {
	rows := demoRows(36, 100, 3)
	opts := Options{M: 10, Seed: 36, MinPts: 5, TopK: 3}
	sync, err := NewStream(opts, StreamOptions{Window: 30, RefitEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer sync.Close()
	async, err := NewStream(opts, StreamOptions{Window: 30, RefitEvery: 20, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	defer async.Close()
	a := pushAll(t, sync, rows, false)
	b := pushAll(t, async, rows, true)
	if len(a) != len(b) {
		t.Fatalf("sync emitted %d, drained async %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drained async diverges at %d: sync %+v, async %+v", i, a[i], b[i])
		}
	}
	if sync.Refits() != async.Refits() {
		t.Errorf("refit counts diverge: sync %d, async %d", sync.Refits(), async.Refits())
	}
}

// TestStreamRefitCancellation: a deadlined context aborts a synchronous
// refit with ctx.Err() and no goroutine leaks; the stream recovers with a
// fresh context.
func TestStreamRefitCancellation(t *testing.T) {
	train := demoRows(37, 60, 3)
	m, err := Fit(train, Options{M: 10, Seed: 37, MinPts: 5, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewStream(StreamOptions{Window: 40, RefitEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := runtime.NumGoroutine()
	rows := demoRows(38, 40, 3)
	for i, r := range rows[:39] {
		if _, err := s.Push(context.Background(), r); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// The 40th arrival fills the window and triggers a refit whose Monte
	// Carlo loop must observe the (immediately expiring) deadline.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err = s.Push(ctx, rows[39])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("refit under deadline: err = %v, want context.DeadlineExceeded", err)
	}
	// No worker goroutine may outlive the aborted refit.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines %d -> %d after aborted refit", before, after)
	}
	// Fresh context: the stream keeps scoring.
	if _, err := s.Push(context.Background(), rows[0]); err != nil {
		t.Fatalf("push after aborted refit: %v", err)
	}
}

// TestStreamEdgeCases covers the remaining satellite edge cases: a
// window not exceeding MinPts is rejected naming the field, zero-row and
// single-row streams close cleanly.
func TestStreamEdgeCases(t *testing.T) {
	// Window must exceed MinPts (default 10).
	if _, err := NewStream(Options{}, StreamOptions{Window: 10}); err == nil ||
		!strings.Contains(err.Error(), "StreamOptions.Window") {
		t.Errorf("Window == MinPts: err = %v, want StreamOptions.Window named", err)
	}
	train := demoRows(39, 60, 3)
	m, err := Fit(train, Options{M: 10, Seed: 39, MinPts: 5, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewStream(StreamOptions{Window: 5}); err == nil ||
		!strings.Contains(err.Error(), "StreamOptions.Window") {
		t.Errorf("warm Window == MinPts: err = %v, want StreamOptions.Window named", err)
	}

	// Zero-row stream: open and close, nothing scored.
	s, err := m.NewStream(StreamOptions{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("zero-row Close: %v", err)
	}
	if s.Seen() != 0 {
		t.Errorf("zero-row Seen = %d", s.Seen())
	}

	// Single-row warm stream: exactly one result.
	s, err = m.NewStream(StreamOptions{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Push(context.Background(), train[0])
	if err != nil || len(res) != 1 {
		t.Fatalf("single warm push: res %v err %v", res, err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("single-row Close: %v", err)
	}

	// Single-row cold stream: still warming up, no results, clean close.
	cold, err := NewStream(Options{M: 10, Seed: 39, MinPts: 5}, StreamOptions{Window: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err = cold.Push(context.Background(), train[0])
	if err != nil || len(res) != 0 {
		t.Fatalf("single cold push: res %v err %v, want none", res, err)
	}
	if cold.Warm() {
		t.Error("cold stream warm after one row")
	}
	if err := cold.Close(); err != nil {
		t.Errorf("cold single-row Close: %v", err)
	}
}

// TestStreamOptionValidation: every StreamOptions field is validated with
// its name in the error, and unfittable scorers are rejected up front.
func TestStreamOptionValidation(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		sopts StreamOptions
		want  string
	}{
		{"zero window", Options{}, StreamOptions{}, "StreamOptions.Window"},
		{"window below minpts", Options{MinPts: 20}, StreamOptions{Window: 15}, "StreamOptions.Window"},
		{"negative refit cadence", Options{}, StreamOptions{Window: 20, RefitEvery: -1}, "StreamOptions.RefitEvery"},
		{"async without refits", Options{}, StreamOptions{Window: 20, Async: true}, "StreamOptions.Async"},
		{"negative workers", Options{}, StreamOptions{Window: 20, Workers: -1}, "StreamOptions.Workers"},
		{"unfittable scorer", Options{Scorer: "orca"}, StreamOptions{Window: 20}, "orca"},
		{"invalid base options", Options{Alpha: 2}, StreamOptions{Window: 20}, "Alpha"},
	}
	for _, tc := range cases {
		if _, err := NewStream(tc.opts, tc.sopts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestStreamRejectsNonFinite: the streaming entry point names the row and
// attribute of a non-finite input instead of scoring it.
func TestStreamRejectsNonFinite(t *testing.T) {
	train := demoRows(40, 60, 3)
	m, err := Fit(train, Options{M: 10, Seed: 40, MinPts: 5, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewStream(StreamOptions{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Push(context.Background(), train[0]); err != nil {
		t.Fatal(err)
	}
	_, err = s.Push(context.Background(), []float64{0.5, math.NaN(), 0.5})
	if err == nil || !strings.Contains(err.Error(), "row 1") || !strings.Contains(err.Error(), "attribute 1") {
		t.Errorf("NaN push: err = %v, want row 1 attribute 1 named", err)
	}
	_, err = s.Push(context.Background(), []float64{math.Inf(1), 0.5, 0.5})
	if err == nil || !strings.Contains(err.Error(), "attribute 0") {
		t.Errorf("Inf push: err = %v, want attribute 0 named", err)
	}
}
