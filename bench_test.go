// Benchmarks regenerating the paper's tables and figures, one testing.B
// target per artifact (DESIGN.md §3). Each bench runs the corresponding
// experiment in quick mode so `go test -bench=.` finishes in reasonable
// time; the full-scale tables are produced by `go run ./cmd/hicsbench all`.
package hics

import (
	"context"
	"fmt"
	"io"
	"testing"

	"hics/internal/dataset"
	"hics/internal/experiments"
	"hics/internal/lof"
	"hics/internal/neighbors"
	"hics/internal/rng"
	"hics/internal/subspace"
	"hics/internal/synth"
)

// benchRun regenerates one experiment per iteration with a fixed seed.
// The seed must stay fixed: Fig4 and Fig5 share a memoized sweep, and a
// per-iteration seed would turn every re-scaled benchmark iteration into a
// full fresh sweep, inflating the run from seconds to many minutes.
func benchRun(b *testing.B, name string) {
	b.Helper()
	if testing.Short() {
		// Like the experiment regression tests, the multi-second
		// experiment regenerations are gated out of -short runs (CI's
		// 1-iteration benchmark smoke); the benchmark bodies still
		// compile, and plain `go test -bench .` runs them in full.
		b.Skip("skipping experiment regeneration in -short mode")
	}
	fn, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fn(context.Background(), io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4QualityVsDims regenerates Fig. 4 (AUC vs dimensionality,
// all seven competitors).
func BenchmarkFig4QualityVsDims(b *testing.B) { benchRun(b, "fig4") }

// BenchmarkFig5RuntimeVsDims regenerates Fig. 5 (runtime vs
// dimensionality, subspace methods).
func BenchmarkFig5RuntimeVsDims(b *testing.B) { benchRun(b, "fig5") }

// BenchmarkFig6RuntimeVsSize regenerates Fig. 6 (runtime vs DB size).
func BenchmarkFig6RuntimeVsSize(b *testing.B) { benchRun(b, "fig6") }

// BenchmarkFig7MonteCarloIterations regenerates Fig. 7 (AUC vs M).
func BenchmarkFig7MonteCarloIterations(b *testing.B) { benchRun(b, "fig7") }

// BenchmarkFig8AlphaSweep regenerates Fig. 8 (AUC vs α).
func BenchmarkFig8AlphaSweep(b *testing.B) { benchRun(b, "fig8") }

// BenchmarkFig9CandidateCutoff regenerates Fig. 9 (AUC and runtime vs
// candidate cutoff).
func BenchmarkFig9CandidateCutoff(b *testing.B) { benchRun(b, "fig9") }

// BenchmarkFig10ROCCurves regenerates Fig. 10 (ROC curves on the
// Ionosphere and Pendigits analogs).
func BenchmarkFig10ROCCurves(b *testing.B) { benchRun(b, "fig10") }

// BenchmarkFig11RealWorld regenerates Fig. 11 (the real-world results
// table over all eight simulated UCI datasets).
func BenchmarkFig11RealWorld(b *testing.B) { benchRun(b, "fig11") }

// BenchmarkAblationWTvsKS compares the two statistical instantiations
// (DESIGN.md ablation 1).
func BenchmarkAblationWTvsKS(b *testing.B) { benchRun(b, "abl-test") }

// BenchmarkAblationAggregation compares average vs max aggregation
// (DESIGN.md ablation 2).
func BenchmarkAblationAggregation(b *testing.B) { benchRun(b, "abl-agg") }

// BenchmarkAblationPruning compares redundancy pruning on/off
// (DESIGN.md ablation 4).
func BenchmarkAblationPruning(b *testing.B) { benchRun(b, "abl-prune") }

// BenchmarkAblationScorer compares the LOF and kNN-distance ranking steps
// (the paper's future-work extension).
func BenchmarkAblationScorer(b *testing.B) { benchRun(b, "abl-scorer") }

// BenchmarkExtTests compares all four statistical contrast instantiations
// (the paper's two plus Mann–Whitney and Cramér–von Mises).
func BenchmarkExtTests(b *testing.B) { benchRun(b, "ext-tests") }

// BenchmarkExtScorers compares the ranking-step scorers, including the
// future-work ORCA and OUTRES instantiations.
func BenchmarkExtScorers(b *testing.B) { benchRun(b, "ext-scorers") }

// BenchmarkExtSearchers compares the subspace searchers including SURFING.
func BenchmarkExtSearchers(b *testing.B) { benchRun(b, "ext-search") }

// BenchmarkExtPrecision reports precision-oriented quality metrics.
func BenchmarkExtPrecision(b *testing.B) { benchRun(b, "ext-prec") }

// uniformDataset builds an n×d dataset of uniform noise for the
// neighbor-index benchmarks.
func uniformDataset(seed uint64, n, d int) (*dataset.Dataset, []int) {
	r := rng.New(seed)
	cols := make([][]float64, d)
	dims := make([]int, d)
	for j := range cols {
		dims[j] = j
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = r.Float64()
		}
	}
	return dataset.MustNew(nil, cols), dims
}

// benchLOF measures one full LOF scoring pass (the ranking step's unit of
// work per subspace) with a pinned neighbor-index backend, across dataset
// sizes and subspace dimensionalities. Compare BenchmarkLOFBrute with
// BenchmarkLOFKDTree to see the index speedup on the Rank hot path.
func benchLOF(b *testing.B, kind neighbors.Kind) {
	for _, n := range []int{2000, 10000} {
		for _, d := range []int{2, 5} {
			b.Run(fmt.Sprintf("n=%d/d=%d", n, d), func(b *testing.B) {
				ds, dims := uniformDataset(1, n, d)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := lof.ScoresWith(ds, dims, 10, kind); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLOFBrute scores with the O(n²) linear-scan neighbor search.
func BenchmarkLOFBrute(b *testing.B) { benchLOF(b, neighbors.KindBrute) }

// BenchmarkLOFKDTree scores with the k-d tree neighbor index.
func BenchmarkLOFKDTree(b *testing.B) { benchLOF(b, neighbors.KindKDTree) }

// benchRankIndexed measures the complete public pipeline at ranking scale
// (n = 10000) with a pinned neighbor index; the LOF step dominates, so the
// brute/kdtree pair exposes the end-to-end win of the index subsystem.
func benchRankIndexed(b *testing.B, index string) {
	const n, d = 10000, 6
	r := rng.New(99)
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		base := r.Float64()
		row[0] = base
		row[1] = base + 0.05*r.Float64()
		for j := 2; j < d; j++ {
			row[j] = r.Float64()
		}
		rows[i] = row
	}
	opts := Options{M: 10, TopK: 3, Seed: 1, MinPts: 10, NeighborIndex: index}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rank(rows, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankBrute is the quadratic-complexity ranking step at n=10k.
func BenchmarkRankBrute(b *testing.B) { benchRankIndexed(b, "brute") }

// BenchmarkRankKDTree is the same pipeline on the k-d tree index.
func BenchmarkRankKDTree(b *testing.B) { benchRankIndexed(b, "kdtree") }

// BenchmarkStreamScore measures the streaming hot path: one Push through
// a warm never-refitting detector — ring-buffer append plus a frozen
// out-of-sample score, the per-row cost an always-on hicsd /stream
// session pays.
func BenchmarkStreamScore(b *testing.B) {
	r := rng.New(55)
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	m, err := Fit(rows, Options{M: 10, Seed: 1, TopK: 5})
	if err != nil {
		b.Fatal(err)
	}
	st, err := m.NewStream(StreamOptions{Window: 128})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Push(ctx, rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamRefit measures a full synchronous refit cycle: Window
// pushes with one model re-fit over the window — the amortized cost of a
// drift-following stream per RefitEvery arrivals.
func BenchmarkStreamRefit(b *testing.B) {
	r := rng.New(56)
	rows := make([][]float64, 256)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	const window = 128
	m, err := Fit(rows, Options{M: 10, Seed: 1, TopK: 5})
	if err != nil {
		b.Fatal(err)
	}
	st, err := m.NewStream(StreamOptions{Window: window, RefitEvery: window})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < window; j++ {
			if _, err := st.Push(ctx, rows[(i*window+j)%len(rows)]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFitLarge measures Fit at production scale — 100k objects × 30
// attributes of planted correlated groups — across the performance knobs:
// the exact flat-M baseline, adaptive Monte Carlo allocation, bounded
// contrast subsampling, and all knobs combined with the approximate LSH
// neighbor backend. After the timed runs it cross-checks every
// configuration's ranked top-10 against the planted ground truth, so the
// recorded speedup is a like-for-like comparison.
func BenchmarkFitLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping the 100k-row fit benchmark in -short mode")
	}
	bench, err := synth.Generate(synth.Config{
		N: 100_000, D: 30, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	ds := bench.Data.Data
	rows := make([][]float64, ds.N())
	for i := range rows {
		rows[i] = ds.Row(i, nil)
	}
	base := Options{
		M: 100, Seed: 8, TopK: 10, CandidateCutoff: 100, MaxDim: 3,
		MinPts: 10, UseKNNScore: true, NeighborIndex: "kdtree",
	}
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"exact-flat", func(*Options) {}},
		{"adaptive", func(o *Options) { o.AdaptiveM = true }},
		{"subsample", func(o *Options) { o.MaxSampleRows = 2000 }},
		{"adaptive-subsample-lsh", func(o *Options) {
			o.AdaptiveM = true
			o.MaxSampleRows = 2000
			o.NeighborIndex = "lsh"
		}},
	}
	tops := make([][]Subspace, len(variants))
	for vi, v := range variants {
		opts := base
		v.mod(&opts)
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := Fit(rows, opts)
				if err != nil {
					b.Fatal(err)
				}
				tops[vi] = m.Subspaces()
			}
		})
	}
	// Like-for-like quality check against the planted ground truth. At
	// 100k rows the strongest contrasts saturate at 1.0, so the top-10
	// cut falls among exact ties and the precise member set is not stable
	// between configurations (or even between exact runs with different
	// seeds). What must hold for the speedup to be honest is that every
	// configuration — exact and optimized alike — ranks only genuine
	// projections: each top-10 subspace must lie within a planted
	// correlated group.
	for vi, v := range variants {
		for _, s := range tops[vi] {
			planted := false
			for _, g := range bench.Subspaces {
				if g.SupersetOf(subspace.Subspace(s.Dims)) {
					planted = true
					break
				}
			}
			if !planted {
				b.Errorf("%s: ranked %v, not within any planted group %v",
					v.name, s.Dims, bench.Subspaces)
			}
		}
	}
}

// BenchmarkRankEndToEnd measures the complete public-API pipeline on a
// mid-size synthetic dataset — the library's end-to-end cost per call.
func BenchmarkRankEndToEnd(b *testing.B) {
	rows := make([][]float64, 300)
	s := uint64(12345)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / (1 << 53)
	}
	for i := range rows {
		row := make([]float64, 10)
		base := next()
		row[0] = base
		row[1] = base + 0.05*next()
		for j := 2; j < 10; j++ {
			row[j] = next()
		}
		rows[i] = row
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rank(rows, Options{M: 20, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
