package hics

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"hics/internal/dataset"
	"hics/internal/lof"
	"hics/internal/metrics"
	"hics/internal/neighbors"
	"hics/internal/parallel"
	"hics/internal/ranking"
	"hics/internal/registry"
	"hics/internal/subspace"
)

// mFitDuration observes the wall time of completed model fits (Fit and
// FitContext, including the fits behind Rank-free production training);
// paired with the hics_fit_* counters it shows what the adaptive knobs
// buy on a live process.
var mFitDuration = metrics.Default.NewHistogram("hics_fit_duration_seconds",
	"Wall time of completed model fits (Fit/FitContext).", nil)

// Model is a trained HiCS outlier detector: the outcome of running the
// Monte Carlo subspace search once and freezing the per-subspace scoring
// state (a neighbor index per selected projection plus the fitted LOF
// k-distances and local reachability densities, or the kNN-distance
// state). A Model scores out-of-sample points without refitting, can be
// persisted with Save and restored with LoadModel, and is safe for
// concurrent Score/ScoreBatch calls.
type Model struct {
	fp *ranking.FittedPipeline
	ds *dataset.Dataset // training data, retained for Save

	search  string // registry name of the subspace searcher
	scorer  string // registry name of the density scorer
	minPts  int    // effective neighborhood size
	agg     ranking.Aggregation
	version uint32 // persistence format the model was loaded from
	workers int    // ScoreBatch parallelism bound (0 = one per CPU)

	subspaces   []Subspace
	trainScores []float64
	// lookup maps the exact bit pattern of a training row to its index, so
	// scoring a training row reproduces its batch score: the query is
	// treated as that object (leave-one-out), not as an extra point that
	// would shadow itself at distance zero.
	lookup map[string]int
	keyBuf sync.Pool // *[]byte, per-query lookup-key scratch
}

// Fit runs the subspace search selected by opts.Search once on row-major
// training data and freezes a reusable scoring model. The scorer must
// support the fit/score split (FitScorerNames lists the valid names). The
// model's training scores are bit-for-bit the Rank scores for the same
// data and options.
func Fit(rows [][]float64, opts Options) (*Model, error) {
	return FitContext(context.Background(), rows, opts)
}

// FitContext is Fit with cooperative cancellation: the subspace search
// observes ctx throughout its Monte Carlo loops and the per-subspace
// fitting passes check it between subspaces. A cancelled or deadlined
// context makes the call return ctx.Err() promptly; an uncancelled fit
// is bit-for-bit identical to Fit.
func FitContext(ctx context.Context, rows [][]float64, opts Options) (*Model, error) {
	ds, err := toDataset(rows)
	if err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// Resolve the effective neighborhood size up front so the persisted
	// model is self-describing.
	if opts.MinPts < 1 {
		opts.MinPts = lof.DefaultMinPts
	}
	search, scorer, err := opts.methodNames()
	if err != nil {
		return nil, err
	}
	if registry.KnownScorer(scorer) && !registry.ScorerSupportsFit(scorer) {
		return nil, fmt.Errorf("hics: scorer %q does not support the fit/score split (supported: %s)",
			scorer, strings.Join(registry.FitScorerNames(), ", "))
	}
	pipe, err := opts.pipeline()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	fp, err := pipe.FitContext(ctx, ds)
	if err != nil {
		return nil, err
	}
	mFitDuration.Observe(time.Since(start).Seconds())
	m := &Model{
		fp:          fp,
		ds:          ds,
		search:      search,
		scorer:      scorer,
		minPts:      opts.MinPts,
		agg:         fp.Agg,
		version:     modelFormatVersion,
		workers:     opts.Workers,
		trainScores: fp.Train,
	}
	m.subspaces = make([]Subspace, len(fp.Subspaces))
	for i, sc := range fp.Subspaces {
		m.subspaces[i] = Subspace{Dims: append([]int(nil), sc.S...), Contrast: sc.Score}
	}
	m.buildLookup()
	return m, nil
}

// buildLookup indexes the training rows by their exact bit pattern.
// The first of several identical rows wins; identical rows receive equal
// batch scores (up to summation order), so the choice is immaterial.
func (m *Model) buildLookup() {
	m.lookup = make(map[string]int, m.ds.N())
	buf := make([]float64, 0, m.ds.D())
	var key []byte
	for i := m.ds.N() - 1; i >= 0; i-- {
		buf = m.ds.Row(i, buf)
		key = appendRowKey(key[:0], buf)
		m.lookup[string(key)] = i
	}
}

// appendRowKey serializes a point's float64 bit patterns onto b.
func appendRowKey(b []byte, p []float64) []byte {
	for _, v := range p {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// D returns the number of attributes the model was fitted on; Score
// expects points of this length.
func (m *Model) D() int { return m.fp.D }

// N returns the number of training objects.
func (m *Model) N() int { return len(m.trainScores) }

// SearchMethod returns the registry name of the subspace searcher the
// model was fitted with ("hics", "enclus", ...).
func (m *Model) SearchMethod() string { return m.search }

// ScorerMethod returns the registry name of the density scorer the model
// was fitted with ("lof" or "knn").
func (m *Model) ScorerMethod() string { return m.scorer }

// FormatVersion returns the persistence format version the model was
// loaded from; freshly fitted models report the current format.
func (m *Model) FormatVersion() int { return int(m.version) }

// MinPts returns the effective neighborhood size of the fitted scorer —
// the lower bound a streaming window must exceed (StreamOptions.Window).
func (m *Model) MinPts() int { return m.minPts }

// Subspaces returns the high-contrast projections the model scores in,
// in descending contrast order.
func (m *Model) Subspaces() []Subspace {
	out := make([]Subspace, len(m.subspaces))
	for i, s := range m.subspaces {
		out[i] = Subspace{Dims: append([]int(nil), s.Dims...), Contrast: s.Contrast}
	}
	return out
}

// TrainingScores returns the aggregated outlier scores of the training
// objects — bit-for-bit the Rank result for the same data and options.
func (m *Model) TrainingScores() []float64 {
	return append([]float64(nil), m.trainScores...)
}

// Score computes the outlier score of a single point against the trained
// model: every fitted subspace scores the point's projection out of
// sample, and the per-subspace scores aggregate exactly like Rank. A
// point whose bit pattern equals a training row is scored as that object
// (leave-one-out), so training rows reproduce their batch scores exactly.
// Among bit-identical duplicate training rows the first row's score is
// returned; duplicates' batch scores can differ only in the final ulp
// (their neighborhoods hold the same values, summed in a different
// order). Safe for concurrent use.
func (m *Model) Score(point []float64) (float64, error) {
	if len(point) != m.fp.D {
		return 0, fmt.Errorf("hics: point has %d attributes, model expects %d", len(point), m.fp.D)
	}
	// The training-row lookup runs first so that training rows reproduce
	// their batch scores whatever their values — models loaded from files
	// written before the boundary rejected non-finite training data may
	// still carry such rows.
	if i, ok := m.trainIndex(point); ok {
		return m.trainScores[i], nil
	}
	for j, v := range point {
		// A NaN coordinate empties every neighborhood and would come back
		// as a perfectly average-looking score; reject non-finite
		// out-of-sample input instead of masking it.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("hics: point attribute %d is %v, want a finite value", j, v)
		}
	}
	return m.fp.ScorePoint(point)
}

// trainIndex probes the training-row lookup without allocating: the key
// is serialized into a pooled buffer, and the map index with an inline
// []byte-to-string conversion is allocation-elided by the compiler.
func (m *Model) trainIndex(point []float64) (int, bool) {
	bufp, _ := m.keyBuf.Get().(*[]byte)
	if bufp == nil {
		bufp = new([]byte)
	}
	b := appendRowKey((*bufp)[:0], point)
	i, ok := m.lookup[string(b)]
	*bufp = b
	m.keyBuf.Put(bufp)
	return i, ok
}

// ScoreBatch scores every row, parallelized over at most SetWorkers
// goroutines (default one per CPU), with Score's semantics per row:
// genuinely new points score out of sample, rows bit-identical to a
// training row reproduce that row's batch score.
func (m *Model) ScoreBatch(rows [][]float64) ([]float64, error) {
	return m.ScoreBatchContext(context.Background(), rows)
}

// batchChunk is the ScoreBatch work-claim granularity: small enough that
// cancellation is observed within a few milliseconds of scoring work per
// worker, large enough that the atomic claim counter stays cold.
const batchChunk = 8

// ScoreBatchContext is ScoreBatch with cooperative cancellation: workers
// check ctx every few rows, so a cancelled or deadlined context makes
// the call return ctx.Err() within a bounded amount of per-worker work
// and with every worker goroutine joined. An already-cancelled context
// never starts scoring. Uncancelled results are identical to ScoreBatch.
func (m *Model) ScoreBatchContext(ctx context.Context, rows [][]float64) ([]float64, error) {
	for i, row := range rows {
		if len(row) != m.fp.D {
			return nil, fmt.Errorf("hics: row %d has %d attributes, model expects %d", i, len(row), m.fp.D)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// Rows bit-identical to a training row keep Score's
				// leave-one-out semantics (legacy models may carry
				// non-finite training rows); everything else is rejected
				// up front with the row named, before any scoring work.
				if _, ok := m.trainIndex(row); ok {
					break
				}
				return nil, fmt.Errorf("hics: row %d attribute %d is %v, want a finite value", i, j, v)
			}
		}
	}
	out := make([]float64, len(rows))
	err := parallel.ForEach(ctx, len(rows), m.workers, batchChunk, func(_, i int) error {
		s, err := m.Score(rows[i])
		if err != nil {
			return err
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetWorkers bounds the goroutines ScoreBatch and ScoreBatchContext fan
// out over; n <= 0 restores the default of one worker per CPU. Freshly
// fitted models inherit Options.Workers; loaded models default to all
// CPUs. Not safe to call concurrently with scoring — configure once at
// startup.
func (m *Model) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	m.workers = n
}

// Model persistence: a magic string and a little-endian uint32 format
// version followed by a gob-encoded payload. Floats round-trip exactly
// through gob, so a loaded model scores bit-for-bit like the original.
const modelMagic = "HICSMODEL"

// modelFormatVersion identifies the payload layout; bump on incompatible
// changes so old readers fail loudly instead of misinterpreting state.
// Version 2 records the (searcher, scorer) registry-name pair; version 1
// (HiCS search, UseKNN flag) is still read.
const modelFormatVersion uint32 = 2

// savedSubspace is the persisted per-subspace state (identical layout in
// formats 1 and 2).
type savedSubspace struct {
	Dims     []int
	Contrast float64
	// IndexKind is the resolved neighbor-index backend ("brute"/"kdtree");
	// index construction is deterministic, so the structure is rebuilt at
	// load time instead of being serialized.
	IndexKind string
	// KDist and LRD are the fitted LOF statistics; nil for the kNN scorer.
	KDist []float64
	LRD   []float64
}

// modelFileV1 is the persisted model of format version 1: always the HiCS
// search, the scorer reduced to a LOF-or-kNN flag.
type modelFileV1 struct {
	UseKNN bool
	MinPts int
	Agg    string
	N, D   int
	// Cols is the training data in the column-major internal layout.
	Cols        [][]float64
	Subspaces   []savedSubspace
	TrainScores []float64
}

// modelFileV2 is the persisted model of format version 2, recording the
// (searcher, scorer) registry-name pair the model was fitted with.
type modelFileV2 struct {
	Search string
	Scorer string
	MinPts int
	Agg    string
	N, D   int
	// Cols is the training data in the column-major internal layout.
	Cols        [][]float64
	Subspaces   []savedSubspace
	TrainScores []float64
}

// Save writes the model to w in the versioned binary format (current
// version 2). The file records the (searcher, scorer) method pair, the
// training data, the selected subspaces with their fitted scoring
// statistics, and the training scores; neighbor indices are rebuilt
// deterministically on load.
func (m *Model) Save(w io.Writer) error {
	if _, err := io.WriteString(w, modelMagic); err != nil {
		return fmt.Errorf("hics: saving model: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, modelFormatVersion); err != nil {
		return fmt.Errorf("hics: saving model: %w", err)
	}
	mf := modelFileV2{
		Search:      m.search,
		Scorer:      m.scorer,
		MinPts:      m.minPts,
		Agg:         m.agg.String(),
		N:           m.ds.N(),
		D:           m.ds.D(),
		Cols:        make([][]float64, m.ds.D()),
		Subspaces:   make([]savedSubspace, len(m.fp.Scorers)),
		TrainScores: m.trainScores,
	}
	for d := range mf.Cols {
		mf.Cols[d] = m.ds.Col(d)
	}
	for i, fs := range m.fp.Scorers {
		sv := savedSubspace{Dims: fs.Dims(), Contrast: m.subspaces[i].Contrast}
		switch f := fs.(type) {
		case *ranking.FittedLOFScorer:
			sv.IndexKind = f.State.Kind().String()
			sv.KDist = f.State.KDist()
			sv.LRD = f.State.LRD()
		case *ranking.FittedKNNScorer:
			sv.IndexKind = f.State.Kind().String()
		default:
			return fmt.Errorf("hics: cannot persist scorer type %T", fs)
		}
		mf.Subspaces[i] = sv
	}
	if err := gob.NewEncoder(w).Encode(&mf); err != nil {
		return fmt.Errorf("hics: saving model: %w", err)
	}
	return nil
}

// LoadModel reads a model previously written by Save and reassembles the
// scoring state. Both format versions load: version 1 files are mapped to
// the (hics, lof/knn) method pair they implied. Files recording a method
// pair the registry cannot rebuild a fitted scorer for are rejected. The
// loaded model's Score is bit-for-bit identical to the original's.
func LoadModel(r io.Reader) (*Model, error) {
	header := make([]byte, len(modelMagic)+4)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("hics: loading model: %w", err)
	}
	if !bytes.Equal(header[:len(modelMagic)], []byte(modelMagic)) {
		return nil, errors.New("hics: not a HiCS model file")
	}
	version := binary.LittleEndian.Uint32(header[len(modelMagic):])
	var mf modelFileV2
	switch version {
	case 1:
		var v1 modelFileV1
		if err := gob.NewDecoder(r).Decode(&v1); err != nil {
			return nil, fmt.Errorf("hics: loading model: %w", err)
		}
		mf = modelFileV2{
			Search:      registry.DefaultSearcher,
			Scorer:      "lof",
			MinPts:      v1.MinPts,
			Agg:         v1.Agg,
			N:           v1.N,
			D:           v1.D,
			Cols:        v1.Cols,
			Subspaces:   v1.Subspaces,
			TrainScores: v1.TrainScores,
		}
		if v1.UseKNN {
			mf.Scorer = "knn"
		}
	case 2:
		if err := gob.NewDecoder(r).Decode(&mf); err != nil {
			return nil, fmt.Errorf("hics: loading model: %w", err)
		}
	default:
		return nil, fmt.Errorf("hics: unsupported model format version %d (want 1 or 2)", version)
	}
	return assembleModel(mf, version)
}

// assembleModel validates a decoded model file and rebuilds the frozen
// scoring state.
func assembleModel(mf modelFileV2, version uint32) (*Model, error) {
	if !registry.KnownSearcher(mf.Search) {
		return nil, fmt.Errorf("hics: model file records unknown searcher %q (valid: %s)",
			mf.Search, strings.Join(registry.SearcherNames(), ", "))
	}
	if !registry.ScorerSupportsFit(mf.Scorer) {
		return nil, fmt.Errorf("hics: model file records scorer %q, which cannot be rebuilt (supported: %s)",
			mf.Scorer, strings.Join(registry.FitScorerNames(), ", "))
	}
	if len(mf.Cols) != mf.D || mf.D == 0 {
		return nil, fmt.Errorf("hics: model file has %d columns, header says %d", len(mf.Cols), mf.D)
	}
	for d, col := range mf.Cols {
		if len(col) != mf.N {
			return nil, fmt.Errorf("hics: model column %d has %d values, header says %d", d, len(col), mf.N)
		}
	}
	if len(mf.TrainScores) != mf.N {
		return nil, fmt.Errorf("hics: model file has %d training scores for %d objects", len(mf.TrainScores), mf.N)
	}
	if len(mf.Subspaces) == 0 {
		return nil, errors.New("hics: model file has no subspaces")
	}
	agg, err := ranking.ParseAggregation(mf.Agg)
	if err != nil {
		return nil, fmt.Errorf("hics: loading model: %w", err)
	}
	ds, err := dataset.New(nil, mf.Cols)
	if err != nil {
		return nil, fmt.Errorf("hics: loading model: %w", err)
	}
	fp := &ranking.FittedPipeline{
		Subspaces: make([]subspace.Scored, len(mf.Subspaces)),
		Scorers:   make([]ranking.FittedScorer, len(mf.Subspaces)),
		Agg:       agg,
		Train:     mf.TrainScores,
		D:         mf.D,
	}
	m := &Model{
		fp:          fp,
		ds:          ds,
		search:      mf.Search,
		scorer:      mf.Scorer,
		minPts:      mf.MinPts,
		agg:         agg,
		version:     version,
		subspaces:   make([]Subspace, len(mf.Subspaces)),
		trainScores: mf.TrainScores,
	}
	for i, sv := range mf.Subspaces {
		kind, err := neighbors.ParseKind(sv.IndexKind)
		if err != nil {
			return nil, fmt.Errorf("hics: loading model subspace %d: %w", i, err)
		}
		idx, err := neighbors.New(ds, sv.Dims, kind)
		if err != nil {
			return nil, fmt.Errorf("hics: loading model subspace %d: %w", i, err)
		}
		switch mf.Scorer {
		case "knn":
			st, err := lof.NewFittedKNN(idx, mf.MinPts)
			if err != nil {
				return nil, fmt.Errorf("hics: loading model subspace %d: %w", i, err)
			}
			fp.Scorers[i] = &ranking.FittedKNNScorer{Subspace: sv.Dims, State: st}
		case "lof":
			st, err := lof.NewFitted(idx, mf.MinPts, sv.KDist, sv.LRD)
			if err != nil {
				return nil, fmt.Errorf("hics: loading model subspace %d: %w", i, err)
			}
			fp.Scorers[i] = &ranking.FittedLOFScorer{Subspace: sv.Dims, State: st}
		default:
			// Unreachable: ScorerSupportsFit admitted only lof and knn. A
			// newly registered FitScorer must extend this switch.
			return nil, fmt.Errorf("hics: model file records scorer %q with no rebuild path", mf.Scorer)
		}
		fp.Subspaces[i] = subspace.Scored{S: subspace.New(sv.Dims...), Score: sv.Contrast}
		m.subspaces[i] = Subspace{Dims: append([]int(nil), sv.Dims...), Contrast: sv.Contrast}
	}
	m.buildLookup()
	return m, nil
}
