package hics

// Integration tests exercising the decoupled two-step matrix end-to-end:
// every registry-listed subspace searcher combined with every scorer on
// one benchmark, through the public Rank entry point, verifying the
// modularity claim the paper's introduction makes — "one can design and
// combine the respective algorithms in a modular fashion".

import (
	"fmt"
	"testing"

	"hics/internal/core"
	"hics/internal/eval"
	"hics/internal/randsub"
	"hics/internal/ranking"
	"hics/internal/synth"
)

func TestSearcherScorerMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size searcher x scorer matrix is slow under -race; the tiny always-on variant lives in hics_test.go")
	}
	b, err := synth.Generate(synth.Config{N: 300, D: 10, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, b.Data.Data.N())
	for i := range rows {
		rows[i] = b.Data.Data.Row(i, nil)
	}

	for _, search := range SearcherNames() {
		for _, scorer := range ScorerNames() {
			name := fmt.Sprintf("%s+%s", search, scorer)
			t.Run(name, func(t *testing.T) {
				res, err := Rank(rows, Options{
					M: 15, Seed: 1, TopK: 20, MaxDim: 4,
					Search: search, Scorer: scorer,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(res.Scores) != len(rows) {
					t.Fatalf("%s: %d scores for %d objects", name, len(res.Scores), len(rows))
				}
				auc, err := eval.AUC(res.Scores, b.Data.Outlier)
				if err != nil {
					t.Fatal(err)
				}
				// Every combination must be meaningfully better than random
				// on this easy planted benchmark — the point is that the
				// pieces compose, not that they are all equally good.
				if auc < 0.55 {
					t.Errorf("%s: AUC %.3f barely above random", name, auc)
				}
			})
		}
	}
}

// The statistical instantiations must compose with the pipeline too, and
// the informed searchers must beat the random baseline on planted data.
func TestInstantiationsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("searcher-ordering comparison takes minutes under -race; run without -short")
	}
	b, err := synth.Generate(synth.Config{N: 400, D: 16, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Data.Data
	aucOf := func(s ranking.SubspaceSearcher) float64 {
		pipe := ranking.Pipeline{Searcher: s, Scorer: ranking.LOFScorer{MinPts: 10}}
		res, err := pipe.Rank(ds)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		auc, err := eval.AUC(res.Scores, b.Data.Outlier)
		if err != nil {
			t.Fatal(err)
		}
		return auc
	}
	var hicsVariants []float64
	for _, tt := range []core.Test{core.WelchT, core.KolmogorovSmirnov, core.MannWhitney, core.CramerVonMises} {
		hicsVariants = append(hicsVariants, aucOf(&core.Searcher{Params: core.Params{M: 30, Seed: 2, TopK: 40, Test: tt}}))
	}
	randBaseline := aucOf(&randsub.Searcher{Params: randsub.Params{Count: 40, Seed: 2}})
	for i, auc := range hicsVariants {
		if auc <= randBaseline {
			t.Errorf("HiCS variant %d AUC %.3f not above RANDSUB %.3f", i, auc, randBaseline)
		}
	}
}
