package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hics"
	"hics/internal/fleet"
	"hics/internal/rng"
	"hics/internal/serve"
)

// capture returns a temp file opened for read/write to stand in for
// stdout or stderr.
func capture(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func read(t *testing.T, f *os.File) string {
	t.Helper()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newTarget(t *testing.T) *httptest.Server {
	t.Helper()
	r := rng.New(3)
	rows := make([][]float64, 150)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	m, err := hics.Fit(rows, hics.Options{M: 10, Seed: 3, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	fl := fleet.New(fleet.Config{})
	if err := fl.Put(fleet.DefaultName, m, fleet.Quota{}, true); err != nil {
		t.Fatal(err)
	}
	if err := fl.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(serve.Config{Fleet: fl}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRunArgumentErrors(t *testing.T) {
	stdout, stderr := capture(t, "out"), capture(t, "err")
	if err := run(context.Background(), nil, stdout, stderr); err == nil {
		t.Error("missing -target should fail")
	}
	if err := run(context.Background(), []string{"-target", "http://x", "extra"}, stdout, stderr); err == nil {
		t.Error("positional arguments should fail")
	}
	if err := run(context.Background(), []string{"-target", "http://x", "-mode", "bogus"}, stdout, stderr); err == nil {
		t.Error("bad -mode should fail")
	}
}

// TestRunStream drives a short stream load end to end: human text on
// stderr, exactly one parseable JSON record on stdout.
func TestRunStream(t *testing.T) {
	ts := newTarget(t)
	stdout, stderr := capture(t, "out"), capture(t, "err")
	err := run(context.Background(),
		[]string{"-target", ts.URL, "-sessions", "2", "-rows", "15", "-timeout", "30s"},
		stdout, stderr)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Mode    string `json:"mode"`
		Records int64  `json:"records_received"`
		Errors  int64  `json:"errors"`
	}
	out := read(t, stdout)
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not one JSON record: %v\n%s", err, out)
	}
	if rep.Mode != "stream" || rep.Records != 30 || rep.Errors != 0 {
		t.Errorf("record = %+v, want stream/30/0", rep)
	}
	human := read(t, stderr)
	for _, want := range []string{"hicsload stream", "records received 30", "latency ms"} {
		if !strings.Contains(human, want) {
			t.Errorf("stderr summary missing %q:\n%s", want, human)
		}
	}
}

func TestRunScore(t *testing.T) {
	ts := newTarget(t)
	stdout, stderr := capture(t, "out"), capture(t, "err")
	err := run(context.Background(),
		[]string{"-target", ts.URL, "-mode", "score", "-sessions", "1", "-rows", "5", "-timeout", "30s"},
		stdout, stderr)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Records int64 `json:"records_received"`
	}
	if err := json.Unmarshal([]byte(read(t, stdout)), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Records != 5 {
		t.Errorf("records = %d, want 5", rep.Records)
	}
}
