// Command hicsload drives synthetic scoring load at a hicsd deployment
// and reports what it sustained: per-row latency percentiles (p50, p90,
// p99, max), throughput in rows per second, error and admission-retry
// counts.
//
// Usage:
//
//	hicsload -target http://host:8080 [-mode stream|score] [-sessions N]
//	         [-rows N] [-rate R] [-dim D] [-model NAME] [-session-key session]
//	         [-key-prefix load] [-seed N] [-max-retries N] [-timeout 5m]
//	         [-trace]
//	hicsload -version
//
// The human summary prints to stderr; stdout carries exactly one JSON
// record of the same numbers, so runs compose into comparison files:
//
//	hicsload -target http://a:8080 ... >> BENCH_baseline.json
//	hicsload -target http://b:8080 ... >> BENCH_candidate.json
//
// In stream mode each of -sessions concurrent NDJSON /stream sessions
// feeds -rows rows (optionally paced to -rate rows/sec) and every row
// is timed from line written to scored record received — the end-to-end
// number a live feed experiences. In score mode each worker issues
// -rows sequential unary /score requests. Sessions bounced with 429
// (an admission quota at work) back off for the server's Retry-After
// and retry under a rotated session key, which a front spreads across
// the shard map; bounces are counted separately from errors.
//
// The target may be a standalone hicsd, one shard, or a front — the
// session keys hicsload generates are exactly what the front's
// rendezvous router hashes, so a multi-shard topology spreads the
// sessions without any extra flags.
//
// With -trace every session (stream mode) or request (score mode)
// carries a W3C traceparent minted deterministically from -seed, and
// the summary lists the distinct trace IDs behind the p99-slowest
// measurements — paste one into the target's GET /debug/traces to see
// span-by-span where the time went. Tracing never changes the rows: the
// trace identities draw from a separate random stream.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hics"
	"hics/internal/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hicsload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr *os.File) error {
	fs := flag.NewFlagSet("hicsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target     = fs.String("target", "", "base URL of the hicsd deployment under load (required)")
		mode       = fs.String("mode", "stream", "load shape: stream (concurrent NDJSON sessions) or score (unary requests)")
		sessions   = fs.Int("sessions", 4, "concurrent sessions (stream) or workers (score)")
		rows       = fs.Int("rows", 500, "rows per session (stream) or requests per worker (score)")
		rate       = fs.Float64("rate", 0, "rows per second per session (0 = as fast as the server accepts)")
		dim        = fs.Int("dim", 3, "row width; must match the served model")
		model      = fs.String("model", "", "route to a named model (?model=)")
		sessionKey = fs.String("session-key", "session", "query parameter carrying the session key (what a front routes on)")
		keyPrefix  = fs.String("key-prefix", "load", "prefix of generated session keys")
		seed       = fs.Uint64("seed", 1, "row-generation seed (reproducible load)")
		maxRetries = fs.Int("max-retries", 50, "429 admission retries per session before counting an error")
		timeout    = fs.Duration("timeout", 5*time.Minute, "overall run budget (0 = none)")
		traceOn    = fs.Bool("trace", false, "send a W3C traceparent per session/request and report the p99-slowest trace IDs (look them up at the server's GET /debug/traces)")
		version    = fs.Bool("version", false, "print the version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hicsload -target http://host:8080 [-mode stream|score] [-sessions N] [-rows N] [-rate R] [-dim D] [-model NAME] [-session-key session] [-key-prefix load] [-seed N] [-max-retries N] [-timeout 5m] [-trace]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, "hicsload", hics.Version)
		return nil
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *target == "" {
		fs.Usage()
		return fmt.Errorf("-target is required")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Target:     *target,
		Mode:       *mode,
		Sessions:   *sessions,
		Rows:       *rows,
		Rate:       *rate,
		Dim:        *dim,
		Model:      *model,
		KeyParam:   *sessionKey,
		KeyPrefix:  *keyPrefix,
		Seed:       *seed,
		MaxRetries: *maxRetries,
		Trace:      *traceOn,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stderr, rep.Human())
	enc := json.NewEncoder(stdout)
	return enc.Encode(rep)
}
