package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run(context.Background(), []string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-quick", "-o", dir, "abl-agg"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "abl-agg.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("experiment output file is empty")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{}); err == nil {
		t.Error("no experiment should fail")
	}
	if err := run(context.Background(), []string{"bogus"}); err == nil {
		t.Error("unknown experiment should fail")
	}
	err := run(context.Background(), []string{"-searchers", "hics,quantum", "list"})
	if err == nil {
		t.Error("unknown searcher name should fail")
	} else if !strings.Contains(err.Error(), "quantum") || !strings.Contains(err.Error(), "enclus") {
		t.Errorf("error %q should name the offender and enumerate valid searchers", err)
	}
	// Empty tokens would silently resolve to the default searcher.
	if err := run(context.Background(), []string{"-searchers", "hics,,", "list"}); err == nil {
		t.Error("empty -searchers token should fail")
	}
	// Valid selections parse; "list" exits before any experiment runs.
	if err := run(context.Background(), []string{"-searchers", "surfing, fullspace", "list"}); err != nil {
		t.Errorf("valid -searchers rejected: %v", err)
	}
}
