package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-o", dir, "abl-agg"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "abl-agg.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("experiment output file is empty")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no experiment should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}
