// Command hicsbench regenerates every table and figure of the paper's
// evaluation section, plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	hicsbench [-quick] [-seed N] [-o dir] <experiment>... | all | list
//
// Experiments: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//
//	abl-test abl-agg abl-prune abl-scorer
//
// Without -o, tables go to stdout; with -o each experiment is additionally
// written to <dir>/<name>.txt. -quick shrinks dataset sizes and sweeps so
// the whole suite finishes in minutes; the full-size run reproduces the
// paper's scale and takes correspondingly longer. -searchers restricts the
// subspace-method competitor set to a comma-separated list of method
// registry names (e.g. -searchers hics,enclus,surfing), so any registered
// searcher can join the comparison tables.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hics/internal/experiments"
	"hics/internal/registry"
)

func main() {
	// Ctrl-C (or SIGTERM) cancels the in-flight experiment cooperatively:
	// the Monte Carlo loops observe the context and return promptly
	// instead of the process dying mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "hicsbench: interrupted, stopping cleanly")
		} else {
			fmt.Fprintln(os.Stderr, "hicsbench:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hicsbench", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "strongly reduced dataset sizes and sweeps (smoke test)")
		medium    = fs.Bool("medium", false, "paper sweep ranges at reduced dataset sizes (recommended on a laptop)")
		seed      = fs.Uint64("seed", 1, "base random seed")
		outDir    = fs.String("o", "", "also write each experiment's table to this directory")
		searchers = fs.String("searchers", "", "comma-separated registry names restricting the subspace-method competitor set (default: hics,enclus,ris,randsub; valid: "+strings.Join(registry.SearcherNames(), ",")+")")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hicsbench [flags] <experiment>... | all | list")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), "\nexperiments:")
		for _, e := range experiments.Registry {
			fmt.Fprintf(fs.Output(), "  %-11s %s\n", e.Name, e.Desc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given")
	}

	cfg := experiments.Config{Quick: *quick, Medium: *medium, Seed: *seed}
	if *searchers != "" {
		for _, name := range strings.Split(*searchers, ",") {
			name = strings.TrimSpace(name)
			// An empty token would resolve to the registry default and
			// silently duplicate a competitor; reject it instead.
			if name == "" {
				return fmt.Errorf("-searchers has an empty name (valid: %s)", strings.Join(registry.SearcherNames(), ", "))
			}
			// Resolve through the registry so the error enumerates the
			// valid names.
			if _, err := registry.NewSearcher(name, registry.SearcherOptions{}); err != nil {
				return err
			}
			cfg.Searchers = append(cfg.Searchers, name)
		}
	}

	var names []string
	for _, a := range fs.Args() {
		switch a {
		case "list":
			for _, e := range experiments.Registry {
				fmt.Printf("%-11s %s\n", e.Name, e.Desc)
			}
			return nil
		case "all":
			for _, e := range experiments.Registry {
				names = append(names, e.Name)
			}
		default:
			if _, ok := experiments.Lookup(a); !ok {
				return fmt.Errorf("unknown experiment %q (try: hicsbench list)", a)
			}
			names = append(names, a)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, name := range names {
		fn, _ := experiments.Lookup(name)
		mode := "full"
		if *quick {
			mode = "quick"
		} else if *medium {
			mode = "medium"
		}
		fmt.Printf("=== %s (%s) ===\n", name, mode)
		var w io.Writer = os.Stdout
		var f *os.File
		if *outDir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outDir, name+".txt"))
			if err != nil {
				return err
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		start := time.Now()
		err := fn(ctx, w, cfg)
		if f != nil {
			f.Close()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
