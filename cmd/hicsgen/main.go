// Command hicsgen writes synthetic benchmark datasets (the paper's
// Sec. V-A construction) or simulated UCI analogs to CSV.
//
// Usage:
//
//	hicsgen -n 1000 -d 50 -seed 1 -o data.csv          # synthetic benchmark
//	hicsgen -rows 1000000 -dims 50 -o big.csv          # benchmark-scale, streamed
//	hicsgen -uci Ionosphere -o iono.csv                # simulated UCI analog
//	hicsgen -list                                      # list UCI analogs
//
// -seed fixes all randomness, so the same flags always reproduce the same
// file. -rows/-dims select the streaming generator, which emits one row
// at a time instead of materializing the full N×D matrix — benchmark-
// scale datasets are written in O(D) memory.
//
// The output carries a header row and a trailing 0/1 "label" column with
// the outlier ground truth, ready for `hics -header`.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"hics/internal/dataset"
	"hics/internal/synth"
	"hics/internal/uci"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hicsgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hicsgen", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1000, "number of objects")
		d        = fs.Int("d", 50, "number of attributes")
		minDim   = fs.Int("mindim", 2, "minimum correlated subspace size")
		maxDim   = fs.Int("maxdim", 5, "maximum correlated subspace size")
		outliers = fs.Int("outliers", 5, "outliers planted per subspace")
		rows     = fs.Int("rows", 0, "stream this many objects row by row (no full-matrix allocation; overrides -n)")
		dims     = fs.Int("dims", 0, "attribute count for -rows streaming (overrides -d)")
		seed     = fs.Uint64("seed", 1, "random seed; the same flags and seed always reproduce the same file")
		out      = fs.String("o", "", "output file (default stdout)")
		uciName  = fs.String("uci", "", "generate a simulated UCI analog instead (see -list)")
		scale    = fs.Float64("scale", 1, "UCI analog size scale in (0,1]")
		list     = fs.Bool("list", false, "list available UCI analogs and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), `usage: hicsgen [flags]

examples:
  hicsgen -n 1000 -d 50 -seed 1 -o data.csv     reproducible benchmark dataset
  hicsgen -rows 1000000 -dims 50 -o big.csv     benchmark-scale, streamed in O(dims) memory
  hicsgen -uci Ionosphere -o iono.csv           simulated UCI analog

-seed drives all randomness: rerunning with identical flags rewrites the
identical file.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Println("available UCI analogs:")
		for _, spec := range uci.Specs {
			fmt.Printf("  %-12s %5d x %3d, %d outliers\n", spec.Name, spec.N, spec.D, spec.Outliers)
		}
		return nil
	}

	if *rows > 0 || *dims > 0 {
		if *uciName != "" {
			return fmt.Errorf("-rows/-dims stream the synthetic benchmark and cannot be combined with -uci")
		}
		nn, dd := *rows, *dims
		if nn <= 0 {
			nn = *n
		}
		if dd <= 0 {
			dd = *d
		}
		return streamCSV(*out, synth.Config{
			N: nn, D: dd,
			MinSubspaceDim: *minDim, MaxSubspaceDim: *maxDim,
			OutliersPerSubspace: *outliers,
			Seed:                *seed,
		})
	}

	var (
		labeled *dataset.Labeled
		err     error
	)
	if *uciName != "" {
		labeled, err = uci.Load(*uciName, *scale)
		if err != nil {
			return err
		}
	} else {
		b, err := synth.Generate(synth.Config{
			N: *n, D: *d,
			MinSubspaceDim: *minDim, MaxSubspaceDim: *maxDim,
			OutliersPerSubspace: *outliers,
			Seed:                *seed,
		})
		if err != nil {
			return err
		}
		labeled = b.Data
		fmt.Fprintf(os.Stderr, "planted correlated subspaces:")
		for _, g := range b.Subspaces {
			fmt.Fprintf(os.Stderr, " %v", g)
		}
		fmt.Fprintln(os.Stderr)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, labeled.Data, labeled.Outlier); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d objects x %d attributes (%d outliers)\n",
		labeled.Data.N(), labeled.Data.D(), labeled.NumOutliers())
	return nil
}

// streamCSV writes a benchmark dataset row by row via synth.Stream, so
// the peak memory is one row plus the output buffer regardless of N.
func streamCSV(out string, cfg synth.Config) error {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<16)

	// Header: the same attr0..attrD-1 + label columns WriteCSV emits.
	for j := 0; j < cfg.D; j++ {
		if j > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "attr%d", j)
	}
	bw.WriteString(",label\n")

	outliers := 0
	var fbuf []byte
	groups, err := synth.Stream(cfg, func(id int, row []float64, outlier bool) error {
		for _, v := range row {
			fbuf = strconv.AppendFloat(fbuf[:0], v, 'g', -1, 64)
			bw.Write(fbuf)
			bw.WriteByte(',')
		}
		tail := "0\n"
		if outlier {
			outliers++
			tail = "1\n"
		}
		// bufio latches the first write error, so checking the row's last
		// write is enough to abort the stream promptly on a full disk.
		_, err := bw.WriteString(tail)
		return err
	})
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "planted correlated subspaces:")
	for _, g := range groups {
		fmt.Fprintf(os.Stderr, " %v", g)
	}
	fmt.Fprintln(os.Stderr)
	fmt.Fprintf(os.Stderr, "streamed %d objects x %d attributes (%d outliers)\n",
		cfg.N, cfg.D, outliers)
	return nil
}
