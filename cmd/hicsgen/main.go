// Command hicsgen writes synthetic benchmark datasets (the paper's
// Sec. V-A construction) or simulated UCI analogs to CSV.
//
// Usage:
//
//	hicsgen -n 1000 -d 50 -seed 1 -o data.csv          # synthetic benchmark
//	hicsgen -uci Ionosphere -o iono.csv                # simulated UCI analog
//	hicsgen -list                                      # list UCI analogs
//
// The output carries a header row and a trailing 0/1 "label" column with
// the outlier ground truth, ready for `hics -header`.
package main

import (
	"flag"
	"fmt"
	"os"

	"hics/internal/dataset"
	"hics/internal/synth"
	"hics/internal/uci"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hicsgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hicsgen", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1000, "number of objects")
		d        = fs.Int("d", 50, "number of attributes")
		minDim   = fs.Int("mindim", 2, "minimum correlated subspace size")
		maxDim   = fs.Int("maxdim", 5, "maximum correlated subspace size")
		outliers = fs.Int("outliers", 5, "outliers planted per subspace")
		seed     = fs.Uint64("seed", 1, "random seed")
		out      = fs.String("o", "", "output file (default stdout)")
		uciName  = fs.String("uci", "", "generate a simulated UCI analog instead (see -list)")
		scale    = fs.Float64("scale", 1, "UCI analog size scale in (0,1]")
		list     = fs.Bool("list", false, "list available UCI analogs and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hicsgen [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Println("available UCI analogs:")
		for _, spec := range uci.Specs {
			fmt.Printf("  %-12s %5d x %3d, %d outliers\n", spec.Name, spec.N, spec.D, spec.Outliers)
		}
		return nil
	}

	var (
		labeled *dataset.Labeled
		err     error
	)
	if *uciName != "" {
		labeled, err = uci.Load(*uciName, *scale)
		if err != nil {
			return err
		}
	} else {
		b, err := synth.Generate(synth.Config{
			N: *n, D: *d,
			MinSubspaceDim: *minDim, MaxSubspaceDim: *maxDim,
			OutliersPerSubspace: *outliers,
			Seed:                *seed,
		})
		if err != nil {
			return err
		}
		labeled = b.Data
		fmt.Fprintf(os.Stderr, "planted correlated subspaces:")
		for _, g := range b.Subspaces {
			fmt.Fprintf(os.Stderr, " %v", g)
		}
		fmt.Fprintln(os.Stderr)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, labeled.Data, labeled.Outlier); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d objects x %d attributes (%d outliers)\n",
		labeled.Data.N(), labeled.Data.D(), labeled.NumOutliers())
	return nil
}
