package main

import (
	"os"
	"path/filepath"
	"testing"

	"hics/internal/dataset"
)

func TestGenerateSynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "synth.csv")
	if err := run([]string{"-n", "100", "-d", "8", "-seed", "2", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, err := dataset.ReadLabeledCSV(f, dataset.CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.N() != 100 || l.Data.D() != 8 {
		t.Errorf("generated shape %dx%d", l.Data.N(), l.Data.D())
	}
	if l.Outlier == nil || l.NumOutliers() == 0 {
		t.Error("no labels in generated file")
	}
}

func TestGenerateUCI(t *testing.T) {
	out := filepath.Join(t.TempDir(), "glass.csv")
	if err := run([]string{"-uci", "Glass", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, err := dataset.ReadLabeledCSV(f, dataset.CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.N() != 214 || l.Data.D() != 9 {
		t.Errorf("Glass analog shape %dx%d", l.Data.N(), l.Data.D())
	}
	if l.NumOutliers() != 9 {
		t.Errorf("Glass outliers = %d, want 9", l.NumOutliers())
	}
}

func TestGenerateList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-uci", "bogus"}); err == nil {
		t.Error("unknown UCI name should fail")
	}
	if err := run([]string{"-n", "5", "-d", "4", "-o", filepath.Join(t.TempDir(), "x.csv")}); err == nil {
		t.Error("degenerate size should fail")
	}
}

func TestStreamedGeneration(t *testing.T) {
	out := filepath.Join(t.TempDir(), "stream.csv")
	if err := run([]string{"-rows", "250", "-dims", "10", "-seed", "4", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, err := dataset.ReadLabeledCSV(f, dataset.CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.N() != 250 || l.Data.D() != 10 {
		t.Errorf("streamed shape %dx%d, want 250x10", l.Data.N(), l.Data.D())
	}
	if l.Outlier == nil || l.NumOutliers() == 0 {
		t.Error("no labels in streamed file")
	}
	if name := l.Data.Name(0); name != "attr0" {
		t.Errorf("first column named %q, want attr0", name)
	}
}

func TestStreamRejectsUCICombination(t *testing.T) {
	if err := run([]string{"-rows", "100", "-uci", "Glass"}); err == nil {
		t.Error("-rows with -uci should be rejected")
	}
}
