// Command hics runs the HiCS subspace search and outlier ranking on a CSV
// dataset.
//
// Usage:
//
//	hics [flags] <input.csv>
//
// The input is numeric CSV; with -header the first row names the
// attributes, and a column named "label"/"outlier" (or the -label flag) is
// used as ground truth to report the AUC of the ranking. Output is the
// ranked list of high-contrast subspaces followed by the top outliers.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hics/internal/core"
	"hics/internal/dataset"
	"hics/internal/eval"
	"hics/internal/neighbors"
	"hics/internal/ranking"
	"hics/internal/subspace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hics:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hics", flag.ContinueOnError)
	var (
		header  = fs.Bool("header", true, "first CSV row contains attribute names")
		label   = fs.String("label", "", "name of the ground-truth label column (default: auto-detect 'label'/'outlier'; '-' disables)")
		test    = fs.String("test", "welch", "statistical test: welch or ks")
		m       = fs.Int("M", core.DefaultM, "Monte Carlo iterations per subspace")
		alpha   = fs.Float64("alpha", core.DefaultAlpha, "expected slice size as a fraction of N")
		cutoff  = fs.Int("cutoff", core.DefaultCutoff, "candidate cutoff per Apriori level")
		topk    = fs.Int("topk", core.DefaultTopK, "number of high-contrast subspaces to rank in")
		minPts  = fs.Int("minpts", 10, "LOF MinPts neighborhood size")
		seed    = fs.Uint64("seed", 0, "random seed")
		outl    = fs.Int("outliers", 10, "number of top outliers to print")
		scorer  = fs.String("scorer", "lof", "outlier scorer: lof or knn")
		aggName = fs.String("agg", "average", "aggregation of per-subspace scores: average or max")
		index   = fs.String("index", "auto", "neighbor index for the ranking step: auto, kdtree or brute")
		subOnly = fs.Bool("subspaces-only", false, "run only the subspace search, skip the ranking step")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hics [flags] <input.csv>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one input file, got %d", fs.NArg())
	}

	tt, err := core.ParseTest(*test)
	if err != nil {
		return err
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	l, err := dataset.ReadLabeledCSV(f, dataset.CSVOptions{Header: *header, LabelColumn: *label})
	if err != nil {
		return err
	}
	ds := l.Data
	fmt.Printf("loaded %d objects x %d attributes\n", ds.N(), ds.D())

	params := core.Params{M: *m, Alpha: *alpha, Cutoff: *cutoff, TopK: *topk, Test: tt, Seed: *seed}
	searcher := &core.Searcher{Params: params}

	if *subOnly {
		subs, err := searcher.Search(ds)
		if err != nil {
			return err
		}
		fmt.Printf("\ntop high-contrast subspaces (%s test):\n", tt)
		printSubspaces(ds, subs, 20)
		return nil
	}

	var sc ranking.Scorer
	switch *scorer {
	case "lof":
		sc = ranking.LOFScorer{MinPts: *minPts}
	case "knn":
		sc = ranking.KNNScorer{K: *minPts}
	default:
		return fmt.Errorf("unknown scorer %q (want lof or knn)", *scorer)
	}
	var agg ranking.Aggregation
	switch *aggName {
	case "average":
		agg = ranking.Average
	case "max":
		agg = ranking.Max
	default:
		return fmt.Errorf("unknown aggregation %q (want average or max)", *aggName)
	}
	kind, err := neighbors.ParseKind(*index)
	if err != nil {
		return err
	}

	pipe := ranking.Pipeline{Searcher: searcher, Scorer: sc, Agg: agg, MaxSubspaces: -1, Index: kind}
	res, err := pipe.Rank(ds)
	if err != nil {
		return err
	}

	fmt.Printf("\ntop high-contrast subspaces (%s test):\n", tt)
	printSubspaces(ds, res.Subspaces, 10)

	fmt.Printf("\ntop %d outliers (%s scores aggregated by %s):\n", *outl, sc.Name(), agg)
	order := make([]int, len(res.Scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return res.Scores[order[a]] > res.Scores[order[b]] })
	k := *outl
	if k > len(order) {
		k = len(order)
	}
	for rank, i := range order[:k] {
		marker := ""
		if l.Outlier != nil && l.Outlier[i] {
			marker = "  <- labeled outlier"
		}
		fmt.Printf("%3d. object %5d  score %.4f%s\n", rank+1, i, res.Scores[i], marker)
	}

	if l.Outlier != nil {
		auc, err := eval.AUC(res.Scores, l.Outlier)
		if err == nil {
			fmt.Printf("\nAUC vs provided labels: %.4f\n", auc)
		}
	}
	return nil
}

// printSubspaces lists up to limit scored subspaces with attribute names.
func printSubspaces(ds *dataset.Dataset, subs []subspace.Scored, limit int) {
	if limit > len(subs) {
		limit = len(subs)
	}
	for i := 0; i < limit; i++ {
		names := make([]string, subs[i].S.Dim())
		for k, d := range subs[i].S {
			names[k] = ds.Name(d)
		}
		fmt.Printf("%3d. contrast %.4f  %v (%s)\n", i+1, subs[i].Score, []int(subs[i].S), strings.Join(names, ", "))
	}
}
