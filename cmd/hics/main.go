// Command hics runs the HiCS subspace search and outlier ranking on a CSV
// dataset.
//
// Usage:
//
//	hics [flags] <input.csv>
//	hics -stream [flags] [input.csv]
//	hics -list-methods
//	hics -version
//
// The input is numeric CSV; with -header the first row names the
// attributes, and a column named "label"/"outlier" (or the -label flag) is
// used as ground truth to report the AUC of the ranking. Output is the
// ranked list of high-contrast subspaces followed by the top outliers.
//
// Both pipeline steps are pluggable: -search selects the subspace-search
// method and -scorer the density scorer, by method-registry name;
// -list-methods prints every registered name. With -save-model the fitted
// model is additionally persisted for out-of-sample scoring via the hicsd
// server (fit requires a -scorer supporting the fit/score split).
//
// With -stream the command becomes an online detector: rows are read
// incrementally from stdin (or the input file), the first -window rows
// fit the initial model, and every row is scored as it arrives — one
// NDJSON record {"index","score","refits"} per line on stdout.
// -refit-every re-fits the model over the sliding window periodically;
// Ctrl-C stops the stream cleanly via the shared context plumbing.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"hics"
	"hics/internal/core"
	"hics/internal/dataset"
	"hics/internal/eval"
	"hics/internal/ranking"
	"hics/internal/registry"
)

// Flag help texts naming the accepted values; tests parse these to verify
// every advertised name actually parses.
var (
	testFlagUsage   = "statistical test: welch, ks, mw or cvm"
	aggFlagUsage    = "aggregation of per-subspace scores: average, max or product"
	searchFlagUsage = "subspace searcher: " + strings.Join(registry.SearcherNames(), ", ")
	scorerFlagUsage = "outlier scorer: " + strings.Join(registry.ScorerNames(), ", ")
)

func main() {
	// Ctrl-C (or SIGTERM) cancels the in-flight search cooperatively: the
	// Monte Carlo loops observe the context and the process exits cleanly
	// instead of being killed mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "hics: interrupted, stopping cleanly")
		} else {
			fmt.Fprintln(os.Stderr, "hics:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hics", flag.ContinueOnError)
	var (
		header      = fs.Bool("header", true, "first CSV row contains attribute names")
		label       = fs.String("label", "", "name of the ground-truth label column (default: auto-detect 'label'/'outlier'; '-' disables)")
		test        = fs.String("test", "welch", testFlagUsage)
		m           = fs.Int("M", core.DefaultM, "Monte Carlo iterations per subspace")
		alpha       = fs.Float64("alpha", core.DefaultAlpha, "expected slice size as a fraction of N")
		cutoff      = fs.Int("cutoff", core.DefaultCutoff, "candidate cutoff per Apriori level")
		topk        = fs.Int("topk", core.DefaultTopK, "number of high-contrast subspaces to rank in")
		minPts      = fs.Int("minpts", 10, "LOF MinPts neighborhood size")
		seed        = fs.Uint64("seed", 0, "random seed")
		workers     = fs.Int("workers", 0, "max goroutines evaluating subspace contrasts (0 = one per CPU)")
		adaptive    = fs.Bool("adaptive", false, "race the Monte Carlo budget: stop spending M on candidates decided against retention")
		maxSample   = fs.Int("max-sample-rows", 0, "estimate each contrast on at most this many rows (0 = all rows)")
		outl        = fs.Int("outliers", 10, "number of top outliers to print")
		search      = fs.String("search", "hics", searchFlagUsage)
		scorer      = fs.String("scorer", "lof", scorerFlagUsage)
		aggName     = fs.String("agg", "average", aggFlagUsage)
		index       = fs.String("index", "auto", "neighbor index for the ranking step: auto, kdtree, brute or lsh (approximate)")
		subOnly     = fs.Bool("subspaces-only", false, "run only the subspace search, skip the ranking step")
		saveModel   = fs.String("save-model", "", "fit a reusable model and save it to this file (serve it with hicsd)")
		listMethods = fs.Bool("list-methods", false, "list the registered searcher and scorer names and exit")
		streamMode  = fs.Bool("stream", false, "stream rows from stdin (or the input file): fit on the first -window rows, then score each row as it arrives, NDJSON out")
		window      = fs.Int("window", 100, "stream: sliding-window size (must exceed -minpts)")
		refitEvery  = fs.Int("refit-every", 0, "stream: re-fit the model over the window every N arrivals (0 = never)")
		streamAsync = fs.Bool("stream-async", false, "stream: re-fit in the background, keep scoring with the current model meanwhile")
		version     = fs.Bool("version", false, "print the version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hics [flags] <input.csv>\n       hics -stream [flags] [input.csv]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("hics", hics.Version)
		return nil
	}
	if *listMethods {
		return printMethods(os.Stdout)
	}

	if *streamMode {
		if *saveModel != "" || *subOnly {
			return fmt.Errorf("-stream cannot be combined with -save-model or -subspaces-only")
		}
		opts := hics.Options{
			M: *m, Alpha: *alpha, CandidateCutoff: *cutoff, TopK: *topk,
			Test: *test, Seed: *seed, MinPts: *minPts, Workers: *workers,
			Aggregation: *aggName, NeighborIndex: *index,
			AdaptiveM: *adaptive, MaxSampleRows: *maxSample,
			Search: *search, Scorer: *scorer,
		}
		sopts := hics.StreamOptions{Window: *window, RefitEvery: *refitEvery, Async: *streamAsync}
		in := io.Reader(os.Stdin)
		switch {
		case fs.NArg() == 0 || (fs.NArg() == 1 && fs.Arg(0) == "-"):
			// stdin — the `hicsgen | hics -stream` pipe.
		case fs.NArg() == 1:
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		default:
			fs.Usage()
			return fmt.Errorf("expected at most one input file, got %d", fs.NArg())
		}
		return runStream(ctx, in, os.Stdout, opts, sopts, dataset.CSVOptions{Header: *header, LabelColumn: *label})
	}

	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one input file, got %d", fs.NArg())
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	l, err := dataset.ReadLabeledCSV(f, dataset.CSVOptions{Header: *header, LabelColumn: *label})
	if err != nil {
		return err
	}
	ds := l.Data
	fmt.Printf("loaded %d objects x %d attributes\n", ds.N(), ds.D())

	// Everything routes through the public API: one Options value feeds
	// SearchSubspaces, Rank and Fit, so option validation and method
	// resolution behave identically at every entry point.
	opts := hics.Options{
		M: *m, Alpha: *alpha, CandidateCutoff: *cutoff, TopK: *topk,
		Test: *test, Seed: *seed, MinPts: *minPts, Workers: *workers,
		Aggregation: *aggName, NeighborIndex: *index,
		AdaptiveM: *adaptive, MaxSampleRows: *maxSample,
		Search: *search, Scorer: *scorer,
	}
	rows := make([][]float64, ds.N())
	for i := range rows {
		rows[i] = ds.Row(i, nil)
	}

	if *subOnly {
		if *saveModel != "" {
			return fmt.Errorf("-save-model needs the ranking step; drop -subspaces-only")
		}
		subs, err := hics.SearchSubspacesContext(ctx, rows, opts)
		if err != nil {
			return err
		}
		printSubspaces(ds, *search, *test, subs, 20)
		return nil
	}

	agg, err := ranking.ParseAggregation(*aggName)
	if err != nil {
		return err
	}

	if *saveModel != "" {
		// The fit/score split: run the search once, freeze the model,
		// report the (identical) training ranking, and persist for hicsd.
		model, err := hics.FitContext(ctx, rows, opts)
		if err != nil {
			return err
		}
		printSubspaces(ds, *search, *test, model.Subspaces(), 10)
		reportRanking(l, model.TrainingScores(), *outl, *scorer, agg)
		f, err := os.Create(*saveModel)
		if err != nil {
			return err
		}
		if err := model.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nmodel saved to %s (serve with: hicsd -model %s)\n", *saveModel, *saveModel)
		return nil
	}

	res, err := hics.RankContext(ctx, rows, opts)
	if err != nil {
		return err
	}
	printSubspaces(ds, *search, *test, res.Subspaces, 10)
	reportRanking(l, res.Scores, *outl, *scorer, agg)
	return nil
}

// runStream drives the online detector: CSV rows are read incrementally
// from in (label column dropped — streaming is unsupervised), pushed into
// a cold hics.Stream, and every scored arrival is emitted to out as one
// NDJSON record. The context cancels mid-read (Ctrl-C), and a summary
// goes to stderr so stdout stays pure NDJSON.
func runStream(ctx context.Context, in io.Reader, out io.Writer, opts hics.Options, sopts hics.StreamOptions, csvOpts dataset.CSVOptions) error {
	cs, err := dataset.NewCSVStream(in, csvOpts)
	if err != nil {
		return err
	}
	st, err := hics.NewStream(opts, sopts)
	if err != nil {
		return err
	}
	defer st.Close()
	enc := json.NewEncoder(out)
	scored := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		row, _, err := cs.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		results, err := st.Push(ctx, row)
		if err != nil {
			return err
		}
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
		scored += len(results)
	}
	if err := st.Drain(ctx); err != nil {
		return err
	}
	if !st.Warm() {
		fmt.Fprintf(os.Stderr, "hics: stream ended during warmup: %d of %d rows buffered, nothing scored (lower -window to score shorter feeds)\n",
			st.Seen(), sopts.Window)
		return nil
	}
	fmt.Fprintf(os.Stderr, "hics: stream done: %d rows seen, %d scored, %d refits\n", st.Seen(), scored, st.Refits())
	return nil
}

// printMethods lists every registered method name, constructing each one
// as a smoke check that the whole registry is buildable.
func printMethods(w io.Writer) error {
	fmt.Fprintln(w, "searchers:")
	for _, name := range registry.SearcherNames() {
		s, err := registry.NewSearcher(name, registry.SearcherOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10s %s\n", name, s.Name())
	}
	fmt.Fprintln(w, "scorers:")
	for _, name := range registry.ScorerNames() {
		sc, err := registry.NewScorer(name, registry.ScorerOptions{})
		if err != nil {
			return err
		}
		fit := ""
		if registry.ScorerSupportsFit(name) {
			fit = "  (supports fit/save)"
		}
		fmt.Fprintf(w, "  %-10s %s%s\n", name, sc.Name(), fit)
	}
	return nil
}

// reportRanking prints the top outliers and, when labels are available,
// the AUC of the ranking.
func reportRanking(l *dataset.Labeled, scores []float64, outl int, scorerName string, agg ranking.Aggregation) {
	fmt.Printf("\ntop %d outliers (%s scores aggregated by %s):\n", outl, scorerName, agg)
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	k := outl
	if k > len(order) {
		k = len(order)
	}
	for rank, i := range order[:k] {
		marker := ""
		if l.Outlier != nil && l.Outlier[i] {
			marker = "  <- labeled outlier"
		}
		fmt.Printf("%3d. object %5d  score %.4f%s\n", rank+1, i, scores[i], marker)
	}

	if l.Outlier != nil {
		auc, err := eval.AUC(scores, l.Outlier)
		if err == nil {
			fmt.Printf("\nAUC vs provided labels: %.4f\n", auc)
		}
	}
}

// printSubspaces lists up to limit scored subspaces with attribute names.
func printSubspaces(ds *dataset.Dataset, search, test string, subs []hics.Subspace, limit int) {
	if search == "hics" || search == "" {
		fmt.Printf("\ntop high-contrast subspaces (%s test):\n", test)
	} else {
		fmt.Printf("\ntop subspaces (%s search):\n", search)
	}
	if limit > len(subs) {
		limit = len(subs)
	}
	for i := 0; i < limit; i++ {
		names := make([]string, len(subs[i].Dims))
		for k, d := range subs[i].Dims {
			names[k] = ds.Name(d)
		}
		fmt.Printf("%3d. contrast %.4f  %v (%s)\n", i+1, subs[i].Contrast, subs[i].Dims, strings.Join(names, ", "))
	}
}
