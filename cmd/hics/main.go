// Command hics runs the HiCS subspace search and outlier ranking on a CSV
// dataset.
//
// Usage:
//
//	hics [flags] <input.csv>
//
// The input is numeric CSV; with -header the first row names the
// attributes, and a column named "label"/"outlier" (or the -label flag) is
// used as ground truth to report the AUC of the ranking. Output is the
// ranked list of high-contrast subspaces followed by the top outliers.
// With -save-model the fitted model is additionally persisted for
// out-of-sample scoring via the hicsd server.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hics"
	"hics/internal/core"
	"hics/internal/dataset"
	"hics/internal/eval"
	"hics/internal/neighbors"
	"hics/internal/ranking"
	"hics/internal/subspace"
)

// Flag help texts naming the accepted values; tests parse these to verify
// every advertised name actually parses.
const (
	testFlagUsage = "statistical test: welch, ks, mw or cvm"
	aggFlagUsage  = "aggregation of per-subspace scores: average, max or product"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hics:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hics", flag.ContinueOnError)
	var (
		header    = fs.Bool("header", true, "first CSV row contains attribute names")
		label     = fs.String("label", "", "name of the ground-truth label column (default: auto-detect 'label'/'outlier'; '-' disables)")
		test      = fs.String("test", "welch", testFlagUsage)
		m         = fs.Int("M", core.DefaultM, "Monte Carlo iterations per subspace")
		alpha     = fs.Float64("alpha", core.DefaultAlpha, "expected slice size as a fraction of N")
		cutoff    = fs.Int("cutoff", core.DefaultCutoff, "candidate cutoff per Apriori level")
		topk      = fs.Int("topk", core.DefaultTopK, "number of high-contrast subspaces to rank in")
		minPts    = fs.Int("minpts", 10, "LOF MinPts neighborhood size")
		seed      = fs.Uint64("seed", 0, "random seed")
		outl      = fs.Int("outliers", 10, "number of top outliers to print")
		scorer    = fs.String("scorer", "lof", "outlier scorer: lof or knn")
		aggName   = fs.String("agg", "average", aggFlagUsage)
		index     = fs.String("index", "auto", "neighbor index for the ranking step: auto, kdtree or brute")
		subOnly   = fs.Bool("subspaces-only", false, "run only the subspace search, skip the ranking step")
		saveModel = fs.String("save-model", "", "fit a reusable model and save it to this file (serve it with hicsd)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hics [flags] <input.csv>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one input file, got %d", fs.NArg())
	}

	tt, err := core.ParseTest(*test)
	if err != nil {
		return err
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	l, err := dataset.ReadLabeledCSV(f, dataset.CSVOptions{Header: *header, LabelColumn: *label})
	if err != nil {
		return err
	}
	ds := l.Data
	fmt.Printf("loaded %d objects x %d attributes\n", ds.N(), ds.D())

	params := core.Params{M: *m, Alpha: *alpha, Cutoff: *cutoff, TopK: *topk, Test: tt, Seed: *seed}
	searcher := &core.Searcher{Params: params}

	if *subOnly {
		if *saveModel != "" {
			return fmt.Errorf("-save-model needs the ranking step; drop -subspaces-only")
		}
		subs, err := searcher.Search(ds)
		if err != nil {
			return err
		}
		fmt.Printf("\ntop high-contrast subspaces (%s test):\n", tt)
		printSubspaces(ds, subs, 20)
		return nil
	}

	var sc ranking.Scorer
	switch *scorer {
	case "lof":
		sc = ranking.LOFScorer{MinPts: *minPts}
	case "knn":
		sc = ranking.KNNScorer{K: *minPts}
	default:
		return fmt.Errorf("unknown scorer %q (want lof or knn)", *scorer)
	}
	agg, err := ranking.ParseAggregation(*aggName)
	if err != nil {
		return err
	}
	kind, err := neighbors.ParseKind(*index)
	if err != nil {
		return err
	}

	if *saveModel != "" {
		// The fit/score split: run the search once, freeze the model,
		// report the (identical) training ranking, and persist for hicsd.
		opts := hics.Options{
			M: *m, Alpha: *alpha, CandidateCutoff: *cutoff, TopK: *topk,
			Test: *test, Seed: *seed, MinPts: *minPts,
			UseKNNScore: *scorer == "knn", Aggregation: *aggName,
			NeighborIndex: *index,
		}
		rows := make([][]float64, ds.N())
		for i := range rows {
			rows[i] = ds.Row(i, nil)
		}
		model, err := hics.Fit(rows, opts)
		if err != nil {
			return err
		}
		subs := make([]subspace.Scored, len(model.Subspaces()))
		for i, s := range model.Subspaces() {
			subs[i] = subspace.Scored{S: subspace.New(s.Dims...), Score: s.Contrast}
		}
		fmt.Printf("\ntop high-contrast subspaces (%s test):\n", tt)
		printSubspaces(ds, subs, 10)
		reportRanking(l, model.TrainingScores(), *outl, sc.Name(), agg)
		f, err := os.Create(*saveModel)
		if err != nil {
			return err
		}
		if err := model.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nmodel saved to %s (serve with: hicsd -model %s)\n", *saveModel, *saveModel)
		return nil
	}

	pipe := ranking.Pipeline{Searcher: searcher, Scorer: sc, Agg: agg, MaxSubspaces: -1, Index: kind}
	res, err := pipe.Rank(ds)
	if err != nil {
		return err
	}

	fmt.Printf("\ntop high-contrast subspaces (%s test):\n", tt)
	printSubspaces(ds, res.Subspaces, 10)
	reportRanking(l, res.Scores, *outl, sc.Name(), agg)
	return nil
}

// reportRanking prints the top outliers and, when labels are available,
// the AUC of the ranking.
func reportRanking(l *dataset.Labeled, scores []float64, outl int, scorerName string, agg ranking.Aggregation) {
	fmt.Printf("\ntop %d outliers (%s scores aggregated by %s):\n", outl, scorerName, agg)
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	k := outl
	if k > len(order) {
		k = len(order)
	}
	for rank, i := range order[:k] {
		marker := ""
		if l.Outlier != nil && l.Outlier[i] {
			marker = "  <- labeled outlier"
		}
		fmt.Printf("%3d. object %5d  score %.4f%s\n", rank+1, i, scores[i], marker)
	}

	if l.Outlier != nil {
		auc, err := eval.AUC(scores, l.Outlier)
		if err == nil {
			fmt.Printf("\nAUC vs provided labels: %.4f\n", auc)
		}
	}
}

// printSubspaces lists up to limit scored subspaces with attribute names.
func printSubspaces(ds *dataset.Dataset, subs []subspace.Scored, limit int) {
	if limit > len(subs) {
		limit = len(subs)
	}
	for i := 0; i < limit; i++ {
		names := make([]string, subs[i].S.Dim())
		for k, d := range subs[i].S {
			names[k] = ds.Name(d)
		}
		fmt.Printf("%3d. contrast %.4f  %v (%s)\n", i+1, subs[i].Score, []int(subs[i].S), strings.Join(names, ", "))
	}
}
