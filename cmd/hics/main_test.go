package main

import (
	"os"
	"path/filepath"
	"testing"

	"hics/internal/dataset"
	"hics/internal/synth"
)

// writeTestCSV generates a small labeled benchmark CSV and returns its path.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	b, err := synth.Generate(synth.Config{N: 120, D: 6, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, b.Data.Data, b.Data.Outlier); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTestCSV(t)
	if err := run([]string{"-M", "10", "-topk", "5", "-outliers", "3", path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunSubspacesOnly(t *testing.T) {
	path := writeTestCSV(t)
	if err := run([]string{"-M", "10", "-subspaces-only", path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunKNNAndMax(t *testing.T) {
	path := writeTestCSV(t)
	if err := run([]string{"-M", "10", "-scorer", "knn", "-agg", "max", path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunKSTest(t *testing.T) {
	path := writeTestCSV(t)
	if err := run([]string{"-M", "10", "-test", "ks", "-topk", "5", path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing input should fail")
	}
	if err := run([]string{"/nonexistent/file.csv"}); err == nil {
		t.Error("missing file should fail")
	}
	path := writeTestCSV(t)
	if err := run([]string{"-test", "bogus", path}); err == nil {
		t.Error("bad test name should fail")
	}
	if err := run([]string{"-scorer", "bogus", path}); err == nil {
		t.Error("bad scorer should fail")
	}
	if err := run([]string{"-agg", "bogus", path}); err == nil {
		t.Error("bad aggregation should fail")
	}
}
