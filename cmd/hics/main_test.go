package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"hics"
	"hics/internal/core"
	"hics/internal/dataset"
	"hics/internal/ranking"
	"hics/internal/registry"
	"hics/internal/synth"
)

// writeTestCSV generates a small labeled benchmark CSV and returns its path.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	b, err := synth.Generate(synth.Config{N: 120, D: 6, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, b.Data.Data, b.Data.Outlier); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTestCSV(t)
	if err := run(context.Background(), []string{"-M", "10", "-topk", "5", "-outliers", "3", "-workers", "2", path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunSubspacesOnly(t *testing.T) {
	path := writeTestCSV(t)
	if err := run(context.Background(), []string{"-M", "10", "-subspaces-only", path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunKNNAndMax(t *testing.T) {
	path := writeTestCSV(t)
	if err := run(context.Background(), []string{"-M", "10", "-scorer", "knn", "-agg", "max", path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunKSTest(t *testing.T) {
	path := writeTestCSV(t)
	if err := run(context.Background(), []string{"-M", "10", "-test", "ks", "-topk", "5", path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

// TestAdvertisedNamesParse guards the flag help against going stale: every
// value a usage string advertises must be accepted by the corresponding
// parser, and the advertised list must be exhaustive.
func TestAdvertisedNamesParse(t *testing.T) {
	names := advertisedNames(t, testFlagUsage)
	if len(names) != 4 {
		t.Fatalf("-test help advertises %d names %v, parser knows 4", len(names), names)
	}
	for _, name := range names {
		if _, err := core.ParseTest(name); err != nil {
			t.Errorf("-test help advertises %q, but it does not parse: %v", name, err)
		}
	}
	aggNames := advertisedNames(t, aggFlagUsage)
	if len(aggNames) != 3 {
		t.Fatalf("-agg help advertises %d names %v, parser knows 3", len(aggNames), aggNames)
	}
	for _, name := range aggNames {
		if _, err := ranking.ParseAggregation(name); err != nil {
			t.Errorf("-agg help advertises %q, but it does not parse: %v", name, err)
		}
	}
	searchNames := advertisedNames(t, searchFlagUsage)
	if !reflect.DeepEqual(searchNames, registry.SearcherNames()) {
		t.Errorf("-search help advertises %v, registry knows %v", searchNames, registry.SearcherNames())
	}
	scorerNames := advertisedNames(t, scorerFlagUsage)
	if !reflect.DeepEqual(scorerNames, registry.ScorerNames()) {
		t.Errorf("-scorer help advertises %v, registry knows %v", scorerNames, registry.ScorerNames())
	}
}

// Every registered method name must run from the CLI; a single small CSV
// keeps the full matrix cheap.
func TestRunEveryRegistryMethod(t *testing.T) {
	path := writeTestCSV(t)
	for _, search := range registry.SearcherNames() {
		if err := run(context.Background(), []string{"-M", "5", "-topk", "3", "-search", search, path}); err != nil {
			t.Errorf("-search %s failed: %v", search, err)
		}
	}
	for _, scorer := range registry.ScorerNames() {
		if err := run(context.Background(), []string{"-M", "5", "-topk", "3", "-scorer", scorer, path}); err != nil {
			t.Errorf("-scorer %s failed: %v", scorer, err)
		}
	}
}

func TestListMethods(t *testing.T) {
	var buf bytes.Buffer
	if err := printMethods(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range append(registry.SearcherNames(), registry.ScorerNames()...) {
		if !strings.Contains(out, name) {
			t.Errorf("-list-methods output missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "fit/save") {
		t.Errorf("-list-methods output does not mark fit-capable scorers:\n%s", out)
	}
	// The flag itself needs no input file.
	if err := run(context.Background(), []string{"-list-methods"}); err != nil {
		t.Fatalf("-list-methods failed: %v", err)
	}
}

// Option validation errors must reach the CLI user with the offending
// field named.
func TestRunSurfacesValidationErrors(t *testing.T) {
	path := writeTestCSV(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-alpha", "1.5", path}, "Alpha"},
		{[]string{"-M", "-2", path}, "M"},
		{[]string{"-minpts", "-1", path}, "MinPts"},
		{[]string{"-topk", "-5", path}, "TopK"},
		{[]string{"-workers", "-2", path}, "Workers"},
		{[]string{"-search", "bogus", path}, "valid"},
		{[]string{"-scorer", "bogus", path}, "valid"},
	}
	for _, tc := range cases {
		err := run(context.Background(), tc.args)
		if err == nil {
			t.Errorf("run(%v) accepted invalid flags", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}

// advertisedNames extracts the value names a "description: a, b or c"
// usage string advertises.
func advertisedNames(t *testing.T, usage string) []string {
	t.Helper()
	_, list, ok := strings.Cut(usage, ":")
	if !ok {
		t.Fatalf("usage string %q has no value list", usage)
	}
	var names []string
	for _, w := range regexp.MustCompile(`\w+`).FindAllString(list, -1) {
		if w != "or" && w != "and" {
			names = append(names, w)
		}
	}
	return names
}

func TestRunAllAdvertisedTests(t *testing.T) {
	path := writeTestCSV(t)
	for _, name := range []string{"welch", "ks", "mw", "cvm"} {
		if err := run(context.Background(), []string{"-M", "5", "-topk", "3", "-test", name, path}); err != nil {
			t.Errorf("-test %s failed: %v", name, err)
		}
	}
}

func TestRunProductAggregation(t *testing.T) {
	path := writeTestCSV(t)
	if err := run(context.Background(), []string{"-M", "10", "-agg", "product", path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunSaveModel(t *testing.T) {
	path := writeTestCSV(t)
	modelPath := filepath.Join(t.TempDir(), "model.hics")
	if err := run(context.Background(), []string{"-M", "10", "-topk", "5", "-save-model", modelPath, path}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	f, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := hics.LoadModel(f)
	if err != nil {
		t.Fatalf("saved model does not load: %v", err)
	}
	if m.D() != 6 {
		t.Errorf("model D = %d, want 6", m.D())
	}
	if _, err := m.Score(make([]float64, 6)); err != nil {
		t.Errorf("saved model cannot score: %v", err)
	}
	if err := run(context.Background(), []string{"-subspaces-only", "-save-model", modelPath, path}); err == nil {
		t.Error("-save-model with -subspaces-only should fail")
	}
}

// TestRunStreamEndToEnd drives the streaming mode through runStream and
// checks every input row comes back as one NDJSON record, in order, with
// refits occurring at the configured cadence.
func TestRunStreamEndToEnd(t *testing.T) {
	path := writeTestCSV(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	opts := hics.Options{M: 10, TopK: 3, Seed: 5, MinPts: 5}
	sopts := hics.StreamOptions{Window: 50, RefitEvery: 30}
	if err := runStream(context.Background(), f, &out, opts, sopts, dataset.CSVOptions{Header: true}); err != nil {
		t.Fatalf("runStream: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 120 {
		t.Fatalf("streamed %d lines for 120 rows", len(lines))
	}
	var last hics.StreamResult
	for i, line := range lines {
		var rec hics.StreamResult
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %q (%v)", i, line, err)
		}
		if rec.Index != i {
			t.Fatalf("line %d has index %d", i, rec.Index)
		}
		last = rec
	}
	if last.Refits == 0 {
		t.Errorf("stream never refitted: %+v", last)
	}
}

// TestRunStreamFlag runs the full CLI flag path (file argument variant).
func TestRunStreamFlag(t *testing.T) {
	path := writeTestCSV(t)
	if err := run(context.Background(), []string{"-stream", "-M", "10", "-topk", "3", "-minpts", "5", "-window", "40", path}); err != nil {
		t.Fatalf("run -stream failed: %v", err)
	}
}

// TestRunStreamValidation: stream flag misuse and option errors surface
// with the offending name.
func TestRunStreamValidation(t *testing.T) {
	path := writeTestCSV(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-stream", "-save-model", "m.hics", path}, "-stream"},
		{[]string{"-stream", "-subspaces-only", path}, "-stream"},
		{[]string{"-stream", "-window", "5", path}, "StreamOptions.Window"},
		{[]string{"-stream", "-refit-every", "-1", path}, "StreamOptions.RefitEvery"},
		{[]string{"-stream", "-stream-async", path}, "StreamOptions.Async"},
		{[]string{"-stream", path, "extra.csv"}, "at most one"},
	}
	for _, tc := range cases {
		err := run(context.Background(), tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) err = %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}

// TestRunStreamRejectsNonFinite: a NaN smuggled in through CSV (which
// parses it happily) is rejected by the stream boundary with the row and
// attribute named.
func TestRunStreamRejectsNonFinite(t *testing.T) {
	in := strings.NewReader("a,b\n0.1,0.2\nNaN,0.3\n")
	var out bytes.Buffer
	err := runStream(context.Background(), in, &out,
		hics.Options{M: 5, MinPts: 2}, hics.StreamOptions{Window: 3},
		dataset.CSVOptions{Header: true})
	if err == nil || !strings.Contains(err.Error(), "row 1") || !strings.Contains(err.Error(), "attribute 0") {
		t.Errorf("NaN row: err = %v, want row 1 attribute 0 named", err)
	}
}

// TestRunStreamShortFeed: a feed shorter than the window warms up
// forever, emits nothing, and exits cleanly with the stderr hint.
func TestRunStreamShortFeed(t *testing.T) {
	in := strings.NewReader("a,b\n0.1,0.2\n0.3,0.4\n")
	var out bytes.Buffer
	err := runStream(context.Background(), in, &out,
		hics.Options{M: 5, MinPts: 2}, hics.StreamOptions{Window: 10},
		dataset.CSVOptions{Header: true})
	if err != nil {
		t.Fatalf("short feed: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("short feed emitted %q, want nothing", out.String())
	}
}

// TestRunStreamCancelled: a cancelled context stops the stream with
// context.Canceled (the Ctrl-C path).
func TestRunStreamCancelled(t *testing.T) {
	path := writeTestCSV(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err = runStream(ctx, f, &out,
		hics.Options{M: 10, MinPts: 5}, hics.StreamOptions{Window: 40},
		dataset.CSVOptions{Header: true})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("cancelled stream: err = %v, want context.Canceled", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{}); err == nil {
		t.Error("missing input should fail")
	}
	if err := run(context.Background(), []string{"/nonexistent/file.csv"}); err == nil {
		t.Error("missing file should fail")
	}
	path := writeTestCSV(t)
	if err := run(context.Background(), []string{"-test", "bogus", path}); err == nil {
		t.Error("bad test name should fail")
	}
	if err := run(context.Background(), []string{"-scorer", "bogus", path}); err == nil {
		t.Error("bad scorer should fail")
	}
	if err := run(context.Background(), []string{"-agg", "bogus", path}); err == nil {
		t.Error("bad aggregation should fail")
	}
}
