// Command benchdiff compares two recorded benchmark runs and fails on
// regressions.
//
// Usage:
//
//	benchdiff [-threshold 15] [-match regex] [-min-time 50ms] BASELINE.json CURRENT.json
//
// Both inputs are `go test -json` streams (the repo's committed
// BENCH_<n>.json files). Benchmarks present in both files are compared by
// ns/op; a slowdown above -threshold percent is a regression and makes
// the exit status 1. Benchmarks only in the current file are reported as
// new, benchmarks only in the baseline as removed — neither fails the
// run, so adding or retiring benchmarks never blocks CI.
//
// -min-time excludes benchmarks whose baseline iteration is shorter than
// the given duration: the BENCH files are recorded with -benchtime 1x,
// where sub-millisecond timings carry too much single-iteration noise to
// gate on. When a file holds repeated results for one benchmark (a
// `-count N` recording), the fastest repeat is used — the minimum is the
// standard noise-robust statistic for wall-clock benchmarks, since
// interference from a shared machine only ever adds time.
//
// An input that parses to zero benchmark results (for example a file
// recorded while every benchmark was skipped) produces a loud warning
// instead of a silent "0 compared" pass — an empty comparison is a
// recording mistake, not a clean bill.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		threshold = fs.Float64("threshold", 15, "fail on slowdowns above this percentage")
		match     = fs.String("match", "", "compare only benchmarks matching this regexp")
		minTime   = fs.Duration("min-time", 0, "ignore benchmarks with a baseline ns/op below this duration")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: benchdiff [flags] BASELINE.json CURRENT.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2, fmt.Errorf("want exactly 2 input files, got %d", fs.NArg())
	}
	var matchRE *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			return 2, fmt.Errorf("bad -match: %v", err)
		}
		matchRE = re
	}

	base, baseSkips, err := parseFile(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	cur, curSkips, err := parseFile(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	// An input with zero results would silently compare nothing and exit
	// 0 — a recording mistake (benchmarks skipped, wrong -bench pattern)
	// masquerading as a clean bill. Say so out loud instead.
	warnEmpty(stdout, fs.Arg(0), "baseline", base, baseSkips)
	warnEmpty(stdout, fs.Arg(1), "current", cur, curSkips)

	rep := diff(base, cur, *threshold, float64(*minTime/time.Nanosecond), matchRE)
	for _, l := range rep.lines {
		fmt.Fprintln(stdout, l)
	}
	fmt.Fprintf(stdout, "%d compared, %d regressed, %d improved, %d new, %d removed, %d skipped\n",
		rep.compared, rep.regressed, rep.improved, rep.added, rep.removed, rep.skipped)
	if rep.regressed > 0 {
		return 1, nil
	}
	return 0, nil
}

// event is the subset of the `go test -json` record benchdiff reads.
type event struct {
	Action  string
	Package string
	Test    string
	Output  string
}

// resultRE matches a benchmark result line: name, iteration count,
// ns/op. The -GOMAXPROCS suffix is stripped separately so benchmark
// names containing dashes (sub-benchmarks) survive intact.
var resultRE = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// warnEmpty flags an input file that produced no benchmark results.
func warnEmpty(stdout io.Writer, path, role string, results map[string]float64, skips int) {
	if len(results) > 0 {
		return
	}
	detail := "no benchmark results"
	if skips > 0 {
		detail = fmt.Sprintf("only SKIPs (%d) and no benchmark results", skips)
	}
	fmt.Fprintf(stdout, "warning: %s %s contains %s — nothing will be compared; re-record it with -bench . -benchtime 1x -count 3\n", role, path, detail)
}

// parseFile extracts name → ns/op from a `go test -json` stream, along
// with the number of skipped tests/benchmarks seen. Names are qualified
// by package so equally-named benchmarks in different packages cannot
// collide. Repeated results for one name (-count recordings) collapse to
// the fastest repeat.
func parseFile(path string) (map[string]float64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	// test2json splits one benchmark result line across several output
	// events whenever the benchmark is slow enough for the writer to
	// flush in between: the name fragment ("BenchmarkFoo \t") is emitted
	// when the run starts and the "1  123 ns/op" tail only when it
	// finishes. Reassemble the raw text per (package, test) — events for
	// different tests can interleave in the stream, but fragments of one
	// line always share the Test field — then match whole lines.
	type key struct{ pkg, test string }
	buf := map[key]*strings.Builder{}
	skips := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, 0, fmt.Errorf("%s: not a go test -json stream: %v", path, err)
		}
		if ev.Action == "skip" && ev.Test != "" {
			skips++
		}
		if ev.Action != "output" {
			continue
		}
		k := key{ev.Package, ev.Test}
		b := buf[k]
		if b == nil {
			b = &strings.Builder{}
			buf[k] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("%s: %v", path, err)
	}
	out := map[string]float64{}
	for k, b := range buf {
		for _, line := range strings.Split(b.String(), "\n") {
			m := resultRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			name := trimProcSuffix(m[1])
			var ns float64
			if _, err := fmt.Sscanf(m[2], "%g", &ns); err != nil {
				continue
			}
			qual := k.pkg + "." + name
			if prev, ok := out[qual]; !ok || ns < prev {
				out[qual] = ns
			}
		}
	}
	return out, skips, nil
}

// trimProcSuffix drops the -GOMAXPROCS suffix go test appends to
// benchmark names, so runs recorded on machines with different core
// counts still compare.
func trimProcSuffix(name string) string {
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' {
			return name[:i]
		}
		break
	}
	return name
}

type report struct {
	lines                                                  []string
	compared, regressed, improved, added, removed, skipped int
}

func diff(base, cur map[string]float64, threshold, minNs float64, match *regexp.Regexp) report {
	var rep report
	names := make([]string, 0, len(base)+len(cur))
	for n := range base {
		names = append(names, n)
	}
	for n := range cur {
		if _, ok := base[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if match != nil && !match.MatchString(n) {
			continue
		}
		old, inBase := base[n]
		now, inCur := cur[n]
		switch {
		case !inCur:
			rep.removed++
			rep.lines = append(rep.lines, fmt.Sprintf("removed   %-60s %14.0f ns/op", n, old))
		case !inBase:
			rep.added++
			rep.lines = append(rep.lines, fmt.Sprintf("new       %-60s %14.0f ns/op", n, now))
		case old < minNs:
			rep.skipped++
			rep.lines = append(rep.lines, fmt.Sprintf("skipped   %-60s %14.0f -> %14.0f ns/op (below -min-time)", n, old, now))
		default:
			delta := (now - old) / old * 100
			rep.compared++
			status := "ok"
			switch {
			case delta > threshold:
				rep.regressed++
				status = "REGRESSED"
			case delta < -threshold:
				rep.improved++
				status = "improved"
			}
			rep.lines = append(rep.lines, fmt.Sprintf("%-9s %-60s %14.0f -> %14.0f ns/op  %+7.1f%%", status, n, old, now, delta))
		}
	}
	return rep
}
