package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench fabricates a minimal `go test -json` stream with the given
// benchmark results.
func writeBench(t *testing.T, name string, results map[string]float64) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"Action":"start","Package":"hics"}` + "\n")
	for bench, ns := range results {
		line := fmt.Sprintf("%s-8 \\t       1\\t%10.0f ns/op\\t  100 B/op\\t 2 allocs/op\\n", bench, ns)
		sb.WriteString(fmt.Sprintf(`{"Action":"output","Package":"hics","Output":"%s"}`+"\n", line))
	}
	sb.WriteString(`{"Action":"pass","Package":"hics"}` + "\n")
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseFile(t *testing.T) {
	path := writeBench(t, "a.json", map[string]float64{
		"BenchmarkFit/exact-flat":  44e9,
		"BenchmarkKNN/kind=kdtree": 5300,
	})
	got, _, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %v", len(got), got)
	}
	// The -8 GOMAXPROCS suffix must be stripped; dashes inside the
	// sub-benchmark name must survive.
	if ns := got["hics.BenchmarkFit/exact-flat"]; ns != 44e9 {
		t.Errorf("exact-flat = %v, want 44e9 (keys: %v)", ns, got)
	}
}

// TestParseFileSplitEvents covers the shape real recordings have for any
// benchmark slower than the test2json flush interval: the name fragment
// and the "1  123 ns/op" tail arrive as separate output events (the
// recorded BENCH files are full of these), possibly with other tests'
// events interleaved between them. Fragments of one line share the Test
// field, which is what parseFile reassembles on.
func TestParseFileSplitEvents(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"hics"}`,
		`{"Action":"output","Package":"hics","Test":"BenchmarkSlow/n=2000/d=5","Output":"BenchmarkSlow/n=2000/d=5      \t"}`,
		`{"Action":"output","Package":"hics","Test":"BenchmarkOther","Output":"=== RUN   BenchmarkOther\n"}`,
		`{"Action":"output","Package":"hics","Test":"BenchmarkSlow/n=2000/d=5","Output":"       1\t  33791926 ns/op\t  452240 B/op\t    2021 allocs/op\n"}`,
		`{"Action":"output","Package":"hics","Test":"BenchmarkOther","Output":"BenchmarkOther \t       1\t      7688 ns/op\n"}`,
		`{"Action":"pass","Package":"hics"}`,
	}, "\n") + "\n"
	path := filepath.Join(t.TempDir(), "split.json")
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ns := got["hics.BenchmarkSlow/n=2000/d=5"]; ns != 33791926 {
		t.Errorf("split-event benchmark = %v, want 33791926 (keys: %v)", ns, got)
	}
	if ns := got["hics.BenchmarkOther"]; ns != 7688 {
		t.Errorf("single-event benchmark = %v, want 7688 (keys: %v)", ns, got)
	}
}

// TestParseFileMinOfRepeats: a `-count N` recording emits one result
// line per repeat under the same name; parseFile must keep the fastest,
// not the last — shared-machine interference only ever adds time, so the
// minimum is the stable statistic to gate on.
func TestParseFileMinOfRepeats(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"hics"}`,
		`{"Action":"output","Package":"hics","Test":"BenchmarkRepeated","Output":"BenchmarkRepeated-8 \t       1\t 120000 ns/op\n"}`,
		`{"Action":"output","Package":"hics","Test":"BenchmarkRepeated","Output":"BenchmarkRepeated-8 \t       1\t  90000 ns/op\n"}`,
		`{"Action":"output","Package":"hics","Test":"BenchmarkRepeated","Output":"BenchmarkRepeated-8 \t       1\t 150000 ns/op\n"}`,
		`{"Action":"pass","Package":"hics"}`,
	}, "\n") + "\n"
	path := filepath.Join(t.TempDir(), "repeats.json")
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ns := got["hics.BenchmarkRepeated"]; ns != 90000 {
		t.Errorf("repeated benchmark = %v, want the 90000 minimum (keys: %v)", ns, got)
	}
}

func TestDiffRegression(t *testing.T) {
	base := writeBench(t, "base.json", map[string]float64{
		"BenchmarkA":    1000000,
		"BenchmarkB":    1000000,
		"BenchmarkGone": 500,
	})
	cur := writeBench(t, "cur.json", map[string]float64{
		"BenchmarkA":   1300000, // +30% — regression
		"BenchmarkB":   900000,  // -10% — fine
		"BenchmarkNew": 700,
	})
	var out strings.Builder
	code, err := run([]string{base, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (regression present)\n%s", code, out.String())
	}
	for _, want := range []string{"REGRESSED", "BenchmarkA", "new", "BenchmarkNew", "removed", "BenchmarkGone", "1 regressed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestDiffWithinThreshold(t *testing.T) {
	base := writeBench(t, "base.json", map[string]float64{"BenchmarkA": 1000000})
	cur := writeBench(t, "cur.json", map[string]float64{"BenchmarkA": 1100000}) // +10%
	var out strings.Builder
	code, err := run([]string{base, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (+10%% within default 15%%)\n%s", code, out.String())
	}
}

func TestDiffCustomThreshold(t *testing.T) {
	base := writeBench(t, "base.json", map[string]float64{"BenchmarkA": 1000000})
	cur := writeBench(t, "cur.json", map[string]float64{"BenchmarkA": 1100000}) // +10%
	var out strings.Builder
	code, err := run([]string{"-threshold", "5", base, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (+10%% above 5%%)\n%s", code, out.String())
	}
}

func TestDiffMinTime(t *testing.T) {
	// A 2× slowdown on a 100ns benchmark is single-iteration noise; with
	// -min-time 1ms it must be skipped, not failed.
	base := writeBench(t, "base.json", map[string]float64{"BenchmarkTiny": 100})
	cur := writeBench(t, "cur.json", map[string]float64{"BenchmarkTiny": 200})
	var out strings.Builder
	code, err := run([]string{"-min-time", "1ms", base, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (below -min-time)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Errorf("output missing skip note:\n%s", out.String())
	}
}

func TestDiffMatch(t *testing.T) {
	base := writeBench(t, "base.json", map[string]float64{
		"BenchmarkA": 1000000,
		"BenchmarkB": 1000000,
	})
	cur := writeBench(t, "cur.json", map[string]float64{
		"BenchmarkA": 5000000, // would regress, but filtered out
		"BenchmarkB": 1000000,
	})
	var out strings.Builder
	code, err := run([]string{"-match", "BenchmarkB$", base, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (regression filtered by -match)\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "BenchmarkA") {
		t.Errorf("filtered benchmark still reported:\n%s", out.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	if code, err := run([]string{"one-file-only.json"}, &strings.Builder{}); err == nil || code != 2 {
		t.Errorf("single arg: code=%d err=%v, want usage error", code, err)
	}
	notJSON := filepath.Join(t.TempDir(), "x.json")
	os.WriteFile(notJSON, []byte("not json\n"), 0o644)
	if _, err := run([]string{notJSON, notJSON}, &strings.Builder{}); err == nil {
		t.Error("non-JSON input should error")
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFit-8":             "BenchmarkFit",
		"BenchmarkFit/exact-flat-16": "BenchmarkFit/exact-flat",
		"BenchmarkFit/n=2000":        "BenchmarkFit/n=2000",
		"BenchmarkNeighborhood":      "BenchmarkNeighborhood",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWarnOnSkipOnlyBaseline: a baseline recorded while benchmarks were
// skipped must produce a loud warning, not a silent "0 compared" pass.
func TestWarnOnSkipOnlyBaseline(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	skipOnly := `{"Action":"skip","Package":"p","Test":"BenchmarkFoo"}
{"Action":"skip","Package":"p","Test":"BenchmarkBar"}
`
	if err := os.WriteFile(baseline, []byte(skipOnly), 0o644); err != nil {
		t.Fatal(err)
	}
	current := filepath.Join(dir, "cur.json")
	curStream := `{"Action":"output","Package":"p","Test":"BenchmarkFoo","Output":"BenchmarkFoo-4 1 100 ns/op\n"}
`
	if err := os.WriteFile(current, []byte(curStream), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run([]string{baseline, current}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (a warning, not a failure)", code)
	}
	if !strings.Contains(out.String(), "warning:") || !strings.Contains(out.String(), "only SKIPs (2)") {
		t.Errorf("output missing skip-only warning:\n%s", out.String())
	}
	// A healthy baseline must not warn.
	out.Reset()
	if _, err := run([]string{current, current}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "warning:") {
		t.Errorf("healthy inputs must not warn:\n%s", out.String())
	}
}
