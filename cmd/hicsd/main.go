// Command hicsd serves a trained HiCS model over HTTP.
//
// Usage:
//
//	hicsd -model model.hics [-addr :8080] [-request-timeout 1m] [-workers N]
//
// The model file is produced by hics.Model.Save — most conveniently via
// `hics -save-model model.hics data.csv`. The server loads it once at
// startup and answers concurrent scoring requests:
//
//	GET  /healthz  liveness and model shape
//	GET  /info     method pair (searcher, scorer), subspace count, format version
//	POST /score    {"point": [...]} or {"points": [[...], ...]}
//	POST /rank     {"rows": [[...], ...], "options": {...}} — a full
//	               deadlined HiCS ranking on the posted rows
//
// Scoring is out-of-sample against the frozen training state — the
// Monte Carlo subspace search never runs at serving time, so a /score
// round trip costs a handful of neighbor queries per selected subspace.
// /rank does run the full search, which is why every request carries a
// deadline: -request-timeout bounds the server-side compute, a client
// disconnect cancels the in-flight work, and -workers caps how many CPUs
// one request may occupy.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests for up to the shutdown grace period, and exits
// cleanly — deploy targets can roll the daemon without dropping accepted
// work.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hics"
	"hics/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hicsd:", err)
		os.Exit(1)
	}
}

// shutdownGrace bounds how long a SIGTERM waits for in-flight requests
// before the remaining connections are closed forcefully.
const shutdownGrace = 15 * time.Second

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hicsd", flag.ContinueOnError)
	var (
		modelPath  = fs.String("model", "", "path to a saved model file (required)")
		addr       = fs.String("addr", ":8080", "listen address")
		reqTimeout = fs.Duration("request-timeout", time.Minute, "server-side compute budget per /score and /rank request (0 = unlimited)")
		workers    = fs.Int("workers", 0, "max goroutines one request may fan out over (0 = one per CPU)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hicsd -model <model file> [-addr :8080] [-request-timeout 1m] [-workers N]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *modelPath == "" {
		fs.Usage()
		return fmt.Errorf("-model is required")
	}
	if *reqTimeout < 0 {
		return fmt.Errorf("-request-timeout must be non-negative, got %v", *reqTimeout)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d (0 selects one per CPU)", *workers)
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	m.SetWorkers(*workers)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("hicsd: model %s (%s+%s, format v%d, %d objects x %d attributes, %d subspaces), listening on %s\n",
		*modelPath, m.SearchMethod(), m.ScorerMethod(), m.FormatVersion(),
		m.N(), m.D(), len(m.Subspaces()), ln.Addr())

	// The write timeout must outlast the compute budget, or a request
	// that legitimately uses its whole budget is cut off mid-response.
	// An unlimited budget (0) therefore disables the write bound too —
	// the read, header and idle timeouts still fence off slow clients.
	writeTimeout := time.Duration(0)
	if *reqTimeout > 0 {
		writeTimeout = *reqTimeout + 10*time.Second
		if writeTimeout < time.Minute {
			writeTimeout = time.Minute
		}
	}
	srv := &http.Server{
		Handler: serve.New(serve.Config{
			Model:          m,
			RequestTimeout: *reqTimeout,
			RankWorkers:    *workers,
		}),
		// Slow or idle clients must not pin goroutines and descriptors
		// forever: bound the header read, the body read, the response
		// write, and keep-alive idling.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Println("hicsd: shutdown signal received, draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		<-errc // Serve has returned http.ErrServerClosed
		fmt.Println("hicsd: drained, exiting")
		return nil
	}
}

// loadModel reads and reassembles a saved model.
func loadModel(path string) (*hics.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := hics.LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return m, nil
}
