// Command hicsd serves a fleet of trained HiCS models over HTTP —
// standalone, or scaled out horizontally as a shard behind one or more
// routing fronts.
//
// Usage:
//
//	hicsd -model model.hics [-addr :8080] [-request-timeout 1m] [-workers N]
//	      [-stream-window N] [-stream-refit-every N] [-stream-async]
//	      [-stream-max-bytes N] [-max-streams N] [-debug-addr :6060]
//	      [-trace-sample P] [-trace-slow-ms N] [-trace-export FILE]
//	      [-log-format text|json] [-log-level debug|info|warn|error]
//	hicsd -models-dir DIR [-manifest FILE] [-admin-token TOKEN] [...]
//	hicsd -role shard -model model.hics [-drain-announce 3s] [...]
//	hicsd -role front -shards host:port,host:port [-session-key session]
//	      [-probe-interval 2s] [-addr :8080] [-debug-addr :6060] [...]
//	hicsd -version
//
// Roles:
//
//	standalone  (default) one process serves everything — byte-for-byte
//	            the pre-sharding protocol, nothing changes for existing
//	            clients.
//	shard       identical serving behavior, but SIGTERM drains gracefully
//	            for scale-out: /healthz flips to "draining" (503), new
//	            /stream sessions are refused with Retry-After, open
//	            sessions receive a terminal error record after the rows
//	            already scored, and the process waits -drain-announce so
//	            every front's next health probe observes the drain before
//	            the listener closes.
//	front       a stateless routing tier holding no models: it proxies
//	            /stream (full-duplex NDJSON pass-through), /score, /rank
//	            and /info to the shard owning each request's session key
//	            (rendezvous hashing over -shards — deterministic, so any
//	            number of fronts agree without coordination), probes
//	            shard /healthz every -probe-interval, circuit-breaks
//	            failing shards, and reroutes around draining ones. Its
//	            own /healthz aggregates the shard states.
//
// Model files are produced by hics.Model.Save — most conveniently via
// `hics -save-model model.hics data.csv`. With -model the server loads
// one model at startup and serves it under the name "default"; with
// -models-dir it restores the whole fleet recorded in the directory's
// manifest (written by earlier PUT /models/{name} calls) and persists
// runtime model loads there, so a restart restores the fleet. The two
// compose: -model seeds the default before the manifest restore runs.
//
//	GET  /healthz     liveness, readiness (503 while the manifest restore
//	                  is in flight, or while a shard drains) and
//	                  per-model load states
//	GET  /info        method pair (searcher, scorer), subspace count,
//	                  format version, server version; ?model= routes
//	POST /score       {"point": [...]} or {"points": [[...], ...]};
//	                  ?model= routes, default model otherwise
//	POST /rank        {"rows": [[...], ...], "options": {...}} — a full
//	                  deadlined HiCS ranking on the posted rows, admitted
//	                  against the routed model's quota
//	POST /stream      NDJSON streaming scoring: one JSON row per line in,
//	                  one {"index","score","refits"} record per line out,
//	                  flushed as each row is scored; ?window=, ?refit_every=
//	                  and ?async= override the -stream-* defaults; ?model=
//	                  routes; ?max_bytes= lowers (never raises) the
//	                  session byte cap set by -stream-max-bytes
//	GET  /models      the fleet: every model's state, shape and quota
//	GET  /models/{name}    one model's status
//	PUT  /models/{name}    load or hot-swap a model (body = saved model
//	                  file; ?max_concurrent=, ?max_streams=, ?workers=
//	                  set its admission quota, ?default=true routes
//	                  unnamed requests here); in-flight requests finish
//	                  on the old version, new ones see the new
//	DELETE /models/{name}  unload: new requests 404 immediately, in-flight
//	                  ones drain, then the persisted file is removed
//	GET  /metrics     Prometheus text exposition: per-endpoint request
//	                  counters and latency histograms, stream/refit
//	                  counters and durations, worker-pool saturation,
//	                  per-model metadata gauges, shard routing state on
//	                  fronts (see docs/metrics.md)
//	GET  /debug/vars  legacy expvar view over the same registry
//	GET  /debug/traces  recently completed distributed traces as JSON,
//	                  newest first; ?min_ms= filters by duration,
//	                  ?limit= bounds the count (see docs/operations.md)
//
// -debug-addr starts net/http/pprof on a separate listener — profiling
// never shares the serving port, so it can stay firewalled to operators
// while hicsload drives the public one.
//
// -admin-token locks the mutating management endpoints (PUT/DELETE)
// behind "Authorization: Bearer <token>"; without it they are open,
// which is only appropriate behind a trusted control plane.
//
// Logging is structured (log/slog) on stderr: one record per completed
// request carrying a generated request ID that also tags every event
// the request spawns, including background stream-refit fits.
// -log-format selects text or json, -log-level the minimum severity.
//
// Scoring is out-of-sample against the frozen training state — the
// Monte Carlo subspace search never runs at serving time, so a /score
// round trip costs a handful of neighbor queries per selected subspace.
// /rank does run the full search, which is why every request carries a
// deadline: -request-timeout bounds the server-side compute, a client
// disconnect cancels the in-flight work (including an open stream), and
// -workers caps how many CPUs one request may occupy.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests for up to the shutdown grace period, and exits
// cleanly — deploy targets can roll the daemon without dropping accepted
// work. The shard role adds the drain-announce handshake above so a
// front never routes a new session at a closing listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hics"
	"hics/internal/fleet"
	"hics/internal/serve"
	"hics/internal/shard"
	"hics/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hicsd:", err)
		os.Exit(1)
	}
}

// shutdownGrace bounds how long a SIGTERM waits for in-flight requests
// before the remaining connections are closed forcefully.
const shutdownGrace = 15 * time.Second

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hicsd", flag.ContinueOnError)
	var (
		role        = fs.String("role", "standalone", "process role: standalone, shard or front")
		shards      = fs.String("shards", "", "comma-separated shard addresses (host:port,...) the front routes over; required with -role front")
		sessionKey  = fs.String("session-key", "session", "query parameter carrying the routing key on a front (falls back to ?model, then the client IP)")
		probeEvery  = fs.Duration("probe-interval", 2*time.Second, "front health-probe cadence against each shard")
		drainWindow = fs.Duration("drain-announce", shard.DrainAnnounceWindow, "how long a draining shard advertises \"draining\" before closing its listener (shard role)")
		debugAddr   = fs.String("debug-addr", "", "listen address for net/http/pprof on a separate listener (empty = no profiling endpoint)")
		modelPath   = fs.String("model", "", "path to a saved model file, served as the default model")
		modelsDir   = fs.String("models-dir", "", "model fleet directory: restore the manifest at startup, persist runtime model loads")
		manifest    = fs.String("manifest", "", "manifest path override (default <models-dir>/manifest.json)")
		adminToken  = fs.String("admin-token", "", "bearer token required by PUT/DELETE /models/{name} (empty = open)")
		addr        = fs.String("addr", ":8080", "listen address")
		reqTimeout  = fs.Duration("request-timeout", time.Minute, "server-side compute budget per /score, /rank and /stream request (0 = unlimited)")
		workers     = fs.Int("workers", 0, "max goroutines one request may fan out over (0 = one per CPU)")
		streamWin   = fs.Int("stream-window", 0, "default /stream sliding-window size (0 = the model's training-set size)")
		streamRefit = fs.Int("stream-refit-every", 0, "default /stream refit cadence in arrivals (0 = never refit)")
		streamAsync = fs.Bool("stream-async", false, "refit /stream models in the background instead of inline")
		streamMaxB  = fs.Int64("stream-max-bytes", 0, "cumulative input byte cap per /stream session (0 = 64 MiB); clients may lower it with ?max_bytes=")
		maxStreams  = fs.Int("max-streams", 0, "admission cap on concurrently open /stream sessions for the -model default model (0 = unlimited); excess sessions get 429 + Retry-After")
		logFormat   = fs.String("log-format", "text", "structured log encoding on stderr: text or json")
		logLevel    = fs.String("log-level", "info", "minimum log severity: debug, info, warn or error")
		traceSample = fs.Float64("trace-sample", 1, "head-sampling probability for distributed traces in [0,1]; 0 keeps only errored and slow traces; sampled traces are served at GET /debug/traces")
		traceSlowMS = fs.Int("trace-slow-ms", 500, "always keep a trace whose root span runs at least this many milliseconds, regardless of sampling (0 = no slow keep)")
		traceExport = fs.String("trace-export", "", "append every kept span to this file as NDJSON, one JSON object per line (empty = no export)")
		version     = fs.Bool("version", false, "print the version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hicsd [-role standalone|shard|front] -model <model file> | -models-dir <dir> | -shards host:port,... [-manifest FILE] [-admin-token TOKEN] [-addr :8080] [-debug-addr :6060] [-request-timeout 1m] [-workers N] [-stream-window N] [-stream-refit-every N] [-stream-async] [-stream-max-bytes N] [-max-streams N] [-session-key session] [-probe-interval 2s] [-drain-announce 3s] [-log-format text|json] [-log-level debug|info|warn|error]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("hicsd", hics.Version)
		return nil
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	closeTrace, err := configureTracing(*traceSample, *traceSlowMS, *traceExport)
	if err != nil {
		return err
	}
	defer closeTrace()
	if *debugAddr != "" {
		stopDebug, err := serveDebug(*debugAddr, logger)
		if err != nil {
			return err
		}
		defer stopDebug()
	}
	switch *role {
	case "front":
		if *modelPath != "" || *modelsDir != "" {
			return fmt.Errorf("-role front holds no models: drop -model/-models-dir (shards own them)")
		}
		if *shards == "" {
			return fmt.Errorf("-role front requires -shards host:port,...")
		}
		return runFront(ctx, frontOptions{
			addr:       *addr,
			shards:     splitShards(*shards),
			sessionKey: *sessionKey,
			probeEvery: *probeEvery,
			logger:     logger,
		})
	case "standalone", "shard":
		if *shards != "" {
			return fmt.Errorf("-shards is only meaningful with -role front")
		}
		return runServe(ctx, serveOptions{
			drain:       *role == "shard",
			drainWindow: *drainWindow,
			modelPath:   *modelPath,
			modelsDir:   *modelsDir,
			manifest:    *manifest,
			adminToken:  *adminToken,
			addr:        *addr,
			reqTimeout:  *reqTimeout,
			workers:     *workers,
			streamWin:   *streamWin,
			streamRefit: *streamRefit,
			streamAsync: *streamAsync,
			streamMaxB:  *streamMaxB,
			maxStreams:  *maxStreams,
			logger:      logger,
			usage:       fs.Usage,
		})
	default:
		return fmt.Errorf("-role must be standalone, shard or front, got %q", *role)
	}
}

// configureTracing applies the -trace-* flags to the process tracer.
// The flag surface maps onto trace.Config's sentinels: -trace-sample 0
// means "never head-sample" (Config needs a negative for that; its own
// zero means the sample-everything default), and -trace-slow-ms 0
// disables the slow keep the same way. The returned closer flushes and
// closes the export file, if any.
func configureTracing(sample float64, slowMS int, export string) (func(), error) {
	if sample < 0 || sample > 1 {
		return nil, fmt.Errorf("-trace-sample must be in [0,1], got %v", sample)
	}
	if slowMS < 0 {
		return nil, fmt.Errorf("-trace-slow-ms must be non-negative, got %d (0 disables the slow keep)", slowMS)
	}
	cfg := trace.Config{Sample: sample, SlowThreshold: time.Duration(slowMS) * time.Millisecond}
	if sample == 0 {
		cfg.Sample = -1
	}
	if slowMS == 0 {
		cfg.SlowThreshold = -1
	}
	closer := func() {}
	if export != "" {
		f, err := os.OpenFile(export, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("-trace-export: %w", err)
		}
		cfg.Export = f
		closer = func() { _ = f.Close() }
	}
	trace.Default.Configure(cfg)
	return closer, nil
}

// splitShards parses the -shards list, dropping empty segments.
func splitShards(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// serveDebug starts the pprof endpoint on its own listener and returns
// a closer. A dedicated mux keeps the profiling surface off the serving
// port entirely.
func serveDebug(addr string, logger *slog.Logger) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-debug-addr: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	logger.Info("pprof debug listener up", "addr", ln.Addr().String())
	return func() { _ = srv.Close() }, nil
}

// frontOptions carries the validated front-role configuration.
type frontOptions struct {
	addr       string
	shards     []string
	sessionKey string
	probeEvery time.Duration
	logger     *slog.Logger
}

// runFront serves the stateless routing tier until ctx is cancelled.
func runFront(ctx context.Context, opt frontOptions) error {
	router, err := shard.NewRouter(shard.RouterConfig{
		Shards:        opt.shards,
		ProbeInterval: opt.probeEvery,
		Logger:        opt.logger,
	})
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()
	front := shard.NewFront(shard.FrontConfig{
		Router:          router,
		SessionKeyParam: opt.sessionKey,
		Logger:          opt.logger,
	})
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	opt.logger.Info("hicsd front listening",
		"version", hics.Version, "addr", ln.Addr().String(),
		"shards", strings.Join(opt.shards, ","), "probe_interval", opt.probeEvery)
	// No read/write timeouts: proxied /stream sessions are long-lived by
	// design, and the shards enforce their own compute budgets. The
	// header and idle bounds still fence off stuck clients.
	srv := &http.Server{
		Handler:           front,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		opt.logger.Info("shutdown signal received, draining proxied sessions", "grace", shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		<-errc
		opt.logger.Info("drained, exiting")
		return nil
	}
}

// serveOptions carries the validated standalone/shard-role configuration.
type serveOptions struct {
	drain       bool // shard role: announce the drain before shutdown
	drainWindow time.Duration
	modelPath   string
	modelsDir   string
	manifest    string
	adminToken  string
	addr        string
	reqTimeout  time.Duration
	workers     int
	streamWin   int
	streamRefit int
	streamAsync bool
	streamMaxB  int64
	maxStreams  int
	logger      *slog.Logger
	usage       func()
}

// runServe serves models (standalone or shard role) until ctx is
// cancelled.
func runServe(ctx context.Context, opt serveOptions) error {
	if opt.modelPath == "" && opt.modelsDir == "" {
		opt.usage()
		return fmt.Errorf("at least one of -model and -models-dir is required")
	}
	if opt.manifest != "" && opt.modelsDir == "" {
		return fmt.Errorf("-manifest requires -models-dir")
	}
	if opt.reqTimeout < 0 {
		return fmt.Errorf("-request-timeout must be non-negative, got %v", opt.reqTimeout)
	}
	if opt.workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d (0 selects one per CPU)", opt.workers)
	}
	if opt.streamWin < 0 {
		return fmt.Errorf("-stream-window must be non-negative, got %d (0 selects the model's training-set size)", opt.streamWin)
	}
	if opt.streamRefit < 0 {
		return fmt.Errorf("-stream-refit-every must be non-negative, got %d (0 never refits)", opt.streamRefit)
	}
	if opt.streamAsync && opt.streamRefit == 0 {
		return fmt.Errorf("-stream-async requires -stream-refit-every > 0")
	}
	if opt.streamMaxB < 0 {
		return fmt.Errorf("-stream-max-bytes must be non-negative, got %d (0 selects the 64 MiB default)", opt.streamMaxB)
	}
	if opt.maxStreams < 0 {
		return fmt.Errorf("-max-streams must be non-negative, got %d (0 is unlimited)", opt.maxStreams)
	}
	if opt.maxStreams > 0 && opt.modelPath == "" {
		return fmt.Errorf("-max-streams applies to the -model default model; set quotas per model via PUT /models/{name}?max_streams= for a fleet")
	}
	// The fleet behind every endpoint: persisted when -models-dir is set,
	// in-memory otherwise. An explicit -model loads synchronously before
	// anything else — it must be servable by the first request — and wins
	// over a same-named manifest entry.
	fl := fleet.New(fleet.Config{
		Dir:            opt.modelsDir,
		Manifest:       opt.manifest,
		DefaultWorkers: opt.workers,
		Logger:         opt.logger,
	})
	if opt.modelPath != "" {
		m, err := loadModel(opt.modelPath)
		if err != nil {
			return err
		}
		if err := fl.Put(fleet.DefaultName, m, fleet.Quota{MaxStreams: opt.maxStreams}, true); err != nil {
			return err
		}
	}
	if opt.modelsDir != "" {
		// The manifest restore runs behind the listener so a large fleet
		// does not delay the bind; /healthz reports 503 "starting" until
		// it completes. Errors degrade single models, not the server —
		// only a broken manifest is fatal to the restore itself.
		go func() {
			if err := fl.Restore(ctx); err != nil {
				opt.logger.Error("fleet restore failed", "error", err)
				return
			}
			opt.logger.Info("fleet restored", "models", fl.Len(), "default", fl.DefaultModel())
		}()
	} else {
		if err := fl.Restore(ctx); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	role := "standalone"
	if opt.drain {
		role = "shard"
	}
	opt.logger.Info("hicsd listening",
		"version", hics.Version, "role", role, "addr", ln.Addr().String(),
		"model", opt.modelPath, "models_dir", opt.modelsDir,
		"admin_auth", opt.adminToken != "")

	// The write and read timeouts must outlast the compute budget, or a
	// request that legitimately uses its whole budget is cut off
	// mid-response — and a /stream session, whose request body is the
	// live NDJSON feed, would be cut off mid-read. An unlimited budget
	// (0) therefore disables both bounds — the header and idle timeouts
	// still fence off slow clients.
	writeTimeout := time.Duration(0)
	if opt.reqTimeout > 0 {
		writeTimeout = opt.reqTimeout + 10*time.Second
		if writeTimeout < time.Minute {
			writeTimeout = time.Minute
		}
	}
	readTimeout := writeTimeout
	handler := serve.NewServer(serve.Config{
		Fleet:            fl,
		AdminToken:       opt.adminToken,
		RequestTimeout:   opt.reqTimeout,
		RankWorkers:      opt.workers,
		StreamWindow:     opt.streamWin,
		StreamRefitEvery: opt.streamRefit,
		StreamAsync:      opt.streamAsync,
		StreamMaxBytes:   opt.streamMaxB,
		Logger:           opt.logger,
	})
	srv := &http.Server{
		Handler: handler,
		// Slow or idle clients must not pin goroutines and descriptors
		// forever: bound the header read, the body read, the response
		// write, and keep-alive idling. The body/response bounds follow
		// the request budget so streams live exactly as long as -request-
		// timeout allows.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		if opt.drain {
			// Shard drain handshake: advertise "draining" on /healthz (so
			// every front's next probe reroutes new sessions), end open
			// streams with their terminal error record, and hold the
			// listener open through the announce window before the real
			// shutdown — a front never routes at a closing listener.
			opt.logger.Info("drain signal received: refusing new sessions, ending open streams", "announce", opt.drainWindow)
			handler.Drain()
			select {
			case <-time.After(opt.drainWindow):
			case err := <-errc:
				return err
			}
		}
		opt.logger.Info("shutdown signal received, draining in-flight requests", "grace", shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		<-errc // Serve has returned http.ErrServerClosed
		opt.logger.Info("drained, exiting")
		return nil
	}
}

// newLogger builds the process logger from the -log-format and
// -log-level flags; unknown values are rejected naming the flag.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn or error, got %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
	}
}

// loadModel reads and reassembles a saved model.
func loadModel(path string) (*hics.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := hics.LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return m, nil
}
