// Command hicsd serves a fleet of trained HiCS models over HTTP.
//
// Usage:
//
//	hicsd -model model.hics [-addr :8080] [-request-timeout 1m] [-workers N]
//	      [-stream-window N] [-stream-refit-every N] [-stream-async]
//	      [-log-format text|json] [-log-level debug|info|warn|error]
//	hicsd -models-dir DIR [-manifest FILE] [-admin-token TOKEN] [...]
//	hicsd -version
//
// Model files are produced by hics.Model.Save — most conveniently via
// `hics -save-model model.hics data.csv`. With -model the server loads
// one model at startup and serves it under the name "default"; with
// -models-dir it restores the whole fleet recorded in the directory's
// manifest (written by earlier PUT /models/{name} calls) and persists
// runtime model loads there, so a restart restores the fleet. The two
// compose: -model seeds the default before the manifest restore runs.
//
//	GET  /healthz     liveness, readiness (503 while the manifest restore
//	                  is in flight) and per-model load states
//	GET  /info        method pair (searcher, scorer), subspace count,
//	                  format version, server version; ?model= routes
//	POST /score       {"point": [...]} or {"points": [[...], ...]};
//	                  ?model= routes, default model otherwise
//	POST /rank        {"rows": [[...], ...], "options": {...}} — a full
//	                  deadlined HiCS ranking on the posted rows, admitted
//	                  against the routed model's quota
//	POST /stream      NDJSON streaming scoring: one JSON row per line in,
//	                  one {"index","score","refits"} record per line out,
//	                  flushed as each row is scored; ?window=, ?refit_every=
//	                  and ?async= override the -stream-* defaults; ?model=
//	                  routes
//	GET  /models      the fleet: every model's state, shape and quota
//	GET  /models/{name}    one model's status
//	PUT  /models/{name}    load or hot-swap a model (body = saved model
//	                  file; ?max_concurrent=, ?max_streams=, ?workers=
//	                  set its admission quota, ?default=true routes
//	                  unnamed requests here); in-flight requests finish
//	                  on the old version, new ones see the new
//	DELETE /models/{name}  unload: new requests 404 immediately, in-flight
//	                  ones drain, then the persisted file is removed
//	GET  /metrics     Prometheus text exposition: per-endpoint request
//	                  counters and latency histograms, stream/refit
//	                  counters and durations, worker-pool saturation,
//	                  per-model metadata gauges (see docs/metrics.md)
//	GET  /debug/vars  legacy expvar view over the same registry
//
// -admin-token locks the mutating management endpoints (PUT/DELETE)
// behind "Authorization: Bearer <token>"; without it they are open,
// which is only appropriate behind a trusted control plane.
//
// Logging is structured (log/slog) on stderr: one record per completed
// request carrying a generated request ID that also tags every event
// the request spawns, including background stream-refit fits.
// -log-format selects text or json, -log-level the minimum severity.
//
// Scoring is out-of-sample against the frozen training state — the
// Monte Carlo subspace search never runs at serving time, so a /score
// round trip costs a handful of neighbor queries per selected subspace.
// /rank does run the full search, which is why every request carries a
// deadline: -request-timeout bounds the server-side compute, a client
// disconnect cancels the in-flight work (including an open stream), and
// -workers caps how many CPUs one request may occupy.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests for up to the shutdown grace period, and exits
// cleanly — deploy targets can roll the daemon without dropping accepted
// work.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hics"
	"hics/internal/fleet"
	"hics/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hicsd:", err)
		os.Exit(1)
	}
}

// shutdownGrace bounds how long a SIGTERM waits for in-flight requests
// before the remaining connections are closed forcefully.
const shutdownGrace = 15 * time.Second

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hicsd", flag.ContinueOnError)
	var (
		modelPath   = fs.String("model", "", "path to a saved model file, served as the default model")
		modelsDir   = fs.String("models-dir", "", "model fleet directory: restore the manifest at startup, persist runtime model loads")
		manifest    = fs.String("manifest", "", "manifest path override (default <models-dir>/manifest.json)")
		adminToken  = fs.String("admin-token", "", "bearer token required by PUT/DELETE /models/{name} (empty = open)")
		addr        = fs.String("addr", ":8080", "listen address")
		reqTimeout  = fs.Duration("request-timeout", time.Minute, "server-side compute budget per /score, /rank and /stream request (0 = unlimited)")
		workers     = fs.Int("workers", 0, "max goroutines one request may fan out over (0 = one per CPU)")
		streamWin   = fs.Int("stream-window", 0, "default /stream sliding-window size (0 = the model's training-set size)")
		streamRefit = fs.Int("stream-refit-every", 0, "default /stream refit cadence in arrivals (0 = never refit)")
		streamAsync = fs.Bool("stream-async", false, "refit /stream models in the background instead of inline")
		logFormat   = fs.String("log-format", "text", "structured log encoding on stderr: text or json")
		logLevel    = fs.String("log-level", "info", "minimum log severity: debug, info, warn or error")
		version     = fs.Bool("version", false, "print the version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hicsd -model <model file> | -models-dir <dir> [-manifest FILE] [-admin-token TOKEN] [-addr :8080] [-request-timeout 1m] [-workers N] [-stream-window N] [-stream-refit-every N] [-stream-async] [-log-format text|json] [-log-level debug|info|warn|error]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("hicsd", hics.Version)
		return nil
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *modelPath == "" && *modelsDir == "" {
		fs.Usage()
		return fmt.Errorf("at least one of -model and -models-dir is required")
	}
	if *manifest != "" && *modelsDir == "" {
		return fmt.Errorf("-manifest requires -models-dir")
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *reqTimeout < 0 {
		return fmt.Errorf("-request-timeout must be non-negative, got %v", *reqTimeout)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d (0 selects one per CPU)", *workers)
	}
	if *streamWin < 0 {
		return fmt.Errorf("-stream-window must be non-negative, got %d (0 selects the model's training-set size)", *streamWin)
	}
	if *streamRefit < 0 {
		return fmt.Errorf("-stream-refit-every must be non-negative, got %d (0 never refits)", *streamRefit)
	}
	if *streamAsync && *streamRefit == 0 {
		return fmt.Errorf("-stream-async requires -stream-refit-every > 0")
	}
	// The fleet behind every endpoint: persisted when -models-dir is set,
	// in-memory otherwise. An explicit -model loads synchronously before
	// anything else — it must be servable by the first request — and wins
	// over a same-named manifest entry.
	fl := fleet.New(fleet.Config{
		Dir:            *modelsDir,
		Manifest:       *manifest,
		DefaultWorkers: *workers,
		Logger:         logger,
	})
	if *modelPath != "" {
		m, err := loadModel(*modelPath)
		if err != nil {
			return err
		}
		if err := fl.Put(fleet.DefaultName, m, fleet.Quota{}, true); err != nil {
			return err
		}
	}
	if *modelsDir != "" {
		// The manifest restore runs behind the listener so a large fleet
		// does not delay the bind; /healthz reports 503 "starting" until
		// it completes. Errors degrade single models, not the server —
		// only a broken manifest is fatal to the restore itself.
		go func() {
			if err := fl.Restore(ctx); err != nil {
				logger.Error("fleet restore failed", "error", err)
				return
			}
			logger.Info("fleet restored", "models", fl.Len(), "default", fl.DefaultModel())
		}()
	} else {
		if err := fl.Restore(ctx); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("hicsd listening",
		"version", hics.Version, "addr", ln.Addr().String(),
		"model", *modelPath, "models_dir", *modelsDir,
		"admin_auth", *adminToken != "")

	// The write and read timeouts must outlast the compute budget, or a
	// request that legitimately uses its whole budget is cut off
	// mid-response — and a /stream session, whose request body is the
	// live NDJSON feed, would be cut off mid-read. An unlimited budget
	// (0) therefore disables both bounds — the header and idle timeouts
	// still fence off slow clients.
	writeTimeout := time.Duration(0)
	if *reqTimeout > 0 {
		writeTimeout = *reqTimeout + 10*time.Second
		if writeTimeout < time.Minute {
			writeTimeout = time.Minute
		}
	}
	readTimeout := writeTimeout
	srv := &http.Server{
		Handler: serve.New(serve.Config{
			Fleet:            fl,
			AdminToken:       *adminToken,
			RequestTimeout:   *reqTimeout,
			RankWorkers:      *workers,
			StreamWindow:     *streamWin,
			StreamRefitEvery: *streamRefit,
			StreamAsync:      *streamAsync,
			Logger:           logger,
		}),
		// Slow or idle clients must not pin goroutines and descriptors
		// forever: bound the header read, the body read, the response
		// write, and keep-alive idling. The body/response bounds follow
		// the request budget so streams live exactly as long as -request-
		// timeout allows.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Info("shutdown signal received, draining in-flight requests", "grace", shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		<-errc // Serve has returned http.ErrServerClosed
		logger.Info("drained, exiting")
		return nil
	}
}

// newLogger builds the process logger from the -log-format and
// -log-level flags; unknown values are rejected naming the flag.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn or error, got %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
	}
}

// loadModel reads and reassembles a saved model.
func loadModel(path string) (*hics.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := hics.LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return m, nil
}
