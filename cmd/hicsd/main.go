// Command hicsd serves a trained HiCS model over HTTP.
//
// Usage:
//
//	hicsd -model model.hics [-addr :8080]
//
// The model file is produced by hics.Model.Save — most conveniently via
// `hics -save-model model.hics data.csv`. The server loads it once at
// startup and answers concurrent scoring requests:
//
//	GET  /healthz  liveness and model shape
//	GET  /info     method pair (searcher, scorer), subspace count, format version
//	POST /score    {"point": [...]} or {"points": [[...], ...]}
//
// Scoring is out-of-sample against the frozen training state — the
// Monte Carlo subspace search never runs at serving time, so a /score
// round trip costs a handful of neighbor queries per selected subspace.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"hics"
	"hics/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hicsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hicsd", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "", "path to a saved model file (required)")
		addr      = fs.String("addr", ":8080", "listen address")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hicsd -model <model file> [-addr :8080]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *modelPath == "" {
		fs.Usage()
		return fmt.Errorf("-model is required")
	}
	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("hicsd: model %s (%s+%s, format v%d, %d objects x %d attributes, %d subspaces), listening on %s\n",
		*modelPath, m.SearchMethod(), m.ScorerMethod(), m.FormatVersion(),
		m.N(), m.D(), len(m.Subspaces()), ln.Addr())
	srv := &http.Server{
		Handler: serve.NewHandler(m),
		// Slow or idle clients must not pin goroutines and descriptors
		// forever; scoring requests are small and fast, so tight limits
		// are safe.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.Serve(ln)
}

// loadModel reads and reassembles a saved model.
func loadModel(path string) (*hics.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := hics.LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return m, nil
}
