package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hics"
	"hics/internal/rng"
)

// writeModel fits a small model and saves it to a temp file.
func writeModel(t *testing.T) string {
	t.Helper()
	return writeModelSeed(t, 1)
}

// writeModelSeed is writeModel with a chosen seed, so two saved models
// score differently.
func writeModelSeed(t *testing.T, seed uint64) string {
	t.Helper()
	r := rng.New(seed)
	rows := make([][]float64, 150)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	m, err := hics.Fit(rows, hics.Options{M: 10, Seed: seed, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.hics")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadModel(t *testing.T) {
	path := writeModel(t)
	m, err := loadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.D() != 3 || m.N() != 150 {
		t.Errorf("loaded model D=%d N=%d", m.D(), m.N())
	}
	if _, err := loadModel(filepath.Join(t.TempDir(), "missing.hics")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.hics")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModel(bad); err == nil {
		t.Error("junk file should fail")
	}
}

func TestRunArgumentErrors(t *testing.T) {
	if err := run(context.Background(), []string{}); err == nil {
		t.Error("missing -model should fail")
	}
	if err := run(context.Background(), []string{"-model", writeModel(t), "extra"}); err == nil {
		t.Error("positional arguments should fail")
	}
	if err := run(context.Background(), []string{"-model", "/nonexistent/model.hics"}); err == nil {
		t.Error("missing model file should fail")
	}
	// A bad listen address fails after the model loads, before serving.
	if err := run(context.Background(), []string{"-model", writeModel(t), "-addr", "256.0.0.1:http"}); err == nil {
		t.Error("bad address should fail")
	}
}

// TestGracefulShutdown starts the server, waits until /healthz answers,
// then cancels the run context (the signal path) and checks the server
// drains and exits cleanly.
func TestGracefulShutdown(t *testing.T) {
	// Reserve a loopback port for the server. Closing the listener before
	// reusing the address is mildly racy, but loopback ports are not
	// rebound in the microseconds this takes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// The model is written on the test goroutine: writeModel uses t.Fatal
	// and t.TempDir, which must not run on the server goroutine.
	model := writeModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-model", model, "-addr", addr, "-request-timeout", "5s"})
	}()

	url := "http://" + addr + "/healthz"
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before becoming healthy: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after cancellation")
	}

	// The listener is released: a new server can bind the address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("address still bound after shutdown: %v", err)
	}
	ln2.Close()
}

// startServer runs hicsd in a goroutine on a reserved loopback port and
// waits until /healthz answers with the wanted status.
func startServer(t *testing.T, args []string, healthyStatus int) (addr string, cancel context.CancelFunc, done chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr = ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", addr, "-request-timeout", "5s"}, args...))
	}()
	url := "http://" + addr + "/healthz"
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == healthyStatus {
				return addr, cancel, done
			}
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before becoming healthy: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// stopServer signals shutdown and waits for a clean exit.
func stopServer(t *testing.T, cancel context.CancelFunc, done chan error) {
	t.Helper()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after cancellation")
	}
}

// scoreOne posts one probe point by model name and returns status + score.
func scoreOne(t *testing.T, addr, model string) (int, float64) {
	t.Helper()
	url := "http://" + addr + "/score"
	if model != "" {
		url += "?model=" + model
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(`{"point": [0.3, 0.7, 0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr struct {
		Score float64 `json:"score"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr.Score
}

// TestRestartRestoresFleet is the acceptance path for the persisted
// fleet: start hicsd on an empty models dir, PUT two models, delete one,
// SIGTERM, restart on the same dir — the surviving model serves again
// with identical scores and the deleted one stays gone.
func TestRestartRestoresFleet(t *testing.T) {
	dir := t.TempDir()
	addr, cancel, done := startServer(t, []string{"-models-dir", dir}, http.StatusOK)

	put := func(name, modelFile string) {
		t.Helper()
		raw, err := os.ReadFile(modelFile)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, "http://"+addr+"/models/"+name, strings.NewReader(string(raw)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %s status %d", name, resp.StatusCode)
		}
	}
	put("alpha", writeModel(t))
	put("beta", writeModelSeed(t, 2))

	status, wantAlpha := scoreOne(t, addr, "alpha")
	if status != http.StatusOK {
		t.Fatalf("alpha score status %d", status)
	}
	if status, _ := scoreOne(t, addr, "beta"); status != http.StatusOK {
		t.Fatalf("beta score status %d", status)
	}
	req, err := http.NewRequest(http.MethodDelete, "http://"+addr+"/models/beta", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE beta status %d", resp.StatusCode)
	}
	stopServer(t, cancel, done)

	// Restart over the same directory: alpha serves bit-identical scores,
	// beta stays deleted.
	addr2, cancel2, done2 := startServer(t, []string{"-models-dir", dir}, http.StatusOK)
	defer stopServer(t, cancel2, done2)
	status, got := scoreOne(t, addr2, "alpha")
	if status != http.StatusOK || got != wantAlpha {
		t.Errorf("restored alpha = %d score %v, want 200 score %v", status, got, wantAlpha)
	}
	if status, _ := scoreOne(t, addr2, ""); status != http.StatusOK {
		t.Errorf("restored default score status %d, want 200 (alpha became default)", status)
	}
	if status, _ := scoreOne(t, addr2, "beta"); status != http.StatusNotFound {
		t.Errorf("deleted beta score status %d after restart, want 404", status)
	}
}

// TestRunFlagValidation checks the new execution flags are validated at
// the command boundary.
func TestRunFlagValidation(t *testing.T) {
	model := writeModel(t)
	if err := run(context.Background(), []string{"-model", model, "-workers", "-1"}); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative -workers: err = %v, want mention of -workers", err)
	}
	if err := run(context.Background(), []string{"-model", model, "-request-timeout", "-5s"}); err == nil || !strings.Contains(err.Error(), "-request-timeout") {
		t.Errorf("negative -request-timeout: err = %v, want mention of -request-timeout", err)
	}
	if err := run(context.Background(), []string{"-model", model, "-stream-window", "-1"}); err == nil || !strings.Contains(err.Error(), "-stream-window") {
		t.Errorf("negative -stream-window: err = %v, want mention of -stream-window", err)
	}
	if err := run(context.Background(), []string{"-model", model, "-stream-refit-every", "-2"}); err == nil || !strings.Contains(err.Error(), "-stream-refit-every") {
		t.Errorf("negative -stream-refit-every: err = %v, want mention of -stream-refit-every", err)
	}
	if err := run(context.Background(), []string{"-model", model, "-stream-async"}); err == nil || !strings.Contains(err.Error(), "-stream-async") {
		t.Errorf("-stream-async without cadence: err = %v, want mention of -stream-async", err)
	}
	if err := run(context.Background(), []string{"-model", model, "-manifest", "m.json"}); err == nil || !strings.Contains(err.Error(), "-models-dir") {
		t.Errorf("-manifest without -models-dir: err = %v, want mention of -models-dir", err)
	}
}

// TestRoleFlagValidation checks the role/topology flags are validated
// at the command boundary.
func TestRoleFlagValidation(t *testing.T) {
	model := writeModel(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-role", "bogus", "-model", model}, "-role"},
		{[]string{"-role", "front"}, "-shards"},
		{[]string{"-role", "front", "-shards", "127.0.0.1:1", "-model", model}, "holds no models"},
		{[]string{"-role", "front", "-shards", "127.0.0.1:1", "-models-dir", t.TempDir()}, "holds no models"},
		{[]string{"-model", model, "-shards", "127.0.0.1:1"}, "-role front"},
		{[]string{"-model", model, "-stream-max-bytes", "-1"}, "-stream-max-bytes"},
		{[]string{"-model", model, "-max-streams", "-1"}, "-max-streams"},
		{[]string{"-models-dir", t.TempDir(), "-max-streams", "2"}, "-max-streams"},
	}
	for _, c := range cases {
		err := run(context.Background(), c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) err = %v, want mention of %q", c.args, err, c.want)
		}
	}
}

// TestShardRoleDrainsOnSignal: a -role shard process answering SIGTERM
// must advertise "draining" on /healthz (503) through the announce
// window before the listener closes, then exit cleanly.
func TestShardRoleDrainsOnSignal(t *testing.T) {
	model := writeModel(t)
	addr, cancel, done := startServer(t,
		[]string{"-role", "shard", "-model", model, "-drain-announce", "600ms"}, http.StatusOK)
	cancel()

	// During the announce window /healthz must flip to 503 "draining".
	sawDraining := false
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			break // listener already closed (window elapsed)
		}
		var h struct {
			Status string `json:"status"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && h.Status == "draining" {
			sawDraining = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("shard never advertised draining on /healthz during the announce window")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shard drain exit returned %v, want nil", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("shard did not exit after drain")
	}
}

// TestFrontRoleRoutesToShard: a front over one standalone backend
// proxies /score and aggregates shard health on its own /healthz.
func TestFrontRoleRoutesToShard(t *testing.T) {
	model := writeModel(t)
	backend, cancelB, doneB := startServer(t, []string{"-model", model}, http.StatusOK)
	defer stopServer(t, cancelB, doneB)

	front, cancelF, doneF := startServer(t,
		[]string{"-role", "front", "-shards", backend, "-probe-interval", "100ms"}, http.StatusOK)
	defer stopServer(t, cancelF, doneF)

	status, score := scoreOne(t, front, "")
	if status != http.StatusOK {
		t.Fatalf("proxied /score status = %d, want 200", status)
	}
	if score <= 0 {
		t.Errorf("proxied score = %v, want > 0", score)
	}
	resp, err := http.Get("http://" + front + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Role   string `json:"role"`
		Shards []struct {
			Shard   string `json:"shard"`
			Healthy bool   `json:"healthy"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Role != "front" || len(h.Shards) != 1 || !h.Shards[0].Healthy {
		t.Errorf("front /healthz = %+v, want ok/front with one healthy shard", h)
	}
}

// TestDebugAddrServesPprof: -debug-addr exposes pprof on its own
// listener, and the serving port does not grow a profiling surface.
func TestDebugAddrServesPprof(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := ln.Addr().String()
	ln.Close()

	model := writeModel(t)
	addr, cancel, done := startServer(t,
		[]string{"-model", model, "-debug-addr", debugAddr}, http.StatusOK)
	defer stopServer(t, cancel, done)

	resp, err := http.Get("http://" + debugAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof listener unreachable: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/ on -debug-addr = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("serving port must not expose /debug/pprof/")
	}
}
