package main

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hics"
	"hics/internal/rng"
)

// writeModel fits a small model and saves it to a temp file.
func writeModel(t *testing.T) string {
	t.Helper()
	r := rng.New(1)
	rows := make([][]float64, 150)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	m, err := hics.Fit(rows, hics.Options{M: 10, Seed: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.hics")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadModel(t *testing.T) {
	path := writeModel(t)
	m, err := loadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.D() != 3 || m.N() != 150 {
		t.Errorf("loaded model D=%d N=%d", m.D(), m.N())
	}
	if _, err := loadModel(filepath.Join(t.TempDir(), "missing.hics")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.hics")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModel(bad); err == nil {
		t.Error("junk file should fail")
	}
}

func TestRunArgumentErrors(t *testing.T) {
	if err := run(context.Background(), []string{}); err == nil {
		t.Error("missing -model should fail")
	}
	if err := run(context.Background(), []string{"-model", writeModel(t), "extra"}); err == nil {
		t.Error("positional arguments should fail")
	}
	if err := run(context.Background(), []string{"-model", "/nonexistent/model.hics"}); err == nil {
		t.Error("missing model file should fail")
	}
	// A bad listen address fails after the model loads, before serving.
	if err := run(context.Background(), []string{"-model", writeModel(t), "-addr", "256.0.0.1:http"}); err == nil {
		t.Error("bad address should fail")
	}
}

// TestGracefulShutdown starts the server, waits until /healthz answers,
// then cancels the run context (the signal path) and checks the server
// drains and exits cleanly.
func TestGracefulShutdown(t *testing.T) {
	// Reserve a loopback port for the server. Closing the listener before
	// reusing the address is mildly racy, but loopback ports are not
	// rebound in the microseconds this takes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// The model is written on the test goroutine: writeModel uses t.Fatal
	// and t.TempDir, which must not run on the server goroutine.
	model := writeModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-model", model, "-addr", addr, "-request-timeout", "5s"})
	}()

	url := "http://" + addr + "/healthz"
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before becoming healthy: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after cancellation")
	}

	// The listener is released: a new server can bind the address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("address still bound after shutdown: %v", err)
	}
	ln2.Close()
}

// TestRunFlagValidation checks the new execution flags are validated at
// the command boundary.
func TestRunFlagValidation(t *testing.T) {
	model := writeModel(t)
	if err := run(context.Background(), []string{"-model", model, "-workers", "-1"}); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative -workers: err = %v, want mention of -workers", err)
	}
	if err := run(context.Background(), []string{"-model", model, "-request-timeout", "-5s"}); err == nil || !strings.Contains(err.Error(), "-request-timeout") {
		t.Errorf("negative -request-timeout: err = %v, want mention of -request-timeout", err)
	}
	if err := run(context.Background(), []string{"-model", model, "-stream-window", "-1"}); err == nil || !strings.Contains(err.Error(), "-stream-window") {
		t.Errorf("negative -stream-window: err = %v, want mention of -stream-window", err)
	}
	if err := run(context.Background(), []string{"-model", model, "-stream-refit-every", "-2"}); err == nil || !strings.Contains(err.Error(), "-stream-refit-every") {
		t.Errorf("negative -stream-refit-every: err = %v, want mention of -stream-refit-every", err)
	}
	if err := run(context.Background(), []string{"-model", model, "-stream-async"}); err == nil || !strings.Contains(err.Error(), "-stream-async") {
		t.Errorf("-stream-async without cadence: err = %v, want mention of -stream-async", err)
	}
}
