package main

import (
	"os"
	"path/filepath"
	"testing"

	"hics"
	"hics/internal/rng"
)

// writeModel fits a small model and saves it to a temp file.
func writeModel(t *testing.T) string {
	t.Helper()
	r := rng.New(1)
	rows := make([][]float64, 150)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	m, err := hics.Fit(rows, hics.Options{M: 10, Seed: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.hics")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadModel(t *testing.T) {
	path := writeModel(t)
	m, err := loadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.D() != 3 || m.N() != 150 {
		t.Errorf("loaded model D=%d N=%d", m.D(), m.N())
	}
	if _, err := loadModel(filepath.Join(t.TempDir(), "missing.hics")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.hics")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModel(bad); err == nil {
		t.Error("junk file should fail")
	}
}

func TestRunArgumentErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -model should fail")
	}
	if err := run([]string{"-model", writeModel(t), "extra"}); err == nil {
		t.Error("positional arguments should fail")
	}
	if err := run([]string{"-model", "/nonexistent/model.hics"}); err == nil {
		t.Error("missing model file should fail")
	}
	// A bad listen address fails after the model loads, before serving.
	if err := run([]string{"-model", writeModel(t), "-addr", "256.0.0.1:http"}); err == nil {
		t.Error("bad address should fail")
	}
}
