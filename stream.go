package hics

import (
	"context"
	"fmt"
	"log/slog"
	"strings"

	"hics/internal/lof"
	"hics/internal/registry"
	"hics/internal/stream"
)

// StreamOptions configures a sliding-window streaming detector (NewStream,
// Model.NewStream). The zero value is invalid: Window is required and must
// exceed the scorer's neighborhood size.
type StreamOptions struct {
	// Window is the sliding-window size: the number of most recent rows a
	// (re)fit sees. It must exceed the scorer's neighborhood size
	// (Options.MinPts, default 10) — a smaller window cannot carry a full
	// neighborhood.
	Window int
	// RefitEvery re-fits the model over the current window every this
	// many arrivals (once the window is full); 0 never refits, freezing
	// the initial model forever.
	RefitEvery int
	// Async moves refits onto a background goroutine: scoring continues
	// against the previous model until the new one swaps in, so
	// throughput never stalls on a refit — at the price of a
	// scheduling-dependent swap point. Synchronous refits (the default)
	// make the score sequence bit-for-bit deterministic for a given seed
	// and input order. Requires RefitEvery > 0.
	Async bool
	// Workers bounds the goroutines of refits and batch scoring passes;
	// 0 defers to the fit options (cold streams) or the model's setting
	// (warm streams).
	Workers int
	// Logger receives structured refit events (completion with duration,
	// failures) from the detector, including its background async-refit
	// goroutine. Nil discards them. The hicsd /stream endpoint passes a
	// logger annotated with the session's request ID, so refit events
	// stay attributable to the request that triggered them.
	Logger *slog.Logger
}

// validate rejects out-of-range stream options with the offending field
// named; minPts is the effective neighborhood size of the scorer.
func (o StreamOptions) validate(minPts int) error {
	if o.Window <= minPts {
		return fmt.Errorf("hics: StreamOptions.Window must exceed the scorer's neighborhood size, got Window=%d with MinPts=%d", o.Window, minPts)
	}
	if o.RefitEvery < 0 {
		return fmt.Errorf("hics: StreamOptions.RefitEvery must be non-negative, got %d (0 never refits)", o.RefitEvery)
	}
	if o.Async && o.RefitEvery == 0 {
		return fmt.Errorf("hics: StreamOptions.Async requires RefitEvery > 0")
	}
	if o.Workers < 0 {
		return fmt.Errorf("hics: StreamOptions.Workers must be non-negative, got %d (0 selects one worker per CPU)", o.Workers)
	}
	return nil
}

// StreamResult is one scored arrival of a Stream.
type StreamResult struct {
	// Index is the zero-based arrival number of the row.
	Index int `json:"index"`
	// Score is the outlier score against the model current at scoring
	// time; higher means more outlying.
	Score float64 `json:"score"`
	// Refits counts the completed model replacements at scoring time
	// (a cold stream's initial fit does not count).
	Refits int `json:"refits"`
}

// Stream is an online outlier detector over an unbounded row sequence:
// each pushed row is scored against the current frozen model, the last
// Window rows are retained, and every RefitEvery arrivals the model is
// re-fitted over the window (FitContext on the shared worker pool) and
// swapped atomically.
//
// Push must be called from one goroutine (a stream is an ordered
// sequence); the async refit machinery is coordinated internally. Close
// when done.
type Stream struct {
	det *stream.Detector
	// rbuf is the internal result scratch PushAppend scores into before
	// converting to StreamResult. Owned by the Push goroutine (a stream
	// is single-pusher by contract), so reuse across calls is safe.
	rbuf []stream.Result
}

// NewStream starts a cold streaming detector: the first Window arrivals
// are buffered unscored, then the first model is fitted on them with the
// given options and the whole window's scores are flushed in one Push
// result (bit-identical to that model's training scores). After warmup
// every arrival scores immediately.
//
// The scorer must support the fit/score split (FitScorerNames). With
// synchronous refits (StreamOptions.Async false) the entire score
// sequence is a deterministic function of the options (including Seed)
// and the input order, independent of Workers.
func NewStream(opts Options, sopts StreamOptions) (*Stream, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.MinPts < 1 {
		opts.MinPts = lof.DefaultMinPts
	}
	_, scorer, err := opts.methodNames()
	if err != nil {
		return nil, err
	}
	if !registry.ScorerSupportsFit(scorer) {
		return nil, fmt.Errorf("hics: scorer %q cannot fit a streaming model (supported: %s)",
			scorer, strings.Join(registry.FitScorerNames(), ", "))
	}
	if err := sopts.validate(opts.MinPts); err != nil {
		return nil, err
	}
	if sopts.Workers > 0 {
		opts.Workers = sopts.Workers
	}
	det, err := stream.New(stream.Config{
		Refit:      refitFunc(opts),
		Window:     sopts.Window,
		RefitEvery: sopts.RefitEvery,
		Async:      sopts.Async,
		Logger:     sopts.Logger,
	})
	if err != nil {
		return nil, err
	}
	return &Stream{det: det}, nil
}

// NewStream starts a warm streaming detector scoring immediately against
// the already-fitted model m; the window fills as rows arrive. Refits
// (when StreamOptions.RefitEvery > 0) reuse the model's method pair,
// MinPts and aggregation, with the library defaults for the search
// parameters (M, Alpha, seed 0) — fit from explicit Options via NewStream
// to control those.
//
// The stream scores through the model without mutating it: m remains
// valid for concurrent use elsewhere (e.g. the hicsd /score endpoint).
func (m *Model) NewStream(sopts StreamOptions) (*Stream, error) {
	if err := sopts.validate(m.minPts); err != nil {
		return nil, err
	}
	opts := Options{
		Search:      m.search,
		Scorer:      m.scorer,
		MinPts:      m.minPts,
		Aggregation: m.agg.String(),
		Workers:     m.workers,
	}
	if sopts.Workers > 0 {
		opts.Workers = sopts.Workers
	}
	var refit stream.RefitFunc
	if sopts.RefitEvery > 0 {
		refit = refitFunc(opts)
	}
	det, err := stream.New(stream.Config{
		Model:      m,
		Refit:      refit,
		Window:     sopts.Window,
		RefitEvery: sopts.RefitEvery,
		Async:      sopts.Async,
		Dims:       m.fp.D,
		Logger:     sopts.Logger,
	})
	if err != nil {
		return nil, err
	}
	return &Stream{det: det}, nil
}

// refitFunc adapts FitContext to the detector's refit hook.
func refitFunc(opts Options) stream.RefitFunc {
	return func(ctx context.Context, window [][]float64) (stream.Model, error) {
		m, err := FitContext(ctx, window, opts)
		if err != nil {
			return nil, err
		}
		return m, nil
	}
}

// Push feeds one arriving row and returns its scored results: none while
// a cold stream warms up, one per arrival afterwards, and a whole
// window's worth on the warmup flush. Rows are validated at the boundary
// — a wrong width or a non-finite value is rejected with the arrival and
// attribute named, without consuming an arrival index.
//
// A cancelled or deadlined ctx makes Push return ctx.Err() promptly; a
// synchronous refit aborted this way is retried at the next refit
// trigger, so the stream survives a deadline and keeps scoring.
func (s *Stream) Push(ctx context.Context, row []float64) ([]StreamResult, error) {
	rs, err := s.det.Push(ctx, row)
	if err != nil || len(rs) == 0 {
		return nil, err
	}
	out := make([]StreamResult, len(rs))
	for i, r := range rs {
		out[i] = StreamResult{Index: r.Index, Score: r.Score, Refits: r.Refits}
	}
	return out, nil
}

// PushAppend is the allocation-free form of Push for serving hot paths:
// results for the arrival are appended to out (which may be nil) and the
// extended slice returned. A warm stream appends at most one result per
// call and allocates nothing beyond out's own growth, so a caller
// reusing out[:0] across calls pays zero steady-state allocations. On
// error out is returned unchanged, exactly as passed in.
func (s *Stream) PushAppend(ctx context.Context, row []float64, out []StreamResult) ([]StreamResult, error) {
	rs, err := s.det.PushAppend(ctx, row, s.rbuf[:0])
	s.rbuf = rs[:0]
	if err != nil || len(rs) == 0 {
		return out, err
	}
	for _, r := range rs {
		out = append(out, StreamResult{Index: r.Index, Score: r.Score, Refits: r.Refits})
	}
	return out, nil
}

// Drain waits until no refit is in flight and reports any background
// refit failure. A no-op for synchronous streams; an async stream drained
// after every Push reproduces the synchronous score sequence exactly.
func (s *Stream) Drain(ctx context.Context) error { return s.det.Drain(ctx) }

// Close aborts any in-flight refit, joins the background goroutine and
// reports any background refit failure. Idempotent; do not call
// concurrently with Push.
func (s *Stream) Close() error { return s.det.Close() }

// Refits returns the number of completed model replacements.
func (s *Stream) Refits() int { return s.det.Refits() }

// Seen returns the number of rows pushed so far.
func (s *Stream) Seen() int { return s.det.Seen() }

// Warm reports whether the stream holds a scoring model yet (false only
// for a cold stream still filling its first window).
func (s *Stream) Warm() bool { return s.det.Warm() }
