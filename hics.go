// Package hics is a Go implementation of HiCS — "High Contrast Subspaces
// for Density-Based Outlier Ranking" (Keller, Müller, Böhm, ICDE 2012).
//
// HiCS decouples subspace outlier mining into two steps:
//
//  1. Subspace search: rank axis-parallel projections of the data by a
//     statistical contrast measure — the average deviation between the
//     marginal distribution of an attribute and its distribution inside
//     random "subspace slices" over the other attributes, estimated by a
//     Monte Carlo loop of Welch t-tests or Kolmogorov–Smirnov tests.
//  2. Outlier ranking: score every object with a density-based outlier
//     score (LOF by default) inside each high-contrast projection and
//     average the per-projection scores.
//
// The package exposes the complete pipeline (Rank), the subspace search
// alone (SearchSubspaces), and the contrast measure for a single subspace
// (Contrast). For production scoring, Fit runs the expensive subspace
// search once and returns a reusable Model that scores out-of-sample
// points (Score, ScoreBatch) and persists to disk (Save, LoadModel); the
// cmd/hicsd server exposes a trained model over HTTP. For continuous
// feeds, NewStream and Model.NewStream wrap a model in a sliding-window
// online detector (Stream) that scores each arriving row and periodically
// re-fits itself over its window — served as NDJSON by hicsd's /stream
// endpoint and driven from the command line by hics -stream.
//
// Both pipeline steps are pluggable through a method registry: the
// searchers and scorers of the paper's evaluation matrix (HiCS, Enclus,
// RIS, random subspaces, SURFING, the full space; LOF, kNN-distance,
// ORCA, OUTRES) are selected by name via Options.Search and
// Options.Scorer — SearcherNames and ScorerNames list the valid values.
// The same names drive the cmd/hics flags and the cmd/hicsbench
// experiment harness.
//
// All entry points accept row-major [][]float64 data; every row is one
// object, every column one attribute.
//
// Every long-running entry point has a context-aware variant —
// RankContext, FitContext, SearchSubspacesContext, Model.ScoreBatchContext
// — whose Monte Carlo and scoring loops check the context cooperatively:
// a cancelled or deadlined context makes the call return ctx.Err()
// promptly without leaking goroutines, and an uncancelled call is
// bit-for-bit identical to its plain counterpart (cancellation checks
// never consume randomness). The context-free forms are thin
// context.Background() wrappers.
package hics

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hics/internal/core"
	"hics/internal/dataset"
	"hics/internal/enclus"
	"hics/internal/lof"
	"hics/internal/randsub"
	"hics/internal/ranking"
	"hics/internal/registry"
	"hics/internal/ris"
	"hics/internal/subspace"
	"hics/internal/surfing"

	"hics/internal/neighbors"
)

// Options configures HiCS. The zero value selects the defaults of the
// paper's experiments (M=50, α=0.1, cutoff=400, 100 subspaces, Welch test,
// LOF with MinPts=10, average aggregation).
type Options struct {
	// M is the number of Monte Carlo statistical tests per subspace.
	M int
	// Alpha is the expected fraction of objects in a subspace slice,
	// 0 < Alpha < 1.
	Alpha float64
	// CandidateCutoff bounds the candidates retained per Apriori level.
	CandidateCutoff int
	// TopK is the number of high-contrast subspaces kept for the ranking
	// step (-1 keeps all).
	TopK int
	// Test selects the deviation function: "welch" (default), "ks",
	// "mw" (Mann–Whitney U) or "cvm" (Cramér–von Mises).
	Test string
	// Seed fixes all Monte Carlo randomness, making results reproducible.
	Seed uint64
	// MinPts is the LOF neighborhood size of the ranking step.
	MinPts int
	// UseKNNScore replaces LOF with the average-kNN-distance score, the
	// cheaper alternative the paper names as future work.
	UseKNNScore bool
	// Aggregation selects how per-subspace scores combine: "average"
	// (default, the paper's choice), "max", or "product" (the
	// OUTRES-style aggregation). The empty string defers to
	// MaxAggregation.
	Aggregation string
	// MaxAggregation aggregates per-subspace scores with max instead of
	// the paper's average.
	//
	// Deprecated: use Aggregation = "max". Kept for compatibility; it is
	// an error to combine it with a conflicting Aggregation value.
	MaxAggregation bool
	// Workers bounds the goroutines of both pipeline steps — the subspace
	// contrast evaluations and the batch neighborhood passes of the
	// LOF/kNN scorers; 0 means one per CPU. Negative values are rejected.
	// Results are bit-for-bit independent of the setting.
	Workers int
	// MaxDim caps the dimensionality of generated subspace candidates;
	// 0 means unbounded.
	MaxDim int
	// AdaptiveM enables the racing scheduler for the Monte Carlo budget:
	// candidates of an Apriori level advance in rounds, and a candidate
	// whose confidence bound falls below the level's retention cut stops
	// early. Retained subspaces still complete all M iterations on their
	// own random streams, so the final subspace set and its contrasts
	// typically match the flat schedule; only the budget spent on
	// discarded candidates shrinks. Off by default — the default flat
	// schedule is bit-for-bit reproducible against earlier releases.
	AdaptiveM bool
	// MaxSampleRows bounds the rows used per contrast estimate: when the
	// dataset has more rows, each candidate subspace draws a fixed,
	// seed-deterministic subsample of this size and estimates its
	// contrast there. 0 (default) disables subsampling. The estimate is
	// unbiased but no longer bit-identical to the full-data contrast;
	// see docs/performance.md for the tradeoff.
	MaxSampleRows int
	// NeighborIndex selects the neighbor-search backend of the ranking
	// step: "auto" (default; k-d tree for large, low-dimensional
	// projections, brute force otherwise), "kdtree", "brute", or "lsh"
	// (approximate random-projection forest; never chosen by auto). The
	// exact backends produce bit-for-bit identical scores and the choice
	// only affects speed; "lsh" trades a small recall loss (≥ 0.95 in
	// the default configuration) for query cost independent of N.
	NeighborIndex string
	// Search selects the subspace-search method by registry name:
	// "hics" (default), "enclus", "ris", "randsub", "surfing", or
	// "fullspace". The empty string keeps the paper's HiCS search.
	// Method-specific parameters map from the shared fields: TopK,
	// CandidateCutoff, MaxDim and Seed configure every searcher; M,
	// Alpha and Test apply to the HiCS search; MinPts doubles as the
	// density parameter of the RIS and SURFING searches.
	Search string
	// Scorer selects the density scorer of the ranking step by registry
	// name: "lof" (default), "knn", "orca", or "outres". The empty
	// string keeps LOF — or the kNN-distance score when the legacy
	// UseKNNScore flag is set; it is an error to combine UseKNNScore
	// with a conflicting Scorer value.
	Scorer string
}

// validate rejects out-of-range option values at the API boundary. Zero
// values remain "use the default"; values that cannot mean anything are
// errors instead of being silently replaced.
func (o Options) validate() error {
	if o.M < 0 {
		return fmt.Errorf("hics: M must be positive, got %d (0 selects the default %d)", o.M, core.DefaultM)
	}
	// The condition is phrased positively so NaN (for which every
	// comparison is false) is rejected too.
	if o.Alpha != 0 && !(o.Alpha > 0 && o.Alpha < 1) {
		return fmt.Errorf("hics: Alpha must be in (0,1), got %g (0 selects the default %g)", o.Alpha, core.DefaultAlpha)
	}
	if o.MinPts < 0 {
		return fmt.Errorf("hics: MinPts must be positive, got %d (0 selects the default %d)", o.MinPts, lof.DefaultMinPts)
	}
	if o.TopK < -1 {
		return fmt.Errorf("hics: TopK must be positive, got %d (0 selects the default %d, -1 keeps all subspaces)", o.TopK, core.DefaultTopK)
	}
	if o.Workers < 0 {
		return fmt.Errorf("hics: Workers must be non-negative, got %d (0 selects one worker per CPU)", o.Workers)
	}
	if o.MaxSampleRows < 0 {
		return fmt.Errorf("hics: MaxSampleRows must be non-negative, got %d (0 disables contrast subsampling)", o.MaxSampleRows)
	}
	// Method names are validated here too, so every entry point — even
	// SearchSubspaces, which never constructs the scorer — rejects an
	// unknown name with the full list of valid values.
	search, scorer, err := o.methodNames()
	if err != nil {
		return err
	}
	if !registry.KnownSearcher(search) {
		_, err := registry.NewSearcher(search, registry.SearcherOptions{})
		return err
	}
	if !registry.KnownScorer(scorer) {
		_, err := registry.NewScorer(scorer, registry.ScorerOptions{})
		return err
	}
	return nil
}

// methodNames resolves the Search/Scorer registry names, applying the
// defaults and the legacy UseKNNScore flag.
func (o Options) methodNames() (search, scorer string, err error) {
	search = o.Search
	if search == "" {
		search = registry.DefaultSearcher
	}
	scorer = o.Scorer
	if scorer == "" {
		if o.UseKNNScore {
			scorer = "knn"
		} else {
			scorer = registry.DefaultScorer
		}
	} else if o.UseKNNScore && scorer != "knn" {
		return "", "", fmt.Errorf("hics: Scorer %q conflicts with UseKNNScore", o.Scorer)
	}
	return search, scorer, nil
}

// searcherOptions maps the shared option fields onto every registered
// searcher's option struct; p carries the already-resolved HiCS params.
func (o Options) searcherOptions(p core.Params) registry.SearcherOptions {
	count := 0
	if o.TopK > 0 {
		count = o.TopK
	}
	return registry.SearcherOptions{
		HiCS:    p,
		Enclus:  enclus.Params{TopK: o.TopK, Cutoff: o.CandidateCutoff, MaxDim: o.MaxDim},
		RIS:     ris.Params{TopK: o.TopK, Cutoff: o.CandidateCutoff, MaxDim: o.MaxDim, MinPts: o.MinPts},
		RandSub: randsub.Params{Count: count, Seed: o.Seed, MaxDim: o.MaxDim},
		Surfing: surfing.Params{K: o.MinPts, TopK: o.TopK, Cutoff: o.CandidateCutoff, MaxDim: o.MaxDim},
	}
}

// scorerOptions maps the shared option fields onto every registered
// scorer's option struct.
func (o Options) scorerOptions() registry.ScorerOptions {
	return registry.ScorerOptions{
		LOF:  registry.LOFOptions{MinPts: o.MinPts},
		KNN:  registry.KNNOptions{K: o.MinPts},
		ORCA: registry.ORCAOptions{K: o.MinPts, Seed: o.Seed},
	}
}

func (o Options) coreParams() (core.Params, error) {
	if err := o.validate(); err != nil {
		return core.Params{}, err
	}
	p := core.Params{
		M:             o.M,
		Alpha:         o.Alpha,
		Cutoff:        o.CandidateCutoff,
		TopK:          o.TopK,
		Seed:          o.Seed,
		Workers:       o.Workers,
		MaxDim:        o.MaxDim,
		AdaptiveM:     o.AdaptiveM,
		MaxSampleRows: o.MaxSampleRows,
	}
	if o.Test != "" {
		t, err := core.ParseTest(o.Test)
		if err != nil {
			return p, err
		}
		p.Test = t
	}
	return p, nil
}

// aggregation resolves the Aggregation string and the legacy
// MaxAggregation bool into the ranking-level value.
func (o Options) aggregation() (ranking.Aggregation, error) {
	if o.Aggregation == "" {
		if o.MaxAggregation {
			return ranking.Max, nil
		}
		return ranking.Average, nil
	}
	agg, err := ranking.ParseAggregation(o.Aggregation)
	if err != nil {
		return 0, err
	}
	if o.MaxAggregation && agg != ranking.Max {
		return 0, fmt.Errorf("hics: Aggregation %q conflicts with MaxAggregation", o.Aggregation)
	}
	return agg, nil
}

// pipeline assembles the two-step ranking pipeline Rank and Fit share,
// resolving the Search/Scorer registry names.
func (o Options) pipeline() (ranking.Pipeline, error) {
	p, err := o.coreParams()
	if err != nil {
		return ranking.Pipeline{}, err
	}
	kind, err := neighbors.ParseKind(o.NeighborIndex)
	if err != nil {
		return ranking.Pipeline{}, err
	}
	agg, err := o.aggregation()
	if err != nil {
		return ranking.Pipeline{}, err
	}
	search, scorer, err := o.methodNames()
	if err != nil {
		return ranking.Pipeline{}, err
	}
	// The scorers are left on their zero-value (auto) index; Pipeline.Index
	// is the single place the resolved kind is applied. Workers bounds
	// both the search fan-out (via p) and the scoring batch passes.
	return registry.NewPipeline(search, scorer, registry.PipelineOptions{
		Searchers:    o.searcherOptions(p),
		Scorers:      o.scorerOptions(),
		Agg:          agg,
		MaxSubspaces: -1, // every registered searcher already applies TopK
		Index:        kind,
		Workers:      o.Workers,
	})
}

// Subspace is one scored projection of the attribute space.
type Subspace struct {
	// Dims are the attribute indices of the projection, ascending.
	Dims []int
	// Contrast is the HiCS contrast in [0, 1]; higher means stronger
	// conditional dependence between the dimensions.
	Contrast float64
}

// Result is the outcome of a full HiCS outlier ranking.
type Result struct {
	// Scores holds one aggregated outlier score per object (row); higher
	// means more outlying.
	Scores []float64
	// Subspaces lists the high-contrast projections the scores were
	// computed in, in descending contrast order.
	Subspaces []Subspace
}

// TopOutliers returns the indices of the k highest-scoring objects in
// descending score order; tied scores break toward the lower index.
// k ≤ 0 yields an empty slice, k beyond the object count is clamped.
//
// The selection is a bounded min-heap over the scores, O(n log k) — k is
// user-facing and unbounded, so the quadratic selection scan this used to
// be would dominate for large k.
func (r *Result) TopOutliers(k int) []int {
	n := len(r.Scores)
	if k > n {
		k = n
	}
	if k <= 0 {
		return []int{}
	}
	// worse reports whether object a ranks below object b.
	worse := func(a, b int) bool {
		if r.Scores[a] != r.Scores[b] {
			return r.Scores[a] < r.Scores[b]
		}
		return a > b
	}
	// heap[0] is the weakest of the k best seen so far.
	heap := make([]int, 0, k)
	siftDown := func(i int) {
		for {
			l, r2 := 2*i+1, 2*i+2
			min := i
			if l < len(heap) && worse(heap[l], heap[min]) {
				min = l
			}
			if r2 < len(heap) && worse(heap[r2], heap[min]) {
				min = r2
			}
			if min == i {
				return
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	for i := 0; i < n; i++ {
		if len(heap) < k {
			heap = append(heap, i)
			for c := len(heap) - 1; c > 0; {
				p := (c - 1) / 2
				if !worse(heap[c], heap[p]) {
					break
				}
				heap[c], heap[p] = heap[p], heap[c]
				c = p
			}
		} else if worse(heap[0], i) {
			heap[0] = i
			siftDown(0)
		}
	}
	// Drain the heap weakest-first into descending rank order.
	out := make([]int, len(heap))
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = heap[0]
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		siftDown(0)
	}
	return out
}

func toDataset(rows [][]float64) (*dataset.Dataset, error) {
	if len(rows) == 0 {
		return nil, errors.New("hics: empty data")
	}
	// Non-finite values are rejected at the API boundary: a NaN poisons
	// every statistic it touches and an Inf empties neighborhoods, so the
	// pipeline would silently hand back meaningless scores. Naming the
	// offending cell beats debugging a NaN ranking.
	for i, row := range rows {
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("hics: row %d column %d is %v, want a finite value", i, j, v)
			}
		}
	}
	return dataset.FromRows(nil, rows)
}

// SearchSubspaces runs the subspace search selected by opts.Search (the
// HiCS contrast search by default) on row-major data and returns the
// scored projections in descending quality order.
func SearchSubspaces(rows [][]float64, opts Options) ([]Subspace, error) {
	return SearchSubspacesContext(context.Background(), rows, opts)
}

// SearchSubspacesContext is SearchSubspaces with cooperative
// cancellation: the search observes ctx throughout its candidate loops
// and returns ctx.Err() promptly once it fires. An uncancelled search is
// bit-for-bit identical to SearchSubspaces — the cancellation checks
// never consume randomness.
func SearchSubspacesContext(ctx context.Context, rows [][]float64, opts Options) ([]Subspace, error) {
	ds, err := toDataset(rows)
	if err != nil {
		return nil, err
	}
	p, err := opts.coreParams()
	if err != nil {
		return nil, err
	}
	search, _, err := opts.methodNames()
	if err != nil {
		return nil, err
	}
	s, err := registry.NewSearcher(search, opts.searcherOptions(p))
	if err != nil {
		return nil, err
	}
	subs, err := s.Search(ctx, ds)
	if err != nil {
		return nil, err
	}
	out := make([]Subspace, len(subs))
	for i, sc := range subs {
		out[i] = Subspace{Dims: append([]int(nil), sc.S...), Contrast: sc.Score}
	}
	return out, nil
}

// Contrast computes the HiCS contrast of a single subspace (given as
// attribute indices) of the row-major data.
func Contrast(rows [][]float64, dims []int, opts Options) (float64, error) {
	ds, err := toDataset(rows)
	if err != nil {
		return 0, err
	}
	p, err := opts.coreParams()
	if err != nil {
		return 0, err
	}
	return core.ContrastOf(ds, subspace.New(dims...), p)
}

// Rank runs the complete two-step HiCS pipeline: subspace search followed
// by density-based outlier scoring in the selected projections.
func Rank(rows [][]float64, opts Options) (*Result, error) {
	return RankContext(context.Background(), rows, opts)
}

// RankContext is Rank with cooperative cancellation: the Monte Carlo
// subspace search checks ctx between iterations and the scoring step
// checks it between subspaces, so a cancelled or deadlined context makes
// the call return ctx.Err() promptly without leaking goroutines. An
// uncancelled run is bit-for-bit identical to Rank.
func RankContext(ctx context.Context, rows [][]float64, opts Options) (*Result, error) {
	ds, err := toDataset(rows)
	if err != nil {
		return nil, err
	}
	pipe, err := opts.pipeline()
	if err != nil {
		return nil, err
	}
	res, err := pipe.RankContext(ctx, ds)
	if err != nil {
		return nil, err
	}
	subs := make([]Subspace, len(res.Subspaces))
	for i, sc := range res.Subspaces {
		subs[i] = Subspace{Dims: append([]int(nil), sc.S...), Contrast: sc.Score}
	}
	return &Result{Scores: res.Scores, Subspaces: subs}, nil
}

// LOFScores computes plain full-space LOF scores on row-major data — the
// classical baseline, exposed for comparisons.
func LOFScores(rows [][]float64, minPts int) ([]float64, error) {
	ds, err := toDataset(rows)
	if err != nil {
		return nil, err
	}
	if minPts <= 0 {
		minPts = lof.DefaultMinPts
	}
	return lof.Scores(ds, subspace.Full(ds.D()), minPts)
}

// SearcherNames lists the subspace-search method names Options.Search
// accepts, sorted.
func SearcherNames() []string { return registry.SearcherNames() }

// ScorerNames lists the density-scorer names Options.Scorer accepts,
// sorted.
func ScorerNames() []string { return registry.ScorerNames() }

// FitScorerNames lists the scorer names that support the fit/score split,
// i.e. the values of Options.Scorer that Fit (and model persistence)
// accepts.
func FitScorerNames() []string { return registry.FitScorerNames() }

// Version identifies the library release. It is the single source of
// truth for version reporting: the hicsd /healthz and /info responses,
// the `hics -version` and `hicsd -version` flags, and the README all
// derive from this constant.
const Version = "1.9.0"
