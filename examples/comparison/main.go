// Comparison: every method in this repository side by side on one
// synthetic benchmark dataset — the quickest way to see the paper's main
// result and this library's extensions in a single run.
//
// The dataset follows the paper's Sec. V-A construction (generated via
// the hics public API's companion tool logic): correlated 2–3-dimensional
// attribute groups with hidden non-trivial outliers, plus noise
// dimensions that drown full-space methods.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"hics"
)

func main() {
	rows, labels := makeBenchmark()
	nOut := 0
	for _, l := range labels {
		if l {
			nOut++
		}
	}
	fmt.Printf("benchmark: %d objects, %d attributes, %d hidden outliers\n\n",
		len(rows), len(rows[0]), nOut)

	type entry struct {
		name string
		opts hics.Options
	}
	entries := []entry{
		{"HiCS_WT + LOF (paper default)", hics.Options{M: 50, Seed: 1}},
		{"HiCS_KS + LOF", hics.Options{M: 50, Seed: 1, Test: "ks"}},
		{"HiCS_MW + LOF (extension)", hics.Options{M: 50, Seed: 1, Test: "mw"}},
		{"HiCS_CVM + LOF (extension)", hics.Options{M: 50, Seed: 1, Test: "cvm"}},
		{"HiCS_WT + kNN-dist", hics.Options{M: 50, Seed: 1, Scorer: "knn"}},
		{"HiCS_WT + LOF, max-agg", hics.Options{M: 50, Seed: 1, Aggregation: "max"}},
		{"Enclus + LOF", hics.Options{Seed: 1, Search: "enclus"}},
		{"SURFING + LOF (extension)", hics.Options{Seed: 1, Search: "surfing"}},
	}
	fmt.Printf("%-32s %8s\n", "method", "AUC")
	for _, e := range entries {
		res, err := hics.Rank(rows, e.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %7.1f%%\n", e.name, 100*auc(res.Scores, labels))
	}
	base, err := hics.LOFScores(rows, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-32s %7.1f%%\n", "full-space LOF (baseline)", 100*auc(base, labels))
}

// makeBenchmark builds 400 objects over 14 attributes: two correlated
// groups ({0,1} and {2,3,4}) with diagonal clusters and hidden outliers,
// nine noise attributes.
func makeBenchmark() ([][]float64, []bool) {
	r := rnd(99)
	const n, d = 400, 14
	rows := make([][]float64, n)
	labels := make([]bool, n)
	centers := []float64{0.25, 0.5, 0.75}
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		c1 := centers[int(r.float()*3)]
		for _, a := range []int{0, 1} {
			row[a] = clamp(c1 + 0.03*r.normal())
		}
		c2 := centers[int(r.float()*3)]
		for _, a := range []int{2, 3, 4} {
			row[a] = clamp(c2 + 0.03*r.normal())
		}
		for a := 5; a < d; a++ {
			row[a] = r.float()
		}
		rows[i] = row
	}
	// Ten hidden outliers: mixed cluster coordinates inside one group.
	for k := 0; k < 10; k++ {
		i := 17 * (k + 3)
		labels[i] = true
		if k%2 == 0 {
			rows[i][0] = clamp(centers[0] + 0.02*r.normal())
			rows[i][1] = clamp(centers[2] + 0.02*r.normal())
		} else {
			rows[i][2] = clamp(centers[0] + 0.02*r.normal())
			rows[i][3] = clamp(centers[2] + 0.02*r.normal())
			rows[i][4] = clamp(centers[1] + 0.02*r.normal())
		}
	}
	return rows, labels
}

// auc computes the tie-corrected rank AUC inline so the example depends
// only on the public API.
func auc(scores []float64, labels []bool) float64 {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]float64, len(scores))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var nPos, nNeg int
	var sum float64
	for i, l := range labels {
		if l {
			nPos++
			sum += ranks[i]
		} else {
			nNeg++
		}
	}
	u := sum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

func clamp(v float64) float64 { return math.Max(0, math.Min(1, v)) }

type prng struct{ s uint64 }

func rnd(seed uint64) *prng { return &prng{s: seed*0x9e3779b97f4a7c15 + 1} }

func (p *prng) float() float64 {
	p.s = p.s*6364136223846793005 + 1442695040888963407
	return float64(p.s>>11) / (1 << 53)
}

func (p *prng) normal() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += p.float()
	}
	return sum - 6
}
