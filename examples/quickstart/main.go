// Quickstart: the paper's Fig. 2 scenario on generated data.
//
// Two datasets share identical marginal distributions: in dataset A the
// two attributes are independent, in dataset B they are correlated. A
// non-trivial outlier placed at an anti-diagonal position is invisible in
// every one-dimensional view and only stands out in the correlated
// dataset. The example shows how the HiCS contrast separates the two
// situations and how the full ranking surfaces the hidden outlier.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hics"
)

func main() {
	const n = 400
	a := makeDemo(n, false, 1) // independent attributes
	b := makeDemo(n, true, 1)  // correlated attributes

	opts := hics.Options{M: 100, Seed: 7}

	contrastA, err := hics.Contrast(a, []int{0, 1}, opts)
	if err != nil {
		log.Fatal(err)
	}
	contrastB, err := hics.Contrast(b, []int{0, 1}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contrast of {s1, s2}:\n")
	fmt.Printf("  dataset A (uncorrelated): %.3f\n", contrastA)
	fmt.Printf("  dataset B (correlated):   %.3f\n", contrastB)

	// Rank outliers in the correlated dataset. The last object is the
	// planted non-trivial outlier at an anti-diagonal position.
	res, err := hics.Rank(b, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop 3 outliers in dataset B (object %d is the planted one):\n", n)
	for rank, i := range res.TopOutliers(3) {
		fmt.Printf("  %d. object %3d score %.3f\n", rank+1, i, res.Scores[i])
	}
	fmt.Printf("\nhighest-contrast subspace: dims %v, contrast %.3f\n",
		res.Subspaces[0].Dims, res.Subspaces[0].Contrast)
}

// makeDemo builds n+1 objects whose two attributes each follow a balanced
// two-component Gaussian mixture at 0.3 and 0.7. When correlated, both
// attributes share the mixture component; the final object sits at the
// anti-diagonal combination (0.3, 0.7) — dense marginally, empty jointly.
func makeDemo(n int, correlated bool, seed int64) [][]float64 {
	r := newLCG(seed)
	rows := make([][]float64, 0, n+1)
	for i := 0; i < n; i++ {
		cx := 0.3
		if r.float() < 0.5 {
			cx = 0.7
		}
		cy := cx
		if !correlated {
			cy = 0.3
			if r.float() < 0.5 {
				cy = 0.7
			}
		}
		rows = append(rows, []float64{cx + 0.05*r.normal(), cy + 0.05*r.normal()})
	}
	rows = append(rows, []float64{0.3, 0.7})
	return rows
}

// newLCG is a tiny deterministic generator so the example needs no
// external seed management.
type lcg struct{ s uint64 }

func newLCG(seed int64) *lcg { return &lcg{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) float() float64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return float64(l.s>>11) / (1 << 53)
}

func (l *lcg) normal() float64 {
	// sum of 12 uniforms, a classic quick approximation
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += l.float()
	}
	return sum - 6
}
