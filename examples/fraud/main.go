// Fraud: the transaction-fraud scenario from the paper's introduction —
// "suspicious customers show fraud activity only w.r.t. some financial
// transactions".
//
// Customer accounts are described by eight behavioural features. For
// regular customers, transaction amounts track account balances and the
// foreign-transaction share tracks travel days; the remaining features are
// idiosyncratic. Two fraud patterns violate exactly one coupling each
// while staying inside every feature's normal range: money laundering
// (large transactions through small accounts) and card abuse (heavy
// foreign activity without travel). The example also demonstrates the
// kNN-distance scorer as an alternative to LOF and compares both against
// the plain full-space LOF baseline.
//
// Run with: go run ./examples/fraud
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"hics"
)

const nCustomers = 600

func main() {
	data, fraudIDs := simulateCustomers()

	opts := hics.Options{M: 100, Seed: 11, MinPts: 15}
	resLOF, err := hics.Rank(data, opts)
	if err != nil {
		log.Fatal(err)
	}
	knnOpts := opts
	knnOpts.UseKNNScore = true
	resKNN, err := hics.Rank(data, knnOpts)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := hics.LOFScores(data, 15)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planted fraud cases: customers %v\n\n", fraudIDs)
	show := func(label string, scores []float64) {
		fmt.Printf("%-22s", label)
		for _, id := range topK(scores, 4) {
			mark := " "
			for _, f := range fraudIDs {
				if id == f {
					mark = "*"
				}
			}
			fmt.Printf("  %s#%d", mark, id)
		}
		fmt.Printf("   (frauds found in top-4: %d/2)\n", hits(scores, fraudIDs, 4))
	}
	show("HiCS + LOF:", resLOF.Scores)
	show("HiCS + kNN-distance:", resKNN.Scores)
	show("full-space LOF:", baseline)

	fmt.Println("\nhighest-contrast feature combinations:")
	names := featureNames()
	for i, s := range resLOF.Subspaces {
		if i == 3 {
			break
		}
		fmt.Printf("  contrast %.3f:", s.Contrast)
		for _, d := range s.Dims {
			fmt.Printf(" %s", names[d])
		}
		fmt.Println()
	}
}

func featureNames() []string {
	return []string{
		"balance", "txn_amount", "travel_days", "foreign_share",
		"logins", "age_months", "support_calls", "products",
	}
}

// simulateCustomers builds the behavioural features of regular customers
// plus two planted fraud cases, returning the row-major data and the
// indices of the frauds.
func simulateCustomers() ([][]float64, []int) {
	r := rnd(7)
	rows := make([][]float64, 0, nCustomers+2)
	for i := 0; i < nCustomers; i++ {
		wealth := r.float()
		mobility := r.float()
		rows = append(rows, []float64{
			clamp(0.1 + 0.8*wealth + 0.03*r.normal()),    // balance
			clamp(0.1 + 0.75*wealth + 0.05*r.normal()),   // txn_amount tracks balance
			clamp(0.1 + 0.8*mobility + 0.03*r.normal()),  // travel_days
			clamp(0.1 + 0.75*mobility + 0.05*r.normal()), // foreign_share tracks travel
			r.float(), // logins
			r.float(), // age_months
			r.float(), // support_calls
			r.float(), // products
		})
	}
	// Laundering: small balance, large transactions.
	launderer := []float64{0.15, 0.8, 0, 0, r.float(), r.float(), r.float(), r.float()}
	launderer[2] = clamp(0.3 + 0.03*r.normal())
	launderer[3] = clamp(0.32 + 0.05*r.normal())
	rows = append(rows, launderer)
	// Card abuse: no travel, heavy foreign activity.
	abuse := []float64{0, 0, 0.12, 0.78, r.float(), r.float(), r.float(), r.float()}
	abuse[0] = clamp(0.6 + 0.03*r.normal())
	abuse[1] = clamp(0.58 + 0.05*r.normal())
	rows = append(rows, abuse)
	return rows, []int{nCustomers, nCustomers + 1}
}

func topK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

func hits(scores []float64, planted []int, k int) int {
	n := 0
	for _, id := range topK(scores, k) {
		for _, f := range planted {
			if id == f {
				n++
			}
		}
	}
	return n
}

func clamp(v float64) float64 { return math.Max(0, math.Min(1, v)) }

type prng struct{ s uint64 }

func rnd(seed uint64) *prng { return &prng{s: seed*0x9e3779b97f4a7c15 + 1} }

func (p *prng) float() float64 {
	p.s = p.s*6364136223846793005 + 1442695040888963407
	return float64(p.s>>11) / (1 << 53)
}

func (p *prng) normal() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += p.float()
	}
	return sum - 6
}
