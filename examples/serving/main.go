// Serving: the fit/score split end to end.
//
// The paper's pipeline is naturally two phases: an expensive Monte Carlo
// subspace search (fit) and cheap density queries against the frozen
// state (score). This walkthrough exercises the production path built on
// that split:
//
//  1. Fit a model on training data with a hidden subspace outlier
//     pattern.
//  2. Score out-of-sample points — no refitting, microseconds per query.
//  3. Save the model to disk and load it back, verifying the round trip
//     reproduces identical scores.
//  4. Serve the loaded model over HTTP with the same handler the hicsd
//     daemon uses, and query /score and /healthz like a client would.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"hics"
	"hics/internal/serve"
)

func main() {
	// 1. Fit. Attributes 0 and 1 are correlated; the rest are noise.
	train := makeData(500, 1)
	model, err := hics.Fit(train, hics.Options{M: 50, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model: %d objects x %d attributes, %d subspaces\n",
		model.N(), model.D(), len(model.Subspaces()))
	top := model.Subspaces()[0]
	fmt.Printf("highest-contrast subspace: dims %v, contrast %.3f\n\n", top.Dims, top.Contrast)

	// 2. Score out-of-sample points. The anti-diagonal combination
	// (0.3, 0.7) is dense in every marginal but empty in the joint
	// distribution — the paper's non-trivial outlier.
	inlier := []float64{0.7, 0.7, 0.5, 0.5}
	outlier := []float64{0.3, 0.7, 0.5, 0.5}
	si, err := model.Score(inlier)
	if err != nil {
		log.Fatal(err)
	}
	so, err := model.Score(outlier)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-sample scores (higher = more outlying):\n")
	fmt.Printf("  diagonal point      %v -> %.3f\n", inlier, si)
	fmt.Printf("  anti-diagonal point %v -> %.3f\n\n", outlier, so)

	// 3. Persist and reload.
	path := filepath.Join(os.TempDir(), "hics-serving-example.model")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := hics.LoadModel(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	ls, err := loaded.Score(outlier)
	if err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved model to %s (%d bytes)\n", path, info.Size())
	fmt.Printf("loaded model reproduces the score exactly: %v\n\n", ls == so)

	// 4. Serve. httptest stands in for `hicsd -model <file>`; the handler
	// is the daemon's.
	srv := httptest.NewServer(serve.NewHandler(loaded))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var health serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("GET /healthz -> %+v\n", health)

	resp, err = http.Get(srv.URL + "/info")
	if err != nil {
		log.Fatal(err)
	}
	var modelInfo serve.Info
	if err := json.NewDecoder(resp.Body).Decode(&modelInfo); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("GET /info -> %+v\n", modelInfo)

	req, _ := json.Marshal(serve.ScoreRequest{Points: [][]float64{inlier, outlier}})
	resp, err = http.Post(srv.URL+"/score", "application/json", bytes.NewReader(req))
	if err != nil {
		log.Fatal(err)
	}
	var scored serve.ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&scored); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("POST /score %s -> %.3f\n", req, scored.Scores)
}

// makeData builds n rows whose first two attributes share a two-component
// Gaussian mixture (correlated), plus two uniform noise attributes.
type lcg struct{ s uint64 }

func (l *lcg) float() float64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return float64(l.s>>11) / (1 << 53)
}

func (l *lcg) normal() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += l.float()
	}
	return sum - 6
}

func makeData(n int, seed uint64) [][]float64 {
	r := &lcg{s: seed*2862933555777941757 + 3037000493}
	rows := make([][]float64, n)
	for i := range rows {
		c := 0.3
		if r.float() < 0.5 {
			c = 0.7
		}
		rows[i] = []float64{
			c + 0.04*r.normal(),
			c + 0.04*r.normal(),
			r.float(),
			r.float(),
		}
	}
	return rows
}
