// Geneexpr: the gene-expression scenario from the paper's introduction —
// "genes show unexpected expression only under specific medical
// conditions".
//
// Each object is a gene described by its expression level under 30
// experimental conditions. Conditions belonging to the same biological
// pathway are co-expressed for regular genes; most conditions are
// unrelated noise. A handful of dysregulated genes break the
// co-expression of one pathway — their levels under each single condition
// look ordinary, only the combination is anomalous. The example runs the
// subspace search to recover the pathways, then compares the HiCS ranking
// against the full-space baseline, illustrating the curse of
// dimensionality the paper's Sec. III-A describes.
//
// Run with: go run ./examples/geneexpr
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"hics"
)

const (
	nGenes      = 500
	nConditions = 30
)

func main() {
	data, dysregulated, pathways := simulateExpression()

	fmt.Println("planted pathways (condition groups):")
	for i, p := range pathways {
		fmt.Printf("  pathway %d: conditions %v\n", i+1, p)
	}

	subs, err := hics.SearchSubspaces(data, hics.Options{M: 100, Seed: 5, TopK: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecovered high-contrast condition combinations:")
	for _, s := range subs {
		fmt.Printf("  contrast %.3f: conditions %v\n", s.Contrast, s.Dims)
	}

	res, err := hics.Rank(data, hics.Options{M: 100, Seed: 5, MinPts: 15})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := hics.LOFScores(data, 15)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nplanted dysregulated genes: %v\n", dysregulated)
	fmt.Printf("HiCS top-5:            %v  (found %d/%d)\n",
		topK(res.Scores, 5), hits(res.Scores, dysregulated, 5), len(dysregulated))
	fmt.Printf("full-space LOF top-5:  %v  (found %d/%d)\n",
		topK(baseline, 5), hits(baseline, dysregulated, 5), len(dysregulated))
}

// simulateExpression builds the gene × condition matrix: two co-expressed
// pathways of three conditions each, 24 noise conditions, and four
// dysregulated genes whose pathway-1 expression pattern is scrambled.
func simulateExpression() (rows [][]float64, dysregulated []int, pathways [][]int) {
	r := rnd(13)
	pathways = [][]int{{2, 11, 19}, {5, 14, 23}}
	inPathway := map[int]int{}
	for pi, p := range pathways {
		for _, c := range p {
			inPathway[c] = pi
		}
	}
	rows = make([][]float64, 0, nGenes)
	for g := 0; g < nGenes; g++ {
		activity := []float64{r.float(), r.float()} // pathway activity per gene
		row := make([]float64, nConditions)
		for c := 0; c < nConditions; c++ {
			if pi, ok := inPathway[c]; ok {
				row[c] = clamp(0.15 + 0.7*activity[pi] + 0.04*r.normal())
			} else {
				row[c] = r.float()
			}
		}
		rows = append(rows, row)
	}
	// Dysregulated genes: pathway-1 conditions take levels from *different*
	// activity states — each level is common, the combination is not.
	for k := 0; k < 4; k++ {
		g := 50 + 100*k
		dysregulated = append(dysregulated, g)
		for j, c := range pathways[0] {
			act := float64(j%2) * 0.9 // alternate low/high activity
			rows[g][c] = clamp(0.15 + 0.7*act + 0.02*r.normal())
		}
	}
	return rows, dysregulated, pathways
}

func topK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

func hits(scores []float64, planted []int, k int) int {
	n := 0
	for _, id := range topK(scores, k) {
		for _, f := range planted {
			if id == f {
				n++
			}
		}
	}
	return n
}

func clamp(v float64) float64 { return math.Max(0, math.Min(1, v)) }

type prng struct{ s uint64 }

func rnd(seed uint64) *prng { return &prng{s: seed*0x9e3779b97f4a7c15 + 1} }

func (p *prng) float() float64 {
	p.s = p.s*6364136223846793005 + 1442695040888963407
	return float64(p.s>>11) / (1 << 53)
}

func (p *prng) normal() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += p.float()
	}
	return sum - 6
}
