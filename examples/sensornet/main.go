// Sensornet: the environmental-surveillance scenario from the paper's
// introduction (Fig. 1).
//
// A network of sensor nodes reports four readings: noise level, air
// pollution index, humidity and temperature. Two physical couplings hold
// for regular nodes: traffic links noise to pollution, and weather links
// humidity to temperature. Two faulty nodes violate one coupling each —
// outlier1 reports heavy pollution at low noise, outlier2 reports dry
// heat during humid weather — while every individual reading stays within
// its normal range. No single attribute and no full-space distance
// exposes them reliably; the {noise, pollution} and {humidity,
// temperature} subspaces do.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math"

	"hics"
)

const nNodes = 500

func main() {
	readings, names := simulateNetwork()

	subs, err := hics.SearchSubspaces(readings, hics.Options{M: 100, Seed: 3, TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("high-contrast attribute combinations found:")
	for _, s := range subs {
		fmt.Printf("  contrast %.3f:", s.Contrast)
		for _, d := range s.Dims {
			fmt.Printf(" %s", names[d])
		}
		fmt.Println()
	}

	res, err := hics.Rank(readings, hics.Options{M: 100, Seed: 3, MinPts: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmost suspicious sensor nodes (nodes %d and %d are the faulty ones):\n",
		nNodes, nNodes+1)
	for rank, i := range res.TopOutliers(4) {
		fmt.Printf("  %d. node %3d  score %.3f  readings: noise=%.2f pollution=%.2f humidity=%.2f temp=%.2f\n",
			rank+1, i, res.Scores[i],
			readings[i][0], readings[i][1], readings[i][2], readings[i][3])
	}
}

// simulateNetwork builds readings for nNodes regular sensors plus the two
// faulty nodes of the paper's Fig. 1.
func simulateNetwork() ([][]float64, []string) {
	names := []string{"noise", "pollution", "humidity", "temperature"}
	r := rnd(42)
	rows := make([][]float64, 0, nNodes+2)
	for i := 0; i < nNodes; i++ {
		traffic := r.float() // latent traffic intensity around the node
		weather := r.float() // latent weather state
		noise := clamp(0.2 + 0.6*traffic + 0.04*r.normal())
		pollution := clamp(0.15 + 0.65*traffic + 0.04*r.normal())
		humidity := clamp(0.2 + 0.6*weather + 0.04*r.normal())
		temperature := clamp(0.8 - 0.6*weather + 0.04*r.normal())
		rows = append(rows, []float64{noise, pollution, humidity, temperature})
	}
	// outlier1: pollution spike without the matching traffic noise.
	rows = append(rows, []float64{clamp(0.25 + 0.04*r.normal()), 0.75, clamp(0.5 + 0.04*r.normal()), clamp(0.5 + 0.04*r.normal())})
	// outlier2: hot and humid at once — against the weather coupling.
	rows = append(rows, []float64{clamp(0.5 + 0.04*r.normal()), clamp(0.5 + 0.04*r.normal()), 0.78, 0.75})
	return rows, names
}

func clamp(v float64) float64 { return math.Max(0, math.Min(1, v)) }

type prng struct{ s uint64 }

func rnd(seed uint64) *prng { return &prng{s: seed*0x9e3779b97f4a7c15 + 1} }

func (p *prng) float() float64 {
	p.s = p.s*6364136223846793005 + 1442695040888963407
	return float64(p.s>>11) / (1 << 53)
}

func (p *prng) normal() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += p.float()
	}
	return sum - 6
}
