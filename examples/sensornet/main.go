// Sensornet: the environmental-surveillance scenario from the paper's
// introduction (Fig. 1), run as a live stream.
//
// A network of sensor nodes reports four readings: noise level, air
// pollution index, humidity and temperature. Two physical couplings hold
// for regular nodes: traffic links noise to pollution, and weather links
// humidity to temperature. Faulty nodes violate one coupling each —
// heavy pollution at low noise, or dry heat during humid weather — while
// every individual reading stays within its normal range. No single
// attribute and no full-space distance exposes them reliably; the
// {noise, pollution} and {humidity, temperature} subspaces do.
//
// Where the original example batch-ranked a fixed snapshot, this version
// drives the streaming API end to end: a model is fitted once on a
// calibration phase of known-good readings, then a continuous feed runs
// through hics.Model.NewStream — every reading is scored the moment it
// arrives, the detector re-fits itself over its sliding window every 100
// readings, and the two faulty reports injected mid-stream raise alerts
// while regular traffic stays quiet.
//
// Run with: go run ./examples/sensornet
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	"hics"
)

const (
	calibration = 400 // known-good readings used for the initial fit
	live        = 120 // readings arriving after deployment
	fault1At    = 40  // arrival index of the pollution-coupling fault
	fault2At    = 85  // arrival index of the weather-coupling fault
)

func main() {
	net := newNetwork(42)
	names := []string{"noise", "pollution", "humidity", "temperature"}

	// Calibration: fit the subspace model once on clean traffic.
	train := make([][]float64, calibration)
	for i := range train {
		train[i] = net.regular()
	}
	model, err := hics.Fit(train, hics.Options{M: 100, Seed: 3, TopK: 5, MinPts: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("couplings learned during calibration:")
	for _, s := range model.Subspaces() {
		fmt.Printf("  contrast %.3f:", s.Contrast)
		for _, d := range s.Dims {
			fmt.Printf(" %s", names[d])
		}
		fmt.Println()
	}

	// Alerts fire above the 99.5th percentile of the calibration scores —
	// roughly two readings per thousand of regular traffic may still trip
	// it, the usual recall/noise trade of a percentile threshold.
	threshold := quantile(model.TrainingScores(), 0.995)

	// Deployment: the fitted model becomes an always-on detector that
	// follows the feed, re-fitting over its last 100 readings every 100
	// arrivals (synchronously, so this output is fully reproducible).
	stream, err := model.NewStream(hics.StreamOptions{Window: 100, RefitEvery: 100})
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()

	fmt.Printf("\nlive feed (%d readings, alert threshold %.2f):\n", live, threshold)
	ctx := context.Background()
	for i := 0; i < live; i++ {
		var reading []float64
		switch i {
		case fault1At:
			reading = net.faultyPollution()
		case fault2At:
			reading = net.faultyWeather()
		default:
			reading = net.regular()
		}
		results, err := stream.Push(ctx, reading)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if r.Score <= threshold {
				continue
			}
			kind := "regular"
			switch r.Index {
			case fault1At:
				kind = "planted pollution fault"
			case fault2At:
				kind = "planted weather fault"
			}
			fmt.Printf("  ALERT reading %3d  score %6.2f  (%s)  noise=%.2f pollution=%.2f humidity=%.2f temp=%.2f\n",
				r.Index, r.Score, kind, reading[0], reading[1], reading[2], reading[3])
		}
	}
	fmt.Printf("\nstream summary: %d readings scored, %d model refits\n", stream.Seen(), stream.Refits())
}

// quantile returns the q-quantile of the scores (nearest-rank).
func quantile(scores []float64, q float64) float64 {
	s := append([]float64(nil), scores...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// network simulates the sensor field of the paper's Fig. 1.
type network struct{ r *prng }

func newNetwork(seed uint64) *network { return &network{r: rnd(seed)} }

// regular samples a healthy node: noise tracks pollution through the
// latent traffic level, humidity anti-tracks temperature through the
// weather.
func (n *network) regular() []float64 {
	traffic := n.r.float()
	weather := n.r.float()
	return []float64{
		clamp(0.2 + 0.6*traffic + 0.04*n.r.normal()),
		clamp(0.15 + 0.65*traffic + 0.04*n.r.normal()),
		clamp(0.2 + 0.6*weather + 0.04*n.r.normal()),
		clamp(0.8 - 0.6*weather + 0.04*n.r.normal()),
	}
}

// faultyPollution reports a pollution spike without the matching traffic
// noise — every value individually normal, the coupling broken.
func (n *network) faultyPollution() []float64 {
	return []float64{
		clamp(0.25 + 0.04*n.r.normal()),
		0.75,
		clamp(0.5 + 0.04*n.r.normal()),
		clamp(0.5 + 0.04*n.r.normal()),
	}
}

// faultyWeather reports hot and humid at once — against the weather
// coupling.
func (n *network) faultyWeather() []float64 {
	return []float64{
		clamp(0.5 + 0.04*n.r.normal()),
		clamp(0.5 + 0.04*n.r.normal()),
		0.78,
		0.75,
	}
}

func clamp(v float64) float64 { return math.Max(0, math.Min(1, v)) }

type prng struct{ s uint64 }

func rnd(seed uint64) *prng { return &prng{s: seed*0x9e3779b97f4a7c15 + 1} }

func (p *prng) float() float64 {
	p.s = p.s*6364136223846793005 + 1442695040888963407
	return float64(p.s>>11) / (1 << 53)
}

func (p *prng) normal() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += p.float()
	}
	return sum - 6
}
