package hics_test

import (
	"context"
	"fmt"
	"math"

	"hics"
)

// exampleRows builds a small deterministic dataset: two correlated
// attributes forming clusters plus one independent noise attribute —
// the shape HiCS is built to exploit.
func exampleRows(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		f := float64(i)
		c := 0.3
		if i%2 == 1 {
			c = 0.7
		}
		rows[i] = []float64{
			c + 0.02*math.Sin(3*f),
			c + 0.02*math.Cos(5*f),
			0.5 + 0.4*math.Sin(1.7*f),
		}
	}
	return rows
}

// ExampleFit runs the subspace search once, freezes the result into a
// reusable Model, and scores new observations out of sample — the
// fit/score split behind the hicsd serving layer.
func ExampleFit() {
	model, err := hics.Fit(exampleRows(80), hics.Options{Seed: 42, M: 10, TopK: 3})
	if err != nil {
		panic(err)
	}

	// Score a fresh point against the frozen training state: no Monte
	// Carlo search runs at scoring time.
	score, err := model.Score([]float64{0.3, 0.7, 0.5})
	if err != nil {
		panic(err)
	}
	fmt.Println("scored one point:", score > 0)

	scores, err := model.ScoreBatch([][]float64{{0.3, 0.3, 0.5}, {0.7, 0.7, 0.1}})
	if err != nil {
		panic(err)
	}
	fmt.Println("batch scores:", len(scores))
	// Output:
	// scored one point: true
	// batch scores: 2
}

// ExampleModel_NewStream wraps a fitted model into a warm streaming
// detector: every pushed row is scored immediately against the frozen
// model, and the sliding window is ready to drive periodic refits.
func ExampleModel_NewStream() {
	model, err := hics.Fit(exampleRows(80), hics.Options{Seed: 42, M: 10, TopK: 3})
	if err != nil {
		panic(err)
	}

	stream, err := model.NewStream(hics.StreamOptions{Window: 40})
	if err != nil {
		panic(err)
	}
	defer stream.Close()

	ctx := context.Background()
	for _, row := range exampleRows(3) {
		results, err := stream.Push(ctx, row)
		if err != nil {
			panic(err)
		}
		for _, r := range results {
			fmt.Printf("arrival %d scored: %v\n", r.Index, r.Score > 0)
		}
	}
	// Output:
	// arrival 0 scored: true
	// arrival 1 scored: true
	// arrival 2 scored: true
}
