package hics

import (
	"math"
	"sort"
	"strings"
	"testing"

	"hics/internal/eval"
	"hics/internal/rng"
	"hics/internal/synth"
)

// demoRows builds row-major data with a strongly correlated pair
// (attrs 0,1), noise attrs, and one planted non-trivial outlier at row 0.
func demoRows(seed uint64, n, d int) [][]float64 {
	r := rng.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		c := 0.3
		if r.Float64() < 0.5 {
			c = 0.7
		}
		row[0] = r.NormalScaled(c, 0.04)
		row[1] = r.NormalScaled(c, 0.04)
		for j := 2; j < d; j++ {
			row[j] = r.Float64()
		}
		rows[i] = row
	}
	// Non-trivial outlier: anti-diagonal combination.
	rows[0][0] = 0.3
	rows[0][1] = 0.7
	return rows
}

func TestSearchSubspacesFindsPlantedPair(t *testing.T) {
	rows := demoRows(1, 400, 6)
	subs, err := SearchSubspaces(rows, Options{M: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) == 0 {
		t.Fatal("no subspaces")
	}
	top := subs[0]
	has0, has1 := false, false
	for _, d := range top.Dims {
		if d == 0 {
			has0 = true
		}
		if d == 1 {
			has1 = true
		}
	}
	if !has0 || !has1 {
		t.Errorf("top subspace %v does not contain the planted pair", top.Dims)
	}
	for i := 1; i < len(subs); i++ {
		if subs[i].Contrast > subs[i-1].Contrast {
			t.Fatal("subspaces not sorted by descending contrast")
		}
	}
}

func TestRankFlagsPlantedOutlier(t *testing.T) {
	rows := demoRows(2, 400, 6)
	res, err := Rank(rows, Options{M: 50, Seed: 2, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 400 {
		t.Fatalf("score count %d", len(res.Scores))
	}
	top := res.TopOutliers(5)
	found := false
	for _, i := range top {
		if i == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("planted outlier not in top 5: %v", top)
	}
}

func TestRankWithKNNAndMax(t *testing.T) {
	rows := demoRows(3, 200, 4)
	res, err := Rank(rows, Options{M: 20, Seed: 3, UseKNNScore: true, MaxAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Scores {
		if math.IsNaN(s) {
			t.Fatalf("NaN score at %d", i)
		}
	}
}

func TestRankKSVariant(t *testing.T) {
	rows := demoRows(4, 200, 4)
	res, err := Rank(rows, Options{M: 20, Seed: 4, Test: "ks"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) == 0 {
		t.Fatal("KS variant returned no subspaces")
	}
}

func TestRankQualityOnBenchmark(t *testing.T) {
	b, err := synth.Generate(synth.Config{N: 500, D: 15, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Data.Data
	rows := make([][]float64, ds.N())
	for i := range rows {
		rows[i] = ds.Row(i, nil)
	}
	res, err := Rank(rows, Options{M: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	auc, err := eval.AUC(res.Scores, b.Data.Outlier)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.8 {
		t.Errorf("public API AUC = %.3f on planted benchmark, want >= 0.8", auc)
	}
}

func TestContrastPublic(t *testing.T) {
	rows := demoRows(5, 300, 4)
	cCorr, err := Contrast(rows, []int{0, 1}, Options{M: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cNoise, err := Contrast(rows, []int{2, 3}, Options{M: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cCorr <= cNoise {
		t.Errorf("correlated contrast %v <= noise contrast %v", cCorr, cNoise)
	}
}

func TestLOFScoresPublic(t *testing.T) {
	rows := demoRows(6, 150, 3)
	scores, err := LOFScores(rows, 0) // default MinPts
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 150 {
		t.Fatalf("score count %d", len(scores))
	}
}

func TestOptionValidation(t *testing.T) {
	rows := demoRows(7, 50, 3)
	if _, err := Rank(rows, Options{Test: "bogus"}); err == nil {
		t.Error("bad test name should fail")
	}
	if _, err := Rank(nil, Options{}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := SearchSubspaces([][]float64{{1, 2}, {3}}, Options{}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := Contrast(rows, []int{0}, Options{}); err == nil {
		t.Error("1-d contrast should fail")
	}
}

// Out-of-range option values must be rejected at the API boundary — with
// the offending field named in the error — instead of silently deferring
// to defaults.
func TestOptionRangeValidation(t *testing.T) {
	rows := demoRows(7, 50, 3)
	cases := []struct {
		name string
		opts Options
		want string // substring the error must contain
	}{
		{"negative M", Options{M: -1}, "M"},
		{"negative Alpha", Options{Alpha: -0.1}, "Alpha"},
		{"Alpha one", Options{Alpha: 1}, "Alpha"},
		{"Alpha above one", Options{Alpha: 1.5}, "Alpha"},
		{"Alpha NaN", Options{Alpha: math.NaN()}, "Alpha"},
		{"negative MinPts", Options{MinPts: -3}, "MinPts"},
		{"TopK below -1", Options{TopK: -2}, "TopK"},
		{"negative Workers", Options{Workers: -1}, "Workers"},
		{"unknown searcher", Options{Search: "bogus"}, "searcher"},
		{"unknown scorer", Options{Scorer: "bogus"}, "scorer"},
		{"scorer conflicts with UseKNNScore", Options{Scorer: "lof", UseKNNScore: true}, "UseKNNScore"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for entry, f := range map[string]func() error{
				"Rank": func() error { _, err := Rank(rows, tc.opts); return err },
				"Fit":  func() error { _, err := Fit(rows, tc.opts); return err },
				"SearchSubspaces": func() error {
					_, err := SearchSubspaces(rows, tc.opts)
					return err
				},
			} {
				err := f()
				if err == nil {
					t.Fatalf("%s accepted %+v", entry, tc.opts)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Errorf("%s error %q does not mention %q", entry, err, tc.want)
				}
			}
		})
	}
	// Boundary values that must stay valid: zeros defer to defaults, -1
	// keeps all subspaces.
	for _, ok := range []Options{{}, {TopK: -1, M: 5, Seed: 1}} {
		if _, err := SearchSubspaces(rows, ok); err != nil {
			t.Errorf("valid options %+v rejected: %v", ok, err)
		}
	}
}

// Every registry-listed searcher and scorer name must run end-to-end
// through Rank. Sizes are kept tiny — the full-size matrix lives in
// integration_test.go; this is the always-on guard that no registered
// name is unreachable from the public API.
func TestRankEveryRegistryMethod(t *testing.T) {
	rows := demoRows(11, 80, 4)
	for _, search := range SearcherNames() {
		for _, scorer := range ScorerNames() {
			opts := Options{M: 5, TopK: 8, Seed: 3, Search: search, Scorer: scorer}
			res, err := Rank(rows, opts)
			if err != nil {
				t.Errorf("Rank(%s, %s): %v", search, scorer, err)
				continue
			}
			if len(res.Scores) != len(rows) {
				t.Errorf("Rank(%s, %s): %d scores for %d rows", search, scorer, len(res.Scores), len(rows))
			}
			if len(res.Subspaces) == 0 {
				t.Errorf("Rank(%s, %s): no subspaces", search, scorer)
			}
		}
	}
}

func TestTopOutliersOrdering(t *testing.T) {
	r := &Result{Scores: []float64{0.2, 0.9, 0.5, 0.7}}
	top := r.TopOutliers(3)
	want := []int{1, 3, 2}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopOutliers = %v, want %v", top, want)
		}
	}
	if got := r.TopOutliers(100); len(got) != 4 {
		t.Errorf("clamped TopOutliers length %d", len(got))
	}
}

func TestTopOutliersEdgeCases(t *testing.T) {
	r := &Result{Scores: []float64{0.2, 0.9, 0.5, 0.7}}
	if got := r.TopOutliers(0); len(got) != 0 {
		t.Errorf("TopOutliers(0) = %v, want empty", got)
	}
	if got := r.TopOutliers(-5); len(got) != 0 {
		t.Errorf("TopOutliers(-5) = %v, want empty", got)
	}
	if got := r.TopOutliers(7); len(got) != 4 {
		t.Errorf("TopOutliers beyond len = %v, want all 4", got)
	}
	empty := &Result{Scores: nil}
	if got := empty.TopOutliers(3); len(got) != 0 {
		t.Errorf("TopOutliers on empty result = %v", got)
	}
}

func TestTopOutliersTiedScores(t *testing.T) {
	// Ties break toward the lower object index, at every rank.
	r := &Result{Scores: []float64{0.5, 0.9, 0.5, 0.9, 0.1, 0.5}}
	want := []int{1, 3, 0, 2, 5, 4}
	for k := 0; k <= len(want); k++ {
		got := r.TopOutliers(k)
		if len(got) != k {
			t.Fatalf("TopOutliers(%d) returned %d indices", k, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("TopOutliers(%d) = %v, want prefix of %v", k, got, want)
			}
		}
	}
}

func TestTopOutliersMatchesSort(t *testing.T) {
	// Heap selection must agree with a full stable sort for every k.
	r := rng.New(42)
	scores := make([]float64, 500)
	for i := range scores {
		scores[i] = math.Floor(r.Float64()*50) / 50 // many ties
	}
	res := &Result{Scores: scores}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	for _, k := range []int{1, 10, 250, 499, 500} {
		got := res.TopOutliers(k)
		for i := range got {
			if got[i] != order[i] {
				t.Fatalf("k=%d rank %d: heap %d, sort %d", k, i, got[i], order[i])
			}
		}
	}
}

// TestTopOutliersRandomizedVsSort compares the heap selection against a
// full stable sort over many random score vectors with heavy duplication,
// for every k from 0 through past the end.
func TestTopOutliersRandomizedVsSort(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 60; trial++ {
		n := r.IntRange(1, 120)
		distinct := float64(r.IntRange(1, 8)) // few distinct values => many duplicates
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = math.Floor(r.Float64() * distinct)
		}
		res := &Result{Scores: scores}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
		for k := 0; k <= n+2; k++ {
			got := res.TopOutliers(k)
			wantLen := k
			if wantLen > n {
				wantLen = n
			}
			if wantLen < 0 {
				wantLen = 0
			}
			if len(got) != wantLen {
				t.Fatalf("trial %d n=%d k=%d: got %d indices, want %d", trial, n, k, len(got), wantLen)
			}
			for i := range got {
				if got[i] != order[i] {
					t.Fatalf("trial %d n=%d k=%d rank %d: heap %d (score %v), sort %d (score %v)",
						trial, n, k, i, got[i], scores[got[i]], order[i], scores[order[i]])
				}
			}
		}
	}
}

// TestRankNeighborIndexEquivalence is the acceptance contract at the
// public-API level: pinning the KD-tree must reproduce the brute-force
// ranking bit for bit.
func TestRankNeighborIndexEquivalence(t *testing.T) {
	rows := demoRows(11, 600, 5)
	brute, err := Rank(rows, Options{M: 20, Seed: 11, NeighborIndex: "brute"})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Rank(rows, Options{M: 20, Seed: 11, NeighborIndex: "kdtree"})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Rank(rows, Options{M: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range brute.Scores {
		if brute.Scores[i] != tree.Scores[i] {
			t.Fatalf("score[%d]: brute %v != kdtree %v", i, brute.Scores[i], tree.Scores[i])
		}
		if brute.Scores[i] != auto.Scores[i] {
			t.Fatalf("score[%d]: brute %v != auto %v", i, brute.Scores[i], auto.Scores[i])
		}
	}
	if _, err := Rank(rows, Options{M: 20, NeighborIndex: "octree"}); err == nil {
		t.Error("invalid NeighborIndex should fail")
	}
}

func TestRankKNNScorerIndexEquivalence(t *testing.T) {
	rows := demoRows(12, 500, 4)
	brute, err := Rank(rows, Options{M: 20, Seed: 12, UseKNNScore: true, NeighborIndex: "brute"})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Rank(rows, Options{M: 20, Seed: 12, UseKNNScore: true, NeighborIndex: "kdtree"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range brute.Scores {
		if brute.Scores[i] != tree.Scores[i] {
			t.Fatalf("kNN score[%d]: brute %v != kdtree %v", i, brute.Scores[i], tree.Scores[i])
		}
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	rows := demoRows(8, 200, 5)
	a, err := Rank(rows, Options{M: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rank(rows, Options{M: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatal("same seed produced different rankings")
		}
	}
}
