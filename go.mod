module hics

go 1.24
