package hics

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"sync"
	"testing"

	"hics/internal/rng"
)

// TestModelTrainingScoresEqualRank is the acceptance contract: Fit's
// training scores — and Model.Score on each training row — are bit-for-bit
// the Rank batch scores, for every scorer, aggregation and backend.
func TestModelTrainingScoresEqualRank(t *testing.T) {
	rows := demoRows(21, 300, 5)
	for _, useKNN := range []bool{false, true} {
		for _, agg := range []string{"", "average", "max", "product"} {
			for _, index := range []string{"", "brute", "kdtree"} {
				opts := Options{M: 20, Seed: 21, UseKNNScore: useKNN, Aggregation: agg, NeighborIndex: index}
				res, err := Rank(rows, opts)
				if err != nil {
					t.Fatal(err)
				}
				m, err := Fit(rows, opts)
				if err != nil {
					t.Fatal(err)
				}
				train := m.TrainingScores()
				if len(train) != len(res.Scores) {
					t.Fatalf("knn=%v agg=%q index=%q: %d training scores for %d objects",
						useKNN, agg, index, len(train), len(res.Scores))
				}
				for i := range res.Scores {
					if train[i] != res.Scores[i] {
						t.Fatalf("knn=%v agg=%q index=%q: train[%d] = %v, Rank = %v",
							useKNN, agg, index, i, train[i], res.Scores[i])
					}
					s, err := m.Score(rows[i])
					if err != nil {
						t.Fatal(err)
					}
					if s != res.Scores[i] {
						t.Fatalf("knn=%v agg=%q index=%q: Score(row %d) = %v, Rank = %v",
							useKNN, agg, index, i, s, res.Scores[i])
					}
				}
				if len(m.Subspaces()) != len(res.Subspaces) {
					t.Fatalf("model has %d subspaces, Rank %d", len(m.Subspaces()), len(res.Subspaces))
				}
			}
		}
	}
}

// TestModelOutOfSampleScoring: new points score without refitting, a
// planted-outlier-like query scores clearly above central queries, and the
// two backends agree bit for bit.
func TestModelOutOfSampleScoring(t *testing.T) {
	rows := demoRows(22, 400, 5)
	brute, err := Fit(rows, Options{M: 20, Seed: 22, NeighborIndex: "brute"})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Fit(rows, Options{M: 20, Seed: 22, NeighborIndex: "kdtree"})
	if err != nil {
		t.Fatal(err)
	}
	// The anti-diagonal combination is the planted non-trivial outlier
	// pattern; the diagonal combination is dense.
	outlier := []float64{0.3, 0.7, 0.5, 0.5, 0.5}
	inlier := []float64{0.7, 0.7, 0.5, 0.5, 0.5}
	so, err := brute.Score(outlier)
	if err != nil {
		t.Fatal(err)
	}
	si, err := brute.Score(inlier)
	if err != nil {
		t.Fatal(err)
	}
	if so <= si {
		t.Errorf("out-of-sample outlier score %v <= inlier score %v", so, si)
	}
	r := rng.New(5)
	for trial := 0; trial < 100; trial++ {
		q := make([]float64, 5)
		for j := range q {
			q[j] = r.Float64()
		}
		a, err := brute.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tree.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("Score(%v): brute %v != kdtree %v", q, a, b)
		}
		if math.IsNaN(a) {
			t.Fatalf("Score(%v) = NaN", q)
		}
	}
}

func TestModelScoreBatch(t *testing.T) {
	rows := demoRows(23, 250, 4)
	m, err := Fit(rows, Options{M: 20, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	queries := make([][]float64, 137)
	for i := range queries {
		q := make([]float64, 4)
		for j := range q {
			q[j] = r.Float64()
		}
		queries[i] = q
	}
	// A few training rows mixed in exercise the leave-one-out path.
	queries[0] = rows[17]
	queries[50] = rows[0]
	batch, err := m.ScoreBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		s, err := m.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != s {
			t.Fatalf("ScoreBatch[%d] = %v, Score = %v", i, batch[i], s)
		}
	}
	if _, err := m.ScoreBatch([][]float64{{1, 2}}); err == nil {
		t.Error("short row should fail")
	}
	if out, err := m.ScoreBatch(nil); err != nil || len(out) != 0 {
		t.Errorf("empty batch gave %v, %v", out, err)
	}
}

// TestModelSaveLoadRoundTrip is the persistence acceptance contract: a
// Save/LoadModel round trip reproduces identical scores on training rows
// and on out-of-sample points, for both scorers and all aggregations.
func TestModelSaveLoadRoundTrip(t *testing.T) {
	rows := demoRows(24, 300, 4)
	r := rng.New(9)
	queries := make([][]float64, 60)
	for i := range queries {
		q := make([]float64, 4)
		for j := range q {
			q[j] = r.Float64() * 1.2
		}
		queries[i] = q
	}
	for _, useKNN := range []bool{false, true} {
		for _, agg := range []string{"average", "max", "product"} {
			m, err := Fit(rows, Options{M: 20, Seed: 24, UseKNNScore: useKNN, Aggregation: agg})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if loaded.D() != m.D() || loaded.N() != m.N() {
				t.Fatalf("knn=%v agg=%s: loaded D=%d N=%d, want D=%d N=%d",
					useKNN, agg, loaded.D(), loaded.N(), m.D(), m.N())
			}
			for i, s := range m.TrainingScores() {
				ls, err := loaded.Score(rows[i])
				if err != nil {
					t.Fatal(err)
				}
				if ls != s {
					t.Fatalf("knn=%v agg=%s: loaded Score(train %d) = %v, want %v", useKNN, agg, i, ls, s)
				}
			}
			for _, q := range queries {
				a, err := m.Score(q)
				if err != nil {
					t.Fatal(err)
				}
				b, err := loaded.Score(q)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("knn=%v agg=%s: loaded Score(%v) = %v, original %v", useKNN, agg, q, b, a)
				}
			}
			sm, sl := m.Subspaces(), loaded.Subspaces()
			if len(sm) != len(sl) {
				t.Fatalf("loaded %d subspaces, want %d", len(sl), len(sm))
			}
			for i := range sm {
				if sm[i].Contrast != sl[i].Contrast || len(sm[i].Dims) != len(sl[i].Dims) {
					t.Fatalf("subspace %d: loaded %+v, want %+v", i, sl[i], sm[i])
				}
			}
		}
	}
}

func TestModelConcurrentScoring(t *testing.T) {
	rows := demoRows(25, 300, 4)
	m, err := Fit(rows, Options{M: 20, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.4, 0.6, 0.2, 0.8}
	want, err := m.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w))
			for i := 0; i < 100; i++ {
				q := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
				if _, err := m.Score(q); err != nil {
					t.Errorf("concurrent Score: %v", err)
					return
				}
				got, err := m.Score(probe)
				if err != nil || got != want {
					t.Errorf("concurrent Score(probe) = %v, %v; want %v", got, err, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestModelErrors(t *testing.T) {
	rows := demoRows(26, 100, 3)
	if _, err := Fit(nil, Options{}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := Fit(rows, Options{Test: "bogus"}); err == nil {
		t.Error("bad test name should fail")
	}
	if _, err := Fit(rows, Options{Aggregation: "median"}); err == nil {
		t.Error("bad aggregation should fail")
	}
	m, err := Fit(rows, Options{M: 10, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Score([]float64{1, 2}); err == nil {
		t.Error("short point should fail")
	}
	if _, err := m.Score(make([]float64, 9)); err == nil {
		t.Error("long point should fail")
	}
	if _, err := m.Score([]float64{math.NaN(), 0.5, 0.5}); err == nil {
		t.Error("NaN coordinate should fail, not score as an inlier")
	}
	if _, err := m.Score([]float64{0.5, math.Inf(1), 0.5}); err == nil {
		t.Error("Inf coordinate should fail")
	}
	if _, err := m.ScoreBatch([][]float64{{0.5, 0.5, math.NaN()}}); err == nil {
		t.Error("NaN in batch should fail")
	}
}

// TestNonFiniteInputRejected: every data-accepting entry point rejects
// NaN/±Inf input at the API boundary with the offending row and column
// named, instead of silently producing meaningless scores.
func TestNonFiniteInputRejected(t *testing.T) {
	entry := map[string]func(rows [][]float64) error{
		"Rank": func(rows [][]float64) error { _, err := Rank(rows, Options{M: 10, Seed: 29}); return err },
		"Fit":  func(rows [][]float64) error { _, err := Fit(rows, Options{M: 10, Seed: 29}); return err },
		"SearchSubspaces": func(rows [][]float64) error {
			_, err := SearchSubspaces(rows, Options{M: 10, Seed: 29})
			return err
		},
		"LOFScores": func(rows [][]float64) error { _, err := LOFScores(rows, 5); return err },
	}
	for name, fn := range entry {
		for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			rows := demoRows(29, 120, 3)
			rows[5][2] = bad
			err := fn(rows)
			if err == nil {
				t.Errorf("%s accepted %v input", name, bad)
				continue
			}
			if !strings.Contains(err.Error(), "row 5") || !strings.Contains(err.Error(), "column 2") {
				t.Errorf("%s(%v) error %q does not name row 5 column 2", name, bad, err)
			}
		}
	}
	// ScoreBatch names the offending row too.
	rows := demoRows(29, 120, 3)
	m, err := Fit(rows, Options{M: 10, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.ScoreBatch([][]float64{{0.5, 0.5, 0.5}, {0.5, math.Inf(-1), 0.5}})
	if err == nil || !strings.Contains(err.Error(), "row 1") || !strings.Contains(err.Error(), "attribute 1") {
		t.Errorf("ScoreBatch error %v does not name row 1 attribute 1", err)
	}
	// A batch row bit-identical to a training row keeps its leave-one-out
	// score even while the boundary check is active.
	got, err := m.ScoreBatch([][]float64{rows[7]})
	if err != nil {
		t.Fatalf("training row in batch rejected: %v", err)
	}
	if got[0] != m.TrainingScores()[7] {
		t.Errorf("training-row batch score %v, want %v", got[0], m.TrainingScores()[7])
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := LoadModel(bytes.NewReader([]byte("not a model file at all"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Right magic, unsupported version.
	bad := append([]byte("HICSMODEL"), 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := LoadModel(bytes.NewReader(bad)); err == nil {
		t.Error("unknown version should fail")
	}
	// Truncated payload.
	rows := demoRows(27, 80, 3)
	m, err := Fit(rows, Options{M: 10, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated payload should fail")
	}
}

// The fit/score split must work for any searcher combined with any
// FitScorer-capable scorer, and the persisted method pair must survive a
// save/load round trip with identical scores.
func TestModelMethodPairRoundTrip(t *testing.T) {
	rows := demoRows(31, 200, 4)
	queries := [][]float64{
		{0.2, 0.8, 0.5, 0.5},
		{0.7, 0.3, 0.1, 0.9},
	}
	for _, search := range SearcherNames() {
		for _, scorer := range FitScorerNames() {
			opts := Options{M: 8, TopK: 10, Seed: 31, Search: search, Scorer: scorer}
			m, err := Fit(rows, opts)
			if err != nil {
				t.Fatalf("Fit(%s, %s): %v", search, scorer, err)
			}
			if m.SearchMethod() != search || m.ScorerMethod() != scorer {
				t.Fatalf("fitted method pair = (%s, %s), want (%s, %s)",
					m.SearchMethod(), m.ScorerMethod(), search, scorer)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadModel(&buf)
			if err != nil {
				t.Fatalf("LoadModel(%s, %s): %v", search, scorer, err)
			}
			if loaded.SearchMethod() != search || loaded.ScorerMethod() != scorer {
				t.Fatalf("loaded method pair = (%s, %s), want (%s, %s)",
					loaded.SearchMethod(), loaded.ScorerMethod(), search, scorer)
			}
			if loaded.FormatVersion() != 2 {
				t.Fatalf("loaded FormatVersion() = %d, want 2", loaded.FormatVersion())
			}
			for _, q := range queries {
				a, err := m.Score(q)
				if err != nil {
					t.Fatal(err)
				}
				b, err := loaded.Score(q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("(%s, %s): loaded Score = %v, original %v", search, scorer, b, a)
				}
			}
		}
	}
}

// Scorers without a fitted form must be rejected by Fit with an error
// naming the supported ones, not fail deep inside the pipeline.
func TestFitRejectsNonFitScorers(t *testing.T) {
	rows := demoRows(32, 100, 3)
	for _, scorer := range []string{"orca", "outres"} {
		_, err := Fit(rows, Options{M: 5, Seed: 32, Scorer: scorer})
		if err == nil {
			t.Fatalf("Fit accepted scorer %q", scorer)
		}
		for _, want := range []string{scorer, "lof", "knn"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("Fit(%s) error %q does not mention %q", scorer, err, want)
			}
		}
	}
}

// A model file recording a method pair the loader cannot rebuild must be
// rejected even when the payload is otherwise intact.
func TestLoadModelRejectsUnbuildablePair(t *testing.T) {
	rows := demoRows(33, 100, 3)
	m, err := Fit(rows, Options{M: 5, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(*modelFileV2)) []byte {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		var mf modelFileV2
		if err := gob.NewDecoder(bytes.NewReader(raw[len(modelMagic)+4:])).Decode(&mf); err != nil {
			t.Fatal(err)
		}
		mutate(&mf)
		var out bytes.Buffer
		out.Write(raw[:len(modelMagic)+4])
		if err := gob.NewEncoder(&out).Encode(&mf); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}

	badScorer := corrupt(func(mf *modelFileV2) { mf.Scorer = "outres" })
	if _, err := LoadModel(bytes.NewReader(badScorer)); err == nil {
		t.Error("scorer without a fitted form should be rejected")
	} else if !strings.Contains(err.Error(), "outres") || !strings.Contains(err.Error(), "lof") {
		t.Errorf("error %q should name the offender and the supported scorers", err)
	}

	badSearch := corrupt(func(mf *modelFileV2) { mf.Search = "quantum" })
	if _, err := LoadModel(bytes.NewReader(badSearch)); err == nil {
		t.Error("unknown searcher should be rejected")
	} else if !strings.Contains(err.Error(), "quantum") || !strings.Contains(err.Error(), "hics") {
		t.Errorf("error %q should name the offender and the valid searchers", err)
	}
}

// TestAggregationOptionCompat pins the Options.Aggregation / legacy
// MaxAggregation interplay.
func TestAggregationOptionCompat(t *testing.T) {
	rows := demoRows(28, 200, 4)
	legacy, err := Rank(rows, Options{M: 20, Seed: 28, MaxAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	named, err := Rank(rows, Options{M: 20, Seed: 28, Aggregation: "max"})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Rank(rows, Options{M: 20, Seed: 28, Aggregation: "max", MaxAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy.Scores {
		if legacy.Scores[i] != named.Scores[i] || legacy.Scores[i] != both.Scores[i] {
			t.Fatalf("score[%d]: MaxAggregation %v, Aggregation=max %v, both %v",
				i, legacy.Scores[i], named.Scores[i], both.Scores[i])
		}
	}
	// Product is reachable and differs from average on real data.
	avg, err := Rank(rows, Options{M: 20, Seed: 28})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := Rank(rows, Options{M: 20, Seed: 28, Aggregation: "product"})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range avg.Scores {
		if avg.Scores[i] != prod.Scores[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("product aggregation returned the average scores")
	}
	// Conflicting settings fail loudly.
	if _, err := Rank(rows, Options{M: 20, Seed: 28, Aggregation: "average", MaxAggregation: true}); err == nil {
		t.Error("conflicting aggregation settings should fail")
	}
}
