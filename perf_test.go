package hics

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"hics/internal/rng"
)

// TestFitLSHSaveLoadRoundTrip pins the approximate backend's persistence
// contract: the forest rebuild at load time is seed-deterministic, so a
// Save/LoadModel round trip with NeighborIndex "lsh" reproduces identical
// scores on training rows and out-of-sample points.
func TestFitLSHSaveLoadRoundTrip(t *testing.T) {
	rows := demoRows(31, 500, 4)
	m, err := Fit(rows, Options{M: 20, Seed: 31, NeighborIndex: "lsh"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range m.TrainingScores() {
		ls, err := loaded.Score(rows[i])
		if err != nil {
			t.Fatal(err)
		}
		if ls != s {
			t.Fatalf("loaded Score(train %d) = %v, want %v", i, ls, s)
		}
	}
	r := rng.New(13)
	for trial := 0; trial < 50; trial++ {
		q := make([]float64, 4)
		for j := range q {
			q[j] = r.Float64() * 1.2
		}
		a, err := m.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("loaded Score(%v) = %v, original %v", q, b, a)
		}
	}
}

// TestLSHScoresCloseToExact: the approximate backend's model scores stay
// close to the exact backend's on the same data — the recall loss may
// perturb individual neighborhoods, but the planted outlier must still
// stand out.
func TestLSHScoresCloseToExact(t *testing.T) {
	rows := demoRows(32, 600, 5)
	exact, err := Fit(rows, Options{M: 20, Seed: 32, NeighborIndex: "kdtree"})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Fit(rows, Options{M: 20, Seed: 32, NeighborIndex: "lsh"})
	if err != nil {
		t.Fatal(err)
	}
	outlier := []float64{0.3, 0.7, 0.5, 0.5, 0.5}
	inlier := []float64{0.7, 0.7, 0.5, 0.5, 0.5}
	so, err := approx.Score(outlier)
	if err != nil {
		t.Fatal(err)
	}
	si, err := approx.Score(inlier)
	if err != nil {
		t.Fatal(err)
	}
	if so <= si {
		t.Errorf("lsh outlier score %v <= inlier score %v", so, si)
	}
	// The subspace search is index-independent, so the frozen projections
	// must be identical.
	se, sa := exact.Subspaces(), approx.Subspaces()
	if len(se) != len(sa) {
		t.Fatalf("lsh model froze %d subspaces, exact %d", len(sa), len(se))
	}
	for i := range se {
		if se[i].Contrast != sa[i].Contrast {
			t.Fatalf("subspace %d contrast differs: lsh %v, exact %v", i, sa[i].Contrast, se[i].Contrast)
		}
	}
}

// TestAdaptiveFitMatchesRank: the fit/rank equivalence holds with the new
// performance knobs enabled — training scores are bit-for-bit the Rank
// scores under the same options.
func TestAdaptiveFitMatchesRank(t *testing.T) {
	rows := demoRows(33, 400, 6)
	opts := Options{M: 40, Seed: 33, AdaptiveM: true, MaxSampleRows: 300, CandidateCutoff: 8}
	res, err := Rank(rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	train := m.TrainingScores()
	if len(train) != len(res.Scores) {
		t.Fatalf("%d training scores for %d objects", len(train), len(res.Scores))
	}
	for i := range res.Scores {
		if train[i] != res.Scores[i] {
			t.Fatalf("train[%d] = %v, Rank = %v", i, train[i], res.Scores[i])
		}
	}
}

// TestPerfOptionValidation: the new knobs are validated at the API
// boundary.
func TestPerfOptionValidation(t *testing.T) {
	rows := demoRows(34, 50, 3)
	if _, err := Rank(rows, Options{MaxSampleRows: -1}); err == nil {
		t.Error("negative MaxSampleRows should be rejected")
	}
	if _, err := Rank(rows, Options{M: 5, NeighborIndex: "octree"}); err == nil {
		t.Error("unknown NeighborIndex should be rejected")
	}
}

// TestFitContextCancelAdaptive: cancellation lands inside the racing
// scheduler's rounds — a fit with AdaptiveM and subsampling enabled
// surfaces ctx.Err() promptly and leaks no goroutines.
func TestFitContextCancelAdaptive(t *testing.T) {
	rows := demoRows(35, 500, 12)
	baseline := goroutineBaseline()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	opts := heavyOpts()
	opts.AdaptiveM = true
	opts.MaxSampleRows = 400
	_, err := FitContext(ctx, rows, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}
