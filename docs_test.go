package hics_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLinkRe matches inline markdown links [text](target). Reference-style
// links are not used in this repository's docs.
var mdLinkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve walks README.md and docs/*.md and checks that
// every relative link points at a file or directory that exists, so the
// docs restructure cannot leave dangling cross-references. External
// (http/https/mailto) links and pure in-page anchors are skipped — CI
// has no network.
func TestDocLinksResolve(t *testing.T) {
	pages := []string{"README.md"}
	more, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	pages = append(pages, more...)
	if len(pages) < 2 {
		t.Fatalf("expected README.md plus docs/*.md, found only %v", pages)
	}

	for _, page := range pages {
		raw, err := os.ReadFile(page)
		if err != nil {
			t.Fatalf("reading %s: %v", page, err)
		}
		for _, m := range mdLinkRe.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			// Drop an in-page anchor suffix: guide.md#section checks guide.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(page), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link %q does not resolve (%v)", page, m[1], err)
			}
		}
	}
}
