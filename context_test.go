package hics

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hics/internal/rng"
)

// goroutineBaseline snapshots the goroutine count; waitGoroutines polls
// until the count returns to (near) the baseline, failing the test on
// timeout — the leak check of the cancellation contract.
func goroutineBaseline() int { return runtime.NumGoroutine() }

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		// A small allowance absorbs runtime-internal goroutines (timers,
		// GC workers) that come and go independently of the code under
		// test.
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after cancellation", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// heavyOpts makes the subspace search expensive enough that a test can
// reliably cancel it mid-run.
func heavyOpts() Options { return Options{M: 2000, Seed: 1} }

// TestRankContextPreCancelled checks an already-cancelled context never
// starts the search.
func TestRankContextPreCancelled(t *testing.T) {
	rows := demoRows(1, 300, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RankContext(ctx, rows, heavyOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pre-cancelled RankContext took %v, want an immediate return", elapsed)
	}
}

// TestRankContextCancelMidSearch checks a context cancelled while the
// Monte Carlo search is running surfaces ctx.Err() promptly — within one
// Monte Carlo chunk — and leaves no worker goroutine behind.
func TestRankContextCancelMidSearch(t *testing.T) {
	rows := demoRows(1, 500, 12)
	baseline := goroutineBaseline()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RankContext(ctx, rows, heavyOpts())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("rank finished in %v despite cancellation; result %d scores", elapsed, len(res.Scores))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The search alone takes many seconds at M=2000; a cooperative worker
	// must abandon it within one Monte Carlo chunk of the cancellation.
	if elapsed > 5*time.Second {
		t.Errorf("cancelled RankContext returned after %v, want a prompt exit", elapsed)
	}
	waitGoroutines(t, baseline)
}

// TestRankContextDeadline checks a deadlined context is honored and
// reports context.DeadlineExceeded.
func TestRankContextDeadline(t *testing.T) {
	rows := demoRows(1, 500, 12)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := RankContext(ctx, rows, heavyOpts())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestFitContextCancelled checks the fit path shares the cancellation
// semantics of the rank path.
func TestFitContextCancelled(t *testing.T) {
	rows := demoRows(1, 500, 12)
	baseline := goroutineBaseline()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err := FitContext(ctx, rows, heavyOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}

// TestSearchSubspacesContextCancelled checks the search-only entry point.
func TestSearchSubspacesContextCancelled(t *testing.T) {
	rows := demoRows(1, 500, 12)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err := SearchSubspacesContext(ctx, rows, heavyOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRankContextCancelMidScoring checks cancellation also lands inside
// the scoring step: with the fullspace searcher there is no Monte Carlo
// search at all — the whole run is one quadratic LOF batch pass, which
// must stop within one chunk of neighborhood queries.
func TestRankContextCancelMidScoring(t *testing.T) {
	r := rng.New(11)
	rows := make([][]float64, 6000)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	baseline := goroutineBaseline()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RankContext(ctx, rows, Options{Search: "fullspace", NeighborIndex: "brute", Seed: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled scoring pass returned after %v, want a prompt exit", elapsed)
	}
	waitGoroutines(t, baseline)
}

// TestScoreBatchContextCancelled checks batch scoring: an already-
// cancelled context never starts work, and a cancellation mid-batch
// returns ctx.Err() within a bounded wait with every worker joined.
func TestScoreBatchContextCancelled(t *testing.T) {
	train := demoRows(3, 150, 3)
	m, err := Fit(train, Options{M: 10, Seed: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	queries := make([][]float64, 200_000)
	for i := range queries {
		queries[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := m.ScoreBatchContext(pre, queries); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}

	baseline := goroutineBaseline()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = m.ScoreBatchContext(ctx, queries)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled ScoreBatchContext returned after %v, want a prompt exit", elapsed)
	}
	waitGoroutines(t, baseline)
}

// TestContextVariantsMatchPlainCalls checks the *Context entry points
// under an uncancelled context are bit-for-bit identical to their plain
// counterparts — the determinism half of the cancellation contract.
func TestContextVariantsMatchPlainCalls(t *testing.T) {
	rows := demoRows(5, 200, 5)
	opts := Options{M: 20, Seed: 3, TopK: 5}
	ctx := context.Background()

	plain, err := Rank(rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := RankContext(ctx, rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Scores) != len(withCtx.Scores) {
		t.Fatalf("score counts differ: %d vs %d", len(plain.Scores), len(withCtx.Scores))
	}
	for i := range plain.Scores {
		if plain.Scores[i] != withCtx.Scores[i] {
			t.Fatalf("score %d differs: %v vs %v", i, plain.Scores[i], withCtx.Scores[i])
		}
	}

	subs, err := SearchSubspaces(rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	subsCtx, err := SearchSubspacesContext(ctx, rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != len(subsCtx) {
		t.Fatalf("subspace counts differ: %d vs %d", len(subs), len(subsCtx))
	}
	for i := range subs {
		if subs[i].Contrast != subsCtx[i].Contrast {
			t.Fatalf("subspace %d contrast differs: %v vs %v", i, subs[i].Contrast, subsCtx[i].Contrast)
		}
	}

	m, err := FitContext(ctx, rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := m.ScoreBatchContext(ctx, rows[:20])
	if err != nil {
		t.Fatal(err)
	}
	plainBatch, err := m.ScoreBatch(rows[:20])
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if batch[i] != plainBatch[i] {
			t.Fatalf("batch score %d differs: %v vs %v", i, batch[i], plainBatch[i])
		}
	}
	for i, s := range m.TrainingScores() {
		if s != plain.Scores[i] {
			t.Fatalf("FitContext training score %d = %v, Rank score %v", i, s, plain.Scores[i])
		}
	}
}

// TestModelSetWorkers checks the batch parallelism bound produces
// identical scores at every setting (determinism does not depend on the
// worker count).
func TestModelSetWorkers(t *testing.T) {
	train := demoRows(3, 120, 3)
	m, err := Fit(train, Options{M: 10, Seed: 1, TopK: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	queries := make([][]float64, 500)
	for i := range queries {
		queries[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	ref, err := m.ScoreBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 0, -7} {
		m.SetWorkers(workers)
		got, err := m.ScoreBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: score %d = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}
