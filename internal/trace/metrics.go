package trace

import "hics/internal/metrics"

// The hicsd_trace_* families quantify the tracing layer itself: how
// many spans were opened, what was lost to caps and eviction, how full
// the /debug/traces ring is, and whether the NDJSON export is healthy.
// Registered on the process default registry like every other family;
// docs/metrics.md documents them and TestMetricsDocInSync enforces it.
var (
	mSpansStarted = metrics.Default.NewCounter("hicsd_trace_spans_started_total",
		"Spans opened (roots and children) across all traced requests.")
	mSpansDropped = metrics.Default.NewCounterVec("hicsd_trace_spans_dropped_total",
		"Spans lost before serving, by reason.", "reason")
	mTracesKept = metrics.Default.NewCounter("hicsd_trace_traces_kept_total",
		"Completed traces admitted to the ring (head-sampled, errored or slow).")
	mRingTraces = metrics.Default.NewGauge("hicsd_trace_ring_traces",
		"Completed traces currently retained for /debug/traces.")
	mExportErrors = metrics.Default.NewCounter("hicsd_trace_export_errors_total",
		"NDJSON span export write or encode failures.")
)
