// Package trace is the process-global, dependency-free tracing layer:
// W3C trace-context propagation (traceparent), monotonic span timing,
// head sampling with always-keep on error or slow traces, a bounded
// in-process ring buffer of completed traces served over HTTP, and
// optional NDJSON span export. It is the distributed companion of
// internal/metrics and follows the same conventions: stdlib only, a
// package-level Default instance, and invalid use failing loudly.
//
// A trace is rooted once per process hop (Tracer.StartRoot, called by
// the serving middleware); phases inside the hop open child spans with
// StartSpan, which is a no-op returning a nil *Span when the context
// carries no root — so library code can annotate unconditionally and
// pays nothing outside a traced request. All *Span methods are
// nil-receiver safe.
//
// Spans are recorded regardless of the head-sampling decision; the
// decision is applied when the root span ends, so a trace that turned
// out slow or errored is kept even when head sampling would have
// dropped it (tail keep). What "kept" means: the assembled trace enters
// the ring buffer (GET /debug/traces) and, when configured, its spans
// are appended to the NDJSON export writer.
package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C trace-context trace ID: 16 bytes, rendered as 32
// lowercase hex characters. The zero value is invalid per the spec.
type TraceID [16]byte

// SpanID is a W3C trace-context span ID: 8 bytes, 16 lowercase hex
// characters. The zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the trace ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the span ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the span ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of a span: what crosses a
// process boundary inside a traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the upstream head-sampling decision (the 01 flag bit).
	// A downstream hop honors it instead of re-rolling, so one decision
	// governs the whole distributed trace.
	Sampled bool
}

// Valid reports whether both IDs are non-zero, the W3C validity rule.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a version-00 traceparent header
// value: "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// version 00 exactly (and rejects the reserved version ff), requires
// lowercase hex per the spec, and rejects all-zero trace or span IDs.
// ok is false for anything malformed; callers then start a fresh trace.
func ParseTraceparent(s string) (sc SpanContext, ok bool) {
	// Layout: 2 (version) + 1 + 32 (trace-id) + 1 + 16 (span-id) + 1 +
	// 2 (flags) = 55 bytes, dash-separated.
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if s[:2] != "00" {
		// Only version 00 is generated today; ff is reserved-invalid
		// and anything else is from a future spec we cannot parse.
		return SpanContext{}, false
	}
	if !lowerHex(s[3:35]) || !lowerHex(s[36:52]) || !lowerHex(s[53:55]) {
		return SpanContext{}, false
	}
	hex.Decode(sc.TraceID[:], []byte(s[3:35]))
	hex.Decode(sc.SpanID[:], []byte(s[36:52]))
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return SpanContext{}, false
	}
	var flags byte
	b, _ := hex.DecodeString(s[53:55])
	flags = b[0]
	sc.Sampled = flags&0x01 != 0
	return sc, true
}

// lowerHex reports whether s is entirely lowercase hex digits.
func lowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// TraceIDFromString derives a trace ID deterministically from an
// arbitrary request-ID string, so a hop that receives an X-Request-Id
// but no traceparent still lands on the same trace ID as any other hop
// seeing that request ID. A string that already is 32 lowercase hex
// characters (a full trace ID) is used verbatim; anything else is
// expanded through FNV-1a over two salts. The result is non-zero for
// every input.
func TraceIDFromString(s string) TraceID {
	var t TraceID
	if len(s) == 32 && lowerHex(s) {
		hex.Decode(t[:], []byte(s))
		if !t.IsZero() {
			return t
		}
	}
	binary.BigEndian.PutUint64(t[:8], fnv1a(s, 0xcbf29ce484222325))
	binary.BigEndian.PutUint64(t[8:], fnv1a(s, 0x9e3779b97f4a7c15))
	if t.IsZero() { // vanishingly unlikely, but the spec forbids zero
		t[15] = 1
	}
	return t
}

// fnv1a is FNV-1a over s from the given offset basis.
func fnv1a(s string, basis uint64) uint64 {
	h := basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// EventData is one timestamped point event inside a span, in the JSON
// shape served by /debug/traces and the NDJSON export.
type EventData struct {
	Name string `json:"name"`
	// OffsetMS is milliseconds since the span started.
	OffsetMS float64 `json:"offset_ms"`
}

// SpanData is one completed span in its externally served JSON shape.
type SpanData struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartMS is milliseconds since the trace's root span started;
	// negative for a child that started before the local root was seen
	// (cannot happen in-process, kept for robustness).
	StartMS    float64        `json:"start_ms"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []EventData    `json:"events,omitempty"`
	Error      string         `json:"error,omitempty"`
}

// TraceData is one completed, kept trace: the local root span plus
// every child span that finished before the root did, as served by
// GET /debug/traces (newest trace first).
type TraceData struct {
	TraceID string    `json:"trace_id"`
	Root    string    `json:"root"`
	Start   time.Time `json:"start"`
	// DurationMS is the root span's wall time.
	DurationMS float64 `json:"duration_ms"`
	// Sampled records the head-sampling decision; a false value means
	// the trace was tail-kept because it errored or crossed the slow
	// threshold.
	Sampled bool   `json:"sampled"`
	Error   string `json:"error,omitempty"`
	// DroppedSpans counts spans lost to the per-trace cap or to ending
	// after the root; 0 means the trace is complete.
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// Config parameterizes a Tracer. The zero value is fully usable: it
// head-samples every trace, keeps errored traces and traces slower
// than DefaultSlowThreshold, retains DefaultRingSize traces, and does
// not export.
type Config struct {
	// Sample is the head-sampling probability in [0, 1]. 0 means the
	// default (sample everything); pass a negative value to head-sample
	// nothing, keeping only errored and slow traces. The decision is a
	// deterministic function of the trace ID, so every hop of a trace
	// agrees even without the propagated flag.
	Sample float64
	// SlowThreshold tail-keeps any trace whose root span runs at least
	// this long, regardless of the sampling decision. 0 means the
	// default (DefaultSlowThreshold); negative disables the slow keep.
	SlowThreshold time.Duration
	// RingSize bounds the completed traces retained for /debug/traces;
	// the oldest trace is evicted first. 0 means DefaultRingSize.
	RingSize int
	// MaxSpans caps recorded spans per trace; spans beyond the cap are
	// counted as dropped, not recorded. 0 means DefaultMaxSpans.
	MaxSpans int
	// Export, when non-nil, receives one JSON object per kept span,
	// newline-terminated (NDJSON), as each trace completes. Writes are
	// serialized by the tracer; write errors are counted on
	// hicsd_trace_export_errors_total and do not affect serving.
	Export io.Writer
}

// Defaults applied by New and Configure for zero Config fields.
const (
	DefaultSlowThreshold = 500 * time.Millisecond
	DefaultRingSize      = 256
	DefaultMaxSpans      = 512
)

// Tracer mints, records and retains traces. Create with New; the
// package-level Default is what the serving layers use unless a test
// injects its own.
type Tracer struct {
	mu   sync.Mutex
	cfg  Config
	ring []TraceData // completed kept traces, ring-ordered
	next int         // ring write cursor
	full bool

	// idState seeds span/trace ID minting: a splitmix64 stream advanced
	// with atomic adds, so ID creation never contends on mu.
	idState atomic.Uint64
}

// New returns a Tracer with cfg's zero fields replaced by defaults.
func New(cfg Config) *Tracer {
	t := &Tracer{}
	t.seed()
	t.Configure(cfg)
	return t
}

// seed initializes the ID stream from the OS entropy pool so separate
// processes never collide.
func (t *Tracer) seed() {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively impossible on supported
		// platforms; fall back to the clock rather than failing init.
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	t.idState.Store(binary.LittleEndian.Uint64(b[:]))
}

// Configure replaces the tracer's parameters, normalizing zero fields
// to the package defaults. The ring is resized (retaining nothing) when
// RingSize changes. Safe for concurrent use, but intended for startup.
func (t *Tracer) Configure(cfg Config) {
	if cfg.Sample == 0 {
		cfg.Sample = 1
	}
	if cfg.Sample < 0 {
		cfg.Sample = 0
	}
	if cfg.Sample > 1 {
		cfg.Sample = 1
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) != cfg.RingSize {
		t.ring = make([]TraceData, cfg.RingSize)
		t.next, t.full = 0, false
		mRingTraces.Set(0)
	}
	t.cfg = cfg
}

// Default is the process-global tracer, analogous to metrics.Default.
// cmd/hicsd configures it from the -trace-* flags at startup.
var Default = New(Config{})

// nextID advances the splitmix64 stream one step and mixes the output.
func (t *Tracer) nextID() uint64 {
	z := t.idState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mintTraceID mints a random non-zero trace ID.
func (t *Tracer) mintTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

// mintSpanID mints a random non-zero span ID.
func (t *Tracer) mintSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// sampleTrace is the deterministic head-sampling decision: a uniform
// hash of the trace ID compared against the configured probability, so
// all hops of one trace decide identically.
func sampleTrace(id TraceID, p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	// Re-mix the low half so IDs derived from request IDs (FNV) are
	// spread uniformly before the threshold compare.
	h := binary.BigEndian.Uint64(id[8:]) * 0x9e3779b97f4a7c15
	return float64(h>>11)/float64(1<<53) < p
}

// traceRec is the in-process accumulator for one trace: finished spans
// gather here until the root span ends and the keep decision is made.
type traceRec struct {
	tracer *Tracer
	id     TraceID
	head   bool // head-sampling decision (local roll or propagated flag)

	mu        sync.Mutex
	rootStart time.Time
	spans     []SpanData
	dropped   int
	errored   bool
	done      bool
}

// Span is one timed operation. A nil *Span is the valid no-op span: all
// methods are nil-safe, so callers annotate unconditionally. Attribute
// and event methods may be called from multiple goroutines (fan-out
// workers sharing the request context); End must be called exactly once
// by the goroutine that owns the operation.
type Span struct {
	rec    *traceRec
	sc     SpanContext
	parent SpanID
	// root marks the process-local root span (the one whose End
	// finalizes the trace). parent.IsZero() is not equivalent: a root
	// continuing a remote trace is parented under the upstream span.
	root  bool
	name  string
	start time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []EventData
	err    error
	ended  bool
}

// Context returns the span's propagated identity, for injection into an
// outgoing hop. The zero SpanContext on a nil span is invalid, so a
// caller can inject unconditionally and downstream parsing rejects it.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceIDString returns the 32-hex trace ID, or "" on a nil span.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// SpanIDString returns the 16-hex span ID, or "" on a nil span.
func (s *Span) SpanIDString() string {
	if s == nil {
		return ""
	}
	return s.sc.SpanID.String()
}

// SetAttr annotates the span; later values for the same key win.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AddEvent records a point-in-time event at the current offset.
func (s *Span) AddEvent(name string) {
	if s == nil {
		return
	}
	off := durationMS(time.Since(s.start))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, EventData{Name: name, OffsetMS: off})
}

// SetError marks the span failed; a trace containing any errored span
// is always kept. A nil err is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.err = err
}

// End finishes the span with monotonic timing and hands it to the trace
// record. Ending the root span finalizes the trace: the keep decision
// runs and the assembled trace enters the ring and the export. End is
// idempotent; extra calls are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		SpanID:     s.sc.SpanID.String(),
		Name:       s.name,
		DurationMS: durationMS(end),
		Events:     s.events,
	}
	if !s.parent.IsZero() {
		data.ParentID = s.parent.String()
	}
	if len(s.attrs) > 0 {
		data.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			data.Attrs[a.Key] = a.Value
		}
	}
	var errored bool
	if s.err != nil {
		data.Error = s.err.Error()
		errored = true
	}
	s.mu.Unlock()
	s.rec.finish(s, data, errored)
}

// durationMS converts to float milliseconds for the JSON shapes.
func durationMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// finish records one ended span on the trace; the root span triggers
// finalization.
func (r *traceRec) finish(s *Span, data SpanData, errored bool) {
	isRoot := s.root
	r.mu.Lock()
	if errored {
		r.errored = true
	}
	switch {
	case r.done:
		// The root already ended and the trace shipped; a straggler
		// (an async refit outliving its session) has nowhere to go.
		r.dropped++
		r.mu.Unlock()
		mSpansDropped.With("late").Inc()
		return
	case !isRoot && len(r.spans) >= r.tracer.maxSpans():
		r.dropped++
		r.mu.Unlock()
		mSpansDropped.With("cap").Inc()
		return
	}
	data.StartMS = durationMS(s.start.Sub(r.rootStart))
	r.spans = append(r.spans, data)
	if !isRoot {
		r.mu.Unlock()
		return
	}
	r.done = true
	td := TraceData{
		TraceID:      r.id.String(),
		Root:         s.name,
		Start:        r.rootStart,
		DurationMS:   data.DurationMS,
		Sampled:      r.head,
		Error:        data.Error,
		DroppedSpans: r.dropped,
		Spans:        r.spans,
	}
	errAny := r.errored
	r.mu.Unlock()

	// Order spans by start offset so /debug/traces reads as a timeline
	// rather than completion order (children complete before parents).
	sort.SliceStable(td.Spans, func(i, j int) bool { return td.Spans[i].StartMS < td.Spans[j].StartMS })

	tr := r.tracer
	keep := r.head || errAny
	if !keep {
		if slow := tr.slowThreshold(); slow > 0 && time.Duration(td.DurationMS*float64(time.Millisecond)) >= slow {
			keep = true
		}
	}
	if !keep {
		return
	}
	tr.keep(td)
}

// maxSpans reads the per-trace span cap under the config lock.
func (t *Tracer) maxSpans() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg.MaxSpans
}

// slowThreshold reads the tail-keep threshold under the config lock.
func (t *Tracer) slowThreshold() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg.SlowThreshold
}

// keep admits a completed trace to the ring (evicting the oldest when
// full) and appends its spans to the export writer if configured.
func (t *Tracer) keep(td TraceData) {
	t.mu.Lock()
	if t.full {
		mSpansDropped.With("evict").Add(int64(len(t.ring[t.next].Spans)))
	}
	t.ring[t.next] = td
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	occupancy := t.next
	if t.full {
		occupancy = len(t.ring)
	}
	export := t.cfg.Export
	t.mu.Unlock()
	mTracesKept.Inc()
	mRingTraces.Set(float64(occupancy))
	if export != nil {
		t.export(export, td)
	}
}

// exportSpan is the NDJSON line shape: SpanData plus trace identity.
type exportSpan struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"trace_start"`
	SpanData
}

// exportMu serializes NDJSON writes across traces; a file is a shared
// sink and interleaved lines would corrupt it.
var exportMu sync.Mutex

// export writes one NDJSON line per span of the kept trace.
func (t *Tracer) export(w io.Writer, td TraceData) {
	exportMu.Lock()
	defer exportMu.Unlock()
	for _, sp := range td.Spans {
		line, err := json.Marshal(exportSpan{TraceID: td.TraceID, Start: td.Start, SpanData: sp})
		if err == nil {
			line = append(line, '\n')
			_, err = w.Write(line)
		}
		if err != nil {
			mExportErrors.Inc()
		}
	}
}

// Traces returns the retained traces, newest first, filtered to those
// whose root ran at least min (0 keeps all) and truncated to limit
// (<= 0 means no limit). The returned slice is a snapshot; span slices
// are shared but never mutated after keep.
func (t *Tracer) Traces(min time.Duration, limit int) []TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	out := make([]TraceData, 0, n)
	// Walk backwards from the newest entry.
	for i := 0; i < n; i++ {
		idx := t.next - 1 - i
		if idx < 0 {
			idx += len(t.ring)
		}
		td := t.ring[idx]
		if min > 0 && time.Duration(td.DurationMS*float64(time.Millisecond)) < min {
			continue
		}
		out = append(out, td)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// StartRoot opens the trace's root span for this process hop. remote,
// when valid, is the upstream span context extracted from traceparent:
// the trace ID and sampling decision are inherited and the new span is
// parented under the remote span. Otherwise a fresh trace starts:
// fallback (when non-zero) becomes its trace ID — the serving layers
// derive it from the request ID so logs and traces join on one value —
// and head sampling is rolled locally. The returned context carries the
// span for StartSpan/SpanFromContext.
func (t *Tracer) StartRoot(ctx context.Context, name string, remote SpanContext, fallback TraceID) (context.Context, *Span) {
	rec := &traceRec{tracer: t, rootStart: time.Now()}
	var parent SpanID
	if remote.Valid() {
		rec.id = remote.TraceID
		rec.head = remote.Sampled
		parent = remote.SpanID
	} else {
		if fallback.IsZero() {
			rec.id = t.mintTraceID()
		} else {
			rec.id = fallback
		}
		t.mu.Lock()
		p := t.cfg.Sample
		t.mu.Unlock()
		rec.head = sampleTrace(rec.id, p)
	}
	sp := &Span{
		rec:    rec,
		sc:     SpanContext{TraceID: rec.id, SpanID: t.mintSpanID(), Sampled: rec.head},
		parent: parent,
		root:   true,
		name:   name,
		start:  rec.rootStart,
	}
	mSpansStarted.Inc()
	return ContextWithSpan(ctx, sp), sp
}

// ctxKey is the unexported context key type for the span.
type ctxKey int

const spanKey ctxKey = 0

// ContextWithSpan returns ctx carrying sp. Attaching a nil span returns
// ctx unchanged, so propagation code needs no nil checks.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// StartSpan opens a child of the span carried by ctx. When ctx carries
// none the call is free: it returns ctx unchanged and a nil span, so
// instrumented phases cost nothing outside a traced request.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	rec := parent.rec
	sp := &Span{
		rec:    rec,
		sc:     SpanContext{TraceID: rec.id, SpanID: rec.tracer.mintSpanID(), Sampled: rec.head},
		parent: parent.sc.SpanID,
		name:   name,
		start:  time.Now(),
	}
	mSpansStarted.Inc()
	return ContextWithSpan(ctx, sp), sp
}

// Inject writes the traceparent header for the span carried by ctx into
// h, making the span the parent of the next hop. A context without a
// span leaves h untouched.
func Inject(ctx context.Context, h http.Header) {
	sp := SpanFromContext(ctx)
	if sp == nil {
		return
	}
	h.Set("Traceparent", sp.Context().Traceparent())
}

// Extract parses the traceparent header from h; ok is false when the
// header is absent or malformed.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get("Traceparent")
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceparent(v)
}

// Handler serves the ring buffer as GET /debug/traces: a JSON array of
// TraceData, newest first. Query parameters: min_ms filters to traces
// at least that slow, limit truncates the result (default 50).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var min time.Duration
		if v := r.URL.Query().Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil || ms < 0 {
				http.Error(w, fmt.Sprintf("trace: bad min_ms %q", v), http.StatusBadRequest)
				return
			}
			min = time.Duration(ms * float64(time.Millisecond))
		}
		limit := 50
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, fmt.Sprintf("trace: bad limit %q", v), http.StatusBadRequest)
				return
			}
			limit = n
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.Traces(min, limit))
	})
}
