package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hics/internal/parallel"
)

// TestTraceparentRoundTrip formats and re-parses a span context and
// requires identity.
func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{}, TraceID{})
	defer root.End()
	_, child := StartSpan(ctx, "child")
	defer child.End()
	for _, sc := range []SpanContext{
		root.Context(),
		child.Context(),
		{TraceID: TraceID{0xde, 0xad}, SpanID: SpanID{0xbe, 0xef}, Sampled: true},
		{TraceID: TraceID{15: 1}, SpanID: SpanID{7: 1}, Sampled: false},
	} {
		hdr := sc.Traceparent()
		got, ok := ParseTraceparent(hdr)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) rejected a header we produced", hdr)
		}
		if got != sc {
			t.Fatalf("round trip of %q: got %+v want %+v", hdr, got, sc)
		}
	}
}

// TestParseTraceparentMalformed is the malformed-header table: every
// entry must be rejected, never panicking.
func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("control header %q rejected", valid)
	}
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"long", valid + "-extra"},
		{"truncated", valid[:54]},
		{"version ff", "ff" + valid[2:]},
		{"future version", "01" + valid[2:]},
		{"uppercase trace id", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01"},
		{"uppercase span id", "00-0af7651916cd43dd8448eb211c80319c-B7AD6B7169203331-01"},
		{"non-hex trace id", "00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01"},
		{"non-hex flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz"},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
		{"missing dashes", "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01"},
		{"spaces", "00 0af7651916cd43dd8448eb211c80319c b7ad6b7169203331 01"},
	}
	for _, c := range cases {
		if sc, ok := ParseTraceparent(c.in); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted as %+v", c.name, c.in, sc)
		}
	}
}

// TestInjectExtract checks the header-level round trip and that a
// span-free context injects nothing.
func TestInjectExtract(t *testing.T) {
	tr := New(Config{})
	ctx, sp := tr.StartRoot(context.Background(), "root", SpanContext{}, TraceID{})
	defer sp.End()
	r := httptest.NewRequest("GET", "/", nil)
	Inject(ctx, r.Header)
	got, ok := Extract(r.Header)
	if !ok || got != sp.Context() {
		t.Fatalf("Extract after Inject: got %+v ok=%v, want %+v", got, ok, sp.Context())
	}

	r2 := httptest.NewRequest("GET", "/", nil)
	Inject(context.Background(), r2.Header)
	if v := r2.Header.Get("Traceparent"); v != "" {
		t.Fatalf("Inject without a span set Traceparent=%q", v)
	}
	if _, ok := Extract(r2.Header); ok {
		t.Fatal("Extract on an empty header reported ok")
	}
}

// TestTraceIDFromString: 32-hex strings pass through verbatim, others
// derive deterministically and never collide with zero.
func TestTraceIDFromString(t *testing.T) {
	hexID := "0af7651916cd43dd8448eb211c80319c"
	if got := TraceIDFromString(hexID).String(); got != hexID {
		t.Fatalf("32-hex request ID not used verbatim: got %s", got)
	}
	a, b := TraceIDFromString("req-123"), TraceIDFromString("req-123")
	if a != b {
		t.Fatal("derivation is not deterministic")
	}
	if a.IsZero() {
		t.Fatal("derived trace ID is zero")
	}
	if TraceIDFromString("req-124") == a {
		t.Fatal("distinct request IDs collided")
	}
	if TraceIDFromString("").IsZero() {
		t.Fatal("empty request ID derived a zero trace ID")
	}
}

// TestRingEvictionOrder fills a 3-slot ring with 5 traces and requires
// the two oldest evicted and the rest served newest-first.
func TestRingEvictionOrder(t *testing.T) {
	tr := New(Config{RingSize: 3})
	for i := 0; i < 5; i++ {
		_, sp := tr.StartRoot(context.Background(), fmt.Sprintf("t%d", i), SpanContext{}, TraceID{})
		sp.End()
	}
	got := tr.Traces(0, 0)
	if len(got) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(got))
	}
	for i, want := range []string{"t4", "t3", "t2"} {
		if got[i].Root != want {
			t.Fatalf("Traces()[%d].Root = %q, want %q (newest first)", i, got[i].Root, want)
		}
	}
}

// TestSampledOutKeptOnErrorOrSlow: with head sampling off, only errored
// traces are kept (the slow threshold left at default is not reached).
func TestSampledOutKeptOnErrorOrSlow(t *testing.T) {
	tr := New(Config{Sample: -1})

	_, ok := tr.StartRoot(context.Background(), "fine", SpanContext{}, TraceID{})
	ok.End()
	if n := len(tr.Traces(0, 0)); n != 0 {
		t.Fatalf("head-sampled-out healthy trace was kept (%d in ring)", n)
	}

	_, bad := tr.StartRoot(context.Background(), "bad", SpanContext{}, TraceID{})
	bad.SetError(errors.New("boom"))
	bad.End()
	got := tr.Traces(0, 0)
	if len(got) != 1 || got[0].Root != "bad" || got[0].Error == "" {
		t.Fatalf("errored trace not tail-kept: %+v", got)
	}
	if got[0].Sampled {
		t.Fatal("tail-kept trace reports Sampled=true")
	}

	// An errored child also keeps the trace.
	ctx, root := tr.StartRoot(context.Background(), "childerr", SpanContext{}, TraceID{})
	_, child := StartSpan(ctx, "phase")
	child.SetError(errors.New("inner"))
	child.End()
	root.End()
	if got := tr.Traces(0, 0); len(got) != 2 || got[0].Root != "childerr" {
		t.Fatalf("trace with errored child not kept: %+v", got)
	}
}

// TestRemoteParentInherited: a root started from an extracted remote
// context joins that trace and records the remote span as parent.
func TestRemoteParentInherited(t *testing.T) {
	tr := New(Config{Sample: -1}) // head-sample nothing locally
	remote := SpanContext{TraceID: TraceID{1, 2, 3}, SpanID: SpanID{4, 5, 6}, Sampled: true}
	ctx, root := tr.StartRoot(context.Background(), "hop", remote, TraceID{})
	if root.TraceIDString() != remote.TraceID.String() {
		t.Fatalf("remote trace ID not inherited: %s", root.TraceIDString())
	}
	_, child := StartSpan(ctx, "phase")
	child.End()
	root.End()
	// remote.Sampled overrides the local never-sample config.
	got := tr.Traces(0, 0)
	if len(got) != 1 {
		t.Fatalf("remotely sampled trace not kept (ring %d)", len(got))
	}
	td := got[0]
	if td.TraceID != remote.TraceID.String() || !td.Sampled {
		t.Fatalf("kept trace %+v does not reflect the remote decision", td)
	}
	var rootData *SpanData
	for i := range td.Spans {
		if td.Spans[i].Name == "hop" {
			rootData = &td.Spans[i]
		}
	}
	if rootData == nil || rootData.ParentID != remote.SpanID.String() {
		t.Fatalf("root span not parented under remote span: %+v", rootData)
	}
}

// TestSpanAttrsEventsAndMinMS covers attributes (last write wins),
// events, the min_ms filter and the HTTP handler's JSON shape.
func TestSpanAttrsEventsAndMinMS(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "req", SpanContext{}, TraceIDFromString("req-1"))
	_, sp := StartSpan(ctx, "search")
	sp.SetAttr("candidates", 41)
	sp.SetAttr("candidates", 42)
	sp.AddEvent("level done")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	root.End()

	if got := tr.Traces(5*time.Second, 0); len(got) != 0 {
		t.Fatalf("min_ms filter passed a fast trace: %+v", got)
	}
	got := tr.Traces(0, 0)
	if len(got) != 1 || len(got[0].Spans) != 2 {
		t.Fatalf("want 1 trace with 2 spans, got %+v", got)
	}

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_ms=0", nil))
	if rec.Code != 200 {
		t.Fatalf("handler status %d: %s", rec.Code, rec.Body)
	}
	var served []TraceData
	if err := json.Unmarshal(rec.Body.Bytes(), &served); err != nil {
		t.Fatalf("handler body is not a TraceData array: %v\n%s", err, rec.Body)
	}
	if len(served) != 1 || served[0].TraceID != TraceIDFromString("req-1").String() {
		t.Fatalf("served %+v", served)
	}
	var search *SpanData
	for i := range served[0].Spans {
		if served[0].Spans[i].Name == "search" {
			search = &served[0].Spans[i]
		}
	}
	if search == nil {
		t.Fatalf("search span missing: %+v", served[0].Spans)
	}
	if v, ok := search.Attrs["candidates"].(float64); !ok || v != 42 {
		t.Fatalf("attr candidates = %v, want 42 (last write wins)", search.Attrs["candidates"])
	}
	if len(search.Events) != 1 || search.Events[0].Name != "level done" {
		t.Fatalf("events %+v", search.Events)
	}
	if search.DurationMS <= 0 {
		t.Fatalf("span duration %v not positive", search.DurationMS)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_ms=nope", nil))
	if rec.Code != 400 {
		t.Fatalf("bad min_ms returned %d", rec.Code)
	}
}

// TestExportNDJSON: kept traces append one JSON line per span.
func TestExportNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{Export: &buf})
	ctx, root := tr.StartRoot(context.Background(), "req", SpanContext{}, TraceID{})
	_, sp := StartSpan(ctx, "phase")
	sp.End()
	root.End()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("export wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	names := map[string]bool{}
	for _, ln := range lines {
		var es exportSpan
		if err := json.Unmarshal([]byte(ln), &es); err != nil {
			t.Fatalf("export line %q: %v", ln, err)
		}
		if es.TraceID != root.TraceIDString() {
			t.Fatalf("export line trace_id %q != %q", es.TraceID, root.TraceIDString())
		}
		names[es.Name] = true
	}
	if !names["req"] || !names["phase"] {
		t.Fatalf("export lines missing spans: %v", names)
	}
}

// TestMaxSpansCap: spans beyond the cap are dropped and counted on the
// trace, while the root always records.
func TestMaxSpansCap(t *testing.T) {
	tr := New(Config{MaxSpans: 2})
	ctx, root := tr.StartRoot(context.Background(), "req", SpanContext{}, TraceID{})
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("c%d", i))
		sp.End()
	}
	root.End()
	got := tr.Traces(0, 0)
	if len(got) != 1 {
		t.Fatalf("ring %d", len(got))
	}
	// Cap 2 admits two children; the root is exempt → 3 recorded spans.
	if len(got[0].Spans) != 3 || got[0].DroppedSpans != 3 {
		t.Fatalf("spans=%d dropped=%d, want 3/3", len(got[0].Spans), got[0].DroppedSpans)
	}
}

// TestLateSpanDropped: a child ending after the root is dropped rather
// than mutating a shipped trace.
func TestLateSpanDropped(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "req", SpanContext{}, TraceID{})
	_, late := StartSpan(ctx, "async")
	root.End()
	late.End()
	got := tr.Traces(0, 0)
	if len(got) != 1 || len(got[0].Spans) != 1 {
		t.Fatalf("late span leaked into the shipped trace: %+v", got)
	}
}

// TestNilSpanSafe: every method on a nil span is a no-op, and StartSpan
// without a root returns the context unchanged.
func TestNilSpanSafe(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "orphan")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a root must be free")
	}
	sp.SetAttr("k", 1)
	sp.AddEvent("e")
	sp.SetError(errors.New("x"))
	sp.End()
	if got := sp.TraceIDString(); got != "" {
		t.Fatalf("nil span trace ID %q", got)
	}
	if sp.Context().Valid() {
		t.Fatal("nil span context is valid")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("ContextWithSpan(nil) must return ctx unchanged")
	}
}

// TestStartSpanNoRootAllocs: the no-op path allocates nothing, the
// guarantee that lets hot code call StartSpan unconditionally.
func TestStartSpanNoRootAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "phase")
		sp.SetAttr("k", nil)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("StartSpan without a root allocates %.1f/op, want 0", allocs)
	}
}

// TestForEachPropagation drives span annotation from parallel.ForEach
// workers sharing one request context; run under -race this proves the
// span is safe for fan-out use.
func TestForEachPropagation(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "req", SpanContext{}, TraceID{})
	ctxSearch, search := StartSpan(ctx, "search")

	var mu sync.Mutex
	seen := map[string]bool{}
	err := parallel.ForEach(ctxSearch, 64, 8, 4, func(worker, i int) error {
		sp := SpanFromContext(ctxSearch)
		if sp == nil {
			return errors.New("span lost crossing into worker")
		}
		sp.SetAttr("last_index", i)
		sp.AddEvent("item")
		mu.Lock()
		seen[sp.TraceIDString()] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || !seen[root.TraceIDString()] {
		t.Fatalf("workers saw trace IDs %v, want exactly %s", seen, root.TraceIDString())
	}
	search.End()
	root.End()
	got := tr.Traces(0, 0)
	if len(got) != 1 {
		t.Fatalf("ring %d", len(got))
	}
	var sd *SpanData
	for i := range got[0].Spans {
		if got[0].Spans[i].Name == "search" {
			sd = &got[0].Spans[i]
		}
	}
	if sd == nil || len(sd.Events) != 64 {
		t.Fatalf("search span events %+v, want 64 item events", sd)
	}
}

// TestSampleDeterministic: the head decision is a pure function of the
// trace ID, and the rate lands near the configured probability.
func TestSampleDeterministic(t *testing.T) {
	id := TraceIDFromString("req-42")
	for i := 0; i < 3; i++ {
		if sampleTrace(id, 0.5) != sampleTrace(id, 0.5) {
			t.Fatal("sampling decision not deterministic")
		}
	}
	kept := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if sampleTrace(TraceIDFromString(fmt.Sprintf("req-%d", i)), 0.25) {
			kept++
		}
	}
	rate := float64(kept) / n
	if rate < 0.18 || rate > 0.32 {
		t.Fatalf("sample rate %.3f far from 0.25", rate)
	}
}
