package stats

import (
	"math"
	"sort"
)

// KSStatSorted returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_A(x) − F_B(x)| for samples that are already sorted in
// ascending order. It runs in O(len(a)+len(b)).
//
// This is the HiCS_KS deviation function (paper Eq. 11): it already lies in
// [0, 1] and needs no further normalization.
func KSStatSorted(a, b []float64) float64 {
	na, nb := len(a), len(b)
	if na == 0 || nb == 0 {
		return 0
	}
	var (
		i, j int
		d    float64
	)
	for i < na && j < nb {
		v := math.Min(a[i], b[j])
		for i < na && a[i] <= v {
			i++
		}
		for j < nb && b[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSStat returns the two-sample KS statistic for unsorted samples.
// The inputs are not modified.
func KSStat(a, b []float64) float64 {
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	return KSStatSorted(sa, sb)
}

// KSResult holds a two-sample Kolmogorov–Smirnov test outcome.
type KSResult struct {
	D float64 // sup-distance between the two empirical CDFs
	P float64 // asymptotic two-sided p-value (Stephens 1970 approximation)
}

// KSTest runs the two-sample KS test and attaches the asymptotic p-value.
// The p-value is not needed by the HiCS contrast (which uses D directly)
// but is exposed for library users who want a significance level.
func KSTest(a, b []float64) KSResult {
	d := KSStat(a, b)
	na, nb := float64(len(a)), float64(len(b))
	if na == 0 || nb == 0 {
		return KSResult{D: d, P: 1}
	}
	ne := na * nb / (na + nb)
	// Effective statistic with the small-sample correction of
	// Stephens (1970), then the Kolmogorov asymptotic series.
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: kolmogorovQ(lambda)}
}

// kolmogorovQ evaluates the Kolmogorov distribution tail
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²).
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const maxTerms = 100
	sum := 0.0
	sign := 1.0
	for k := 1; k <= maxTerms; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum)+1e-300 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// ECDF is an empirical cumulative distribution function built from a sample
// (paper Eq. 10).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied and sorted.
func NewECDF(xs []float64) *ECDF {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return &ECDF{sorted: cp}
}

// At returns F(x) = (#observations < x) / n, matching the strict inequality
// of paper Eq. 10. It returns 0 for an empty sample.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x, which is
	// exactly the count of observations strictly less than x.
	return float64(idx) / float64(len(e.sorted))
}

// Len returns the number of observations behind the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }
