package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{0, 0, 0, 0}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestMeanVar(t *testing.T) {
	mean, variance := MeanVar([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(mean, 5, 1e-12) {
		t.Errorf("mean = %v, want 5", mean)
	}
	// Unbiased sample variance: sum of squared deviations 32, n-1 = 7.
	if !almostEq(variance, 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", variance, 32.0/7.0)
	}
}

func TestMeanVarDegenerate(t *testing.T) {
	m, v := MeanVar(nil)
	if !math.IsNaN(m) || !math.IsNaN(v) {
		t.Error("MeanVar(nil) should be (NaN, NaN)")
	}
	m, v = MeanVar([]float64{3})
	if m != 3 || !math.IsNaN(v) {
		t.Errorf("MeanVar single = (%v,%v)", m, v)
	}
}

func TestMeanVarStability(t *testing.T) {
	// Large offset stresses the naive sum-of-squares formula; Welford must
	// not lose the small variance.
	const offset = 1e9
	xs := []float64{offset + 1, offset + 2, offset + 3}
	_, v := MeanVar(xs)
	if !almostEq(v, 1, 1e-6) {
		t.Errorf("variance under offset = %v, want 1", v)
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if v := Variance(xs); !almostEq(v, 2.5, 1e-12) {
		t.Errorf("Variance = %v, want 2.5", v)
	}
	if s := Stddev(xs); !almostEq(s, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Stddev = %v", s)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v,%v)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("MinMax(nil) should be NaN pair")
	}
}

func TestMedianQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %v", m)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("Quantile(1) = %v", q)
	}
	if q := Quantile([]float64{1, 2}, 0.5); !almostEq(q, 1.5, 1e-12) {
		t.Errorf("interpolated quantile = %v", q)
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Error("Quantile modified its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

// Property: variance is never negative and mean lies within [min, max].
func TestQuickMomentsInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		mean, variance := MeanVar(xs)
		lo, hi := MinMax(xs)
		return variance >= 0 && mean >= lo-1e-9*(1+math.Abs(lo)) && mean <= hi+1e-9*(1+math.Abs(hi))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
