package stats

import (
	"math"
	"sort"
)

// MannWhitneyResult holds a two-sample Mann–Whitney U test outcome.
type MannWhitneyResult struct {
	U float64 // U statistic of the first sample
	Z float64 // normal approximation z-score (tie-corrected)
	P float64 // two-tailed p-value under H0 "same distribution"
}

// MannWhitneyTest compares the distributions of a and b with the
// rank-based Mann–Whitney U test, using the normal approximation with tie
// correction — accurate for the sample sizes the HiCS contrast works with
// (dozens and up). It extends the deviation-function family of the paper
// (Sec. III-E) with a non-parametric location test: unlike Welch it makes
// no normality assumption, unlike KS it targets location shifts
// specifically.
func MannWhitneyTest(a, b []float64) MannWhitneyResult {
	na, nb := float64(len(a)), float64(len(b))
	if len(a) == 0 || len(b) == 0 {
		return MannWhitneyResult{P: 1}
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks and tie correction term Σ(t³−t).
	n := len(all)
	rankSumA := 0.0
	tieTerm := 0.0
	for i := 0; i < n; {
		j := i
		for j+1 < n && all[j+1].v == all[i].v {
			j++
		}
		mid := float64(i+j)/2 + 1
		t := float64(j - i + 1)
		tieTerm += t*t*t - t
		for k := i; k <= j; k++ {
			if all[k].fromA {
				rankSumA += mid
			}
		}
		i = j + 1
	}
	u := rankSumA - na*(na+1)/2
	mean := na * nb / 2
	nn := na + nb
	variance := na * nb / 12 * ((nn + 1) - tieTerm/(nn*(nn-1)))
	if variance <= 0 {
		// All observations tied: no evidence either way.
		return MannWhitneyResult{U: u, Z: 0, P: 1}
	}
	// Continuity correction.
	z := (u - mean)
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u, Z: z, P: p}
}

// MannWhitneyDeviation returns 1 − p, the HiCS-style deviation value of
// the Mann–Whitney test.
func MannWhitneyDeviation(a, b []float64) float64 {
	return 1 - MannWhitneyTest(a, b).P
}

// CramerVonMisesSorted returns the two-sample Cramér–von Mises criterion
// T for samples that are already sorted ascending, normalized to [0, 1)
// via T/(T+1) so it can serve directly as a HiCS deviation value. Unlike
// the KS statistic (which looks at the single largest ECDF gap), the CvM
// criterion integrates the squared gap over the whole domain, making it
// sensitive to distributed shape differences.
func CramerVonMisesSorted(a, b []float64) float64 {
	na, nb := len(a), len(b)
	if na == 0 || nb == 0 {
		return 0
	}
	// T = (nm/(n+m)²)·Σ_k (F_a(z_k) − F_b(z_k))², the sum running over every
	// observation z_k of the pooled sorted sample. One merge pass; within a
	// tie group the a-observations are consumed first, which keeps the
	// statistic deterministic (the classical derivation assumes continuous
	// distributions, so any consistent tie order is acceptable).
	var (
		i, j int
		sum  float64
	)
	for i < na || j < nb {
		if j >= nb || (i < na && a[i] <= b[j]) {
			i++
		} else {
			j++
		}
		d := float64(i)/float64(na) - float64(j)/float64(nb)
		sum += d * d
	}
	t := sum * float64(na) * float64(nb) / float64((na+nb)*(na+nb))
	return t / (t + 1)
}

// CramerVonMises returns the normalized two-sample Cramér–von Mises
// deviation for unsorted samples. The inputs are not modified.
func CramerVonMises(a, b []float64) float64 {
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	return CramerVonMisesSorted(sa, sb)
}
