package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncBetaReference(t *testing.T) {
	// Reference values computed with scipy.special.betainc.
	cases := []struct {
		a, b, x, want float64
	}{
		{0.5, 0.5, 0.5, 0.5},
		{1, 1, 0.3, 0.3}, // Beta(1,1) is uniform
		{2, 2, 0.5, 0.5}, // symmetric
		{2, 3, 0.4, 0.5248},
		{5, 1, 0.8, math.Pow(0.8, 5)}, // I_x(a,1) = x^a
		{1, 5, 0.2, 1 - math.Pow(0.8, 5)},
		{10, 10, 0.5, 0.5},
		{0.5, 2.5, 0.1, 0.5104102554}, // verified by direct numeric integration
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if !almostEq(got, c.want, 1e-4) {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	if !math.IsNaN(RegIncBeta(-1, 2, 0.5)) {
		t.Error("negative a should yield NaN")
	}
	if !math.IsNaN(RegIncBeta(1, 2, math.NaN())) {
		t.Error("NaN x should yield NaN")
	}
}

func TestStudentTCDFReference(t *testing.T) {
	// Reference values from scipy.stats.t.cdf.
	cases := []struct {
		t, df, want float64
	}{
		{0, 5, 0.5},
		{1, 1, 0.75}, // t(1) is Cauchy: CDF(1) = 3/4
		{-1, 1, 0.25},
		{2.0, 10, 0.963306},
		{1.812, 10, 0.949949}, // ~95th percentile of t(10)
		{2.228, 10, 0.974998},
		{-2.228, 10, 0.025002},
		{1.96, 1e6, 0.975002}, // huge df ≈ normal
		{1.5, 2.5, 0.87608},   // verified by direct numeric integration
	}
	for _, c := range cases {
		got := StudentTCDF(c.t, c.df)
		if !almostEq(got, c.want, 1e-3) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestStudentTCDFEdges(t *testing.T) {
	if got := StudentTCDF(math.Inf(1), 3); got != 1 {
		t.Errorf("CDF(+inf) = %v", got)
	}
	if got := StudentTCDF(math.Inf(-1), 3); got != 0 {
		t.Errorf("CDF(-inf) = %v", got)
	}
	if !math.IsNaN(StudentTCDF(1, 0)) {
		t.Error("df=0 should yield NaN")
	}
	if !math.IsNaN(StudentTCDF(1, -2)) {
		t.Error("negative df should yield NaN")
	}
}

func TestStudentTTwoTailedP(t *testing.T) {
	// Two-tailed p at the 97.5% quantile should be ~0.05.
	p := StudentTTwoTailedP(2.228, 10)
	if !almostEq(p, 0.05, 2e-3) {
		t.Errorf("two-tailed p = %v, want ~0.05", p)
	}
	// Symmetry in t.
	if p1, p2 := StudentTTwoTailedP(1.3, 7), StudentTTwoTailedP(-1.3, 7); !almostEq(p1, p2, 1e-12) {
		t.Errorf("two-tailed p asymmetric: %v vs %v", p1, p2)
	}
	if got := StudentTTwoTailedP(0, 5); !almostEq(got, 1, 1e-12) {
		t.Errorf("p at t=0 is %v, want 1", got)
	}
	if got := StudentTTwoTailedP(math.Inf(1), 5); got != 0 {
		t.Errorf("p at t=inf is %v, want 0", got)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959964, 0.975},
		{-1.959964, 0.025},
		{3, 0.998650},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEq(got, c.want, 1e-5) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// Property: RegIncBeta is a CDF — bounded in [0,1] and monotone in x.
func TestQuickRegIncBetaCDF(t *testing.T) {
	f := func(aRaw, bRaw, x1Raw, x2Raw float64) bool {
		a := 0.1 + math.Mod(math.Abs(aRaw), 20)
		b := 0.1 + math.Mod(math.Abs(bRaw), 20)
		x1 := math.Mod(math.Abs(x1Raw), 1)
		x2 := math.Mod(math.Abs(x2Raw), 1)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		v1 := RegIncBeta(a, b, x1)
		v2 := RegIncBeta(a, b, x2)
		if v1 < -1e-12 || v1 > 1+1e-12 || v2 < -1e-12 || v2 > 1+1e-12 {
			return false
		}
		return v1 <= v2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: StudentTCDF is monotone in t and symmetric about 0.
func TestQuickStudentTProperties(t *testing.T) {
	f := func(tRaw, dfRaw float64) bool {
		tv := math.Mod(tRaw, 50)
		if math.IsNaN(tv) {
			return true
		}
		df := 0.5 + math.Mod(math.Abs(dfRaw), 100)
		c := StudentTCDF(tv, df)
		cNeg := StudentTCDF(-tv, df)
		if c < 0 || c > 1 {
			return false
		}
		if math.Abs(c+cNeg-1) > 1e-9 {
			return false
		}
		return StudentTCDF(tv+0.5, df) >= c-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
