package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hics/internal/rng"
)

func TestMannWhitneyIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res := MannWhitneyTest(a, a)
	if res.Z != 0 {
		t.Errorf("Z = %v, want 0", res.Z)
	}
	if !almostEq(res.P, 1, 1e-9) {
		t.Errorf("P = %v, want 1", res.P)
	}
}

func TestMannWhitneyShifted(t *testing.T) {
	r := rng.New(1)
	a := make([]float64, 150)
	b := make([]float64, 150)
	for i := range a {
		a[i] = r.Normal()
		b[i] = r.Normal() + 1.5
	}
	res := MannWhitneyTest(a, b)
	if res.P > 1e-6 {
		t.Errorf("shifted distributions P = %v, want ~0", res.P)
	}
	if MannWhitneyDeviation(a, b) < 0.999 {
		t.Error("deviation for clear shift should be ~1")
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	r := rng.New(2)
	// Under H0 the p-values are uniform → mean deviation ~0.5.
	const reps = 200
	sum := 0.0
	for rep := 0; rep < reps; rep++ {
		a := make([]float64, 80)
		b := make([]float64, 80)
		for i := range a {
			a[i] = r.Normal()
			b[i] = r.Normal()
		}
		sum += MannWhitneyDeviation(a, b)
	}
	mean := sum / reps
	if mean < 0.38 || mean > 0.62 {
		t.Errorf("mean H0 deviation = %v, want ~0.5", mean)
	}
}

func TestMannWhitneyKnownU(t *testing.T) {
	// Hand-computed example: a = {1, 2}, b = {3, 4}.
	// All b beat all a: U_a = 0.
	res := MannWhitneyTest([]float64{1, 2}, []float64{3, 4})
	if res.U != 0 {
		t.Errorf("U = %v, want 0", res.U)
	}
	// Reversed: U_a = n·m = 4.
	res = MannWhitneyTest([]float64{3, 4}, []float64{1, 2})
	if res.U != 4 {
		t.Errorf("U = %v, want 4", res.U)
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if res := MannWhitneyTest(nil, []float64{1}); res.P != 1 {
		t.Errorf("empty sample P = %v", res.P)
	}
	// All values identical: zero variance, P = 1.
	if res := MannWhitneyTest([]float64{5, 5, 5}, []float64{5, 5}); res.P != 1 {
		t.Errorf("all-tied P = %v", res.P)
	}
}

func TestCramerVonMisesIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := CramerVonMises(a, a); d > 0.15 {
		t.Errorf("CvM of identical samples = %v, want small", d)
	}
}

func TestCramerVonMisesDisjoint(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	d := CramerVonMises(a, b)
	if d < 0.5 {
		t.Errorf("CvM of disjoint samples = %v, want large", d)
	}
}

func TestCramerVonMisesOrderInvariance(t *testing.T) {
	r := rng.New(3)
	a := make([]float64, 40)
	b := make([]float64, 25)
	for i := range a {
		a[i] = r.Normal()
	}
	for i := range b {
		b[i] = r.Normal() + 0.3
	}
	want := CramerVonMises(a, b)
	// Shuffle inputs; unsorted entry point must sort internally.
	r.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	if got := CramerVonMises(a, b); !almostEq(got, want, 1e-12) {
		t.Errorf("CvM depends on input order: %v vs %v", got, want)
	}
}

func TestCramerVonMisesSortedMatchesUnsorted(t *testing.T) {
	r := rng.New(4)
	a := make([]float64, 30)
	b := make([]float64, 50)
	for i := range a {
		a[i] = r.Float64()
	}
	for i := range b {
		b[i] = r.Float64()
	}
	want := CramerVonMises(a, b)
	sort.Float64s(a)
	sort.Float64s(b)
	if got := CramerVonMisesSorted(a, b); !almostEq(got, want, 1e-12) {
		t.Errorf("sorted path %v != unsorted %v", got, want)
	}
}

func TestCramerVonMisesEmpty(t *testing.T) {
	if d := CramerVonMisesSorted(nil, []float64{1}); d != 0 {
		t.Errorf("empty CvM = %v", d)
	}
}

func TestCramerVonMisesMoreSensitiveThanKSForShapes(t *testing.T) {
	// Same median, different spread: a distributed shape difference.
	r := rng.New(5)
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = r.NormalScaled(0, 1)
		b[i] = r.NormalScaled(0, 2)
	}
	cvm := CramerVonMises(a, b)
	if cvm < 0.3 {
		t.Errorf("CvM for variance difference = %v, want clearly above noise", cvm)
	}
}

// Property: both deviations are in [0,1] and symmetric in sample order.
func TestQuickRankDeviationsBoundsAndSymmetry(t *testing.T) {
	f := func(seed uint64, nA, nB uint8, shiftRaw float64) bool {
		r := rng.New(seed)
		na := int(nA%40) + 3
		nb := int(nB%40) + 3
		shift := 0.0
		if !math.IsNaN(shiftRaw) && !math.IsInf(shiftRaw, 0) {
			shift = math.Mod(shiftRaw, 5)
		}
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = r.Normal()
		}
		for i := range b {
			b[i] = r.Normal() + shift
		}
		dmw1 := MannWhitneyDeviation(a, b)
		dmw2 := MannWhitneyDeviation(b, a)
		if dmw1 < 0 || dmw1 > 1 || !almostEq(dmw1, dmw2, 1e-9) {
			return false
		}
		dcv1 := CramerVonMises(a, b)
		dcv2 := CramerVonMises(b, a)
		return dcv1 >= 0 && dcv1 < 1 && almostEq(dcv1, dcv2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: larger location shifts never decrease the Mann–Whitney
// deviation much (monotone sensitivity on average).
func TestQuickMannWhitneyMonotoneInShift(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := make([]float64, 100)
		base := make([]float64, 100)
		for i := range a {
			a[i] = r.Normal()
			base[i] = r.Normal()
		}
		small := make([]float64, 100)
		large := make([]float64, 100)
		for i := range base {
			small[i] = base[i] + 0.2
			large[i] = base[i] + 2.0
		}
		dSmall := MannWhitneyDeviation(a, small)
		dLarge := MannWhitneyDeviation(a, large)
		return dLarge >= dSmall-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMannWhitney(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 1000)
	y := make([]float64, 100)
	for i := range x {
		x[i] = r.Normal()
	}
	for i := range y {
		y[i] = r.Normal()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MannWhitneyTest(x, y)
	}
}

func BenchmarkCramerVonMisesSorted(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 1000)
	y := make([]float64, 100)
	for i := range x {
		x[i] = r.Float64()
	}
	for i := range y {
		y[i] = r.Float64()
	}
	sort.Float64s(x)
	sort.Float64s(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CramerVonMisesSorted(x, y)
	}
}
