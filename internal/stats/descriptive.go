// Package stats implements the statistical machinery HiCS is built on:
// descriptive moments, the Student-t distribution (via the regularized
// incomplete beta function), Welch's unequal-variance t-test with the
// Welch–Satterthwaite degrees of freedom, and the two-sample
// Kolmogorov–Smirnov test.
//
// Only the standard library is used. The special functions are implemented
// with the classical continued-fraction expansions (Lentz's algorithm) and
// are accurate to roughly 1e-12 over the parameter ranges that occur in
// subspace contrast computation.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanVar returns the sample mean and the unbiased sample variance
// (denominator n−1) in a single pass, using Welford's algorithm for
// numerical stability. Variance is NaN for fewer than two observations.
func MeanVar(xs []float64) (mean, variance float64) {
	n := 0
	m := 0.0
	m2 := 0.0
	for _, x := range xs {
		n++
		delta := x - m
		m += delta / float64(n)
		m2 += delta * (x - m)
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	if n < 2 {
		return m, math.NaN()
	}
	return m, m2 / float64(n-1)
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	_, v := MeanVar(xs)
	return v
}

// Stddev returns the unbiased sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the minimum and maximum of xs.
// It returns (NaN, NaN) for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	return cp[i]*(1-frac) + cp[i+1]*frac
}
