package stats

import "math"

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// the CDF of the Beta(a, b) distribution evaluated at x ∈ [0, 1].
//
// It is computed with the continued-fraction expansion of Numerical
// Recipes using the modified Lentz algorithm, applying the symmetry
// I_x(a,b) = 1 − I_{1−x}(b,a) to keep the fraction in its rapidly
// converging regime.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln of the prefactor x^a (1−x)^b / (a B(a,b))
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lnFront := lbeta - la - lb + a*math.Log(x) + b*math.Log1p(-x)

	if x < (a+1)/(a+b+2) {
		return math.Exp(lnFront) * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(lnFront)*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// even step
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		// odd step
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for a Student-t distribution with df
// degrees of freedom. df may be fractional (Welch–Satterthwaite produces
// non-integer values).
func StudentTCDF(t, df float64) float64 {
	if math.IsNaN(t) || math.IsNaN(df) || df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	// I_x(df/2, 1/2) with x = df/(df+t²) gives the two-tailed mass beyond |t|.
	x := df / (df + t*t)
	tail := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - tail
	}
	return tail
}

// StudentTTwoTailedP returns the probability of observing |T| ≥ |t| under a
// Student-t distribution with df degrees of freedom — the two-tailed p-value
// used by the Welch deviation.
func StudentTTwoTailedP(t, df float64) float64 {
	if math.IsNaN(t) || math.IsNaN(df) || df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	return RegIncBeta(df/2, 0.5, x)
}

// NormalCDF returns the standard normal CDF Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
