package stats

import (
	"math"
	"testing"
	"testing/quick"

	"hics/internal/rng"
)

func TestWelchIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res := WelchTest(a, a)
	if res.T != 0 {
		t.Errorf("T = %v, want 0", res.T)
	}
	if !almostEq(res.P, 1, 1e-12) {
		t.Errorf("P = %v, want 1", res.P)
	}
	if WelchDeviation(a, a) != 0 {
		t.Error("deviation of identical samples should be 0")
	}
}

func TestWelchKnownValue(t *testing.T) {
	// Classic Welch example (e.g. Wikipedia "Welch's t-test", example 1):
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.3}
	res := WelchTest(a, b)
	// Hand-verified: t = -2.8472, Welch–Satterthwaite df = 27.885.
	if !almostEq(res.T, -2.8472, 0.001) {
		t.Errorf("T = %v, want ~-2.8472", res.T)
	}
	if !almostEq(res.DF, 27.885, 0.01) {
		t.Errorf("DF = %v, want ~27.885", res.DF)
	}
	if !almostEq(res.P, 0.00819, 0.0005) {
		t.Errorf("P = %v, want ~0.00819", res.P)
	}
}

func TestWelchClearlyDifferentMeans(t *testing.T) {
	r := rng.New(1)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = r.NormalScaled(0, 1)
		b[i] = r.NormalScaled(3, 1)
	}
	dev := WelchDeviation(a, b)
	if dev < 0.999 {
		t.Errorf("deviation for 3-sigma mean shift = %v, want ~1", dev)
	}
}

func TestWelchSameDistribution(t *testing.T) {
	r := rng.New(2)
	// Average deviation over many repetitions should be ~0.5 under H0
	// (p-values are uniform when H0 holds).
	const reps = 200
	sum := 0.0
	for rep := 0; rep < reps; rep++ {
		a := make([]float64, 100)
		b := make([]float64, 100)
		for i := range a {
			a[i] = r.Normal()
			b[i] = r.Normal()
		}
		sum += WelchDeviation(a, b)
	}
	mean := sum / reps
	if mean < 0.4 || mean > 0.6 {
		t.Errorf("mean H0 deviation = %v, want ~0.5", mean)
	}
}

func TestWelchDegenerate(t *testing.T) {
	res := WelchTest([]float64{1}, []float64{1, 2, 3})
	if res.P != 1 {
		t.Errorf("tiny sample should give P=1, got %v", res.P)
	}
	res = WelchTest(nil, []float64{1, 2})
	if res.P != 1 {
		t.Errorf("empty sample should give P=1, got %v", res.P)
	}
	// Both constant and equal.
	res = WelchTest([]float64{2, 2, 2}, []float64{2, 2})
	if res.P != 1 {
		t.Errorf("equal constants should give P=1, got %v", res.P)
	}
	// Both constant, different values: maximal evidence.
	res = WelchTest([]float64{2, 2, 2}, []float64{5, 5, 5})
	if res.P != 0 {
		t.Errorf("different constants should give P=0, got %v", res.P)
	}
}

func TestWelchMomentsMatchesSlices(t *testing.T) {
	a := []float64{1.5, 2.5, 3.5, 9, 0.5}
	b := []float64{2, 4, 6, 8}
	r1 := WelchTest(a, b)
	ma, va := MeanVar(a)
	mb, vb := MeanVar(b)
	r2 := WelchTestMoments(ma, va, float64(len(a)), mb, vb, float64(len(b)))
	if r1.T != r2.T || r1.DF != r2.DF || r1.P != r2.P {
		t.Errorf("moment path differs: %+v vs %+v", r1, r2)
	}
}

// Property: deviation is within [0,1] and antisymmetric in sample order.
func TestQuickWelchDeviationBounds(t *testing.T) {
	f := func(seed uint64, nA, nB uint8, shift float64) bool {
		r := rng.New(seed)
		na := int(nA%50) + 2
		nb := int(nB%50) + 2
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 0
		}
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = r.Normal()
		}
		for i := range b {
			b[i] = r.Normal() + math.Mod(shift, 10)
		}
		d1 := WelchDeviation(a, b)
		d2 := WelchDeviation(b, a)
		if d1 < 0 || d1 > 1 {
			return false
		}
		return almostEq(d1, d2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
