package stats

import (
	"sort"
	"testing"
	"testing/quick"

	"hics/internal/rng"
)

func TestKSIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := KSStat(a, a); d != 0 {
		t.Errorf("KS of identical samples = %v", d)
	}
}

func TestKSDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStat(a, b); d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSKnownValue(t *testing.T) {
	// Hand-computable example:
	// a = {1,2,3,4}, b = {3,4,5,6}. At x slightly above 2:
	// F_a = 0.5, F_b = 0 → D = 0.5.
	a := []float64{1, 2, 3, 4}
	b := []float64{3, 4, 5, 6}
	if d := KSStat(a, b); !almostEq(d, 0.5, 1e-12) {
		t.Errorf("KS = %v, want 0.5", d)
	}
}

func TestKSUnevenSizes(t *testing.T) {
	a := []float64{0, 1}
	b := []float64{0.4, 0.5, 0.6, 0.7}
	// After 0.7: F_a = 0.5, F_b = 1 → D = 0.5.
	if d := KSStat(a, b); !almostEq(d, 0.5, 1e-12) {
		t.Errorf("KS = %v, want 0.5", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if d := KSStat(nil, []float64{1, 2}); d != 0 {
		t.Errorf("KS with empty sample = %v, want 0", d)
	}
}

func TestKSWithTies(t *testing.T) {
	a := []float64{1, 1, 1, 2}
	b := []float64{1, 2, 2, 2}
	// After 1: F_a = 0.75, F_b = 0.25 → D = 0.5.
	if d := KSStat(a, b); !almostEq(d, 0.5, 1e-12) {
		t.Errorf("KS with ties = %v, want 0.5", d)
	}
}

func TestKSSortedMatchesUnsorted(t *testing.T) {
	r := rng.New(5)
	a := make([]float64, 31)
	b := make([]float64, 17)
	for i := range a {
		a[i] = r.Normal()
	}
	for i := range b {
		b[i] = r.Normal()
	}
	want := KSStat(a, b)
	sort.Float64s(a)
	sort.Float64s(b)
	if got := KSStatSorted(a, b); !almostEq(got, want, 1e-12) {
		t.Errorf("sorted path %v != unsorted path %v", got, want)
	}
}

func TestKSTestPValue(t *testing.T) {
	r := rng.New(6)
	// Same distribution: p should usually be large.
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = r.Normal()
		b[i] = r.Normal()
	}
	res := KSTest(a, b)
	if res.P < 0.01 {
		t.Errorf("H0 KS p-value = %v, suspiciously small", res.P)
	}
	// Shifted distribution: p should be tiny.
	for i := range b {
		b[i] = r.Normal() + 1
	}
	res = KSTest(a, b)
	if res.P > 1e-6 {
		t.Errorf("shifted KS p-value = %v, want ~0", res.P)
	}
}

func TestKolmogorovQEdge(t *testing.T) {
	if q := kolmogorovQ(0); q != 1 {
		t.Errorf("Q(0) = %v", q)
	}
	if q := kolmogorovQ(10); q > 1e-10 {
		t.Errorf("Q(10) = %v, want ~0", q)
	}
	// Known value: Q(1.0) ≈ 0.26999967...
	if q := kolmogorovQ(1.0); !almostEq(q, 0.27, 1e-3) {
		t.Errorf("Q(1) = %v, want ~0.27", q)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0},
		{1, 0}, // strict inequality: no value < 1
		{1.5, 0.25},
		{2, 0.25},
		{2.5, 0.75},
		{3.5, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
	if NewECDF(nil).At(1) != 0 {
		t.Error("empty ECDF should return 0")
	}
}

// Property: KS statistic is in [0,1], symmetric, and zero for identical samples.
func TestQuickKSProperties(t *testing.T) {
	f := func(seed uint64, nA, nB uint8) bool {
		r := rng.New(seed)
		na := int(nA%40) + 1
		nb := int(nB%40) + 1
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = r.Float64()
		}
		for i := range b {
			b[i] = r.Float64()
		}
		d := KSStat(a, b)
		if d < 0 || d > 1 {
			return false
		}
		if !almostEq(d, KSStat(b, a), 1e-12) {
			return false
		}
		return KSStat(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// naiveKSStat is the reference implementation of the two-sample KS
// statistic: build both ECDFs explicitly and take the supremum of their
// absolute difference over all sample points (the sup of a difference of
// right-continuous step functions is attained at a jump).
func naiveKSStat(a, b []float64) float64 {
	fa := func(x float64) float64 {
		c := 0
		for _, v := range a {
			if v <= x {
				c++
			}
		}
		return float64(c) / float64(len(a))
	}
	fb := func(x float64) float64 {
		c := 0
		for _, v := range b {
			if v <= x {
				c++
			}
		}
		return float64(c) / float64(len(b))
	}
	d := 0.0
	for _, x := range append(append([]float64(nil), a...), b...) {
		diff := fa(x) - fb(x)
		if diff < 0 {
			diff = -diff
		}
		if diff > d {
			d = diff
		}
	}
	return d
}

// Property: the merge-based KSStatSorted equals the naive two-ECDF
// sup-difference on random samples with heavy ties.
func TestQuickKSMatchesNaive(t *testing.T) {
	f := func(seed uint64, naRaw, nbRaw, gridRaw uint8) bool {
		r := rng.New(seed)
		na := int(naRaw%40) + 1
		nb := int(nbRaw%40) + 1
		grid := float64(gridRaw%6) + 1 // coarse grid => many exact ties
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = float64(int(r.Float64() * grid))
		}
		for i := range b {
			b[i] = float64(int(r.Float64()*grid)) + float64(int(r.Float64()*2))
		}
		want := naiveKSStat(a, b)
		sa := append([]float64(nil), a...)
		sb := append([]float64(nil), b...)
		sort.Float64s(sa)
		sort.Float64s(sb)
		got := KSStatSorted(sa, sb)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ECDF is monotone non-decreasing.
func TestQuickECDFMonotone(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		xs := make([]float64, int(n%50)+1)
		for i := range xs {
			xs[i] = r.Normal()
		}
		e := NewECDF(xs)
		prev := -1.0
		for x := -4.0; x <= 4.0; x += 0.25 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKSStatSorted(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 1000)
	y := make([]float64, 100)
	for i := range x {
		x[i] = r.Float64()
	}
	for i := range y {
		y[i] = r.Float64()
	}
	sort.Float64s(x)
	sort.Float64s(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSStatSorted(x, y)
	}
}

func BenchmarkWelchTest(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 1000)
	y := make([]float64, 100)
	for i := range x {
		x[i] = r.Normal()
	}
	for i := range y {
		y[i] = r.Normal()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WelchTest(x, y)
	}
}
