package stats

import "math"

// WelchResult holds the outcome of a Welch unequal-variance two-sample
// t-test (paper Eq. 9 and the Welch–Satterthwaite equation).
type WelchResult struct {
	T  float64 // test statistic
	DF float64 // Welch–Satterthwaite degrees of freedom (fractional)
	P  float64 // two-tailed p-value under H0 "same mean"
}

// WelchTest compares the means of samples a and b without assuming equal
// variances. It degrades gracefully on degenerate input: if either sample
// has fewer than two observations, or both variances are zero, the result
// carries NaN statistics and P = 1 (no evidence of deviation), which is the
// conservative choice for a contrast measure.
func WelchTest(a, b []float64) WelchResult {
	meanA, varA := MeanVar(a)
	meanB, varB := MeanVar(b)
	return WelchTestMoments(meanA, varA, float64(len(a)), meanB, varB, float64(len(b)))
}

// WelchTestMoments performs the Welch test from precomputed sample moments.
// This is the entry point used by the HiCS hot loop, where the marginal
// sample's moments are computed once per attribute and reused across all
// Monte Carlo iterations.
func WelchTestMoments(meanA, varA, nA, meanB, varB, nB float64) WelchResult {
	if nA < 2 || nB < 2 || math.IsNaN(varA) || math.IsNaN(varB) {
		return WelchResult{T: math.NaN(), DF: math.NaN(), P: 1}
	}
	sa := varA / nA
	sb := varB / nB
	denom := sa + sb
	if denom == 0 {
		// Both samples are constant. Equal constants: no deviation.
		// Different constants: maximal deviation.
		if meanA == meanB {
			return WelchResult{T: 0, DF: nA + nB - 2, P: 1}
		}
		return WelchResult{T: math.Inf(1), DF: nA + nB - 2, P: 0}
	}
	t := (meanA - meanB) / math.Sqrt(denom)
	// Welch–Satterthwaite degrees of freedom.
	df := denom * denom / (sa*sa/(nA-1) + sb*sb/(nB-1))
	p := StudentTTwoTailedP(t, df)
	return WelchResult{T: t, DF: df, P: p}
}

// WelchDeviation returns the HiCS_WT deviation value 1 − p for the two
// samples: 0 means the conditional sample is statistically indistinguishable
// from the marginal, values near 1 mean strong dependence.
func WelchDeviation(a, b []float64) float64 {
	return 1 - WelchTest(a, b).P
}
