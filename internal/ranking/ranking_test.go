package ranking

import (
	"context"
	"errors"
	"math"
	"testing"

	"hics/internal/core"
	"hics/internal/dataset"
	"hics/internal/eval"
	"hics/internal/neighbors"
	"hics/internal/randsub"
	"hics/internal/subspace"
	"hics/internal/synth"
)

func benchData(t *testing.T, seed uint64) *synth.Benchmark {
	t.Helper()
	b, err := synth.Generate(synth.Config{N: 400, D: 8, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFullSpaceLOFPipeline(t *testing.T) {
	b := benchData(t, 1)
	p := Pipeline{Searcher: FullSpace{}, Scorer: LOFScorer{MinPts: 10}}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != b.Data.Data.N() {
		t.Fatalf("score count %d", len(res.Scores))
	}
	if len(res.Subspaces) != 1 || res.Subspaces[0].S.Dim() != b.Data.Data.D() {
		t.Errorf("full space pipeline used %v", res.Subspaces)
	}
	if p.Name() != "LOF" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestHiCSPipelineBeatsFullSpaceOnPlantedData(t *testing.T) {
	// Higher-dimensional noise hurts full-space LOF; HiCS should find the
	// planted 2-3-d groups and beat it.
	b, err := synth.Generate(synth.Config{N: 500, D: 20, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Data.Data

	hics := Pipeline{
		Searcher: &core.Searcher{Params: core.Params{M: 50, Seed: 1, TopK: 40}},
		Scorer:   LOFScorer{MinPts: 10},
	}
	full := Pipeline{Searcher: FullSpace{}, Scorer: LOFScorer{MinPts: 10}}

	rh, err := hics.Rank(ds)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.Rank(ds)
	if err != nil {
		t.Fatal(err)
	}
	aucH, err := eval.AUC(rh.Scores, b.Data.Outlier)
	if err != nil {
		t.Fatal(err)
	}
	aucF, err := eval.AUC(rf.Scores, b.Data.Outlier)
	if err != nil {
		t.Fatal(err)
	}
	if aucH <= aucF {
		t.Errorf("HiCS AUC %.3f not above full-space AUC %.3f", aucH, aucF)
	}
	if aucH < 0.8 {
		t.Errorf("HiCS AUC %.3f unexpectedly low on planted data", aucH)
	}
	if hics.Name() != "HiCS+LOF" {
		t.Errorf("Name = %q", hics.Name())
	}
}

func TestMaxSubspacesCap(t *testing.T) {
	b := benchData(t, 2)
	p := Pipeline{
		Searcher:     &randsub.Searcher{Params: randsub.Params{Count: 30, Seed: 1}},
		Scorer:       KNNScorer{K: 5},
		MaxSubspaces: 4,
	}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) != 4 {
		t.Errorf("cap ignored: %d subspaces scored", len(res.Subspaces))
	}
}

func TestAggregationAverageVsMax(t *testing.T) {
	b := benchData(t, 3)
	searcher := &randsub.Searcher{Params: randsub.Params{Count: 10, MinDim: 2, MaxDim: 3, Seed: 2}}
	avg := Pipeline{Searcher: searcher, Scorer: LOFScorer{}, Agg: Average}
	max := Pipeline{Searcher: searcher, Scorer: LOFScorer{}, Agg: Max}
	ra, err := avg.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := max.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Max aggregation dominates average pointwise.
	for i := range ra.Scores {
		if rm.Scores[i] < ra.Scores[i]-1e-9 {
			t.Fatalf("max < average at %d: %v vs %v", i, rm.Scores[i], ra.Scores[i])
		}
	}
	if Average.String() != "average" || Max.String() != "max" {
		t.Error("Aggregation names wrong")
	}
}

func TestPipelineErrors(t *testing.T) {
	b := benchData(t, 4)
	if _, err := (Pipeline{}).Rank(b.Data.Data); err == nil {
		t.Error("missing components should fail")
	}
	empty := Pipeline{Searcher: emptySearcher{}, Scorer: LOFScorer{}}
	if _, err := empty.Rank(b.Data.Data); err == nil {
		t.Error("empty subspace list should fail")
	}
	failing := Pipeline{Searcher: failingSearcher{}, Scorer: LOFScorer{}}
	if _, err := failing.Rank(b.Data.Data); err == nil {
		t.Error("searcher error should propagate")
	}
}

type emptySearcher struct{}

func (emptySearcher) Search(context.Context, *dataset.Dataset) ([]subspace.Scored, error) {
	return nil, nil
}
func (emptySearcher) Name() string { return "empty" }

type failingSearcher struct{}

func (failingSearcher) Search(context.Context, *dataset.Dataset) ([]subspace.Scored, error) {
	return nil, errors.New("boom")
}
func (failingSearcher) Name() string { return "failing" }

func TestPCAPipeline(t *testing.T) {
	b := benchData(t, 5)
	p := PCAPipeline{
		Components: func(d int) int { return d / 2 },
		Scorer:     LOFScorer{MinPts: 10},
		Label:      "PCALOF1",
	}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != b.Data.Data.N() {
		t.Fatalf("score count %d", len(res.Scores))
	}
	if res.Subspaces[0].S.Dim() != b.Data.Data.D()/2 {
		t.Errorf("PCA projected to %d dims", res.Subspaces[0].S.Dim())
	}
	if p.Name() != "PCALOF1" {
		t.Errorf("Name = %q", p.Name())
	}
	unlabeled := PCAPipeline{Components: func(int) int { return 2 }, Scorer: KNNScorer{}}
	if unlabeled.Name() != "PCA+kNN" {
		t.Errorf("default name = %q", unlabeled.Name())
	}
}

func TestPCAPipelineClampsComponents(t *testing.T) {
	b := benchData(t, 6)
	p := PCAPipeline{Components: func(d int) int { return d + 10 }, Scorer: KNNScorer{K: 5}}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Subspaces[0].S.Dim() != b.Data.Data.D() {
		t.Errorf("clamp failed: %d", res.Subspaces[0].S.Dim())
	}
	zero := PCAPipeline{Components: func(int) int { return 0 }, Scorer: KNNScorer{K: 5}}
	if _, err := zero.Rank(b.Data.Data); err != nil {
		t.Errorf("k clamped to 1 should work: %v", err)
	}
}

func TestPCAPipelineErrors(t *testing.T) {
	b := benchData(t, 7)
	if _, err := (PCAPipeline{}).Rank(b.Data.Data); err == nil {
		t.Error("missing components should fail")
	}
}

func TestScorerNames(t *testing.T) {
	if (LOFScorer{}).Name() != "LOF" || (KNNScorer{}).Name() != "kNN" {
		t.Error("scorer names wrong")
	}
}

func TestScoresFiniteOrInf(t *testing.T) {
	b := benchData(t, 8)
	p := Pipeline{Searcher: FullSpace{}, Scorer: LOFScorer{MinPts: 5}}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Scores {
		if math.IsNaN(s) {
			t.Fatalf("NaN score at %d", i)
		}
	}
}

func TestParseAggregation(t *testing.T) {
	cases := map[string]Aggregation{
		"": Average, "average": Average, "avg": Average, "mean": Average,
		"max": Max, "product": Product, "prod": Product,
	}
	for s, want := range cases {
		got, err := ParseAggregation(s)
		if err != nil || got != want {
			t.Errorf("ParseAggregation(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseAggregation("median"); err == nil {
		t.Error("ParseAggregation should reject unknown names")
	}
	if Product.String() != "product" {
		t.Errorf("Product.String() = %q", Product.String())
	}
}

// TestFitTrainScoresEqualRank is the fit/score split's core contract at
// the pipeline level: for every scorer, aggregation and backend, the
// fitted pipeline's training scores are bit-for-bit the Rank scores, and
// ScorePoint on a training row's out-of-sample formula stays finite.
func TestFitTrainScoresEqualRank(t *testing.T) {
	b := benchData(t, 10)
	ds := b.Data.Data
	searcher := &core.Searcher{Params: core.Params{M: 20, Seed: 3, TopK: 15}}
	for _, scorer := range []Scorer{LOFScorer{MinPts: 10}, KNNScorer{K: 10}} {
		for _, agg := range []Aggregation{Average, Max, Product} {
			for _, kind := range []neighbors.Kind{neighbors.KindAuto, neighbors.KindBrute, neighbors.KindKDTree} {
				p := Pipeline{Searcher: searcher, Scorer: scorer, Agg: agg, Index: kind}
				res, err := p.Rank(ds)
				if err != nil {
					t.Fatal(err)
				}
				fp, err := p.Fit(ds)
				if err != nil {
					t.Fatal(err)
				}
				if len(fp.Train) != len(res.Scores) || len(fp.Scorers) != len(res.Subspaces) {
					t.Fatalf("%s/%s/%v: fitted sizes train=%d scorers=%d vs rank scores=%d subspaces=%d",
						scorer.Name(), agg, kind, len(fp.Train), len(fp.Scorers), len(res.Scores), len(res.Subspaces))
				}
				for i := range res.Scores {
					if fp.Train[i] != res.Scores[i] {
						t.Fatalf("%s/%s/%v: train[%d] = %v, Rank = %v",
							scorer.Name(), agg, kind, i, fp.Train[i], res.Scores[i])
					}
				}
			}
		}
	}
}

// TestFitScorePointBackendEquivalence: out-of-sample pipeline scores agree
// bit for bit across pinned backends.
func TestFitScorePointBackendEquivalence(t *testing.T) {
	b := benchData(t, 11)
	ds := b.Data.Data
	searcher := &core.Searcher{Params: core.Params{M: 20, Seed: 4, TopK: 10}}
	brute, err := Pipeline{Searcher: searcher, Scorer: LOFScorer{MinPts: 10}, Index: neighbors.KindBrute}.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Pipeline{Searcher: searcher, Scorer: LOFScorer{MinPts: 10}, Index: neighbors.KindKDTree}.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 0, ds.D())
	for i := 0; i < ds.N(); i += 13 {
		row := ds.Row(i, buf)
		// Perturb the row so the query is genuinely out-of-sample.
		for j := range row {
			row[j] += 0.01 * float64(j+1)
		}
		sb, err := brute.ScorePoint(row)
		if err != nil {
			t.Fatal(err)
		}
		st, err := tree.ScorePoint(row)
		if err != nil {
			t.Fatal(err)
		}
		if sb != st {
			t.Fatalf("ScorePoint row %d: brute %v != kdtree %v", i, sb, st)
		}
		if math.IsNaN(sb) {
			t.Fatalf("ScorePoint row %d: NaN", i)
		}
	}
	if _, err := brute.ScorePoint(make([]float64, ds.D()+1)); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestFitErrors(t *testing.T) {
	b := benchData(t, 12)
	if _, err := (Pipeline{}).Fit(b.Data.Data); err == nil {
		t.Error("missing components should fail")
	}
	if _, err := (Pipeline{Searcher: emptySearcher{}, Scorer: LOFScorer{}}).Fit(b.Data.Data); err == nil {
		t.Error("empty subspace list should fail")
	}
	if _, err := (Pipeline{Searcher: FullSpace{}, Scorer: unfittableScorer{}}).Fit(b.Data.Data); err == nil {
		t.Error("non-FitScorer should fail")
	}
}

type unfittableScorer struct{}

func (unfittableScorer) Score(*dataset.Dataset, []int) ([]float64, error) { return nil, nil }
func (unfittableScorer) Name() string                                     { return "unfittable" }

// TestPipelineIndexOverride: Pipeline.Index pins the backend of every
// IndexableScorer, and the pinned backends agree bit for bit.
func TestPipelineIndexOverride(t *testing.T) {
	b := benchData(t, 9)
	for _, scorer := range []Scorer{LOFScorer{MinPts: 10}, KNNScorer{K: 10}} {
		base := Pipeline{Searcher: FullSpace{}, Scorer: scorer}
		brute := Pipeline{Searcher: FullSpace{}, Scorer: scorer, Index: neighbors.KindBrute}
		tree := Pipeline{Searcher: FullSpace{}, Scorer: scorer, Index: neighbors.KindKDTree}
		rBase, err := base.Rank(b.Data.Data)
		if err != nil {
			t.Fatal(err)
		}
		rBrute, err := brute.Rank(b.Data.Data)
		if err != nil {
			t.Fatal(err)
		}
		rTree, err := tree.Rank(b.Data.Data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rBase.Scores {
			if rBrute.Scores[i] != rTree.Scores[i] || rBase.Scores[i] != rTree.Scores[i] {
				t.Fatalf("%s score[%d]: auto %v, brute %v, kdtree %v", scorer.Name(), i,
					rBase.Scores[i], rBrute.Scores[i], rTree.Scores[i])
			}
		}
	}
	// WithIndex returns a pinned copy without mutating the receiver.
	s := LOFScorer{MinPts: 5}
	pinned := s.WithIndex(neighbors.KindKDTree).(LOFScorer)
	if pinned.Index != neighbors.KindKDTree || s.Index != neighbors.KindAuto {
		t.Errorf("WithIndex: pinned %v, original %v", pinned.Index, s.Index)
	}
}
