package ranking

import (
	"errors"
	"math"
	"testing"

	"hics/internal/core"
	"hics/internal/dataset"
	"hics/internal/eval"
	"hics/internal/neighbors"
	"hics/internal/randsub"
	"hics/internal/subspace"
	"hics/internal/synth"
)

func benchData(t *testing.T, seed uint64) *synth.Benchmark {
	t.Helper()
	b, err := synth.Generate(synth.Config{N: 400, D: 8, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFullSpaceLOFPipeline(t *testing.T) {
	b := benchData(t, 1)
	p := Pipeline{Searcher: FullSpace{}, Scorer: LOFScorer{MinPts: 10}}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != b.Data.Data.N() {
		t.Fatalf("score count %d", len(res.Scores))
	}
	if len(res.Subspaces) != 1 || res.Subspaces[0].S.Dim() != b.Data.Data.D() {
		t.Errorf("full space pipeline used %v", res.Subspaces)
	}
	if p.Name() != "LOF" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestHiCSPipelineBeatsFullSpaceOnPlantedData(t *testing.T) {
	// Higher-dimensional noise hurts full-space LOF; HiCS should find the
	// planted 2-3-d groups and beat it.
	b, err := synth.Generate(synth.Config{N: 500, D: 20, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Data.Data

	hics := Pipeline{
		Searcher: &core.Searcher{Params: core.Params{M: 50, Seed: 1, TopK: 40}},
		Scorer:   LOFScorer{MinPts: 10},
	}
	full := Pipeline{Searcher: FullSpace{}, Scorer: LOFScorer{MinPts: 10}}

	rh, err := hics.Rank(ds)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.Rank(ds)
	if err != nil {
		t.Fatal(err)
	}
	aucH, err := eval.AUC(rh.Scores, b.Data.Outlier)
	if err != nil {
		t.Fatal(err)
	}
	aucF, err := eval.AUC(rf.Scores, b.Data.Outlier)
	if err != nil {
		t.Fatal(err)
	}
	if aucH <= aucF {
		t.Errorf("HiCS AUC %.3f not above full-space AUC %.3f", aucH, aucF)
	}
	if aucH < 0.8 {
		t.Errorf("HiCS AUC %.3f unexpectedly low on planted data", aucH)
	}
	if hics.Name() != "HiCS+LOF" {
		t.Errorf("Name = %q", hics.Name())
	}
}

func TestMaxSubspacesCap(t *testing.T) {
	b := benchData(t, 2)
	p := Pipeline{
		Searcher:     &randsub.Searcher{Params: randsub.Params{Count: 30, Seed: 1}},
		Scorer:       KNNScorer{K: 5},
		MaxSubspaces: 4,
	}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) != 4 {
		t.Errorf("cap ignored: %d subspaces scored", len(res.Subspaces))
	}
}

func TestAggregationAverageVsMax(t *testing.T) {
	b := benchData(t, 3)
	searcher := &randsub.Searcher{Params: randsub.Params{Count: 10, MinDim: 2, MaxDim: 3, Seed: 2}}
	avg := Pipeline{Searcher: searcher, Scorer: LOFScorer{}, Agg: Average}
	max := Pipeline{Searcher: searcher, Scorer: LOFScorer{}, Agg: Max}
	ra, err := avg.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := max.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Max aggregation dominates average pointwise.
	for i := range ra.Scores {
		if rm.Scores[i] < ra.Scores[i]-1e-9 {
			t.Fatalf("max < average at %d: %v vs %v", i, rm.Scores[i], ra.Scores[i])
		}
	}
	if Average.String() != "average" || Max.String() != "max" {
		t.Error("Aggregation names wrong")
	}
}

func TestPipelineErrors(t *testing.T) {
	b := benchData(t, 4)
	if _, err := (Pipeline{}).Rank(b.Data.Data); err == nil {
		t.Error("missing components should fail")
	}
	empty := Pipeline{Searcher: emptySearcher{}, Scorer: LOFScorer{}}
	if _, err := empty.Rank(b.Data.Data); err == nil {
		t.Error("empty subspace list should fail")
	}
	failing := Pipeline{Searcher: failingSearcher{}, Scorer: LOFScorer{}}
	if _, err := failing.Rank(b.Data.Data); err == nil {
		t.Error("searcher error should propagate")
	}
}

type emptySearcher struct{}

func (emptySearcher) Search(*dataset.Dataset) ([]subspace.Scored, error) { return nil, nil }
func (emptySearcher) Name() string                                       { return "empty" }

type failingSearcher struct{}

func (failingSearcher) Search(*dataset.Dataset) ([]subspace.Scored, error) {
	return nil, errors.New("boom")
}
func (failingSearcher) Name() string { return "failing" }

func TestPCAPipeline(t *testing.T) {
	b := benchData(t, 5)
	p := PCAPipeline{
		Components: func(d int) int { return d / 2 },
		Scorer:     LOFScorer{MinPts: 10},
		Label:      "PCALOF1",
	}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != b.Data.Data.N() {
		t.Fatalf("score count %d", len(res.Scores))
	}
	if res.Subspaces[0].S.Dim() != b.Data.Data.D()/2 {
		t.Errorf("PCA projected to %d dims", res.Subspaces[0].S.Dim())
	}
	if p.Name() != "PCALOF1" {
		t.Errorf("Name = %q", p.Name())
	}
	unlabeled := PCAPipeline{Components: func(int) int { return 2 }, Scorer: KNNScorer{}}
	if unlabeled.Name() != "PCA+kNN" {
		t.Errorf("default name = %q", unlabeled.Name())
	}
}

func TestPCAPipelineClampsComponents(t *testing.T) {
	b := benchData(t, 6)
	p := PCAPipeline{Components: func(d int) int { return d + 10 }, Scorer: KNNScorer{K: 5}}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Subspaces[0].S.Dim() != b.Data.Data.D() {
		t.Errorf("clamp failed: %d", res.Subspaces[0].S.Dim())
	}
	zero := PCAPipeline{Components: func(int) int { return 0 }, Scorer: KNNScorer{K: 5}}
	if _, err := zero.Rank(b.Data.Data); err != nil {
		t.Errorf("k clamped to 1 should work: %v", err)
	}
}

func TestPCAPipelineErrors(t *testing.T) {
	b := benchData(t, 7)
	if _, err := (PCAPipeline{}).Rank(b.Data.Data); err == nil {
		t.Error("missing components should fail")
	}
}

func TestScorerNames(t *testing.T) {
	if (LOFScorer{}).Name() != "LOF" || (KNNScorer{}).Name() != "kNN" {
		t.Error("scorer names wrong")
	}
}

func TestScoresFiniteOrInf(t *testing.T) {
	b := benchData(t, 8)
	p := Pipeline{Searcher: FullSpace{}, Scorer: LOFScorer{MinPts: 5}}
	res, err := p.Rank(b.Data.Data)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Scores {
		if math.IsNaN(s) {
			t.Fatalf("NaN score at %d", i)
		}
	}
}

// TestPipelineIndexOverride: Pipeline.Index pins the backend of every
// IndexableScorer, and the pinned backends agree bit for bit.
func TestPipelineIndexOverride(t *testing.T) {
	b := benchData(t, 9)
	for _, scorer := range []Scorer{LOFScorer{MinPts: 10}, KNNScorer{K: 10}} {
		base := Pipeline{Searcher: FullSpace{}, Scorer: scorer}
		brute := Pipeline{Searcher: FullSpace{}, Scorer: scorer, Index: neighbors.KindBrute}
		tree := Pipeline{Searcher: FullSpace{}, Scorer: scorer, Index: neighbors.KindKDTree}
		rBase, err := base.Rank(b.Data.Data)
		if err != nil {
			t.Fatal(err)
		}
		rBrute, err := brute.Rank(b.Data.Data)
		if err != nil {
			t.Fatal(err)
		}
		rTree, err := tree.Rank(b.Data.Data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rBase.Scores {
			if rBrute.Scores[i] != rTree.Scores[i] || rBase.Scores[i] != rTree.Scores[i] {
				t.Fatalf("%s score[%d]: auto %v, brute %v, kdtree %v", scorer.Name(), i,
					rBase.Scores[i], rBrute.Scores[i], rTree.Scores[i])
			}
		}
	}
	// WithIndex returns a pinned copy without mutating the receiver.
	s := LOFScorer{MinPts: 5}
	pinned := s.WithIndex(neighbors.KindKDTree).(LOFScorer)
	if pinned.Index != neighbors.KindKDTree || s.Index != neighbors.KindAuto {
		t.Errorf("WithIndex: pinned %v, original %v", pinned.Index, s.Index)
	}
}
