// Package ranking implements the decoupled two-step processing the paper
// proposes: a SubspaceSearcher (step 1) produces a ranked list of
// projections, a Scorer (step 2) computes density-based outlier scores in
// each projection, and an Aggregation combines the per-subspace scores
// into the final outlier ranking (Definition 1).
//
// The decoupling is the point: every searcher in this repository (HiCS,
// Enclus, RIS, RANDSUB, SURFING, full space) plugs into every scorer
// (LOF, kNN, ORCA, OUTRES) without either knowing about the other, which
// is exactly the modularity argument of the paper's introduction. The
// internal/registry package names each implementation, so any
// (searcher, scorer) pair is constructible from a pair of strings at
// every entry point.
package ranking

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hics/internal/dataset"
	"hics/internal/lof"
	"hics/internal/neighbors"
	"hics/internal/pca"
	"hics/internal/subspace"
	"hics/internal/trace"
)

// SubspaceSearcher is step 1: select projections worth ranking in.
type SubspaceSearcher interface {
	// Search returns subspaces ordered by descending quality. The search
	// observes ctx cooperatively: a cancelled context makes it return
	// ctx.Err() promptly, and an uncancelled search is deterministic —
	// the ctx checks never consume randomness.
	Search(ctx context.Context, ds *dataset.Dataset) ([]subspace.Scored, error)
	// Name identifies the method in reports.
	Name() string
}

// Scorer is step 2: compute per-object outlier scores within one
// projection. Higher scores mean more outlying.
type Scorer interface {
	Score(ds *dataset.Dataset, dims []int) ([]float64, error)
	Name() string
}

// IndexableScorer is implemented by scorers whose neighbor search runs
// against the internal/neighbors index subsystem; WithIndex returns a copy
// of the scorer pinned to the given backend. Backends are bit-for-bit
// equivalent, so the choice only affects speed.
type IndexableScorer interface {
	Scorer
	WithIndex(kind neighbors.Kind) Scorer
}

// ContextScorer is implemented by scorers whose batch pass observes a
// context and a worker bound (workers <= 0 means one per CPU);
// Pipeline.RankContext prefers it over the plain Score when available.
// Scores must be bit-for-bit identical to Score whatever the worker
// count.
type ContextScorer interface {
	Scorer
	ScoreContext(ctx context.Context, ds *dataset.Dataset, dims []int, workers int) ([]float64, error)
}

// ContextFitScorer is the fit/score-split counterpart of ContextScorer;
// Pipeline.FitContext prefers it over the plain Fit when available.
type ContextFitScorer interface {
	FitScorer
	FitContext(ctx context.Context, ds *dataset.Dataset, dims []int, workers int) (FittedScorer, []float64, error)
}

// LOFScorer scores with the Local Outlier Factor, the paper's reference
// instantiation.
type LOFScorer struct {
	// MinPts is the LOF neighborhood size; 0 selects lof.DefaultMinPts.
	MinPts int
	// Index selects the neighbor-index backend (default automatic).
	Index neighbors.Kind
}

// Score implements Scorer.
func (s LOFScorer) Score(ds *dataset.Dataset, dims []int) ([]float64, error) {
	return lof.ScoresWith(ds, dims, s.MinPts, s.Index)
}

// ScoreContext implements ContextScorer.
func (s LOFScorer) ScoreContext(ctx context.Context, ds *dataset.Dataset, dims []int, workers int) ([]float64, error) {
	return lof.ScoresContext(ctx, ds, dims, s.MinPts, s.Index, workers)
}

// Name implements Scorer.
func (s LOFScorer) Name() string { return "LOF" }

// WithIndex implements IndexableScorer.
func (s LOFScorer) WithIndex(kind neighbors.Kind) Scorer {
	s.Index = kind
	return s
}

// KNNScorer scores with the average k-nearest-neighbor distance, the
// cheaper alternative named in the paper's future work.
type KNNScorer struct {
	// K is the neighborhood size; 0 selects lof.DefaultMinPts.
	K int
	// Index selects the neighbor-index backend (default automatic).
	Index neighbors.Kind
}

// Score implements Scorer.
func (s KNNScorer) Score(ds *dataset.Dataset, dims []int) ([]float64, error) {
	return lof.KNNScoresWith(ds, dims, s.K, s.Index)
}

// ScoreContext implements ContextScorer.
func (s KNNScorer) ScoreContext(ctx context.Context, ds *dataset.Dataset, dims []int, workers int) ([]float64, error) {
	return lof.KNNScoresContext(ctx, ds, dims, s.K, s.Index, workers)
}

// Name implements Scorer.
func (s KNNScorer) Name() string { return "kNN" }

// WithIndex implements IndexableScorer.
func (s KNNScorer) WithIndex(kind neighbors.Kind) Scorer {
	s.Index = kind
	return s
}

// FittedScorer is the frozen step-2 state for one subspace: it scores
// out-of-sample points without refitting. Implementations are safe for
// concurrent ScorePoint calls.
type FittedScorer interface {
	// Dims returns the subspace the scorer was fitted on.
	Dims() []int
	// ScorePoint scores a full-space point, projecting it onto the fitted
	// subspace internally.
	ScorePoint(full []float64) float64
}

// FitScorer is implemented by scorers that support the fit/score split.
type FitScorer interface {
	Scorer
	// Fit freezes the scorer's state on one subspace and returns the
	// training objects' batch scores (bit-for-bit what Score returns).
	// The scores are not retained by the fitted state — the caller folds
	// them into its aggregate and drops them.
	Fit(ds *dataset.Dataset, dims []int) (FittedScorer, []float64, error)
}

// FittedLOFScorer is the fitted form of LOFScorer. The exported fields
// allow model persistence layers to disassemble and reassemble the state.
type FittedLOFScorer struct {
	// Subspace is the fitted projection (ascending attribute indices).
	Subspace []int
	// State is the frozen LOF state on that projection.
	State *lof.Fitted
}

// Dims implements FittedScorer.
func (f *FittedLOFScorer) Dims() []int { return f.Subspace }

// ScorePoint implements FittedScorer.
func (f *FittedLOFScorer) ScorePoint(full []float64) float64 {
	return f.State.ScoreQueryAt(full, f.Subspace)
}

// Fit implements FitScorer.
func (s LOFScorer) Fit(ds *dataset.Dataset, dims []int) (FittedScorer, []float64, error) {
	return s.FitContext(context.Background(), ds, dims, 0)
}

// FitContext implements ContextFitScorer.
func (s LOFScorer) FitContext(ctx context.Context, ds *dataset.Dataset, dims []int, workers int) (FittedScorer, []float64, error) {
	st, scores, err := lof.FitContext(ctx, ds, dims, s.MinPts, s.Index, workers)
	if err != nil {
		return nil, nil, err
	}
	return &FittedLOFScorer{Subspace: append([]int(nil), dims...), State: st}, scores, nil
}

// FittedKNNScorer is the fitted form of KNNScorer.
type FittedKNNScorer struct {
	// Subspace is the fitted projection (ascending attribute indices).
	Subspace []int
	// State is the frozen kNN-distance state on that projection.
	State *lof.FittedKNN
}

// Dims implements FittedScorer.
func (f *FittedKNNScorer) Dims() []int { return f.Subspace }

// ScorePoint implements FittedScorer.
func (f *FittedKNNScorer) ScorePoint(full []float64) float64 {
	return f.State.ScoreQueryAt(full, f.Subspace)
}

// Fit implements FitScorer.
func (s KNNScorer) Fit(ds *dataset.Dataset, dims []int) (FittedScorer, []float64, error) {
	return s.FitContext(context.Background(), ds, dims, 0)
}

// FitContext implements ContextFitScorer.
func (s KNNScorer) FitContext(ctx context.Context, ds *dataset.Dataset, dims []int, workers int) (FittedScorer, []float64, error) {
	st, scores, err := lof.FitKNNContext(ctx, ds, dims, s.K, s.Index, workers)
	if err != nil {
		return nil, nil, err
	}
	return &FittedKNNScorer{Subspace: append([]int(nil), dims...), State: st}, scores, nil
}

var (
	_ ContextFitScorer = LOFScorer{}
	_ ContextFitScorer = KNNScorer{}
)

// Aggregation selects how per-subspace scores combine (Sec. IV-C).
type Aggregation int

const (
	// Average is the paper's choice: cumulative outlierness, robust to
	// fluctuations in individual subspaces.
	Average Aggregation = iota
	// Max is the sensitive alternative the paper evaluates and rejects.
	Max
	// Product multiplies per-subspace scores (shifted by one so a zero
	// score is neutral) — the OUTRES-style aggregation, emphasizing
	// objects that deviate in several subspaces at once.
	Product
)

func (a Aggregation) String() string {
	switch a {
	case Max:
		return "max"
	case Product:
		return "product"
	default:
		return "average"
	}
}

// ParseAggregation parses a user-facing aggregation name. The empty string
// means the paper's default, average.
func ParseAggregation(s string) (Aggregation, error) {
	switch s {
	case "", "average", "avg", "mean":
		return Average, nil
	case "max":
		return Max, nil
	case "product", "prod":
		return Product, nil
	}
	return Average, fmt.Errorf("ranking: unknown aggregation %q (want average, max or product)", s)
}

// accumulator folds per-subspace score slices into the final per-object
// scores one slice at a time (O(N) memory however many subspaces
// contribute). The element-wise operation sequence is fixed by the fold
// order alone, so batch scoring (Rank) and fitted scoring (Fit) produce
// bit-for-bit identical aggregates.
type accumulator struct {
	a      Aggregation
	vals   []float64
	folded int
}

func newAccumulator(a Aggregation, n int) *accumulator {
	vals := make([]float64, n)
	switch a {
	case Max:
		for i := range vals {
			vals[i] = -1
		}
	case Product:
		for i := range vals {
			vals[i] = 1
		}
	}
	return &accumulator{a: a, vals: vals}
}

// fold absorbs one subspace's scores.
func (ac *accumulator) fold(scores []float64) {
	ac.folded++
	switch ac.a {
	case Max:
		for i, v := range scores {
			if v > ac.vals[i] {
				ac.vals[i] = v
			}
		}
	case Product:
		for i, v := range scores {
			ac.vals[i] *= 1 + v
		}
	default:
		for i, v := range scores {
			ac.vals[i] += v
		}
	}
}

// finish finalizes and returns the aggregate; the accumulator must not be
// used afterwards.
func (ac *accumulator) finish() []float64 {
	if ac.a == Average {
		inv := 1 / float64(ac.folded)
		for i := range ac.vals {
			ac.vals[i] *= inv
		}
	}
	return ac.vals
}

// aggregatePoint is the accumulator fold for a single object's
// per-subspace scores, with the same operation sequence.
func aggregatePoint(a Aggregation, vals []float64) float64 {
	switch a {
	case Max:
		agg := -1.0
		for _, v := range vals {
			if v > agg {
				agg = v
			}
		}
		return agg
	case Product:
		agg := 1.0
		for _, v := range vals {
			agg *= 1 + v
		}
		return agg
	default:
		agg := 0.0
		for _, v := range vals {
			agg += v
		}
		return agg * (1 / float64(len(vals)))
	}
}

// FullSpace is the trivial searcher returning only the full data space;
// combining it with LOFScorer yields the classical full-space LOF
// baseline.
type FullSpace struct{}

// Search implements SubspaceSearcher.
func (FullSpace) Search(_ context.Context, ds *dataset.Dataset) ([]subspace.Scored, error) {
	return []subspace.Scored{{S: subspace.Full(ds.D())}}, nil
}

// Name implements SubspaceSearcher.
func (FullSpace) Name() string { return "LOF" }

// Pipeline wires a searcher, a scorer and an aggregation into the complete
// two-step outlier ranking.
type Pipeline struct {
	Searcher SubspaceSearcher
	Scorer   Scorer
	Agg      Aggregation
	// MaxSubspaces caps how many of the searcher's subspaces are scored
	// ("we use only the best 100 subspaces", Sec. V). 0 means 100, -1 all.
	MaxSubspaces int
	// Index pins the neighbor-index backend of an IndexableScorer. KindAuto
	// (the zero value) leaves the scorer's own configuration untouched.
	Index neighbors.Kind
	// Workers bounds the batch-pass parallelism of a ContextScorer
	// (0 = one worker per CPU); the search step's own worker bound lives
	// in the searcher's parameters. Scores are bit-for-bit independent of
	// the setting.
	Workers int
}

// DefaultMaxSubspaces is the paper's budget of ranked projections.
const DefaultMaxSubspaces = 100

// Result carries the final ranking and provenance.
type Result struct {
	// Scores is the aggregated outlier score per object.
	Scores []float64
	// Subspaces lists the projections that contributed.
	Subspaces []subspace.Scored
}

// resolve validates the pipeline wiring, applies the index pin and the
// subspace budget, and runs the search step — the shared preamble of Rank
// and Fit.
func (p Pipeline) resolve(ctx context.Context, ds *dataset.Dataset) (Scorer, []subspace.Scored, error) {
	if p.Searcher == nil || p.Scorer == nil {
		return nil, nil, errors.New("ranking: pipeline needs a Searcher and a Scorer")
	}
	scorer := p.Scorer
	if p.Index != neighbors.KindAuto {
		if ix, ok := scorer.(IndexableScorer); ok {
			scorer = ix.WithIndex(p.Index)
		}
	}
	subspaces, err := p.Searcher.Search(ctx, ds)
	if err != nil {
		// ctx.Err() passes through unwrapped so callers can match it with
		// errors.Is across every layer.
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("ranking: subspace search (%s): %w", p.Searcher.Name(), err)
	}
	limit := p.MaxSubspaces
	if limit == 0 {
		limit = DefaultMaxSubspaces
	}
	if limit > 0 && len(subspaces) > limit {
		subspaces = subspaces[:limit]
	}
	if len(subspaces) == 0 {
		return nil, nil, fmt.Errorf("ranking: searcher %s selected no subspaces", p.Searcher.Name())
	}
	return scorer, subspaces, nil
}

// Rank runs the two-step pipeline on ds. Per-subspace scores are folded
// into the aggregate as they are produced, so only one score slice is
// alive at a time.
func (p Pipeline) Rank(ds *dataset.Dataset) (*Result, error) {
	return p.RankContext(context.Background(), ds)
}

// RankContext is Rank with cooperative cancellation: the subspace search
// observes ctx throughout its Monte Carlo loops, and the scoring step
// checks ctx between subspaces. An uncancelled run is bit-for-bit
// identical to Rank.
func (p Pipeline) RankContext(ctx context.Context, ds *dataset.Dataset) (*Result, error) {
	scorer, subspaces, err := p.resolve(ctx, ds)
	if err != nil {
		return nil, err
	}
	acc := newAccumulator(p.Agg, ds.N())
	cs, cancellable := scorer.(ContextScorer)
	// One span covers the whole per-subspace scoring pass; individual
	// neighbor-index builds inside the scorer open their own children.
	sctx, span := trace.StartSpan(ctx, "ranking.score")
	span.SetAttr("scorer", scorer.Name())
	span.SetAttr("subspaces", len(subspaces))
	defer span.End()
	for _, sc := range subspaces {
		if err := ctx.Err(); err != nil {
			span.SetError(err)
			return nil, err
		}
		var scores []float64
		if cancellable {
			scores, err = cs.ScoreContext(sctx, ds, sc.S, p.Workers)
		} else {
			scores, err = scorer.Score(ds, sc.S)
		}
		if err != nil {
			span.SetError(err)
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				return nil, err
			}
			return nil, fmt.Errorf("ranking: scoring %v with %s: %w", sc.S, scorer.Name(), err)
		}
		acc.fold(scores)
	}
	return &Result{Scores: acc.finish(), Subspaces: subspaces}, nil
}

// FittedPipeline is the frozen outcome of Pipeline.Fit: the selected
// subspaces, one fitted scorer per subspace, and the aggregated training
// scores. It scores out-of-sample points without re-running the subspace
// search or the batch scoring passes, and is safe for concurrent
// ScorePoint calls.
type FittedPipeline struct {
	// Subspaces are the projections the fit selected, in the order they
	// aggregate.
	Subspaces []subspace.Scored
	// Scorers holds the frozen step-2 state, parallel to Subspaces.
	Scorers []FittedScorer
	// Agg is the aggregation the fit used.
	Agg Aggregation
	// Train is the aggregated training score per object — bit-for-bit the
	// Rank result on the same data and configuration.
	Train []float64
	// D is the full-space dimensionality scored points must have.
	D int

	// scratch pools the per-query aggregation buffer; the zero value
	// works, so FittedPipeline may be built as a composite literal.
	scratch sync.Pool // *[]float64
}

// Fit runs the subspace search once and freezes the per-subspace scorer
// state. The pipeline's scorer must implement FitScorer. The returned
// training scores equal Rank's scores exactly: the per-subspace batch
// scores come from the same fitting passes and the aggregation applies the
// identical operation sequence.
func (p Pipeline) Fit(ds *dataset.Dataset) (*FittedPipeline, error) {
	return p.FitContext(context.Background(), ds)
}

// FitContext is Fit with cooperative cancellation, mirroring RankContext:
// ctx is observed throughout the subspace search and between per-subspace
// fitting passes. An uncancelled fit is bit-for-bit identical to Fit.
func (p Pipeline) FitContext(ctx context.Context, ds *dataset.Dataset) (*FittedPipeline, error) {
	scorer, subspaces, err := p.resolve(ctx, ds)
	if err != nil {
		return nil, err
	}
	fs, ok := scorer.(FitScorer)
	if !ok {
		return nil, fmt.Errorf("ranking: scorer %s does not support the fit/score split", scorer.Name())
	}
	fitted := make([]FittedScorer, len(subspaces))
	acc := newAccumulator(p.Agg, ds.N())
	cfs, cancellable := scorer.(ContextFitScorer)
	// The fitting pass mirrors RankContext's scoring span; per-subspace
	// neighbor-index builds nest underneath.
	fctx, span := trace.StartSpan(ctx, "ranking.fit")
	span.SetAttr("scorer", scorer.Name())
	span.SetAttr("subspaces", len(subspaces))
	defer span.End()
	for j, sc := range subspaces {
		if err := ctx.Err(); err != nil {
			span.SetError(err)
			return nil, err
		}
		var f FittedScorer
		var scores []float64
		if cancellable {
			f, scores, err = cfs.FitContext(fctx, ds, sc.S, p.Workers)
		} else {
			f, scores, err = fs.Fit(ds, sc.S)
		}
		if err != nil {
			span.SetError(err)
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				return nil, err
			}
			return nil, fmt.Errorf("ranking: fitting %v with %s: %w", sc.S, scorer.Name(), err)
		}
		fitted[j] = f
		acc.fold(scores)
	}
	return &FittedPipeline{
		Subspaces: subspaces,
		Scorers:   fitted,
		Agg:       p.Agg,
		Train:     acc.finish(),
		D:         ds.D(),
	}, nil
}

// ScorePoint scores one out-of-sample full-space point: every fitted
// subspace scorer evaluates the point's projection, and the per-subspace
// scores aggregate exactly like the batch ranking. The aggregation buffer
// is pooled, keeping the serving hot path allocation-free.
func (fp *FittedPipeline) ScorePoint(point []float64) (float64, error) {
	if len(point) != fp.D {
		return 0, fmt.Errorf("ranking: point has %d attributes, model expects %d", len(point), fp.D)
	}
	buf, _ := fp.scratch.Get().(*[]float64)
	if buf == nil {
		buf = new([]float64)
	}
	vals := (*buf)[:0]
	for _, f := range fp.Scorers {
		vals = append(vals, f.ScorePoint(point))
	}
	res := aggregatePoint(fp.Agg, vals)
	*buf = vals
	fp.scratch.Put(buf)
	return res, nil
}

// Name identifies the pipeline in reports, e.g. "HiCS+LOF".
func (p Pipeline) Name() string {
	if _, ok := p.Searcher.(FullSpace); ok {
		return p.Scorer.Name()
	}
	return p.Searcher.Name() + "+" + p.Scorer.Name()
}

// PCAPipeline is the dimensionality-reduction competitor: project the data
// onto the first k principal components, then run a full-space scorer on
// the projection. It does not fit the two-step interface because PCA
// transforms objects instead of selecting attribute subsets — the paper's
// argument for why it is not a subspace search method.
type PCAPipeline struct {
	// Components determines k from the data dimensionality. The paper's
	// variants: PCALOF1 uses d/2, PCALOF2 uses the constant 10.
	Components func(d int) int
	Scorer     Scorer
	// Label is the report name, e.g. "PCALOF1".
	Label string
}

// Rank projects and scores.
func (p PCAPipeline) Rank(ds *dataset.Dataset) (*Result, error) {
	return p.RankContext(context.Background(), ds)
}

// RankContext is Rank with cooperative cancellation. The PCA projection
// and the single scoring pass are one unit of work, so ctx is only
// checked between the two — cancellation latency is coarser than the
// subspace pipelines'.
func (p PCAPipeline) RankContext(ctx context.Context, ds *dataset.Dataset) (*Result, error) {
	if p.Components == nil || p.Scorer == nil {
		return nil, errors.New("ranking: PCA pipeline needs Components and Scorer")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := p.Components(ds.D())
	if k < 1 {
		k = 1
	}
	if k > ds.D() {
		k = ds.D()
	}
	proj, err := pca.FitTransform(ds.Standardized(), k)
	if err != nil {
		return nil, fmt.Errorf("ranking: PCA: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scores, err := p.Scorer.Score(proj, subspace.Full(k))
	if err != nil {
		return nil, fmt.Errorf("ranking: PCA scoring: %w", err)
	}
	return &Result{Scores: scores, Subspaces: []subspace.Scored{{S: subspace.Full(k)}}}, nil
}

// Name identifies the pipeline in reports.
func (p PCAPipeline) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "PCA+" + p.Scorer.Name()
}

// Ranker is the common interface of Pipeline and PCAPipeline, letting the
// experiment harness treat all competitors uniformly. Rank is the
// background-context convenience; RankContext is the cancellable form
// every harness loop should call.
type Ranker interface {
	Rank(ds *dataset.Dataset) (*Result, error)
	RankContext(ctx context.Context, ds *dataset.Dataset) (*Result, error)
	Name() string
}

var (
	_ Ranker = Pipeline{}
	_ Ranker = PCAPipeline{}
)
