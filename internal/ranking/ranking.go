// Package ranking implements the decoupled two-step processing the paper
// proposes: a SubspaceSearcher (step 1) produces a ranked list of
// projections, a Scorer (step 2) computes density-based outlier scores in
// each projection, and an Aggregation combines the per-subspace scores
// into the final outlier ranking (Definition 1).
//
// The decoupling is the point: every searcher in this repository (HiCS,
// Enclus, RIS, RANDSUB, full space) plugs into every scorer (LOF, kNN)
// without either knowing about the other, which is exactly the modularity
// argument of the paper's introduction.
package ranking

import (
	"errors"
	"fmt"

	"hics/internal/dataset"
	"hics/internal/lof"
	"hics/internal/neighbors"
	"hics/internal/pca"
	"hics/internal/subspace"
)

// SubspaceSearcher is step 1: select projections worth ranking in.
type SubspaceSearcher interface {
	// Search returns subspaces ordered by descending quality.
	Search(ds *dataset.Dataset) ([]subspace.Scored, error)
	// Name identifies the method in reports.
	Name() string
}

// Scorer is step 2: compute per-object outlier scores within one
// projection. Higher scores mean more outlying.
type Scorer interface {
	Score(ds *dataset.Dataset, dims []int) ([]float64, error)
	Name() string
}

// IndexableScorer is implemented by scorers whose neighbor search runs
// against the internal/neighbors index subsystem; WithIndex returns a copy
// of the scorer pinned to the given backend. Backends are bit-for-bit
// equivalent, so the choice only affects speed.
type IndexableScorer interface {
	Scorer
	WithIndex(kind neighbors.Kind) Scorer
}

// LOFScorer scores with the Local Outlier Factor, the paper's reference
// instantiation.
type LOFScorer struct {
	// MinPts is the LOF neighborhood size; 0 selects lof.DefaultMinPts.
	MinPts int
	// Index selects the neighbor-index backend (default automatic).
	Index neighbors.Kind
}

// Score implements Scorer.
func (s LOFScorer) Score(ds *dataset.Dataset, dims []int) ([]float64, error) {
	return lof.ScoresWith(ds, dims, s.MinPts, s.Index)
}

// Name implements Scorer.
func (s LOFScorer) Name() string { return "LOF" }

// WithIndex implements IndexableScorer.
func (s LOFScorer) WithIndex(kind neighbors.Kind) Scorer {
	s.Index = kind
	return s
}

// KNNScorer scores with the average k-nearest-neighbor distance, the
// cheaper alternative named in the paper's future work.
type KNNScorer struct {
	// K is the neighborhood size; 0 selects lof.DefaultMinPts.
	K int
	// Index selects the neighbor-index backend (default automatic).
	Index neighbors.Kind
}

// Score implements Scorer.
func (s KNNScorer) Score(ds *dataset.Dataset, dims []int) ([]float64, error) {
	return lof.KNNScoresWith(ds, dims, s.K, s.Index)
}

// Name implements Scorer.
func (s KNNScorer) Name() string { return "kNN" }

// WithIndex implements IndexableScorer.
func (s KNNScorer) WithIndex(kind neighbors.Kind) Scorer {
	s.Index = kind
	return s
}

// Aggregation selects how per-subspace scores combine (Sec. IV-C).
type Aggregation int

const (
	// Average is the paper's choice: cumulative outlierness, robust to
	// fluctuations in individual subspaces.
	Average Aggregation = iota
	// Max is the sensitive alternative the paper evaluates and rejects.
	Max
	// Product multiplies per-subspace scores (shifted by one so a zero
	// score is neutral) — the OUTRES-style aggregation, emphasizing
	// objects that deviate in several subspaces at once.
	Product
)

func (a Aggregation) String() string {
	switch a {
	case Max:
		return "max"
	case Product:
		return "product"
	default:
		return "average"
	}
}

// FullSpace is the trivial searcher returning only the full data space;
// combining it with LOFScorer yields the classical full-space LOF
// baseline.
type FullSpace struct{}

// Search implements SubspaceSearcher.
func (FullSpace) Search(ds *dataset.Dataset) ([]subspace.Scored, error) {
	return []subspace.Scored{{S: subspace.Full(ds.D())}}, nil
}

// Name implements SubspaceSearcher.
func (FullSpace) Name() string { return "LOF" }

// Pipeline wires a searcher, a scorer and an aggregation into the complete
// two-step outlier ranking.
type Pipeline struct {
	Searcher SubspaceSearcher
	Scorer   Scorer
	Agg      Aggregation
	// MaxSubspaces caps how many of the searcher's subspaces are scored
	// ("we use only the best 100 subspaces", Sec. V). 0 means 100, -1 all.
	MaxSubspaces int
	// Index pins the neighbor-index backend of an IndexableScorer. KindAuto
	// (the zero value) leaves the scorer's own configuration untouched.
	Index neighbors.Kind
}

// DefaultMaxSubspaces is the paper's budget of ranked projections.
const DefaultMaxSubspaces = 100

// Result carries the final ranking and provenance.
type Result struct {
	// Scores is the aggregated outlier score per object.
	Scores []float64
	// Subspaces lists the projections that contributed.
	Subspaces []subspace.Scored
}

// Rank runs the two-step pipeline on ds.
func (p Pipeline) Rank(ds *dataset.Dataset) (*Result, error) {
	if p.Searcher == nil || p.Scorer == nil {
		return nil, errors.New("ranking: pipeline needs a Searcher and a Scorer")
	}
	scorer := p.Scorer
	if p.Index != neighbors.KindAuto {
		if ix, ok := scorer.(IndexableScorer); ok {
			scorer = ix.WithIndex(p.Index)
		}
	}
	subspaces, err := p.Searcher.Search(ds)
	if err != nil {
		return nil, fmt.Errorf("ranking: subspace search (%s): %w", p.Searcher.Name(), err)
	}
	limit := p.MaxSubspaces
	if limit == 0 {
		limit = DefaultMaxSubspaces
	}
	if limit > 0 && len(subspaces) > limit {
		subspaces = subspaces[:limit]
	}
	if len(subspaces) == 0 {
		return nil, fmt.Errorf("ranking: searcher %s selected no subspaces", p.Searcher.Name())
	}

	n := ds.N()
	agg := make([]float64, n)
	switch p.Agg {
	case Max:
		for i := range agg {
			agg[i] = -1
		}
	case Product:
		for i := range agg {
			agg[i] = 1
		}
	}
	for _, sc := range subspaces {
		scores, err := scorer.Score(ds, sc.S)
		if err != nil {
			return nil, fmt.Errorf("ranking: scoring %v with %s: %w", sc.S, scorer.Name(), err)
		}
		switch p.Agg {
		case Max:
			for i, v := range scores {
				if v > agg[i] {
					agg[i] = v
				}
			}
		case Product:
			for i, v := range scores {
				agg[i] *= 1 + v
			}
		default:
			for i, v := range scores {
				agg[i] += v
			}
		}
	}
	if p.Agg == Average {
		inv := 1 / float64(len(subspaces))
		for i := range agg {
			agg[i] *= inv
		}
	}
	return &Result{Scores: agg, Subspaces: subspaces}, nil
}

// Name identifies the pipeline in reports, e.g. "HiCS+LOF".
func (p Pipeline) Name() string {
	if _, ok := p.Searcher.(FullSpace); ok {
		return p.Scorer.Name()
	}
	return p.Searcher.Name() + "+" + p.Scorer.Name()
}

// PCAPipeline is the dimensionality-reduction competitor: project the data
// onto the first k principal components, then run a full-space scorer on
// the projection. It does not fit the two-step interface because PCA
// transforms objects instead of selecting attribute subsets — the paper's
// argument for why it is not a subspace search method.
type PCAPipeline struct {
	// Components determines k from the data dimensionality. The paper's
	// variants: PCALOF1 uses d/2, PCALOF2 uses the constant 10.
	Components func(d int) int
	Scorer     Scorer
	// Label is the report name, e.g. "PCALOF1".
	Label string
}

// Rank projects and scores.
func (p PCAPipeline) Rank(ds *dataset.Dataset) (*Result, error) {
	if p.Components == nil || p.Scorer == nil {
		return nil, errors.New("ranking: PCA pipeline needs Components and Scorer")
	}
	k := p.Components(ds.D())
	if k < 1 {
		k = 1
	}
	if k > ds.D() {
		k = ds.D()
	}
	proj, err := pca.FitTransform(ds.Standardized(), k)
	if err != nil {
		return nil, fmt.Errorf("ranking: PCA: %w", err)
	}
	scores, err := p.Scorer.Score(proj, subspace.Full(k))
	if err != nil {
		return nil, fmt.Errorf("ranking: PCA scoring: %w", err)
	}
	return &Result{Scores: scores, Subspaces: []subspace.Scored{{S: subspace.Full(k)}}}, nil
}

// Name identifies the pipeline in reports.
func (p PCAPipeline) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "PCA+" + p.Scorer.Name()
}

// Ranker is the common interface of Pipeline and PCAPipeline, letting the
// experiment harness treat all competitors uniformly.
type Ranker interface {
	Rank(ds *dataset.Dataset) (*Result, error)
	Name() string
}

var (
	_ Ranker = Pipeline{}
	_ Ranker = PCAPipeline{}
)
