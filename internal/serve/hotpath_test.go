package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"hics"
	"hics/internal/rng"
	"hics/internal/trace"
)

// TestAppendRowMatchesJSON: every canonical row the fast parser accepts
// must decode to exactly the values encoding/json produces — including
// awkward magnitudes, long mantissas and exponent forms that exercise
// the strconv fallback inside parseNumber.
func TestAppendRowMatchesJSON(t *testing.T) {
	cases := []string{
		"[1,2,3]\n",
		"[0.1, -0.2, 3.25]\n",
		"[-0,0,1e3,1E+3,1e-3]\n",
		"[1.7976931348623157e308,5e-324,2.2250738585072014e-308]\n",
		"[0.30000000000000004,123456789012345678901234567890,1e100]\n",
		"[3.141592653589793, 2.718281828459045]\n",
		"[9007199254740993,9007199254740992]\n", // above/at 2^53: strconv fallback
		"[1e22,1e23,-1e-22,1e-23]\n",
		"[42]\n",
		"  [1,2]  \r\n",
	}
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		row := make([]float64, 1+int(r.Float64()*8))
		for j := range row {
			switch {
			case r.Float64() < 0.2:
				row[j] = math.Trunc(r.NormalScaled(0, 1e6))
			case r.Float64() < 0.5:
				row[j] = r.NormalScaled(0, 1) * math.Pow(10, math.Trunc(r.Float64()*60-30))
			default:
				row[j] = r.Float64()
			}
		}
		data, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, string(data)+"\n")
	}
	for _, line := range cases {
		var want []float64
		if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &want); err != nil {
			t.Fatalf("bad case %q: %v", line, err)
		}
		got, ok := appendRow(nil, []byte(line))
		if !ok {
			t.Fatalf("appendRow rejected canonical line %q", line)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("appendRow(%q) = %v, want %v", line, got, want)
		}
	}
}

// TestAppendRowRejects: inputs that are not canonical single-row lines
// must be refused (so the session falls back to the decoder), never
// mis-parsed.
func TestAppendRowRejects(t *testing.T) {
	for _, line := range []string{
		"", "\n", "[]\n", "[1,]\n", "[,1]\n", "[1 2]\n", "[01]\n", "[-01.5]\n",
		"[1,2] [3]\n", "[1,2],\n", "{\"a\":1}\n", "[\"x\"]\n", "[nan]\n",
		"[NaN]\n", "[Infinity]\n", "[1.]\n", "[.5]\n", "[+1]\n", "[1e]\n",
		"[1,2", "\t[1,2]\n", "[1,2]x\n", "null\n", "[null]\n", "[1,,2]\n",
	} {
		if got, ok := appendRow(nil, []byte(line)); ok {
			t.Errorf("appendRow accepted %q as %v, want rejection", line, got)
		}
	}
}

// TestStreamParserFallback: non-canonical input — pretty-printed arrays,
// several values per line, rows split across lines — must still decode
// with json.Decoder semantics after the permanent fallback, and syntax
// errors must carry the decoder's exact message.
func TestStreamParserFallback(t *testing.T) {
	in := "[1,2]\n[\n  3,\n  4\n]\n[5,6][7,8]\n[9,10]\n"
	p := newStreamParser(strings.NewReader(in))
	var got [][]float64
	for {
		row, err := p.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, append([]float64(nil), row...))
	}
	want := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}

	// A syntax error must be reported with encoding/json's own text.
	bad := "[1,2]\n{\"not\":\"a row\"}\n"
	p = newStreamParser(strings.NewReader(bad))
	if _, err := p.next(); err != nil {
		t.Fatal(err)
	}
	_, gotErr := p.next()
	dec := json.NewDecoder(strings.NewReader(bad))
	var row []float64
	_ = dec.Decode(&row)
	wantErr := dec.Decode(&row)
	if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("fallback error = %v, want json.Decoder's %v", gotErr, wantErr)
	}
}

// TestStreamParserUnterminatedFinalRow: a complete row with no trailing
// newline (EOF cuts the line) still scores, like json.Decoder.
func TestStreamParserUnterminatedFinalRow(t *testing.T) {
	p := newStreamParser(strings.NewReader("[1,2]\n[3,4]"))
	r1, err := p.next()
	if err != nil || !reflect.DeepEqual(r1, []float64{1, 2}) {
		t.Fatalf("first row = %v, %v", r1, err)
	}
	r2, err := p.next()
	if err != nil || !reflect.DeepEqual(r2, []float64{3, 4}) {
		t.Fatalf("final unterminated row = %v, %v", r2, err)
	}
	if _, err := p.next(); err != io.EOF {
		t.Fatalf("after final row: %v, want io.EOF", err)
	}
}

// TestAppendStreamRecordMatchesMarshal: the wire bytes of the append
// encoder must be byte-identical to json.Marshal for every score
// magnitude, including the 'e'-form thresholds and exponent cleanup.
func TestAppendStreamRecordMatchesMarshal(t *testing.T) {
	scores := []float64{
		0, 1, -1, 0.5, 1.75, math.Pi, 1e-6, 9.999e-7, 1e-7, 5e-324,
		1e21, 9.99e20, 1e22, 1.7976931348623157e308, -2.5e-9, 3.3e9,
		0.1, 0.30000000000000004, 123456.789, -0.000125,
	}
	r := rng.New(11)
	for i := 0; i < 500; i++ {
		scores = append(scores, r.NormalScaled(0, 1)*math.Pow(10, math.Trunc(r.Float64()*60-30)))
	}
	var buf []byte
	for i, s := range scores {
		rec := StreamRecord{Index: i, Score: s, Refits: i % 3}
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf, err = appendStreamRecord(buf[:0], rec)
		if err != nil {
			t.Fatalf("score %v: %v", s, err)
		}
		if got := strings.TrimSuffix(string(buf), "\n"); got != string(want) {
			t.Fatalf("score %v: encoded %s, want %s", s, got, want)
		}
	}
	// Non-representable scores report json.Marshal's error text.
	for _, s := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		_, gotErr := appendStreamRecord(nil, StreamRecord{Score: s})
		_, wantErr := json.Marshal(StreamRecord{Score: s})
		if gotErr == nil || wantErr == nil || !strings.Contains(wantErr.Error(), gotErr.Error()) {
			t.Fatalf("score %v: error %q, want json.Marshal's %q", s, gotErr, wantErr)
		}
	}
}

// TestStreamHotPathAllocs: the full per-row cycle — parse the line,
// score through the warm stream, encode the record — must not allocate
// in steady state. This is the allocation budget that makes /stream
// worth sharding: the serving loop adds zero GC pressure per row.
func TestStreamHotPathAllocs(t *testing.T) {
	runHotPathAllocs(t, context.Background())
}

// TestStreamHotPathAllocsTraced: the same budget holds inside a traced
// request. Spans are per-session and per-refit, never per-row, so a
// live sampled span in the context must not cost the hot path a single
// allocation.
func TestStreamHotPathAllocsTraced(t *testing.T) {
	tr := trace.New(trace.Config{})
	ctx, span := tr.StartRoot(context.Background(), "test.hotpath", trace.SpanContext{}, trace.TraceID{})
	defer span.End()
	if trace.SpanFromContext(ctx) == nil {
		t.Fatal("context does not carry the root span")
	}
	runHotPathAllocs(t, ctx)
}

func runHotPathAllocs(t *testing.T, ctx context.Context) {
	t.Helper()
	m := fitModel(t)
	st, err := m.NewStream(hics.StreamOptions{Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	line := []byte("[0.31,0.29,0.55,0.45]\n")
	var (
		row     []float64
		results []hics.StreamResult
		encBuf  []byte
	)
	// Warm every reused buffer (ring slots, pools, scratch) first.
	for i := 0; i < 100; i++ {
		var ok bool
		row, ok = appendRow(row[:0], line)
		if !ok {
			t.Fatal("appendRow rejected the warmup line")
		}
		if results, err = st.PushAppend(ctx, row, results[:0]); err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			if encBuf, err = appendStreamRecord(encBuf[:0], StreamRecord{Index: res.Index, Score: res.Score, Refits: res.Refits}); err != nil {
				t.Fatal(err)
			}
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		row, _ = appendRow(row[:0], line)
		results, err = st.PushAppend(ctx, row, results[:0])
		if err != nil {
			t.Fatal(err)
		}
		encBuf = encBuf[:0]
		for _, res := range results {
			encBuf, _ = appendStreamRecord(encBuf, StreamRecord{Index: res.Index, Score: res.Score, Refits: res.Refits})
		}
	})
	if allocs > 0 {
		t.Fatalf("hot row path allocates %.1f times per row, want 0", allocs)
	}
}

// streamSession drives one /stream session of n rows against srv and
// returns the number of scored lines.
func streamSession(b *testing.B, url string, body []byte, wantLines int) {
	b.Helper()
	resp, err := http.Post(url+"/stream?window=60", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	if n := bytes.Count(data, []byte{'\n'}); n != wantLines {
		b.Fatalf("%d lines, want %d (tail: %q)", n, wantLines, tail(data))
	}
}

func tail(b []byte) []byte {
	if len(b) > 200 {
		return b[len(b)-200:]
	}
	return b
}

// BenchmarkStreamServe measures the /stream endpoint end to end over
// real HTTP: one session per iteration, 500 rows per session, reporting
// per-row cost. The refactor target is the per-row serving overhead on
// top of scoring (parse + push + encode + write).
func BenchmarkStreamServe(b *testing.B) {
	r := rng.New(1)
	rows := make([][]float64, 200)
	for i := range rows {
		c := 0.3
		if r.Float64() < 0.5 {
			c = 0.7
		}
		rows[i] = []float64{r.NormalScaled(c, 0.04), r.NormalScaled(c, 0.04), r.Float64(), r.Float64()}
	}
	m, err := hics.Fit(rows, hics.Options{M: 10, Seed: 1, TopK: 5})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Minute}))
	defer srv.Close()

	const sessionRows = 500
	var body bytes.Buffer
	for i := 0; i < sessionRows; i++ {
		fmt.Fprintf(&body, "[%.6f,%.6f,%.6f,%.6f]\n",
			r.NormalScaled(0.5, 0.1), r.NormalScaled(0.5, 0.1), r.Float64(), r.Float64())
	}
	payload := body.Bytes()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streamSession(b, srv.URL, payload, sessionRows)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sessionRows), "ns/row")
}

// BenchmarkStreamRowCodec isolates the serving codec the hot path
// replaced: "hot" is the reused-buffer parser + append encoder, "legacy"
// the json.Decoder + json.Marshal cycle it replaced in v1.7.0.
func BenchmarkStreamRowCodec(b *testing.B) {
	line := []byte("[0.312345,0.291234,0.557654,0.443210]\n")
	rec := StreamRecord{Index: 123456, Score: 1.0481924561236412, Refits: 3}
	b.Run("hot", func(b *testing.B) {
		b.ReportAllocs()
		var (
			row []float64
			buf []byte
		)
		for i := 0; i < b.N; i++ {
			row, _ = appendRow(row[:0], line)
			buf, _ = appendStreamRecord(buf[:0], rec)
		}
		_, _ = row, buf
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		input := bytes.Repeat(line, 1024)
		dec := json.NewDecoder(bytes.NewReader(input))
		for i := 0; i < b.N; i++ {
			var row []float64
			if err := dec.Decode(&row); err != nil {
				dec = json.NewDecoder(bytes.NewReader(input))
				i--
				continue
			}
			data, _ := json.Marshal(rec)
			_ = append(data, '\n')
		}
	})
}
