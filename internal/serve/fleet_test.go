package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hics"
	"hics/internal/fleet"
	"hics/internal/rng"
)

// fitModelSized fits a 4-attribute model over n rows; the seed varies
// the data so differently seeded models score a probe differently.
func fitModelSized(t *testing.T, seed uint64, n int) *hics.Model {
	t.Helper()
	r := rng.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		c := 0.3
		if r.Float64() < 0.5 {
			c = 0.7
		}
		rows[i] = []float64{r.NormalScaled(c, 0.04), r.NormalScaled(c, 0.04), r.Float64(), r.Float64()}
	}
	m, err := hics.Fit(rows, hics.Options{M: 10, Seed: seed, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// modelBytes serializes a model as the PUT /models/{name} body.
func modelBytes(t *testing.T, m *hics.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// doJSON issues a request with an optional bearer token and decodes the
// JSON response body into out (when non-nil).
func doJSON(t *testing.T, method, url, token string, body []byte, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp
}

// TestHealthzReadiness: 503 "starting" while the manifest restore is in
// flight, 200 with per-model states afterwards.
func TestHealthzReadiness(t *testing.T) {
	fl := fleet.New(fleet.Config{})
	srv := httptest.NewServer(New(Config{Fleet: fl}))
	defer srv.Close()

	var h Health
	resp := doJSON(t, http.MethodGet, srv.URL+"/healthz", "", nil, &h)
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "starting" {
		t.Errorf("cold healthz = %d %+v, want 503 starting", resp.StatusCode, h)
	}
	// A cold fleet must not serve traffic either.
	scoreResp, _, _ := postScore(t, srv, `{"point": [0.5, 0.5, 0.5, 0.5]}`)
	if scoreResp.StatusCode != http.StatusNotFound {
		t.Errorf("cold /score status %d, want 404", scoreResp.StatusCode)
	}

	if err := fl.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fl.Put("alpha", fitModelSized(t, 1, 60), fleet.Quota{}, true); err != nil {
		t.Fatal(err)
	}
	resp = doJSON(t, http.MethodGet, srv.URL+"/healthz", "", nil, &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("warm healthz = %d %+v, want 200 ok", resp.StatusCode, h)
	}
	if len(h.Models) != 1 || h.Models[0].Name != "alpha" ||
		h.Models[0].State != fleet.StateReady || !h.Models[0].Default {
		t.Errorf("healthz models = %+v", h.Models)
	}
	if h.Objects != 60 {
		t.Errorf("healthz objects = %d, want the default model's 60", h.Objects)
	}
}

// TestModelManagementLifecycle drives the full management surface over a
// persisted fleet: PUT two models, route scores by name, list, delete.
func TestModelManagementLifecycle(t *testing.T) {
	dir := t.TempDir()
	fl := fleet.New(fleet.Config{Dir: dir})
	if err := fl.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(Config{Fleet: fl, RequestTimeout: time.Minute}))
	defer srv.Close()

	mA := fitModelSized(t, 1, 80)
	mB := fitModelSized(t, 2, 80)
	var st fleet.ModelStatus
	resp := doJSON(t, http.MethodPut, srv.URL+"/models/alpha", "", modelBytes(t, mA), &st)
	if resp.StatusCode != http.StatusOK || st.Name != "alpha" || st.State != fleet.StateReady {
		t.Fatalf("PUT alpha = %d %+v", resp.StatusCode, st)
	}
	if !st.Default {
		t.Errorf("first PUT did not become the default: %+v", st)
	}
	resp = doJSON(t, http.MethodPut, srv.URL+"/models/beta?max_streams=3", "", modelBytes(t, mB), &st)
	if resp.StatusCode != http.StatusOK || st.Quota.MaxStreams != 3 {
		t.Fatalf("PUT beta = %d %+v", resp.StatusCode, st)
	}

	// Rejections: invalid name, garbage body, bad quota parameter.
	if resp := doJSON(t, http.MethodPut, srv.URL+"/models/.bad", "", modelBytes(t, mA), nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT invalid name status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPut, srv.URL+"/models/junk", "", []byte("not a model"), nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT garbage body status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPut, srv.URL+"/models/q?max_streams=-1", "", modelBytes(t, mA), nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT negative quota status %d, want 400", resp.StatusCode)
	}

	// Scores route by name; the unnamed path serves the default (alpha).
	probe := `{"point": [0.3, 0.7, 0.5, 0.5]}`
	wantA, err := mA.Score([]float64{0.3, 0.7, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := mB.Score([]float64{0.3, 0.7, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]float64{
		"/score":             wantA,
		"/score?model=alpha": wantA,
		"/score?model=beta":  wantB,
	} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(probe))
		if err != nil {
			t.Fatal(err)
		}
		var sr ScoreResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || sr.Score == nil || *sr.Score != want {
			t.Errorf("POST %s = %d %+v, want score %v", path, resp.StatusCode, sr, want)
		}
	}
	if resp, _, _ := postScore(t, srv, `{"point": [0.5,0.5,0.5,0.5]}`); resp.StatusCode != http.StatusOK {
		t.Errorf("default score status %d", resp.StatusCode)
	}
	scoreResp, err := http.Post(srv.URL+"/score?model=missing", "application/json", strings.NewReader(probe))
	if err != nil {
		t.Fatal(err)
	}
	scoreResp.Body.Close()
	if scoreResp.StatusCode != http.StatusNotFound {
		t.Errorf("score against missing model status %d, want 404", scoreResp.StatusCode)
	}

	// /info routes too.
	var info Info
	doJSON(t, http.MethodGet, srv.URL+"/info?model=beta", "", nil, &info)
	if info.Model != "beta" || info.Objects != 80 {
		t.Errorf("info?model=beta = %+v", info)
	}

	// Listing reflects both models and the default.
	var list ModelsResponse
	resp = doJSON(t, http.MethodGet, srv.URL+"/models", "", nil, &list)
	if resp.StatusCode != http.StatusOK || !list.Ready || list.Default != "alpha" || len(list.Models) != 2 {
		t.Fatalf("GET /models = %d %+v", resp.StatusCode, list)
	}
	resp = doJSON(t, http.MethodGet, srv.URL+"/models/beta", "", nil, &st)
	if resp.StatusCode != http.StatusOK || st.Name != "beta" {
		t.Errorf("GET /models/beta = %d %+v", resp.StatusCode, st)
	}

	// DELETE: gone for management and traffic alike, 404 on repeat.
	if resp := doJSON(t, http.MethodDelete, srv.URL+"/models/beta", "", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE beta status %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodDelete, srv.URL+"/models/beta", "", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE beta status %d, want 404", resp.StatusCode)
	}
	scoreResp, err = http.Post(srv.URL+"/score?model=beta", "application/json", strings.NewReader(probe))
	if err != nil {
		t.Fatal(err)
	}
	scoreResp.Body.Close()
	if scoreResp.StatusCode != http.StatusNotFound {
		t.Errorf("score against deleted model status %d, want 404", scoreResp.StatusCode)
	}

	// The surviving fleet restores from the manifest with identical
	// scores — the acceptance criterion behind a hicsd restart.
	fl2 := fleet.New(fleet.Config{Dir: dir})
	if err := fl2.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(New(Config{Fleet: fl2, RequestTimeout: time.Minute}))
	defer srv2.Close()
	resp, sr, body := postScore(t, srv2, probe)
	if resp.StatusCode != http.StatusOK || sr.Score == nil || *sr.Score != wantA {
		t.Errorf("restored default score = %d %s, want %v", resp.StatusCode, body, wantA)
	}
}

// TestModelManagementAuth: with an admin token configured, mutations
// demand it while read endpoints stay open.
func TestModelManagementAuth(t *testing.T) {
	fl := fleet.New(fleet.Config{})
	if err := fl.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(Config{Fleet: fl, AdminToken: "s3cret"}))
	defer srv.Close()
	body := modelBytes(t, fitModelSized(t, 1, 60))

	if resp := doJSON(t, http.MethodPut, srv.URL+"/models/alpha", "", body, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("tokenless PUT status %d, want 401", resp.StatusCode)
	} else if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without WWW-Authenticate")
	}
	if resp := doJSON(t, http.MethodPut, srv.URL+"/models/alpha", "wrong", body, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong-token PUT status %d, want 401", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPut, srv.URL+"/models/alpha", "s3cret", body, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("authorized PUT status %d, want 200", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodDelete, srv.URL+"/models/alpha", "", nil, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("tokenless DELETE status %d, want 401", resp.StatusCode)
	}
	// Reads stay open: health checks and dashboards don't hold secrets.
	if resp := doJSON(t, http.MethodGet, srv.URL+"/models", "", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("tokenless GET /models status %d, want 200", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodDelete, srv.URL+"/models/alpha", "s3cret", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("authorized DELETE status %d, want 200", resp.StatusCode)
	}
}

// TestStreamQuota429: a model at its stream quota rejects the next
// session with 429 and a Retry-After, and frees the slot on close.
func TestStreamQuota429(t *testing.T) {
	fl := fleet.New(fleet.Config{})
	if err := fl.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fl.Put("alpha", fitModelSized(t, 1, 60), fleet.Quota{MaxStreams: 1}, true); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(Config{Fleet: fl, RequestTimeout: time.Minute}))
	defer srv.Close()

	rejected0 := mRejected.Total()
	// Hold one stream open mid-body.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	if _, err := io.WriteString(pw, "[0.5,0.5,0.5,0.5]\n"); err != nil {
		t.Fatal(err)
	}
	var open *http.Response
	select {
	case open = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("stream session never opened")
	}
	defer open.Body.Close()
	line := make([]byte, 256)
	if _, err := open.Body.Read(line); err != nil {
		t.Fatal(err)
	}

	// Second session: over quota.
	resp, _, lines := postStream(t, srv, "/stream", "[0.5,0.5,0.5,0.5]\n")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream status %d, want 429 (%v)", resp.StatusCode, lines)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if d := mRejected.Total() - rejected0; d < 1 {
		t.Errorf("admission_rejected counter moved by %d, want >= 1", d)
	}

	// Close the held session; the slot frees and streaming resumes.
	pw.Close()
	io.Copy(io.Discard, open.Body)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, records, _ := postStream(t, srv, "/stream", "[0.5,0.5,0.5,0.5]\n")
		if resp.StatusCode == http.StatusOK && len(records) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream slot never freed (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamWindowPerModel is the StreamWindow=0 regression test: the
// documented "0 = the served model's training-set size" must derive from
// the model the request routed to, not a server-wide model. Two models
// with different training sizes stream the same 45 rows with a refit
// cadence of 15 and no explicit window: the 30-row model's window fills
// and refits, the 200-row model's never fills, so it must not refit.
func TestStreamWindowPerModel(t *testing.T) {
	fl := fleet.New(fleet.Config{})
	if err := fl.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fl.Put("big", fitModelSized(t, 1, 200), fleet.Quota{}, true); err != nil {
		t.Fatal(err)
	}
	if err := fl.Put("small", fitModelSized(t, 2, 30), fleet.Quota{}, false); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(Config{Fleet: fl, RequestTimeout: time.Minute}))
	defer srv.Close()

	r := rng.New(5)
	rows := make([][]float64, 45)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	body := ndjsonRows(t, rows)
	for _, tc := range []struct {
		model      string
		wantRefits bool
	}{
		{"small", true}, // window = 30 fills at row 30 and refits
		{"big", false},  // window = 200 never fills in 45 rows
	} {
		resp, records, lines := postStream(t, srv, "/stream?refit_every=15&model="+tc.model, body)
		if resp.StatusCode != http.StatusOK || len(records) != len(rows) {
			t.Fatalf("model %s: status %d, %d records (%v)", tc.model, resp.StatusCode, len(records), lines)
		}
		last := records[len(records)-1]
		if got := last.Refits > 0; got != tc.wantRefits {
			t.Errorf("model %s: final refits = %d, want refits>0 == %v — the zero window did not derive from the routed model",
				tc.model, last.Refits, tc.wantRefits)
		}
	}
}

// TestHotSwapUnderLoad is the tentpole acceptance test: hammer /score
// and /stream on a model while PUT /models/{name} replaces it
// repeatedly. Every request must succeed, every score must come from a
// coherent model version (old or new, never torn), and no goroutines
// may leak.
func TestHotSwapUnderLoad(t *testing.T) {
	fl := fleet.New(fleet.Config{})
	if err := fl.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	m1 := fitModelSized(t, 1, 80)
	m2 := fitModelSized(t, 2, 80)
	if err := fl.Put("alpha", m1, fleet.Quota{}, true); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(Config{Fleet: fl, RequestTimeout: time.Minute}))
	defer srv.Close()

	probe := []float64{0.3, 0.7, 0.5, 0.5}
	want1, err := m1.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := m2.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	if want1 == want2 {
		t.Fatal("swap models score the probe identically; pick different seeds")
	}
	coherent := func(s float64) bool { return s == want1 || s == want2 }
	body1, body2 := modelBytes(t, m1), modelBytes(t, m2)

	baselineGoroutines := runtime.NumGoroutine()
	const (
		swaps       = 20
		scoreLoops  = 40
		streamLoops = 10
		workers     = 4
	)
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}
	// Swapper: alternate the two model versions via the management API.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			body := body1
			if i%2 == 1 {
				body = body2
			}
			req, err := http.NewRequest(http.MethodPut, srv.URL+"/models/alpha", bytes.NewReader(body))
			if err != nil {
				report("building swap request: %v", err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				report("swap %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				report("swap %d status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	// Scorers: single-point /score in a tight loop.
	scoreBody := `{"point": [0.3, 0.7, 0.5, 0.5]}`
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < scoreLoops; i++ {
				resp, err := http.Post(srv.URL+"/score", "application/json", strings.NewReader(scoreBody))
				if err != nil {
					report("scorer %d: %v", w, err)
					return
				}
				var sr ScoreResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || sr.Score == nil {
					report("scorer %d: status %d decode %v", w, resp.StatusCode, err)
					return
				}
				if !coherent(*sr.Score) {
					report("scorer %d: torn score %v, want %v or %v", w, *sr.Score, want1, want2)
					return
				}
			}
		}(w)
	}
	// Streamers: short no-refit sessions; every record must be coherent
	// with a single model version for the whole session.
	streamBody := "[0.3,0.7,0.5,0.5]\n[0.3,0.7,0.5,0.5]\n[0.3,0.7,0.5,0.5]\n"
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < streamLoops; i++ {
				resp, err := http.Post(srv.URL+"/stream", "application/x-ndjson", strings.NewReader(streamBody))
				if err != nil {
					report("streamer %d: %v", w, err)
					return
				}
				raw, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					report("streamer %d: status %d read %v", w, resp.StatusCode, rerr)
					return
				}
				var first float64
				n := 0
				for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
					var rec StreamRecord
					if err := json.Unmarshal([]byte(line), &rec); err != nil || strings.Contains(line, `"error"`) {
						report("streamer %d: bad line %q", w, line)
						return
					}
					if n == 0 {
						first = rec.Score
					} else if rec.Score != first {
						report("streamer %d: session mixed model versions: %v then %v", w, first, rec.Score)
						return
					}
					n++
				}
				if n != 3 {
					report("streamer %d: %d records, want 3", w, n)
					return
				}
				if !coherent(first) {
					report("streamer %d: torn stream score %v", w, first)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// No goroutine leaks: with the client's idle keep-alive connections
	// closed (each parks a server read goroutine), the count settles back
	// to (near) the baseline once all requests and streams close.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baselineGoroutines+2 && time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baselineGoroutines+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked: %d -> %d\n%s", baselineGoroutines, n, buf[:runtime.Stack(buf, true)])
	}
}
