package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// This file is the allocation-free row path of /stream: a line-oriented
// NDJSON row parser and an append-based record encoder. Together with
// Stream.PushAppend they let the session loop process one row with zero
// steady-state heap allocations — json.Decoder and json.Marshal each
// allocate several times per call, which at production row rates made
// the GC the first scaling wall ahead of the network.
//
// Compatibility is non-negotiable (v1.7.0 clients must see identical
// bytes), so the fast parser accepts only the canonical wire format —
// one JSON array of plain numbers per '\n'-terminated line. The first
// line that deviates in any way (pretty-printed arrays, multiple values
// per line, a syntax error that must surface with encoding/json's exact
// message) permanently downgrades the session to the original
// json.Decoder loop, replaying the consumed bytes so nothing is lost.

// streamParser yields one row per canonical NDJSON line without
// allocating, falling back to a json.Decoder for anything else.
type streamParser struct {
	br   *bufio.Reader
	line []byte    // scratch accumulating one raw line, reused
	row  []float64 // parsed row storage, reused across next calls

	// pendingErr defers a read error that arrived together with a final
	// partial line: the line's row is delivered first, the error on the
	// following call — exactly the order a json.Decoder reports them.
	pendingErr error

	// Fallback state: once dec is non-nil every subsequent next call
	// decodes through it, reproducing the pre-1.8 behavior (and its
	// error text) exactly.
	dec *json.Decoder
}

func newStreamParser(r io.Reader) *streamParser {
	return &streamParser{br: bufio.NewReaderSize(r, 64<<10)}
}

// next returns the next row. The returned slice is reused by the
// following call — the caller must consume it first (the detector
// copies it into the window). io.EOF signals a clean end of input;
// other errors are terminal for the session.
func (p *streamParser) next() ([]float64, error) {
	if p.dec != nil {
		return p.nextFallback()
	}
	if p.pendingErr != nil {
		return nil, p.pendingErr
	}
	if err := p.readLine(); err != nil {
		if len(p.line) == 0 {
			return nil, err
		}
		// The error arrived with a final unterminated line (EOF, or the
		// session byte limit cutting mid-line). Deliver any complete row
		// in it first; the error surfaces on the next call.
		p.pendingErr = err
		return p.parseLine()
	}
	return p.parseLine()
}

// readLine accumulates one raw '\n'-terminated line (newline included)
// into p.line, growing the scratch only for lines longer than the
// bufio buffer.
func (p *streamParser) readLine() error {
	p.line = p.line[:0]
	for {
		frag, err := p.br.ReadSlice('\n')
		p.line = append(p.line, frag...)
		if err == nil {
			return nil
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return err
	}
}

// parseLine parses the accumulated line as a canonical row, or arranges
// the fallback when it is anything else.
func (p *streamParser) parseLine() ([]float64, error) {
	row, ok := appendRow(p.row[:0], p.line)
	if !ok {
		return p.fallback()
	}
	p.row = row
	return row, nil
}

// fallback permanently switches the session to the json.Decoder loop,
// seeded with the already-consumed line so the decoder sees the byte
// stream exactly as if it had owned it from the start.
func (p *streamParser) fallback() ([]float64, error) {
	p.dec = json.NewDecoder(io.MultiReader(newByteReader(p.line), p.br))
	return p.nextFallback()
}

func (p *streamParser) nextFallback() ([]float64, error) {
	var row []float64
	if err := p.dec.Decode(&row); err != nil {
		return nil, err
	}
	return row, nil
}

// byteReader is bytes.NewReader without retaining-semantics surprises:
// the fallback seed is read exactly once, so a minimal forward reader
// over the scratch slice suffices.
type byteReader struct {
	b []byte
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// appendRow parses one canonical NDJSON row — optional ASCII spaces, a
// JSON array of plain numbers, optional trailing spaces/CR/LF — into
// dst. Anything else (including an empty array, which needs the
// decoder's exact error) reports !ok so the caller can fall back; it
// never guesses.
func appendRow(dst []float64, line []byte) ([]float64, bool) {
	i, n := 0, len(line)
	for i < n && line[i] == ' ' {
		i++
	}
	if i >= n || line[i] != '[' {
		return dst, false
	}
	i++
	for {
		for i < n && line[i] == ' ' {
			i++
		}
		v, adv, ok := parseNumber(line[i:])
		if !ok {
			return dst, false
		}
		dst = append(dst, v)
		i += adv
		for i < n && line[i] == ' ' {
			i++
		}
		if i >= n {
			return dst, false
		}
		if line[i] == ',' {
			i++
			continue
		}
		if line[i] == ']' {
			i++
			break
		}
		return dst, false
	}
	for i < n {
		switch line[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return dst, false
		}
	}
	return dst, true
}

// parseNumber reads one JSON number from the front of b, returning the
// value and the bytes consumed. The common case — a mantissa below 2^53
// with a small decimal exponent — converts with one float multiply or
// divide, which is exactly rounded and therefore bit-identical to
// strconv.ParseFloat; everything else defers to strconv (one small
// allocation, rare on real row data).
func parseNumber(b []byte) (float64, int, bool) {
	i, n := 0, len(b)
	neg := false
	if i < n && b[i] == '-' {
		neg = true
		i++
	}
	// Integer part: "0" alone or a nonzero-led digit run (JSON forbids
	// leading zeros).
	start := i
	var mant uint64
	digits := 0
	exact := true
	for i < n && b[i] >= '0' && b[i] <= '9' {
		if digits < 19 {
			mant = mant*10 + uint64(b[i]-'0')
		} else {
			exact = false
		}
		digits++
		i++
	}
	if i == start {
		return 0, 0, false
	}
	if b[start] == '0' && i-start > 1 {
		return 0, 0, false
	}
	exp := 0
	if i < n && b[i] == '.' {
		i++
		fs := i
		for i < n && b[i] >= '0' && b[i] <= '9' {
			if digits < 19 {
				mant = mant*10 + uint64(b[i]-'0')
				exp--
			} else {
				exact = false
			}
			digits++
			i++
		}
		if i == fs {
			return 0, 0, false
		}
	}
	if i < n && (b[i] == 'e' || b[i] == 'E') {
		i++
		esign := 1
		if i < n && (b[i] == '+' || b[i] == '-') {
			if b[i] == '-' {
				esign = -1
			}
			i++
		}
		es := i
		ev := 0
		for i < n && b[i] >= '0' && b[i] <= '9' {
			if ev < 10000 {
				ev = ev*10 + int(b[i]-'0')
			}
			i++
		}
		if i == es {
			return 0, 0, false
		}
		exp += esign * ev
	}
	if exact && mant < 1<<53 && exp >= -22 && exp <= 22 {
		f := float64(mant)
		if exp > 0 {
			f *= pow10[exp]
		} else if exp < 0 {
			f /= pow10[-exp]
		}
		if neg {
			f = -f
		}
		return f, i, true
	}
	f, err := strconv.ParseFloat(string(b[:i]), 64)
	if err != nil {
		return 0, 0, false
	}
	return f, i, true
}

// pow10 holds the exactly-representable powers of ten (10^0 … 10^22).
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// appendStreamRecord appends one encoded StreamRecord line (trailing
// newline included) to buf. The float formatting replicates
// encoding/json exactly — shortest representation, 'f' form unless the
// magnitude calls for 'e' form with json's exponent cleanup — so the
// wire bytes are indistinguishable from json.Marshal's. A
// non-representable score reports the same error text json.Marshal
// would.
func appendStreamRecord(buf []byte, rec StreamRecord) ([]byte, error) {
	buf = append(buf, `{"index":`...)
	buf = strconv.AppendInt(buf, int64(rec.Index), 10)
	buf = append(buf, `,"score":`...)
	buf, err := appendJSONFloat(buf, rec.Score)
	if err != nil {
		return buf, err
	}
	buf = append(buf, `,"refits":`...)
	buf = strconv.AppendInt(buf, int64(rec.Refits), 10)
	buf = append(buf, '}', '\n')
	return buf, nil
}

// appendJSONFloat appends f the way encoding/json's floatEncoder does:
// shortest round-trip form, preferring 'f' notation, with "e-0X"
// exponents rewritten to "e-X".
func appendJSONFloat(buf []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return buf, fmt.Errorf("json: unsupported value: %s", strconv.FormatFloat(f, 'g', -1, 64))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	start := len(buf)
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(buf) - start; n >= 4 && buf[len(buf)-4] == 'e' && buf[len(buf)-3] == '-' && buf[len(buf)-2] == '0' {
			buf[len(buf)-2] = buf[len(buf)-1]
			buf = buf[:len(buf)-1]
		}
	}
	return buf, nil
}
