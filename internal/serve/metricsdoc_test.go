package serve

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"hics/internal/metrics"

	// Register the shard-routing and load-generator metric families so
	// the doc check covers every series this repo can expose.
	_ "hics/internal/loadgen"
	_ "hics/internal/shard"
)

// docRow is one parsed table row of docs/metrics.md.
type docRow struct {
	kind   string
	labels []string
}

// docRowRe matches a series-table row whose first cell is a backticked
// metric name: | `name` | type | labels | meaning |
var docRowRe = regexp.MustCompile("^\\|\\s*`([a-zA-Z_:][a-zA-Z0-9_:]*)`\\s*\\|([^|]*)\\|([^|]*)\\|")

// labelRe extracts backticked label names from the labels cell.
var labelRe = regexp.MustCompile("`([a-zA-Z_][a-zA-Z0-9_]*)`")

// parseMetricsDoc reads the Series table of docs/metrics.md into a
// name -> row map. Rows outside the Series section (e.g. the
// /debug/vars compatibility table) are excluded by requiring the type
// cell to be a known metric kind.
func parseMetricsDoc(t *testing.T) map[string]docRow {
	t.Helper()
	raw, err := os.ReadFile("../../docs/metrics.md")
	if err != nil {
		t.Fatalf("reading docs/metrics.md: %v", err)
	}
	rows := make(map[string]docRow)
	for _, line := range strings.Split(string(raw), "\n") {
		m := docRowRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		kind := strings.TrimSpace(m[2])
		switch kind {
		case "counter", "gauge", "histogram":
		default:
			continue
		}
		var labels []string
		for _, lm := range labelRe.FindAllStringSubmatch(m[3], -1) {
			labels = append(labels, lm[1])
		}
		if _, dup := rows[m[1]]; dup {
			t.Errorf("docs/metrics.md documents %s twice", m[1])
		}
		rows[m[1]] = docRow{kind: kind, labels: labels}
	}
	if len(rows) == 0 {
		t.Fatal("docs/metrics.md: no series table rows parsed")
	}
	return rows
}

// TestMetricsDocInSync walks the live registry against the
// docs/metrics.md series table in both directions: every registered
// metric must have a row with the right type and labels, and every row
// must name a registered metric. Importing this package registers the
// full family set (serve -> hics -> stream, parallel), so the registry
// here is the one /metrics serves.
func TestMetricsDocInSync(t *testing.T) {
	doc := parseMetricsDoc(t)
	live := metrics.Default.Describe()

	seen := make(map[string]bool, len(live))
	for _, d := range live {
		seen[d.Name] = true
		row, ok := doc[d.Name]
		if !ok {
			t.Errorf("metric %s (%s) is registered but undocumented — add a row to docs/metrics.md", d.Name, d.Kind)
			continue
		}
		if row.kind != d.Kind {
			t.Errorf("metric %s: docs say type %s, registry says %s", d.Name, row.kind, d.Kind)
		}
		if got, want := fmt.Sprint(row.labels), fmt.Sprint(d.Labels); got != want {
			t.Errorf("metric %s: docs list labels %v, registry has %v", d.Name, row.labels, d.Labels)
		}
	}
	for name := range doc {
		if !seen[name] {
			t.Errorf("docs/metrics.md documents %s, which is not registered — remove the row or restore the metric", name)
		}
	}
}
