// Package serve implements the HTTP scoring interface behind the
// cmd/hicsd server: a trained hics.Model exposed as a JSON endpoint. It
// lives outside the command so the examples (and tests) can embed the
// exact handler the daemon serves.
//
// Endpoints:
//
//	GET  /healthz     liveness plus model shape (objects, attributes,
//	                  subspaces)
//	GET  /info        the served model's method pair (searcher, scorer),
//	                  subspace count, persistence format version, and the
//	                  server version string
//	POST /score       score one point ({"point": [...]}) or a batch
//	                  ({"points": [[...], ...]}) against the model
//	POST /rank        run a full deadlined HiCS ranking on posted rows
//	                  ({"rows": [[...], ...], "options": {...}})
//	POST /stream      NDJSON streaming scoring: one JSON row per line in,
//	                  one {"index","score","refits"} record per line out,
//	                  flushed as each row is scored
//	GET  /metrics     Prometheus text exposition (format 0.0.4) of the
//	                  process metrics registry: per-endpoint request
//	                  counters and latency histograms, stream and refit
//	                  instrumentation, worker-pool saturation, model
//	                  metadata gauges — every series is documented in
//	                  docs/metrics.md
//	GET  /debug/vars  the legacy expvar page, with the "hicsd" map
//	                  re-derived from the metrics registry so the two
//	                  surfaces can never disagree
//
// # Observability
//
// A middleware wraps every endpoint: each request gets a random 16-hex
// request ID (RequestID reads it from the context), a request-scoped
// slog.Logger carrying that ID, and — on completion — a per-endpoint
// counter increment, a latency histogram observation, and one
// structured log record. /stream sessions hand the request-scoped
// logger to their detector, so refit events (including ones emitted by
// a background async-refit goroutine after the triggering push
// returned) remain attributable to the session's request ID.
//
// # Execution policy
//
// Every compute endpoint runs under the request's context: a client
// disconnect cancels the in-flight work (including an open stream), and
// Config.RequestTimeout adds a server-side deadline — a request over
// budget gets 504 (or a terminal NDJSON error record once a stream has
// started) and its Monte Carlo workers stop within one chunk of work.
// The deadline is observed between rows; a stream idling inside a body
// read is bounded by the server's read timeout instead (hicsd derives it
// from the same budget).
//
// The model is immutable after load and Model.Score is safe for
// concurrent use, so the handler needs no locking; each /stream request
// gets its own detector wrapped around the shared model.
package serve
