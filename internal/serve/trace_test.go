package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hics/internal/trace"
)

// traceServer builds a handler over its own Tracer so tests never share
// ring state with trace.Default (or with each other).
func traceServer(t *testing.T, cfg trace.Config) (*httptest.Server, *trace.Tracer) {
	t.Helper()
	tr := trace.New(cfg)
	srv := httptest.NewServer(New(Config{Model: fitModel(t), RequestTimeout: time.Minute, Tracer: tr}))
	t.Cleanup(srv.Close)
	return srv, tr
}

// getTraces fetches and decodes GET /debug/traces.
func getTraces(t *testing.T, url string) []trace.TraceData {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces status %d", resp.StatusCode)
	}
	var out []trace.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTraceEndToEnd: a /rank carrying a W3C traceparent must produce
// one trace under that exact trace ID, rooted at serve.rank with the
// caller's span as parent, whose children cover the compute phases —
// subspace search, per-level contrast, and the scoring pass.
func TestTraceEndToEnd(t *testing.T) {
	srv, _ := traceServer(t, trace.Config{})
	body, err := json.Marshal(RankRequest{Rows: rankRows(120), Options: RankOptions{M: 10, Seed: 1, TopK: 5}})
	if err != nil {
		t.Fatal(err)
	}
	const traceID = "0af7651916cd43dd8448eb211c80319c"
	const parentID = "b7ad6b7169203331"
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/rank", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", "00-"+traceID+"-"+parentID+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/rank status %d", resp.StatusCode)
	}

	traces := getTraces(t, srv.URL)
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	td := traces[0]
	if td.TraceID != traceID {
		t.Fatalf("trace ID %s, want the inbound %s", td.TraceID, traceID)
	}
	if td.Root != "serve.rank" {
		t.Errorf("root span %q, want serve.rank", td.Root)
	}
	if td.DroppedSpans != 0 {
		t.Errorf("%d spans dropped, want 0", td.DroppedSpans)
	}
	byName := map[string]trace.SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	root, ok := byName["serve.rank"]
	if !ok {
		t.Fatalf("no serve.rank span in %v", td.Spans)
	}
	if root.ParentID != parentID {
		t.Errorf("root parent %s, want the caller's span %s", root.ParentID, parentID)
	}
	for _, name := range []string{"search.subspaces", "search.contrast_level", "ranking.score"} {
		child, ok := byName[name]
		if !ok {
			t.Errorf("missing %s span; have %d spans", name, len(td.Spans))
			continue
		}
		if child.ParentID == "" {
			t.Errorf("%s has no parent", name)
		}
	}
	if got := byName["search.subspaces"].ParentID; got != root.SpanID {
		t.Errorf("search.subspaces parent %s, want the root %s", got, root.SpanID)
	}
}

// TestTraceFallsBackToRequestID: without an inbound traceparent the
// trace ID derives from the request ID — an inbound X-Request-Id maps
// to the same trace ID on every hop, so logs and traces join on it.
func TestTraceFallsBackToRequestID(t *testing.T) {
	srv, _ := traceServer(t, trace.Config{})
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "client-chosen-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-id-42" {
		t.Errorf("X-Request-Id echoed %q, want the inbound value", got)
	}
	traces := getTraces(t, srv.URL)
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	want := trace.TraceIDFromString("client-chosen-id-42").String()
	if traces[0].TraceID != want {
		t.Errorf("trace ID %s, want %s (derived from the request ID)", traces[0].TraceID, want)
	}
	// A second request under the same ID maps to the same trace ID.
	if again := trace.TraceIDFromString("client-chosen-id-42").String(); again != want {
		t.Errorf("request-ID derivation not deterministic: %s vs %s", again, want)
	}
}

// TestTraceRequestIDRejectsGarbage: an inbound X-Request-Id that is not
// short and token-shaped is replaced, never echoed back.
func TestTraceRequestIDRejectsGarbage(t *testing.T) {
	srv, _ := traceServer(t, trace.Config{})
	for _, bad := range []string{"", "has space", "semi;colon", strings.Repeat("a", 80)} {
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if bad != "" {
			req.Header.Set("X-Request-Id", bad)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-Id"); got == bad || got == "" {
			t.Errorf("inbound %q: response ID %q, want a fresh minted ID", bad, got)
		}
	}
}

// TestTraceMinMSFilter: ?min_ms= hides fast traces from the listing.
func TestTraceMinMSFilter(t *testing.T) {
	srv, _ := traceServer(t, trace.Config{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	r2, err := http.Get(srv.URL + "/debug/traces?min_ms=60000")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var out []trace.TraceData
	if err := json.NewDecoder(r2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("%d traces above 60s, want 0", len(out))
	}
	r3, err := http.Get(srv.URL + "/debug/traces?min_ms=bogus")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_ms status %d, want 400", r3.StatusCode)
	}
}

// TestTraceSampledOutStreamStays: with head sampling off, an unerrored
// fast request leaves nothing in the ring — only errors and slow roots
// are tail-kept.
func TestTraceSampledOutKeepsErrors(t *testing.T) {
	srv, _ := traceServer(t, trace.Config{Sample: -1})
	// A fast, successful request: sampled out.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getTraces(t, srv.URL); len(got) != 0 {
		t.Fatalf("%d traces after a sampled-out request, want 0", len(got))
	}
}
