// Package serve implements the HTTP scoring interface behind the
// cmd/hicsd server: a trained hics.Model exposed as a JSON endpoint. It
// lives outside the command so the examples (and tests) can embed the
// exact handler the daemon serves.
//
// Endpoints:
//
//	GET  /healthz  liveness plus model shape (objects, attributes,
//	               subspaces)
//	GET  /info     the served model's method pair (searcher, scorer),
//	               subspace count, and persistence format version
//	POST /score    score one point ({"point": [...]}) or a batch
//	               ({"points": [[...], ...]}) against the model
//	POST /rank     run a full deadlined HiCS ranking on posted rows
//	               ({"rows": [[...], ...], "options": {...}})
//
// Every compute endpoint runs under the request's context: a client
// disconnect cancels the in-flight work, and Config.RequestTimeout adds a
// server-side deadline — a request over budget gets 504 and its Monte
// Carlo workers stop within one chunk of work.
//
// The model is immutable after load and Model.Score is safe for
// concurrent use, so the handler needs no locking.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"hics"
)

// Config wires the handler: the served model plus the per-request
// execution policy.
type Config struct {
	// Model is the trained model behind /score, /healthz and /info.
	Model *hics.Model
	// RequestTimeout bounds the server-side compute of each /score and
	// /rank request; 0 imposes no deadline beyond the client's own
	// patience (a disconnect still cancels the work).
	RequestTimeout time.Duration
	// RankWorkers caps the parallelism of /rank rankings (0 = one worker
	// per CPU). Batch /score parallelism is bounded on the model itself
	// via Model.SetWorkers.
	RankWorkers int
}

// ScoreRequest is the /score request body. Exactly one of Point and
// Points must be set.
type ScoreRequest struct {
	// Point is a single observation, one value per model attribute.
	Point []float64 `json:"point,omitempty"`
	// Points is a batch of observations.
	Points [][]float64 `json:"points,omitempty"`
}

// ScoreResponse is the /score response body; the populated field mirrors
// the request shape ("score" for a point request, "scores" for a batch —
// present even when the batch is empty).
type ScoreResponse struct {
	Score  *float64  `json:"score,omitempty"`
	Scores []float64 `json:"scores,omitempty"`
}

// Single-shape encode types: a batch response must carry "scores" even
// for an empty batch (omitempty would drop it, leaving a bare {} that is
// indistinguishable from a malformed response).
type pointResponse struct {
	Score float64 `json:"score"`
}

type batchResponse struct {
	Scores []float64 `json:"scores"`
}

// RankOptions is the JSON mirror of the hics.Options fields a /rank
// request may set; zero values select the library defaults. The worker
// bound is deliberately absent — parallelism is the server's admission
// decision (Config.RankWorkers), not the client's.
type RankOptions struct {
	M               int     `json:"m,omitempty"`
	Alpha           float64 `json:"alpha,omitempty"`
	CandidateCutoff int     `json:"candidate_cutoff,omitempty"`
	TopK            int     `json:"topk,omitempty"`
	Test            string  `json:"test,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
	MinPts          int     `json:"minpts,omitempty"`
	Aggregation     string  `json:"aggregation,omitempty"`
	Search          string  `json:"search,omitempty"`
	Scorer          string  `json:"scorer,omitempty"`
	MaxDim          int     `json:"max_dim,omitempty"`
	NeighborIndex   string  `json:"neighbor_index,omitempty"`
}

// options maps the request onto hics.Options, applying the server's
// worker bound.
func (o RankOptions) options(workers int) hics.Options {
	return hics.Options{
		M:               o.M,
		Alpha:           o.Alpha,
		CandidateCutoff: o.CandidateCutoff,
		TopK:            o.TopK,
		Test:            o.Test,
		Seed:            o.Seed,
		MinPts:          o.MinPts,
		Aggregation:     o.Aggregation,
		Search:          o.Search,
		Scorer:          o.Scorer,
		MaxDim:          o.MaxDim,
		NeighborIndex:   o.NeighborIndex,
		Workers:         workers,
	}
}

// RankRequest is the /rank request body: the rows to rank (row-major, one
// object per row) and the ranking options.
type RankRequest struct {
	Rows    [][]float64 `json:"rows"`
	Options RankOptions `json:"options"`
}

// RankSubspace is one high-contrast projection of a /rank response.
type RankSubspace struct {
	Dims     []int   `json:"dims"`
	Contrast float64 `json:"contrast"`
}

// RankResponse is the /rank response body: one aggregated outlier score
// per posted row, plus the projections the scores were computed in.
type RankResponse struct {
	Scores    []float64      `json:"scores"`
	Subspaces []RankSubspace `json:"subspaces"`
}

// Health is the /healthz response body.
type Health struct {
	Status     string `json:"status"`
	Objects    int    `json:"objects"`
	Attributes int    `json:"attributes"`
	Subspaces  int    `json:"subspaces"`
	Version    string `json:"version"`
}

// Info is the /info response body: the method pair the served model was
// fitted with and the shape of its frozen state.
type Info struct {
	// Search and Scorer are the registry names of the model's method pair.
	Search string `json:"search"`
	Scorer string `json:"scorer"`
	// Subspaces is the number of frozen projections the model scores in.
	Subspaces int `json:"subspaces"`
	// FormatVersion is the persistence format the model was loaded from.
	FormatVersion int    `json:"format_version"`
	Objects       int    `json:"objects"`
	Attributes    int    `json:"attributes"`
	Version       string `json:"version"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a /score or /rank body; a million-point batch is
// a mistake, not a query.
const maxRequestBytes = 64 << 20

// NewHandler returns the hicsd HTTP handler serving the given model with
// the default execution policy: no server-side deadline, unbounded
// ranking parallelism.
func NewHandler(m *hics.Model) http.Handler {
	return New(Config{Model: m})
}

// New returns the hicsd HTTP handler for the given configuration.
func New(cfg Config) http.Handler {
	m := cfg.Model
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Health{
			Status:     "ok",
			Objects:    m.N(),
			Attributes: m.D(),
			Subspaces:  len(m.Subspaces()),
			Version:    hics.Version,
		})
	})
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
			return
		}
		writeJSON(w, http.StatusOK, Info{
			Search:        m.SearchMethod(),
			Scorer:        m.ScorerMethod(),
			Subspaces:     len(m.Subspaces()),
			FormatVersion: m.FormatVersion(),
			Objects:       m.N(),
			Attributes:    m.D(),
			Version:       hics.Version,
		})
	})
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
			return
		}
		var req ScoreRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid request: %v", err)})
			return
		}
		switch {
		case req.Point != nil && req.Points != nil:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: `set exactly one of "point" and "points"`})
		case req.Point != nil:
			s, err := m.Score(req.Point)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, pointResponse{Score: s})
		case req.Points != nil:
			ctx, cancel := cfg.requestContext(r)
			defer cancel()
			scores, err := m.ScoreBatchContext(ctx, req.Points)
			if err != nil {
				writeComputeError(w, err)
				return
			}
			if scores == nil {
				scores = []float64{}
			}
			writeJSON(w, http.StatusOK, batchResponse{Scores: scores})
		default:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: `set "point" or "points"`})
		}
	})
	mux.HandleFunc("/rank", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
			return
		}
		var req RankRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid request: %v", err)})
			return
		}
		if len(req.Rows) == 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: `"rows" must hold at least one row`})
			return
		}
		ctx, cancel := cfg.requestContext(r)
		defer cancel()
		res, err := hics.RankContext(ctx, req.Rows, req.Options.options(cfg.RankWorkers))
		if err != nil {
			writeComputeError(w, err)
			return
		}
		resp := RankResponse{Scores: res.Scores, Subspaces: make([]RankSubspace, len(res.Subspaces))}
		for i, s := range res.Subspaces {
			resp.Subspaces[i] = RankSubspace{Dims: s.Dims, Contrast: s.Contrast}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// requestContext derives a compute context for one request: the client's
// context (cancelled when the connection drops), bounded by the
// configured server-side budget.
func (cfg Config) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// writeComputeError maps a scoring/ranking failure onto the response: an
// exceeded server budget is 504, a client disconnect gets no response
// (nobody is listening), anything else is the client's fault.
func writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "request exceeded the server's compute budget"})
	case errors.Is(err, context.Canceled):
		// The client went away; the work was cancelled on its behalf.
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		// LOF scores of degenerate (duplicate-heavy) data can be +Inf,
		// which JSON cannot carry; report instead of sending a truncated
		// 200 body.
		status = http.StatusUnprocessableEntity
		data, _ = json.Marshal(errorResponse{Error: fmt.Sprintf("response not representable in JSON: %v", err)})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}
