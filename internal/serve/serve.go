package serve

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hics"
	"hics/internal/fleet"
	"hics/internal/metrics"
	"hics/internal/trace"
)

// Instrumentation, registered once into the process-wide metrics
// registry and served by GET /metrics in Prometheus text format. The
// series are process-global (like the expvar counters they supersede),
// so multiple handlers share them; tests assert on deltas. Families
// touching a model carry its fleet name in the "model" label (empty for
// traffic that never resolved one — 404s, /metrics itself). GET
// /debug/vars stays available as a thin compatibility view over the
// same registry — see debugVars.
var (
	mRequests = metrics.Default.NewCounterVec("hicsd_http_requests_total",
		"Completed HTTP requests by endpoint, status code and resolved model (empty when the request did not resolve one).",
		"endpoint", "code", "model")
	mDuration = metrics.Default.NewHistogramVec("hicsd_http_request_duration_seconds",
		"Wall time of completed HTTP requests by endpoint (a /stream session counts once, at close).",
		nil, "endpoint")
	mErrors = metrics.Default.NewCounter("hicsd_http_errors_total",
		"Error responses (status >= 400) plus terminal NDJSON stream error records.")
	mActiveStreams = metrics.Default.NewGaugeVec("hicsd_streams_active",
		"Currently open /stream sessions per model.", "model")
	mRefits = metrics.Default.NewCounterVec("hicsd_stream_refits_total",
		"Model refits observed by /stream sessions per model (CLI and library streams count in hics_stream_refits_total instead).",
		"model")
	mRejected = metrics.Default.NewCounterVec("hicsd_admission_rejected_total",
		"Requests rejected with 429 by a model's admission quota, by model and quota dimension (request or stream).",
		"model", "kind")
	mLastScoreLat = metrics.Default.NewGauge("hicsd_last_score_latency_seconds",
		"Wall time of the latest scoring call (/score request or /stream row).")
)

// endpoints maps request paths onto the bounded endpoint label set; any
// unknown path (404 traffic) collapses into "other" so scrape
// cardinality cannot grow with abuse.
var endpoints = map[string]string{
	"/healthz":      "healthz",
	"/info":         "info",
	"/score":        "score",
	"/rank":         "rank",
	"/stream":       "stream",
	"/models":       "models",
	"/metrics":      "metrics",
	"/debug/vars":   "debug_vars",
	"/debug/traces": "debug_traces",
}

func endpointLabel(path string) string {
	if e, ok := endpoints[path]; ok {
		return e
	}
	if strings.HasPrefix(path, "/models/") {
		return "models"
	}
	return "other"
}

// Config wires the handler: the model fleet behind it plus the
// per-request execution policy.
type Config struct {
	// Fleet is the named-model store behind every endpoint. When nil, an
	// in-memory single-model fleet is built around Model — the pre-fleet
	// configuration surface keeps working unchanged.
	Fleet *fleet.Fleet
	// Model seeds the fleet under the default name when Fleet is nil.
	Model *hics.Model
	// AdminToken, when set, locks the mutating model-management endpoints
	// (PUT/DELETE /models/{name}) behind "Authorization: Bearer <token>".
	// Empty leaves them open (suitable behind a trusted control plane).
	AdminToken string
	// RequestTimeout bounds the server-side compute of each /score and
	// /rank request; 0 imposes no deadline beyond the client's own
	// patience (a disconnect still cancels the work).
	RequestTimeout time.Duration
	// RankWorkers caps the parallelism of /rank rankings and /stream
	// refits (0 = one worker per CPU); a model quota's Workers bound
	// overrides it per model. Batch /score parallelism is bounded on the
	// model itself via Model.SetWorkers.
	RankWorkers int
	// StreamWindow is the default sliding-window size of /stream sessions
	// (0 = the routed model's training-set size — resolved per model, not
	// per server). Clients may override per request with ?window=N.
	StreamWindow int
	// StreamRefitEvery is the default refit cadence of /stream sessions
	// in arrivals (0 = never refit). Clients may override with
	// ?refit_every=N.
	StreamRefitEvery int
	// StreamAsync makes /stream refits run in the background by default,
	// so scoring keeps flowing during a refit. Clients may override with
	// ?async=true|false.
	StreamAsync bool
	// StreamMaxBytes caps the cumulative input bytes of one /stream
	// session (0 = 64 MiB, the historical limit). Clients may lower —
	// never raise — their own session's cap with ?max_bytes=N. An
	// exhausted session ends with an explicit error record naming the
	// limit.
	StreamMaxBytes int64
	// Logger receives one structured record per completed request
	// (method, path, endpoint, status, duration, request ID) plus
	// endpoint-specific events, all carrying the per-request ID the
	// middleware generates. Nil discards all logging.
	Logger *slog.Logger
	// Tracer records a distributed trace per request: the middleware
	// opens a root span (continuing an inbound traceparent when
	// present), handlers and the compute layers hang phase spans off
	// it, and completed traces are served at GET /debug/traces. Nil
	// uses the process-global trace.Default.
	Tracer *trace.Tracer
}

// logger resolves the configured logger, discarding when unset.
func (cfg Config) logger() *slog.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	return slog.New(slog.DiscardHandler)
}

// tracer resolves the configured tracer, defaulting to trace.Default.
func (cfg Config) tracer() *trace.Tracer {
	if cfg.Tracer != nil {
		return cfg.Tracer
	}
	return trace.Default
}

// ctxKey keys the request-scoped values the middleware injects.
type ctxKey int

const (
	requestIDKey ctxKey = iota
	loggerKey
	requestInfoKey
)

// requestInfo is the middleware's per-request scratch record: handlers
// fill in the resolved model name so the middleware can label the
// request counter after ServeHTTP returns (same goroutine, no race).
type requestInfo struct {
	model string
}

// setRequestModel records the model a handler resolved, for metric
// labelling. No-op outside the middleware.
func setRequestModel(ctx context.Context, name string) {
	if ri, ok := ctx.Value(requestInfoKey).(*requestInfo); ok {
		ri.model = name
	}
}

// RequestID returns the request's generated ID, or "" outside a request
// context.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ctxLogger returns the request-scoped logger (already annotated with
// the request ID), or a discarding logger outside a request context.
func ctxLogger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		return l
	}
	return slog.New(slog.DiscardHandler)
}

// newRequestID generates a 16-hex-digit random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// requestID honors an inbound X-Request-Id (so the front's ID — or a
// client's own — survives the hop and both processes' logs join on one
// value) and mints a fresh ID otherwise. Inbound values are accepted
// only when short and token-shaped: IDs land verbatim in logs and
// response headers, so arbitrary client bytes must not pass through.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if validRequestID(id) {
		return id
	}
	return newRequestID()
}

// validRequestID bounds inbound request IDs to 1..64 characters of
// [0-9A-Za-z._-].
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// statusWriter records the response status for the request log and the
// per-endpoint counters. Unwrap keeps http.ResponseController (and so
// the /stream full-duplex and flush machinery) working through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ScoreRequest is the /score request body. Exactly one of Point and
// Points must be set.
type ScoreRequest struct {
	// Point is a single observation, one value per model attribute.
	Point []float64 `json:"point,omitempty"`
	// Points is a batch of observations.
	Points [][]float64 `json:"points,omitempty"`
}

// ScoreResponse is the /score response body; the populated field mirrors
// the request shape ("score" for a point request, "scores" for a batch —
// present even when the batch is empty).
type ScoreResponse struct {
	Score  *float64  `json:"score,omitempty"`
	Scores []float64 `json:"scores,omitempty"`
}

// Single-shape encode types: a batch response must carry "scores" even
// for an empty batch (omitempty would drop it, leaving a bare {} that is
// indistinguishable from a malformed response).
type pointResponse struct {
	Score float64 `json:"score"`
}

type batchResponse struct {
	Scores []float64 `json:"scores"`
}

// RankOptions is the JSON mirror of the hics.Options fields a /rank
// request may set; zero values select the library defaults. The worker
// bound is deliberately absent — parallelism is the server's admission
// decision (Config.RankWorkers, or the routed model's quota), not the
// client's.
type RankOptions struct {
	M               int     `json:"m,omitempty"`
	Alpha           float64 `json:"alpha,omitempty"`
	CandidateCutoff int     `json:"candidate_cutoff,omitempty"`
	TopK            int     `json:"topk,omitempty"`
	Test            string  `json:"test,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
	MinPts          int     `json:"minpts,omitempty"`
	Aggregation     string  `json:"aggregation,omitempty"`
	Search          string  `json:"search,omitempty"`
	Scorer          string  `json:"scorer,omitempty"`
	MaxDim          int     `json:"max_dim,omitempty"`
	AdaptiveM       bool    `json:"adaptive_m,omitempty"`
	MaxSampleRows   int     `json:"max_sample_rows,omitempty"`
	NeighborIndex   string  `json:"neighbor_index,omitempty"`
}

// options maps the request onto hics.Options, applying the server's
// worker bound.
func (o RankOptions) options(workers int) hics.Options {
	return hics.Options{
		M:               o.M,
		Alpha:           o.Alpha,
		CandidateCutoff: o.CandidateCutoff,
		TopK:            o.TopK,
		Test:            o.Test,
		Seed:            o.Seed,
		MinPts:          o.MinPts,
		Aggregation:     o.Aggregation,
		Search:          o.Search,
		Scorer:          o.Scorer,
		MaxDim:          o.MaxDim,
		AdaptiveM:       o.AdaptiveM,
		MaxSampleRows:   o.MaxSampleRows,
		NeighborIndex:   o.NeighborIndex,
		Workers:         workers,
	}
}

// RankRequest is the /rank request body: the rows to rank (row-major, one
// object per row) and the ranking options.
type RankRequest struct {
	Rows    [][]float64 `json:"rows"`
	Options RankOptions `json:"options"`
}

// RankSubspace is one high-contrast projection of a /rank response.
type RankSubspace struct {
	Dims     []int   `json:"dims"`
	Contrast float64 `json:"contrast"`
}

// RankResponse is the /rank response body: one aggregated outlier score
// per posted row, plus the projections the scores were computed in.
type RankResponse struct {
	Scores    []float64      `json:"scores"`
	Subspaces []RankSubspace `json:"subspaces"`
}

// ModelHealth is one model's load state in the /healthz response.
type ModelHealth struct {
	Name    string `json:"name"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Default bool   `json:"default"`
}

// Health is the /healthz response body. The flat Objects / Attributes /
// Subspaces fields describe the default model (zero when none is
// configured); Models lists the load state of every model in the fleet.
// While the manifest restore is in flight the status is "starting" and
// the response code 503, so orchestrators do not route to a cold fleet.
type Health struct {
	Status     string        `json:"status"`
	Objects    int           `json:"objects"`
	Attributes int           `json:"attributes"`
	Subspaces  int           `json:"subspaces"`
	Version    string        `json:"version"`
	Models     []ModelHealth `json:"models,omitempty"`
}

// Info is the /info response body: the method pair the served model was
// fitted with and the shape of its frozen state.
type Info struct {
	// Model is the fleet name the request resolved to.
	Model string `json:"model"`
	// Search and Scorer are the registry names of the model's method pair.
	Search string `json:"search"`
	Scorer string `json:"scorer"`
	// Subspaces is the number of frozen projections the model scores in.
	Subspaces int `json:"subspaces"`
	// FormatVersion is the persistence format the model was loaded from.
	FormatVersion int    `json:"format_version"`
	Objects       int    `json:"objects"`
	Attributes    int    `json:"attributes"`
	Version       string `json:"version"`
	// Server is the full server version string ("hicsd/<version>").
	Server string `json:"server"`
}

// ModelsResponse is the GET /models response body.
type ModelsResponse struct {
	// Ready reports whether the startup manifest restore has completed.
	Ready bool `json:"ready"`
	// Default is the model unnamed requests route to ("" when unset).
	Default string              `json:"default"`
	Models  []fleet.ModelStatus `json:"models"`
}

// StreamRecord is one /stream response line: the arrival index of the
// scored row, its outlier score, and the number of model refits completed
// when it was scored.
type StreamRecord struct {
	Index  int     `json:"index"`
	Score  float64 `json:"score"`
	Refits int     `json:"refits"`
}

// ServerVersion is the /info server identification string.
const ServerVersion = "hicsd/" + hics.Version

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a /score, /rank or model-upload body; a
// million-point batch is a mistake, not a query. It is also the default
// cumulative session cap of /stream (Config.StreamMaxBytes overrides) —
// an exhausted stream ends with an explicit error record naming the
// limit.
const maxRequestBytes = 64 << 20

// NewHandler returns the hicsd HTTP handler serving the given model with
// the default execution policy: no server-side deadline, unbounded
// ranking parallelism.
func NewHandler(m *hics.Model) http.Handler {
	return New(Config{Model: m})
}

// server binds the configuration to its resolved fleet, plus the drain
// state shared by every open stream session.
type server struct {
	cfg Config
	fl  *fleet.Fleet

	draining atomic.Bool
	sessMu   sync.Mutex
	sessions map[*http.ResponseController]struct{}
}

// Server is the hicsd handler with its lifecycle control surface: Drain
// moves it into draining mode ahead of shutdown. It serves exactly what
// New serves.
type Server struct {
	http.Handler
	s *server
}

// Drain moves the server into draining mode: /healthz turns 503 with
// status "draining" (so load balancers stop routing here), new /stream
// sessions are refused with 503 + Retry-After, and every open stream
// session is kicked — it stops reading input, emits a terminal
// {"error": ...} record after the rows already scored, and closes.
// Unary endpoints keep serving so in-flight work completes; call
// http.Server.Shutdown afterwards to finish. Idempotent.
func (srv *Server) Drain() {
	if srv.s.draining.Swap(true) {
		return
	}
	srv.s.sessMu.Lock()
	defer srv.s.sessMu.Unlock()
	for rc := range srv.s.sessions {
		// Unblocks the session goroutine waiting in a body read; the net.Conn
		// deadline is safe to set from here.
		_ = rc.SetReadDeadline(time.Now())
	}
}

// Draining reports whether Drain has been called.
func (srv *Server) Draining() bool { return srv.s.draining.Load() }

// addSession registers an open stream session for drain kicks. When the
// server is already draining the session is kicked immediately, closing
// the register/drain race: either path guarantees the read deadline
// fires.
func (s *server) addSession(rc *http.ResponseController) {
	s.sessMu.Lock()
	s.sessions[rc] = struct{}{}
	s.sessMu.Unlock()
	if s.draining.Load() {
		_ = rc.SetReadDeadline(time.Now())
	}
}

func (s *server) removeSession(rc *http.ResponseController) {
	s.sessMu.Lock()
	delete(s.sessions, rc)
	s.sessMu.Unlock()
}

// New returns the hicsd HTTP handler for the given configuration.
func New(cfg Config) http.Handler { return NewServer(cfg) }

// NewServer returns the hicsd handler together with its drain control.
func NewServer(cfg Config) *Server {
	fl := cfg.Fleet
	if fl == nil {
		// Pre-fleet surface: a single in-memory model under the default
		// name. Restore of an in-memory fleet is instant and marks it
		// ready.
		fl = fleet.New(fleet.Config{Logger: cfg.Logger})
		_ = fl.Restore(context.Background())
		if cfg.Model != nil {
			if err := fl.Put(fleet.DefaultName, cfg.Model, fleet.Quota{}, true); err != nil {
				panic("serve: seeding single-model fleet: " + err.Error())
			}
		}
	}
	s := &server{cfg: cfg, fl: fl, sessions: map[*http.ResponseController]struct{}{}}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/score", s.handleScore)
	mux.HandleFunc("/rank", s.handleRank)
	mux.HandleFunc("/stream", s.handleStream)
	mux.HandleFunc("GET /models", s.handleModelsList)
	mux.HandleFunc("GET /models/{name}", s.handleModelGet)
	mux.HandleFunc("PUT /models/{name}", s.handleModelPut)
	mux.HandleFunc("DELETE /models/{name}", s.handleModelDelete)
	mux.Handle("/metrics", metrics.Default.Handler())
	mux.HandleFunc("/debug/vars", debugVars)
	mux.Handle("GET /debug/traces", cfg.tracer().Handler())

	// Observability middleware wraps the whole mux so every endpoint —
	// including 404s — is counted, timed, logged and traced. Each
	// request gets an ID (an inbound X-Request-Id is honored so hops
	// correlate; otherwise minted), carried in the context (RequestID)
	// and on the request-scoped logger, so endpoint events — including
	// async refit goroutines outliving their /stream push — stay
	// attributable. A root span opens per request: an inbound
	// traceparent makes this hop a child of the caller's span (the
	// front→shard path), and a fresh trace reuses the request ID as its
	// trace ID so logs and /debug/traces join on one value. The handler
	// reports its resolved model through the shared requestInfo, read
	// back here after ServeHTTP returns on the same goroutine.
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := requestID(r)
		endpoint := endpointLabel(r.URL.Path)
		remote, _ := trace.Extract(r.Header)
		ctx, span := cfg.tracer().StartRoot(r.Context(), "serve."+endpoint, remote, trace.TraceIDFromString(id))
		log := cfg.logger().With("request_id", id,
			"trace_id", span.TraceIDString(), "span_id", span.SpanIDString())
		ri := &requestInfo{}
		ctx = context.WithValue(ctx, requestIDKey, id)
		ctx = context.WithValue(ctx, loggerKey, log)
		ctx = context.WithValue(ctx, requestInfoKey, ri)
		sw := &statusWriter{ResponseWriter: w}
		w.Header().Set("X-Request-Id", id)
		mux.ServeHTTP(sw, r.WithContext(ctx))
		status := sw.status
		if status == 0 {
			// Nothing written: a handler that hijacked or a cancelled
			// stream; net/http would have sent 200.
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		span.SetAttr("status", status)
		if ri.model != "" {
			span.SetAttr("model", ri.model)
		}
		if status >= 500 {
			span.SetError(fmt.Errorf("status %d", status))
		}
		span.End()
		mRequests.With(endpoint, strconv.Itoa(status), ri.model).Inc()
		mDuration.With(endpoint).Observe(elapsed.Seconds())
		log.Info("request",
			"method", r.Method, "path", r.URL.Path, "endpoint", endpoint,
			"status", status, "duration", elapsed, "model", ri.model)
	})
	return &Server{Handler: h, s: s}
}

// labelRoutedModel pre-labels an unnamed routed request with the
// "default" alias so a request rejected before model resolution (a
// malformed body, say) still lands on a bounded metric series instead
// of model="". Named requests stay unlabeled until acquire resolves
// them — raw ?model= values are client-controlled and must not mint
// series.
func labelRoutedModel(r *http.Request) {
	if r.URL.Query().Get("model") == "" {
		setRequestModel(r.Context(), fleet.DefaultName)
	}
}

// acquire resolves the request's model — the ?model= query parameter,
// defaulting to the fleet's default model — into a Handle, writing the
// error response itself when resolution fails. Callers must Release the
// returned handle.
func (s *server) acquire(w http.ResponseWriter, r *http.Request, use fleet.Use) (*fleet.Handle, bool) {
	name := r.URL.Query().Get("model")
	h, err := s.fl.Acquire(name, use)
	if err != nil {
		var (
			nf *fleet.NotFoundError
			nr *fleet.NotReadyError
			qe *fleet.QuotaError
		)
		switch {
		case errors.As(err, &qe):
			setRequestModel(r.Context(), qe.Name)
			mRejected.With(qe.Name, qe.Kind).Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		case errors.As(err, &nr):
			setRequestModel(r.Context(), nr.Name)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.As(err, &nf):
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
		return nil, false
	}
	setRequestModel(r.Context(), h.Name())
	return h, true
}

// handleHealthz is the liveness + readiness probe: 503 with status
// "starting" while the manifest restore is in flight, 200 afterwards
// with the per-model load states ("degraded" when any model is not
// ready). The flat fields describe the default model for compatibility
// with the single-model era.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", Version: hics.Version}
	for _, st := range s.fl.Status() {
		h.Models = append(h.Models, ModelHealth{
			Name: st.Name, State: st.State, Error: st.Error, Default: st.Default,
		})
		if st.State != fleet.StateReady {
			h.Status = "degraded"
		}
		if st.Default && st.State == fleet.StateReady {
			h.Objects = st.Objects
			h.Attributes = st.Attributes
			h.Subspaces = st.Subspaces
		}
	}
	if s.draining.Load() {
		// Draining outranks everything: orchestrators must stop routing
		// here regardless of how healthy the fleet still looks.
		h.Status = "draining"
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	if !s.fl.Ready() {
		h.Status = "starting"
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	h, ok := s.acquire(w, r, fleet.UseMeta)
	if !ok {
		return
	}
	defer h.Release()
	m := h.Model()
	writeJSON(w, http.StatusOK, Info{
		Model:         h.Name(),
		Search:        m.SearchMethod(),
		Scorer:        m.ScorerMethod(),
		Subspaces:     len(m.Subspaces()),
		FormatVersion: m.FormatVersion(),
		Objects:       m.N(),
		Attributes:    m.D(),
		Version:       hics.Version,
		Server:        ServerVersion,
	})
}

func (s *server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	labelRoutedModel(r)
	var req ScoreRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid request: %v", err)})
		return
	}
	h, ok := s.acquire(w, r, fleet.UseRequest)
	if !ok {
		return
	}
	defer h.Release()
	m := h.Model()
	switch {
	case req.Point != nil && req.Points != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `set exactly one of "point" and "points"`})
	case req.Point != nil:
		start := time.Now()
		s, err := m.Score(req.Point)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		mLastScoreLat.Set(time.Since(start).Seconds())
		writeJSON(w, http.StatusOK, pointResponse{Score: s})
	case req.Points != nil:
		ctx, cancel := s.cfg.requestContext(r)
		defer cancel()
		start := time.Now()
		scores, err := m.ScoreBatchContext(ctx, req.Points)
		if err != nil {
			writeComputeError(w, err)
			return
		}
		mLastScoreLat.Set(time.Since(start).Seconds())
		if scores == nil {
			scores = []float64{}
		}
		writeJSON(w, http.StatusOK, batchResponse{Scores: scores})
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `set "point" or "points"`})
	}
}

// handleRank fits fresh HiCS rankings over the posted rows. The request
// still routes through a fleet model for admission — its request quota
// and worker bound govern the ranking — so multi-tenant fairness holds
// across every compute endpoint.
func (s *server) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	labelRoutedModel(r)
	var req RankRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid request: %v", err)})
		return
	}
	if len(req.Rows) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `"rows" must hold at least one row`})
		return
	}
	h, ok := s.acquire(w, r, fleet.UseRequest)
	if !ok {
		return
	}
	defer h.Release()
	ctx, cancel := s.cfg.requestContext(r)
	defer cancel()
	res, err := hics.RankContext(ctx, req.Rows, req.Options.options(h.Workers(s.cfg.RankWorkers)))
	if err != nil {
		writeComputeError(w, err)
		return
	}
	resp := RankResponse{Scores: res.Scores, Subspaces: make([]RankSubspace, len(res.Subspaces))}
	for i, sp := range res.Subspaces {
		resp.Subspaces[i] = RankSubspace{Dims: sp.Dims, Contrast: sp.Contrast}
	}
	writeJSON(w, http.StatusOK, resp)
}

// authorized checks the management bearer token. Always true when no
// token is configured.
func (s *server) authorized(r *http.Request) bool {
	if s.cfg.AdminToken == "" {
		return true
	}
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) < len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(s.cfg.AdminToken)) == 1
}

func writeUnauthorized(w http.ResponseWriter) {
	w.Header().Set("WWW-Authenticate", `Bearer realm="hicsd model management"`)
	writeJSON(w, http.StatusUnauthorized, errorResponse{Error: "management endpoints require a bearer token"})
}

// handleModelsList is GET /models: the whole fleet, readiness included.
func (s *server) handleModelsList(w http.ResponseWriter, r *http.Request) {
	sts := s.fl.Status()
	if sts == nil {
		sts = []fleet.ModelStatus{}
	}
	writeJSON(w, http.StatusOK, ModelsResponse{
		Ready:   s.fl.Ready(),
		Default: s.fl.DefaultModel(),
		Models:  sts,
	})
}

// handleModelGet is GET /models/{name}: one model's status.
func (s *server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	setRequestModel(r.Context(), name)
	st, err := s.fl.ModelStatus(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleModelPut is PUT /models/{name}: the body is a saved model in the
// hics persistence format (as written by Model.Save / hics -fit -save);
// query parameters set the admission quota (max_concurrent, max_streams,
// workers) and default=true routes unnamed requests here. Loading an
// existing name hot-swaps it atomically: in-flight requests finish on
// the old model, new requests see the new one.
func (s *server) handleModelPut(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		writeUnauthorized(w)
		return
	}
	name := r.PathValue("name")
	setRequestModel(r.Context(), name)
	if !fleet.ValidName(name) {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("invalid model name %q (want 1-64 chars of [a-zA-Z0-9_.-], starting alphanumeric)", name)})
		return
	}
	q, makeDefault, err := quotaParams(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	m, err := hics.LoadModel(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("model body: %v", err)})
		return
	}
	if err := s.fl.Put(name, m, q, makeDefault); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	ctxLogger(r.Context()).Info("model loaded", "model", name, "default", makeDefault,
		"objects", m.N(), "attributes", m.D())
	st, err := s.fl.ModelStatus(name)
	if err != nil {
		// Deleted between Put and Status; report what was loaded.
		writeJSON(w, http.StatusOK, fleet.ModelStatus{Name: name, State: fleet.StateReady})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleModelDelete is DELETE /models/{name}: the name 404s immediately
// for new requests while in-flight ones drain (bounded by the request's
// context and the server's request timeout), then the persisted file is
// removed.
func (s *server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		writeUnauthorized(w)
		return
	}
	name := r.PathValue("name")
	setRequestModel(r.Context(), name)
	ctx, cancel := s.cfg.requestContext(r)
	defer cancel()
	if err := s.fl.Delete(ctx, name); err != nil {
		var nf *fleet.NotFoundError
		if errors.As(err, &nf) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	ctxLogger(r.Context()).Info("model unloaded", "model", name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// quotaParams parses the PUT /models/{name} quota query parameters.
func quotaParams(r *http.Request) (fleet.Quota, bool, error) {
	var q fleet.Quota
	var makeDefault bool
	qs := r.URL.Query()
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"max_concurrent", &q.MaxConcurrent},
		{"max_streams", &q.MaxStreams},
		{"workers", &q.Workers},
	} {
		s := qs.Get(p.name)
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return q, false, fmt.Errorf("query parameter %s: %q is not a non-negative integer", p.name, s)
		}
		*p.dst = v
	}
	if s := qs.Get("default"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return q, false, fmt.Errorf("query parameter default: %q is not a boolean", s)
		}
		makeDefault = v
	}
	return q, makeDefault, nil
}

// debugVars is the /debug/vars compatibility view: the standard expvar
// page (cmdline, memstats and anything else published) with the legacy
// "hicsd" map re-derived from the metrics registry, so the two surfaces
// can never disagree. The map keys and units are unchanged from the
// expvar era: requests, errors, active_streams, refits,
// last_score_latency_ms — model-labelled families are summed across
// models.
func debugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	writeVar := func(key, value string) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", key, value)
	}
	hicsd, _ := json.Marshal(map[string]any{
		"requests":              mRequests.Total(),
		"errors":                mErrors.Value(),
		"active_streams":        int64(mActiveStreams.Total()),
		"refits":                mRefits.Total(),
		"last_score_latency_ms": mLastScoreLat.Value() * 1e3,
	})
	writeVar("hicsd", string(hicsd))
	expvar.Do(func(kv expvar.KeyValue) {
		writeVar(kv.Key, kv.Value.String())
	})
	fmt.Fprintf(w, "\n}\n")
}

// DrainingStreamError is the terminal NDJSON error record text a
// draining server ends open stream sessions with. The shard front
// matches it to attach routing advice for the client.
const DrainingStreamError = "server draining: stream closed after the rows already scored; reconnect to continue"

// streamByteLimit resolves a /stream session's cumulative input cap:
// the configured StreamMaxBytes (default 64 MiB), lowered — never
// raised — by the ?max_bytes query parameter.
func (s *server) streamByteLimit(r *http.Request) (int64, error) {
	limit := s.cfg.StreamMaxBytes
	if limit <= 0 {
		limit = maxRequestBytes
	}
	if q := r.URL.Query().Get("max_bytes"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("query parameter max_bytes: %q is not a positive integer", q)
		}
		if v < limit {
			limit = v
		}
	}
	return limit, nil
}

// streamOptions resolves a /stream request's detector options: the
// server-configured defaults overridden by the window / refit_every /
// async query parameters. A zero window derives from the routed model's
// training-set size — per model, not per server.
func (s *server) streamOptions(r *http.Request, m *hics.Model, workers int) (hics.StreamOptions, error) {
	sopts := hics.StreamOptions{
		Window:     s.cfg.StreamWindow,
		RefitEvery: s.cfg.StreamRefitEvery,
		Async:      s.cfg.StreamAsync,
		Workers:    workers,
	}
	if sopts.Window == 0 {
		sopts.Window = m.N()
	}
	q := r.URL.Query()
	if s := q.Get("window"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			return sopts, fmt.Errorf("query parameter window: %q is not an integer", s)
		}
		sopts.Window = v
	}
	if s := q.Get("refit_every"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			return sopts, fmt.Errorf("query parameter refit_every: %q is not an integer", s)
		}
		sopts.RefitEvery = v
	}
	if s := q.Get("async"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return sopts, fmt.Errorf("query parameter async: %q is not a boolean", s)
		}
		sopts.Async = v
	}
	return sopts, nil
}

// handleStream is POST /stream: NDJSON in (one JSON array of numbers per
// line), NDJSON out (one StreamRecord per scored row, flushed per line).
// The stream wraps the routed model warm — rows score immediately — and
// optionally refits over its sliding window per the resolved options.
// The session holds its model handle until it closes, so a hot swap or
// unload never tears a running stream: it keeps scoring against the
// model snapshot it opened with. The request context governs
// everything: a client disconnect or an exceeded RequestTimeout cancels
// in-flight scoring and refits.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining; retry against another replica"})
		return
	}
	labelRoutedModel(r)
	maxBytes, err := s.streamByteLimit(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	h, ok := s.acquire(w, r, fleet.UseStream)
	if !ok {
		return
	}
	defer h.Release()
	m := h.Model()
	sopts, err := s.streamOptions(r, m, h.Workers(s.cfg.RankWorkers))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// The detector inherits the request-scoped logger, so refit events —
	// including ones from an async refit goroutine — carry this session's
	// request ID.
	log := ctxLogger(r.Context())
	sopts.Logger = log
	st, err := m.NewStream(sopts)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	defer st.Close()
	ctx, cancel := s.cfg.requestContext(r)
	defer cancel()
	model := h.Name()
	mActiveStreams.With(model).Add(1)
	defer mActiveStreams.With(model).Add(-1)
	defer func() {
		log.Debug("stream session closed", "model", model, "rows", st.Seen(), "refits", st.Refits(),
			"window", sopts.Window, "refit_every", sopts.RefitEvery, "async", sopts.Async)
	}()

	// From here on the response is a 200 NDJSON stream; later failures
	// are terminal {"error": ...} records, not status codes. Scored
	// records interleave with body reads, so the connection must be
	// full-duplex — without this the server closes the request body on
	// the first response write.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("streaming unsupported: %v", err)})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Register for drain kicks: Drain sets our read deadline, so the
	// blocked body read below returns and the terminal record goes out.
	s.addSession(rc)
	defer s.removeSession(rc)
	// The session loop is allocation-free per row: the parser reuses its
	// line and row buffers, PushAppend scores into the reused results
	// slice, and records are encoded append-style into one reused output
	// buffer written (and flushed) once per arrival.
	sp := newStreamParser(http.MaxBytesReader(w, r.Body, maxBytes))
	var (
		results []hics.StreamResult
		encBuf  []byte
	)
	refitsSeen := 0
	for {
		if err := ctx.Err(); err != nil {
			writeStreamError(w, rc, err)
			return
		}
		row, err := sp.next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if s.draining.Load() && errors.Is(err, os.ErrDeadlineExceeded) {
				// Drain kicked the body read. Everything scored so far has
				// been flushed; the terminal record tells the client (or the
				// front proxying it) to reconnect elsewhere.
				writeStreamError(w, rc, errors.New(DrainingStreamError))
				return
			}
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeStreamError(w, rc, fmt.Errorf("stream input exceeded the %d-byte session limit; reconnect to continue", tooLarge.Limit))
				return
			}
			writeStreamError(w, rc, fmt.Errorf("invalid row: %v (want one JSON array of %d numbers per line)", err, m.D()))
			return
		}
		start := time.Now()
		results, err = st.PushAppend(ctx, row, results[:0])
		if err != nil {
			writeStreamError(w, rc, err)
			return
		}
		mLastScoreLat.Set(time.Since(start).Seconds())
		if n := st.Refits(); n > refitsSeen {
			mRefits.With(model).Add(int64(n - refitsSeen))
			refitsSeen = n
		}
		encBuf = encBuf[:0]
		for _, res := range results {
			encBuf, err = appendStreamRecord(encBuf, StreamRecord{Index: res.Index, Score: res.Score, Refits: res.Refits})
			if err != nil {
				// A non-representable score (LOF can be +Inf on degenerate
				// windows) terminates the stream with an error record, after
				// the records already encoded this arrival.
				mErrors.Add(1)
				msg, _ := json.Marshal(errorResponse{Error: fmt.Sprintf("row %d: score not representable in JSON: %v", res.Index, err)})
				encBuf = append(encBuf, msg...)
				encBuf = append(encBuf, '\n')
				_, _ = w.Write(encBuf)
				return
			}
		}
		if len(encBuf) > 0 {
			if _, err := w.Write(encBuf); err != nil {
				return
			}
			_ = rc.Flush()
		}
	}
	// Input exhausted: wait out any background refit so its failure (or
	// completion) is reflected before the stream closes.
	if err := st.Drain(ctx); err != nil {
		writeStreamError(w, rc, err)
		return
	}
	if n := st.Refits(); n > refitsSeen {
		mRefits.With(model).Add(int64(n - refitsSeen))
	}
}

// writeStreamError terminates an NDJSON stream with an {"error": ...}
// record. A client disconnect gets nothing — nobody is listening.
func writeStreamError(w io.Writer, rc *http.ResponseController, err error) {
	if errors.Is(err, context.Canceled) {
		return
	}
	mErrors.Add(1)
	msg := err.Error()
	if errors.Is(err, context.DeadlineExceeded) {
		msg = "stream exceeded the server's compute budget"
	}
	data, _ := json.Marshal(errorResponse{Error: msg})
	_, _ = w.Write(append(data, '\n'))
	_ = rc.Flush()
}

// requestContext derives a compute context for one request: the client's
// context (cancelled when the connection drops), bounded by the
// configured server-side budget.
func (cfg Config) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// writeComputeError maps a scoring/ranking failure onto the response: an
// exceeded server budget is 504, a client disconnect gets no response
// (nobody is listening), anything else is the client's fault.
func writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "request exceeded the server's compute budget"})
	case errors.Is(err, context.Canceled):
		// The client went away; the work was cancelled on its behalf.
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		// LOF scores of degenerate (duplicate-heavy) data can be +Inf,
		// which JSON cannot carry; report instead of sending a truncated
		// 200 body.
		status = http.StatusUnprocessableEntity
		data, _ = json.Marshal(errorResponse{Error: fmt.Sprintf("response not representable in JSON: %v", err)})
	}
	if status >= 400 {
		mErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}
