// Package serve implements the HTTP scoring interface behind the
// cmd/hicsd server: a trained hics.Model exposed as a JSON endpoint. It
// lives outside the command so the examples (and tests) can embed the
// exact handler the daemon serves.
//
// Endpoints:
//
//	GET  /healthz  liveness plus model shape (objects, attributes,
//	               subspaces)
//	GET  /info     the served model's method pair (searcher, scorer),
//	               subspace count, and persistence format version
//	POST /score    score one point ({"point": [...]}) or a batch
//	               ({"points": [[...], ...]}) against the model
//
// The model is immutable after load and Model.Score is safe for
// concurrent use, so the handler needs no locking.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"hics"
)

// ScoreRequest is the /score request body. Exactly one of Point and
// Points must be set.
type ScoreRequest struct {
	// Point is a single observation, one value per model attribute.
	Point []float64 `json:"point,omitempty"`
	// Points is a batch of observations.
	Points [][]float64 `json:"points,omitempty"`
}

// ScoreResponse is the /score response body; the populated field mirrors
// the request shape ("score" for a point request, "scores" for a batch —
// present even when the batch is empty).
type ScoreResponse struct {
	Score  *float64  `json:"score,omitempty"`
	Scores []float64 `json:"scores,omitempty"`
}

// Single-shape encode types: a batch response must carry "scores" even
// for an empty batch (omitempty would drop it, leaving a bare {} that is
// indistinguishable from a malformed response).
type pointResponse struct {
	Score float64 `json:"score"`
}

type batchResponse struct {
	Scores []float64 `json:"scores"`
}

// Health is the /healthz response body.
type Health struct {
	Status     string `json:"status"`
	Objects    int    `json:"objects"`
	Attributes int    `json:"attributes"`
	Subspaces  int    `json:"subspaces"`
	Version    string `json:"version"`
}

// Info is the /info response body: the method pair the served model was
// fitted with and the shape of its frozen state.
type Info struct {
	// Search and Scorer are the registry names of the model's method pair.
	Search string `json:"search"`
	Scorer string `json:"scorer"`
	// Subspaces is the number of frozen projections the model scores in.
	Subspaces int `json:"subspaces"`
	// FormatVersion is the persistence format the model was loaded from.
	FormatVersion int    `json:"format_version"`
	Objects       int    `json:"objects"`
	Attributes    int    `json:"attributes"`
	Version       string `json:"version"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a /score body; a million-point batch is a
// mistake, not a query.
const maxRequestBytes = 64 << 20

// NewHandler returns the hicsd HTTP handler serving the given model.
func NewHandler(m *hics.Model) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Health{
			Status:     "ok",
			Objects:    m.N(),
			Attributes: m.D(),
			Subspaces:  len(m.Subspaces()),
			Version:    hics.Version,
		})
	})
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
			return
		}
		writeJSON(w, http.StatusOK, Info{
			Search:        m.SearchMethod(),
			Scorer:        m.ScorerMethod(),
			Subspaces:     len(m.Subspaces()),
			FormatVersion: m.FormatVersion(),
			Objects:       m.N(),
			Attributes:    m.D(),
			Version:       hics.Version,
		})
	})
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
			return
		}
		var req ScoreRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid request: %v", err)})
			return
		}
		switch {
		case req.Point != nil && req.Points != nil:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: `set exactly one of "point" and "points"`})
		case req.Point != nil:
			s, err := m.Score(req.Point)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, pointResponse{Score: s})
		case req.Points != nil:
			scores, err := m.ScoreBatch(req.Points)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			if scores == nil {
				scores = []float64{}
			}
			writeJSON(w, http.StatusOK, batchResponse{Scores: scores})
		default:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: `set "point" or "points"`})
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		// LOF scores of degenerate (duplicate-heavy) data can be +Inf,
		// which JSON cannot carry; report instead of sending a truncated
		// 200 body.
		status = http.StatusUnprocessableEntity
		data, _ = json.Marshal(errorResponse{Error: fmt.Sprintf("response not representable in JSON: %v", err)})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}
