package serve

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"hics/internal/rng"
)

// scrapeMetrics GETs /metrics and returns every sample keyed by its full
// series name (labels included), after asserting the exposition format
// is well-formed line by line.
func scrapeMetrics(t *testing.T, srv *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want the 0.0.4 text format", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	sampleLine := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (\S+)$`)
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
		out[m[1]] = v
	}
	return out
}

// TestMetricsEndpoint drives /score and a refitting /stream, then
// scrapes /metrics and asserts the expected series exist with sane
// values — the Prometheus surface the whole observability layer hangs
// off.
func TestMetricsEndpoint(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Minute}))
	defer srv.Close()

	before := scrapeMetrics(t, srv)

	resp, _, _ := postScore(t, srv, `{"point": [0.5, 0.5, 0.5, 0.5]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score status %d", resp.StatusCode)
	}
	r := rng.New(11)
	rows := make([][]float64, 45)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	streamResp, records, _ := postStream(t, srv, "/stream?window=30&refit_every=15", ndjsonRows(t, rows))
	if streamResp.StatusCode != http.StatusOK || len(records) != len(rows) {
		t.Fatalf("stream status %d, %d records", streamResp.StatusCode, len(records))
	}

	after := scrapeMetrics(t, srv)
	delta := func(series string) float64 { return after[series] - before[series] }

	// Per-endpoint request counters and latency histograms moved for both
	// driven endpoints.
	if d := delta(`hicsd_http_requests_total{endpoint="score",code="200",model="default"}`); d < 1 {
		t.Errorf("score request counter moved by %v, want >= 1", d)
	}
	if d := delta(`hicsd_http_requests_total{endpoint="stream",code="200",model="default"}`); d < 1 {
		t.Errorf("stream request counter moved by %v, want >= 1", d)
	}
	for _, endpoint := range []string{"score", "stream"} {
		if d := delta(`hicsd_http_request_duration_seconds_count{endpoint="` + endpoint + `"}`); d < 1 {
			t.Errorf("%s duration histogram count moved by %v, want >= 1", endpoint, d)
		}
		if d := delta(`hicsd_http_request_duration_seconds_sum{endpoint="` + endpoint + `"}`); d <= 0 {
			t.Errorf("%s duration histogram sum moved by %v, want > 0", endpoint, d)
		}
		bucket := `hicsd_http_request_duration_seconds_bucket{endpoint="` + endpoint + `",le="+Inf"}`
		if d := delta(bucket); d < 1 {
			t.Errorf("%s +Inf bucket moved by %v, want >= 1", endpoint, d)
		}
	}

	// Stream/refit instrumentation: the serve-side refit counter and the
	// detector-level series (45 rows, window 30, refit every 15 => 2
	// refits past warmup).
	if d := delta(`hicsd_stream_refits_total{model="default"}`); d < 1 {
		t.Errorf("serve refit counter moved by %v, want >= 1", d)
	}
	if d := delta(`hics_stream_refits_total{mode="sync"}`); d < 1 {
		t.Errorf("sync refit counter moved by %v, want >= 1", d)
	}
	if d := delta("hics_stream_refit_duration_seconds_count"); d < 1 {
		t.Errorf("refit duration count moved by %v, want >= 1", d)
	}
	if d := delta("hics_stream_rows_total"); d < float64(len(rows)) {
		t.Errorf("stream rows moved by %v, want >= %d", d, len(rows))
	}
	if got := after[`hicsd_streams_active{model="default"}`]; got != 0 {
		t.Errorf("hicsd_streams_active = %v with no open session, want 0", got)
	}

	// The worker pool saw work (scoring fans out through parallel.ForEach).
	if d := delta("hics_parallel_foreach_total"); d < 1 {
		t.Errorf("parallel fan-out counter moved by %v, want >= 1", d)
	}

	// Model metadata gauges reflect the served model, per fleet name.
	if got, want := after[`hicsd_model_subspaces{model="default"}`], float64(len(m.Subspaces())); got != want {
		t.Errorf("hicsd_model_subspaces = %v, want %v", got, want)
	}
	if got, want := after[`hicsd_model_format_version{model="default"}`], float64(m.FormatVersion()); got != want {
		t.Errorf("hicsd_model_format_version = %v, want %v", got, want)
	}

	// Latency gauge carries the last scoring call in seconds: positive,
	// and well under the minute budget.
	if lat := after["hicsd_last_score_latency_seconds"]; lat <= 0 || lat > 60 {
		t.Errorf("hicsd_last_score_latency_seconds = %v, want (0, 60]", lat)
	}
}

// TestRequestIDThreading: every log record of a request — the middleware
// completion line and the detector's refit events from inside the stream
// session — carries the same generated request ID.
func TestRequestIDThreading(t *testing.T) {
	m := fitModel(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Minute, Logger: logger}))
	defer srv.Close()

	r := rng.New(12)
	rows := make([][]float64, 45)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	resp, records, _ := postStream(t, srv, "/stream?window=30&refit_every=15", ndjsonRows(t, rows))
	if resp.StatusCode != http.StatusOK || len(records) != len(rows) {
		t.Fatalf("stream status %d, %d records", resp.StatusCode, len(records))
	}

	logs := buf.String()
	idPat := regexp.MustCompile(`request_id=([0-9a-f]{16})`)
	ids := map[string]bool{}
	for _, m := range idPat.FindAllStringSubmatch(logs, -1) {
		ids[m[1]] = true
	}
	if len(ids) != 1 {
		t.Fatalf("want exactly one request ID across all records, got %d in:\n%s", len(ids), logs)
	}
	for _, want := range []string{"stream refit complete", "stream session closed", "msg=request"} {
		if !strings.Contains(logs, want) {
			t.Errorf("logs missing %q:\n%s", want, logs)
		}
	}
}

// TestRequestIDFromContext: the middleware seeds RequestID for handlers.
func TestRequestIDFromContext(t *testing.T) {
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("RequestID(background) = %q, want empty", got)
	}
	id1, id2 := newRequestID(), newRequestID()
	if id1 == id2 {
		t.Errorf("request IDs collide: %q", id1)
	}
	if len(id1) != 16 {
		t.Errorf("request ID %q is not 16 hex digits", id1)
	}
}
