package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hics"
	"hics/internal/rng"
)

func fitModel(t *testing.T) *hics.Model {
	t.Helper()
	r := rng.New(1)
	rows := make([][]float64, 200)
	for i := range rows {
		c := 0.3
		if r.Float64() < 0.5 {
			c = 0.7
		}
		rows[i] = []float64{r.NormalScaled(c, 0.04), r.NormalScaled(c, 0.04), r.Float64(), r.Float64()}
	}
	m, err := hics.Fit(rows, hics.Options{M: 10, Seed: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func postScore(t *testing.T, srv *httptest.Server, body string) (*http.Response, ScoreResponse, string) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/score", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var sr ScoreResponse
	_ = json.Unmarshal(buf.Bytes(), &sr)
	return resp, sr, buf.String()
}

func TestInfo(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("info status %d", resp.StatusCode)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	want := Info{
		Model:         "default",
		Search:        "hics",
		Scorer:        "lof",
		Subspaces:     len(m.Subspaces()),
		FormatVersion: 2,
		Objects:       m.N(),
		Attributes:    m.D(),
		Version:       hics.Version,
		Server:        ServerVersion,
	}
	if info != want {
		t.Errorf("info = %+v, want %+v", info, want)
	}

	// Non-GET is rejected.
	postResp, err := http.Post(srv.URL+"/info", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /info status %d, want %d", postResp.StatusCode, http.StatusMethodNotAllowed)
	}
}

func TestHealthz(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Objects != m.N() || h.Attributes != m.D() || h.Subspaces != len(m.Subspaces()) {
		t.Errorf("healthz = %+v", h)
	}
}

func TestScoreSinglePoint(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, sr, body := postScore(t, srv, `{"point": [0.3, 0.7, 0.5, 0.5]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if sr.Score == nil {
		t.Fatalf("no score in %s", body)
	}
	want, err := m.Score([]float64{0.3, 0.7, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if *sr.Score != want {
		t.Errorf("served score %v, model score %v", *sr.Score, want)
	}
}

func TestScoreBatch(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, sr, body := postScore(t, srv, `{"points": [[0.3, 0.7, 0.5, 0.5], [0.7, 0.7, 0.5, 0.5]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if len(sr.Scores) != 2 {
		t.Fatalf("scores = %v", sr.Scores)
	}
	want, err := m.ScoreBatch([][]float64{{0.3, 0.7, 0.5, 0.5}, {0.7, 0.7, 0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if sr.Scores[i] != want[i] {
			t.Errorf("served scores[%d] = %v, model %v", i, sr.Scores[i], want[i])
		}
	}
}

func TestScoreEmptyBatch(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, _, body := postScore(t, srv, `{"points": []}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// The scores field must be present (and empty), not dropped.
	if strings.TrimSpace(body) != `{"scores":[]}` {
		t.Errorf("empty batch body = %s, want {\"scores\":[]}", body)
	}
}

func TestScoreBadRequests(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cases := []string{
		``,                                   // empty body
		`{`,                                  // invalid JSON
		`{}`,                                 // neither point nor points
		`{"point": [1, 2]}`,                  // wrong dimensionality
		`{"points": [[1, 2, 3, 4], [1]]}`,    // ragged batch
		`{"point": [1,2,3,4], "points": []}`, // both set
		`{"pointz": [1, 2, 3, 4]}`,           // unknown field
	}
	for _, body := range cases {
		resp, _, got := postScore(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, got)
		}
		if !strings.Contains(got, "error") {
			t.Errorf("body %q: no error field in %s", body, got)
		}
	}
	// GET on /score is rejected.
	resp, err := http.Get(srv.URL + "/score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /score status %d, want 405", resp.StatusCode)
	}
}

// TestScoreConcurrent exercises the handler under parallel load; the race
// detector guards the model's scratch pooling.
func TestScoreConcurrent(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	want, err := m.Score([]float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Post(srv.URL+"/score", "application/json",
					strings.NewReader(`{"point": [0.5, 0.5, 0.5, 0.5]}`))
				if err != nil {
					t.Errorf("concurrent score: %v", err)
					return
				}
				var sr ScoreResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || sr.Score == nil || *sr.Score != want {
					t.Errorf("concurrent score: status %d err %v, want score %v", resp.StatusCode, err, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// rankRows builds the rows of a /rank request body: a correlated pair in
// attrs 0,1 plus a noise attr, with an anti-diagonal outlier at row 0.
func rankRows(n int) [][]float64 {
	r := rng.New(2)
	rows := make([][]float64, n)
	for i := range rows {
		c := 0.3
		if r.Float64() < 0.5 {
			c = 0.7
		}
		rows[i] = []float64{r.NormalScaled(c, 0.04), r.NormalScaled(c, 0.04), r.Float64()}
	}
	rows[0][0] = 0.3
	rows[0][1] = 0.7
	return rows
}

func postRank(t *testing.T, srv *httptest.Server, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.String()
}

// TestRankEndpoint checks POST /rank runs a full ranking and returns
// exactly the hics.Rank result for the same rows and options.
func TestRankEndpoint(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Minute}))
	defer srv.Close()

	rows := rankRows(120)
	req := RankRequest{Rows: rows, Options: RankOptions{M: 10, Seed: 1, TopK: 5}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, got := postRank(t, srv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	var rr RankResponse
	if err := json.Unmarshal([]byte(got), &rr); err != nil {
		t.Fatal(err)
	}
	want, err := hics.Rank(rows, hics.Options{M: 10, Seed: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Scores) != len(want.Scores) {
		t.Fatalf("scores = %d, want %d", len(rr.Scores), len(want.Scores))
	}
	for i := range want.Scores {
		if rr.Scores[i] != want.Scores[i] {
			t.Errorf("served scores[%d] = %v, library %v", i, rr.Scores[i], want.Scores[i])
		}
	}
	if len(rr.Subspaces) != len(want.Subspaces) {
		t.Fatalf("subspaces = %d, want %d", len(rr.Subspaces), len(want.Subspaces))
	}
	for i := range want.Subspaces {
		if rr.Subspaces[i].Contrast != want.Subspaces[i].Contrast {
			t.Errorf("subspace %d contrast %v, want %v", i, rr.Subspaces[i].Contrast, want.Subspaces[i].Contrast)
		}
	}
}

// TestRankEndpointDeadline checks a request over the configured compute
// budget is cut off with 504 instead of running to completion.
func TestRankEndpointDeadline(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Millisecond}))
	defer srv.Close()

	req := RankRequest{Rows: rankRows(400), Options: RankOptions{M: 5000, Seed: 1}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, got := postRank(t, srv, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, got)
	}
	if !strings.Contains(got, "budget") {
		t.Errorf("timeout body %q does not mention the budget", got)
	}
}

// TestRankEndpointBadRequests checks validation surfaces as 400s.
func TestRankEndpointBadRequests(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m}))
	defer srv.Close()
	cases := []string{
		``,                        // empty body
		`{`,                       // invalid JSON
		`{}`,                      // no rows
		`{"rows": []}`,            // empty rows
		`{"rowz": [[1, 2]]}`,      // unknown field
		`{"rows": [[1, 2], [3]]}`, // ragged rows
		`{"rows": [[1, 2], [3, 4]], "options": {"search": "bogus"}}`, // unknown method
		`{"rows": [[1, 2], [3, 4]], "options": {"m": -1}}`,           // invalid M
	}
	for _, body := range cases {
		resp, got := postRank(t, srv, []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, got)
		}
	}
	// GET on /rank is rejected.
	resp, err := http.Get(srv.URL + "/rank")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /rank status %d, want 405", resp.StatusCode)
	}
}

// TestScoreBatchDeadline checks the batch scoring path shares the
// request budget.
func TestScoreBatchDeadline(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Nanosecond}))
	defer srv.Close()
	r := rng.New(3)
	points := make([][]float64, 5000)
	for i := range points {
		points[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	body, err := json.Marshal(ScoreRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", resp.StatusCode)
	}
}
