package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hics/internal/rng"
)

// ndjsonRows encodes rows as one JSON array per line.
func ndjsonRows(t *testing.T, rows [][]float64) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// postStream posts an NDJSON body to /stream and returns the status and
// the decoded response lines (records and raw lines).
func postStream(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []StreamRecord, []string) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var (
		records []StreamRecord
		lines   []string
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		lines = append(lines, line)
		var rec StreamRecord
		if err := json.Unmarshal([]byte(line), &rec); err == nil && !strings.Contains(line, `"error"`) {
			records = append(records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, records, lines
}

// TestStreamEndpointMatchesScoreBatch: with the default options (window =
// training size, never refit) the streamed scores are exactly
// Model.ScoreBatch of the posted rows, one record per line in order.
func TestStreamEndpointMatchesScoreBatch(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Minute}))
	defer srv.Close()

	r := rng.New(7)
	rows := make([][]float64, 25)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	resp, records, lines := postStream(t, srv, "/stream", ndjsonRows(t, rows))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, lines)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if len(records) != len(rows) {
		t.Fatalf("streamed %d records for %d rows: %v", len(records), len(rows), lines)
	}
	want, err := m.ScoreBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range records {
		if rec.Index != i || rec.Refits != 0 {
			t.Errorf("record %d = %+v, want index %d refits 0", i, rec, i)
		}
		if rec.Score != want[i] {
			t.Errorf("streamed score %d = %v, ScoreBatch %v", i, rec.Score, want[i])
		}
	}
}

// TestStreamEndpointRefits: a small window plus a refit cadence makes the
// detector swap models mid-stream, visible in the refits field.
func TestStreamEndpointRefits(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Minute}))
	defer srv.Close()

	r := rng.New(8)
	rows := make([][]float64, 60)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	resp, records, lines := postStream(t, srv, "/stream?window=40&refit_every=20", ndjsonRows(t, rows))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, lines)
	}
	if len(records) != len(rows) {
		t.Fatalf("streamed %d records for %d rows: %v", len(records), len(rows), lines)
	}
	if last := records[len(records)-1]; last.Refits == 0 {
		t.Errorf("stream never refitted: %+v", last)
	}
}

// TestStreamEndpointErrors: option and row validation surface as a 400
// (before streaming) or a terminal error record (mid-stream).
func TestStreamEndpointErrors(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m}))
	defer srv.Close()

	// GET is rejected.
	resp, err := http.Get(srv.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /stream status %d, want 405", resp.StatusCode)
	}

	// Bad query parameters and invalid options are 400s.
	for _, path := range []string{
		"/stream?window=abc",
		"/stream?refit_every=x",
		"/stream?async=maybe",
		"/stream?window=5",           // <= MinPts
		"/stream?refit_every=-1",     // negative cadence
		"/stream?async=true",         // async without refits
		"/stream?window=-20&async=0", // negative window
	} {
		resp, _, lines := postStream(t, srv, path, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", path, resp.StatusCode, lines)
		}
	}

	// A malformed row mid-stream: the rows before it are scored, then a
	// terminal error record ends the stream.
	body := "[0.5,0.5,0.5,0.5]\nnot json\n[0.5,0.5,0.5,0.5]\n"
	resp2, records, lines := postStream(t, srv, "/stream", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("mid-stream error status %d", resp2.StatusCode)
	}
	if len(records) != 1 {
		t.Errorf("scored %d rows before the bad one, want 1: %v", len(records), lines)
	}
	if len(lines) != 2 || !strings.Contains(lines[len(lines)-1], `"error"`) {
		t.Errorf("stream lines = %v, want one record then one error", lines)
	}

	// A wrong-width row is a terminal error record naming the problem.
	_, records, lines = postStream(t, srv, "/stream", "[0.5,0.5]\n")
	if len(records) != 0 || len(lines) != 1 || !strings.Contains(lines[0], `"error"`) {
		t.Errorf("short row: records %v lines %v, want a single error record", records, lines)
	}

	// Non-finite input cannot even be encoded as JSON; the decode failure
	// is a terminal error record, not a silent NaN score.
	_, records, lines = postStream(t, srv, "/stream", "[1e999,0.5,0.5,0.5]\n")
	if len(records) != 0 || len(lines) == 0 || !strings.Contains(lines[0], `"error"`) {
		t.Errorf("1e999 row: records %v lines %v, want a single error record", records, lines)
	}
}

// TestStreamEndpointFlushesPerRow verifies the NDJSON contract end to
// end: records arrive incrementally while the request body is still
// open, so a live feed sees each score as soon as it is computed.
func TestStreamEndpointFlushesPerRow(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m}))
	defer srv.Close()

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()

	if _, err := io.WriteString(pw, "[0.5,0.5,0.5,0.5]\n"); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("no response while the body is open: records are not flushed per row")
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	linec := make(chan string, 4)
	go func() {
		for sc.Scan() {
			linec <- sc.Text()
		}
		close(linec)
	}()
	readLine := func() string {
		select {
		case l := <-linec:
			return l
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for a streamed record")
			return ""
		}
	}
	var first StreamRecord
	if err := json.Unmarshal([]byte(readLine()), &first); err != nil || first.Index != 0 {
		t.Fatalf("first streamed line: %v (err %v)", first, err)
	}
	// Second row only becomes available after the first record arrived —
	// proving the flush, not buffering, delivered it.
	if _, err := io.WriteString(pw, "[0.1,0.9,0.5,0.5]\n"); err != nil {
		t.Fatal(err)
	}
	var second StreamRecord
	if err := json.Unmarshal([]byte(readLine()), &second); err != nil || second.Index != 1 {
		t.Fatalf("second streamed line: %v (err %v)", second, err)
	}
	pw.Close()
	if _, ok := <-linec; ok {
		t.Error("unexpected extra line after EOF")
	}
}

// TestStreamEndpointClientDisconnect: cancelling the request mid-stream
// tears the session down — the active-streams gauge returns to its
// baseline instead of leaking a detector.
func TestStreamEndpointClientDisconnect(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m}))
	defer srv.Close()

	baseline := mActiveStreams.Total()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	if _, err := io.WriteString(pw, "[0.5,0.5,0.5,0.5]\n"); err != nil {
		t.Fatal(err)
	}
	// The first streamed record proves the session is open and mid-body.
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("stream session never opened")
	}
	line := make([]byte, 256)
	if _, err := resp.Body.Read(line); err != nil {
		t.Fatal(err)
	}
	// Drop the client mid-stream: the handler's request context fires and
	// the session tears down, returning the gauge to its baseline.
	cancel()
	pw.CloseWithError(context.Canceled)
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for mActiveStreams.Total() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := mActiveStreams.Total(); n > baseline {
		t.Errorf("active_streams = %v after disconnect, want %v", n, baseline)
	}
}

// TestMetricsCounters: the registry instrumentation moves with traffic
// and /debug/vars serves the legacy view consistently with it.
func TestMetricsCounters(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Minute}))
	defer srv.Close()

	requests0 := mRequests.Total()
	errors0 := mErrors.Value()
	refits0 := mRefits.Total()

	// One good score, one bad request, one refitting stream.
	resp, _, _ := postScore(t, srv, `{"point": [0.5, 0.5, 0.5, 0.5]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score status %d", resp.StatusCode)
	}
	resp, _, _ = postScore(t, srv, `{`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad score status %d", resp.StatusCode)
	}
	r := rng.New(9)
	rows := make([][]float64, 45)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	streamResp, records, _ := postStream(t, srv, "/stream?window=30&refit_every=15", ndjsonRows(t, rows))
	if streamResp.StatusCode != http.StatusOK || len(records) != len(rows) {
		t.Fatalf("stream status %d, %d records", streamResp.StatusCode, len(records))
	}

	if d := mRequests.Total() - requests0; d < 3 {
		t.Errorf("requests moved by %d, want >= 3", d)
	}
	if d := mErrors.Value() - errors0; d < 1 {
		t.Errorf("errors moved by %d, want >= 1", d)
	}
	if d := mRefits.Total() - refits0; d < 1 {
		t.Errorf("refits moved by %d, want >= 1", d)
	}
	if mLastScoreLat.Value() < 0 {
		t.Errorf("last_score_latency_seconds = %v", mLastScoreLat.Value())
	}
	// Per-endpoint series moved too: a 200 /score, a 400 /score, a 200
	// /stream.
	if n := mRequests.With("score", "200", "default").Value(); n < 1 {
		t.Errorf(`requests{score,200} = %d, want >= 1`, n)
	}
	if n := mRequests.With("score", "400", "default").Value(); n < 1 {
		t.Errorf(`requests{score,400} = %d, want >= 1`, n)
	}
	if n := mRequests.With("stream", "200", "default").Value(); n < 1 {
		t.Errorf(`requests{stream,200} = %d, want >= 1`, n)
	}

	// /debug/vars is a thin view over the same registry: the legacy hicsd
	// map keys exist and agree with the registry values read around the
	// request (no other traffic hits the server between the two reads).
	wantReq, wantErr, wantRefits := mRequests.Total(), mErrors.Value(), mRefits.Total()
	dv, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Body.Close()
	if dv.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", dv.StatusCode)
	}
	var vars struct {
		Hicsd map[string]json.Number `json:"hicsd"`
		// The standard expvar pages survive the compatibility rewrite.
		Cmdline  json.RawMessage `json:"cmdline"`
		Memstats json.RawMessage `json:"memstats"`
	}
	if err := json.NewDecoder(dv.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests", "errors", "active_streams", "refits", "last_score_latency_ms"} {
		if _, ok := vars.Hicsd[key]; !ok {
			t.Errorf("/debug/vars hicsd map missing %q", key)
		}
	}
	if vars.Cmdline == nil || vars.Memstats == nil {
		t.Error("/debug/vars lost the standard expvar pages (cmdline, memstats)")
	}
	got := func(key string) int64 {
		n, err := vars.Hicsd[key].Int64()
		if err != nil {
			t.Fatalf("hicsd.%s: %v", key, err)
		}
		return n
	}
	if n := got("requests"); n != wantReq {
		t.Errorf("/debug/vars requests = %d, registry says %d", n, wantReq)
	}
	if n := got("errors"); n != wantErr {
		t.Errorf("/debug/vars errors = %d, registry says %d", n, wantErr)
	}
	if n := got("refits"); n != wantRefits {
		t.Errorf("/debug/vars refits = %d, registry says %d", n, wantRefits)
	}
	if ms, _ := vars.Hicsd["last_score_latency_ms"].Float64(); ms < 0 || ms != mLastScoreLat.Value()*1e3 {
		t.Errorf("/debug/vars last_score_latency_ms = %v, registry gauge (s) = %v", ms, mLastScoreLat.Value())
	}
}

// TestScoreRejectsNonFinite: the JSON boundary cannot carry NaN/Inf, so
// the handlers reject such payloads as 400s instead of scoring them —
// the regression contract for the /score and /rank entry points.
func TestScoreRejectsNonFinite(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m}))
	defer srv.Close()
	for _, body := range []string{
		`{"point": [1e999, 0.5, 0.5, 0.5]}`,
		`{"points": [[0.5, 0.5, 0.5, -1e999]]}`,
	} {
		resp, _, got := postScore(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, got)
		}
	}
	resp, got := postRank(t, srv, []byte(`{"rows": [[1e999, 2], [3, 4]]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/rank with 1e999: status %d (%s), want 400", resp.StatusCode, got)
	}
}

// TestStreamEndpointDefaultsFromConfig: the server-side stream defaults
// apply when the client passes no query parameters.
func TestStreamEndpointDefaultsFromConfig(t *testing.T) {
	m := fitModel(t)
	srv := httptest.NewServer(New(Config{Model: m, StreamWindow: 30, StreamRefitEvery: 15}))
	defer srv.Close()
	r := rng.New(10)
	rows := make([][]float64, 45)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	resp, records, lines := postStream(t, srv, "/stream", ndjsonRows(t, rows))
	if resp.StatusCode != http.StatusOK || len(records) != len(rows) {
		t.Fatalf("status %d, %d records (%v)", resp.StatusCode, len(records), lines)
	}
	if last := records[len(records)-1]; last.Refits == 0 {
		t.Errorf("configured refit cadence never fired: %+v", last)
	}
	// An invalid configured default still fails fast per request.
	bad := httptest.NewServer(New(Config{Model: m, StreamWindow: 5}))
	defer bad.Close()
	resp2, _, _ := postStream(t, bad, "/stream", "")
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad default window: status %d, want 400", resp2.StatusCode)
	}
}
