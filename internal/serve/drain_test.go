package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestStreamDrainMidSession: Drain on a server with an open /stream
// session ends the session with the terminal draining error record —
// after, never instead of, the records already scored — turns /healthz
// into a 503 "draining", and refuses new sessions with Retry-After.
func TestStreamDrainMidSession(t *testing.T) {
	m := fitModel(t)
	srv := NewServer(Config{Model: m, RequestTimeout: time.Minute})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/stream?window=60", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()

	const scored = 3
	for i := 0; i < scored; i++ {
		if _, err := io.WriteString(pw, "[0.5,0.5,0.5,0.5]\n"); err != nil {
			t.Fatal(err)
		}
	}
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("no streaming response")
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	linec := make(chan string, 8)
	go func() {
		for sc.Scan() {
			linec <- sc.Text()
		}
		close(linec)
	}()
	readLine := func() (string, bool) {
		select {
		case l, ok := <-linec:
			return l, ok
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for a streamed line")
			return "", false
		}
	}
	for i := 0; i < scored; i++ {
		line, ok := readLine()
		if !ok {
			t.Fatalf("stream closed after %d records, want %d", i, scored)
		}
		var rec StreamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.Index != i {
			t.Fatalf("record %d: %q (err %v)", i, line, err)
		}
	}

	// Drain with the session blocked mid-read: the terminal record must
	// arrive without the client writing anything further.
	srv.Drain()
	line, ok := readLine()
	if !ok {
		t.Fatal("stream closed without a terminal draining record")
	}
	var rec errorResponse
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("terminal line %q: %v", line, err)
	}
	if rec.Error != DrainingStreamError {
		t.Fatalf("terminal error = %q, want %q", rec.Error, DrainingStreamError)
	}
	if _, ok := <-linec; ok {
		t.Error("line after the terminal draining record")
	}
	pw.Close()

	// Health flips to draining 503 with a Retry-After.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"draining"`) {
		t.Fatalf("healthz while draining: %d %s", hr.StatusCode, body)
	}
	if hr.Header.Get("Retry-After") == "" {
		t.Error("healthz while draining: no Retry-After")
	}

	// New sessions are refused up front.
	nr, err := http.Post(ts.URL+"/stream", "application/x-ndjson", strings.NewReader("[0.5,0.5,0.5,0.5]\n"))
	if err != nil {
		t.Fatal(err)
	}
	nbody, _ := io.ReadAll(nr.Body)
	nr.Body.Close()
	if nr.StatusCode != http.StatusServiceUnavailable || nr.Header.Get("Retry-After") == "" {
		t.Fatalf("new stream while draining: %d (Retry-After %q) %s", nr.StatusCode, nr.Header.Get("Retry-After"), nbody)
	}

	// Unary endpoints keep serving through the drain.
	sr, err := http.Post(ts.URL+"/score", "application/json", strings.NewReader(`{"point":[0.5,0.5,0.5,0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("score while draining: %d, want 200", sr.StatusCode)
	}

	// Drain is idempotent.
	srv.Drain()
}

// TestStreamMaxBytesConfigurable: the session byte cap follows
// Config.StreamMaxBytes, a client ?max_bytes= can lower but not raise
// it, and the exhausted session still self-reports with the explicit
// limit-naming error record.
func TestStreamMaxBytesConfigurable(t *testing.T) {
	m := fitModel(t)
	row := "[0.5,0.5,0.5,0.5]\n"
	srv := httptest.NewServer(New(Config{Model: m, RequestTimeout: time.Minute, StreamMaxBytes: 64}))
	defer srv.Close()

	// Three rows exceed 64 bytes: the session scores what fits and ends
	// with the limit record.
	resp, records, lines := postStream(t, srv, "/stream?window=60", strings.Repeat(row, 6))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "64-byte session limit") {
		t.Fatalf("limit record %q does not name the 64-byte limit", last)
	}
	if len(records) == 0 {
		t.Fatal("no rows scored before the limit")
	}

	// ?max_bytes lowers the cap below the configured limit.
	resp2, _, lines2 := postStream(t, srv, "/stream?window=60&max_bytes=20", strings.Repeat(row, 6))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if !strings.Contains(lines2[len(lines2)-1], "20-byte session limit") {
		t.Fatalf("lowered limit record %q does not name the 20-byte limit", lines2[len(lines2)-1])
	}

	// ?max_bytes cannot raise the cap above the configured limit.
	resp3, _, lines3 := postStream(t, srv, "/stream?window=60&max_bytes=1000000", strings.Repeat(row, 6))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp3.StatusCode)
	}
	if !strings.Contains(lines3[len(lines3)-1], "64-byte session limit") {
		t.Fatalf("raised-cap record %q should still hit the 64-byte limit", lines3[len(lines3)-1])
	}

	// Malformed max_bytes is a 400 before any streaming starts.
	resp4, err := http.Post(srv.URL+"/stream?max_bytes=nope", "application/x-ndjson", strings.NewReader(row))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("max_bytes=nope: status %d, want 400", resp4.StatusCode)
	}
}
