package knn

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
	"hics/internal/neighbors"
	"hics/internal/rng"
)

func grid2D() *dataset.Dataset {
	// Five points on a line plus one far away.
	return dataset.MustNew(nil, [][]float64{
		{0, 1, 2, 3, 4, 100},
		{0, 0, 0, 0, 0, 0},
	})
}

func TestNewValidation(t *testing.T) {
	ds := grid2D()
	if _, err := New(ds, nil); err == nil {
		t.Error("empty subspace should fail")
	}
	if _, err := New(ds, []int{5}); err == nil {
		t.Error("out-of-range dim should fail")
	}
}

func TestDist(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{0, 3}, {0, 4}})
	s, err := New(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Dist(0, 1); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	// Subspace restriction: only first dim.
	s1, _ := New(ds, []int{0})
	if d := s1.Dist(0, 1); d != 3 {
		t.Errorf("subspace Dist = %v, want 3", d)
	}
}

func TestNeighborhoodBasic(t *testing.T) {
	ds := grid2D()
	s, _ := New(ds, []int{0, 1})
	sc := s.NewScratch()
	nb, kd := s.Neighborhood(0, 2, sc, nil)
	// Two nearest of point 0 are points 1 (d=1) and 2 (d=2).
	if kd != 2 {
		t.Errorf("kdist = %v, want 2", kd)
	}
	if len(nb) != 2 || nb[0].ID != 1 || nb[1].ID != 2 {
		t.Errorf("neighbors = %v", nb)
	}
	if nb[0].Dist != 1 || nb[1].Dist != 2 {
		t.Errorf("distances = %v", nb)
	}
}

func TestNeighborhoodTies(t *testing.T) {
	// Point 2 has points 1 and 3 at distance 1, 0 and 4 at distance 2.
	ds := grid2D()
	s, _ := New(ds, []int{0})
	sc := s.NewScratch()
	nb, kd := s.Neighborhood(2, 3, sc, nil)
	// 3rd nearest is at distance 2, and the tie at distance 2 (both point 0
	// and 4) must be included per the LOF neighborhood definition.
	if kd != 2 {
		t.Errorf("kdist = %v", kd)
	}
	if len(nb) != 4 {
		t.Errorf("tie expansion failed: %v", nb)
	}
}

func TestNeighborhoodExcludesSelf(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1, 1, 5}}) // duplicate points
	s, _ := New(ds, []int{0})
	sc := s.NewScratch()
	nb, kd := s.Neighborhood(0, 1, sc, nil)
	if kd != 0 {
		t.Errorf("kdist with duplicate = %v, want 0", kd)
	}
	if len(nb) != 1 || nb[0].ID != 1 {
		t.Errorf("neighbors = %v", nb)
	}
}

func TestNeighborhoodKClamp(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{0, 1, 2}})
	s, _ := New(ds, []int{0})
	sc := s.NewScratch()
	nb, _ := s.Neighborhood(0, 10, sc, nil)
	if len(nb) != 2 {
		t.Errorf("clamped neighborhood = %v", nb)
	}
}

func TestCountWithin(t *testing.T) {
	ds := grid2D()
	s, _ := New(ds, []int{0})
	sc := s.NewScratch()
	if got := s.CountWithin(2, 1.5, sc); got != 2 {
		t.Errorf("CountWithin = %d, want 2", got)
	}
	if got := s.CountWithin(2, 2, sc); got != 4 {
		t.Errorf("CountWithin inclusive = %d, want 4", got)
	}
	if got := s.CountWithin(5, 1, sc); got != 0 {
		t.Errorf("isolated point CountWithin = %d", got)
	}
}

func TestNewWithKindEquivalence(t *testing.T) {
	// Pinned backends must agree bit-for-bit through the adapter.
	r := rng.New(5)
	n := 300
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		cols[0][i] = math.Floor(r.Float64() * 10)
		cols[1][i] = r.Float64()
	}
	ds := dataset.MustNew(nil, cols)
	brute, err := NewWithKind(ds, []int{0, 1}, neighbors.KindBrute)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewWithKind(ds, []int{0, 1}, neighbors.KindKDTree)
	if err != nil {
		t.Fatal(err)
	}
	if brute.Index().Kind() != neighbors.KindBrute || tree.Index().Kind() != neighbors.KindKDTree {
		t.Fatal("NewWithKind did not pin the backend")
	}
	scB, scT := brute.NewScratch(), tree.NewScratch()
	for q := 0; q < n; q++ {
		nbB, kdB := brute.Neighborhood(q, 10, scB, nil)
		nbT, kdT := tree.Neighborhood(q, 10, scT, nil)
		if kdB != kdT || len(nbB) != len(nbT) {
			t.Fatalf("q=%d: backends disagree (%d/%v vs %d/%v)", q, len(nbB), kdB, len(nbT), kdT)
		}
		for i := range nbB {
			if nbB[i] != nbT[i] {
				t.Fatalf("q=%d neighbor %d: %v vs %v", q, i, nbB[i], nbT[i])
			}
		}
	}
}

// Property: the neighborhood returned is exactly the set of points with
// distance <= kdist, and kdist is the k-th smallest distance.
func TestQuickNeighborhoodDefinition(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%30) + 3
		k := int(kRaw)%(n-1) + 1
		col1 := make([]float64, n)
		col2 := make([]float64, n)
		for i := range col1 {
			col1[i] = math.Floor(r.Float64() * 5) // heavy ties
			col2[i] = math.Floor(r.Float64() * 5)
		}
		ds := dataset.MustNew(nil, [][]float64{col1, col2})
		s, _ := New(ds, []int{0, 1})
		sc := s.NewScratch()
		q := r.Intn(n)
		nb, kd := s.Neighborhood(q, k, sc, nil)

		// Reference: sort all distances.
		type pair struct {
			id int
			d  float64
		}
		var all []pair
		for i := 0; i < n; i++ {
			if i != q {
				all = append(all, pair{i, s.Dist(q, i)})
			}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		wantKd := all[k-1].d
		if math.Abs(kd-wantKd) > 1e-12 {
			return false
		}
		wantSet := map[int]bool{}
		for _, p := range all {
			if p.d <= wantKd+1e-12 {
				wantSet[p.id] = true
			}
		}
		if len(nb) != len(wantSet) {
			return false
		}
		for _, x := range nb {
			if !wantSet[x.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNeighborhood(b *testing.B) {
	r := rng.New(1)
	const n = 1000
	cols := make([][]float64, 3)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = r.Float64()
		}
	}
	ds := dataset.MustNew(nil, cols)
	s, _ := New(ds, []int{0, 1, 2})
	sc := s.NewScratch()
	var nb []Neighbor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb, _ = s.Neighborhood(i%n, 10, sc, nb)
	}
}
