// Package knn provides exact k-nearest-neighbor queries under the Euclidean
// metric restricted to an arbitrary subspace projection.
//
// The search is brute force, O(N·|S|) per query. That is a deliberate
// choice, not a shortcut: the paper's ranking step evaluates LOF in up to
// one hundred different low-dimensional projections, and spatial index
// structures would have to be rebuilt per projection while degrading
// towards linear scans in the dimensionalities involved. Brute force also
// reproduces the quadratic LOF complexity the paper's runtime figures
// (Fig. 5, Fig. 6) are calibrated against.
package knn

import (
	"fmt"
	"math"

	"hics/internal/dataset"
)

// Neighbor is one query result: an object id and its distance to the query.
type Neighbor struct {
	ID   int
	Dist float64
}

// Searcher answers exact kNN queries on a fixed dataset and subspace.
// It is safe for concurrent queries as long as each goroutine uses its own
// scratch buffer (see NewScratch).
type Searcher struct {
	cols [][]float64 // selected columns, length |S|
	n    int
}

// New creates a Searcher over the given subspace dimensions of ds.
func New(ds *dataset.Dataset, dims []int) (*Searcher, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("knn: empty subspace")
	}
	cols := make([][]float64, len(dims))
	for k, d := range dims {
		if d < 0 || d >= ds.D() {
			return nil, fmt.Errorf("knn: dimension %d out of range [0,%d)", d, ds.D())
		}
		cols[k] = ds.Col(d)
	}
	return &Searcher{cols: cols, n: ds.N()}, nil
}

// N returns the number of indexed objects.
func (s *Searcher) N() int { return s.n }

// Dist returns the Euclidean distance between objects i and j in the
// searcher's subspace.
func (s *Searcher) Dist(i, j int) float64 {
	sum := 0.0
	for _, col := range s.cols {
		d := col[i] - col[j]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Scratch holds per-goroutine query buffers.
type Scratch struct {
	dists []float64
	sel   []float64
}

// NewScratch allocates query buffers for the searcher.
func (s *Searcher) NewScratch() *Scratch {
	return &Scratch{
		dists: make([]float64, s.n),
		sel:   make([]float64, 0, s.n),
	}
}

// Neighborhood returns the LOF-style k-neighborhood of object q: the
// k-distance (distance to the k-th nearest distinct object, excluding q
// itself) and every object within that distance. Because of ties the result
// may contain more than k neighbors, matching the original LOF definition.
// Neighbors are returned in ascending object-id order (deterministic).
//
// k is clamped to n−1. The scratch buffer must not be shared across
// concurrent calls.
func (s *Searcher) Neighborhood(q, k int, sc *Scratch, out []Neighbor) (neighbors []Neighbor, kdist float64) {
	if k >= s.n {
		k = s.n - 1
	}
	if k <= 0 {
		return out[:0], 0
	}
	// All squared distances from q.
	dists := sc.dists
	cols := s.cols
	for i := range dists {
		dists[i] = 0
	}
	for _, col := range cols {
		cq := col[q]
		for i, v := range col {
			d := v - cq
			dists[i] += d * d
		}
	}
	dists[q] = math.Inf(1) // exclude the query itself

	// k-th smallest squared distance via quickselect on a copy.
	sel := append(sc.sel[:0], dists...)
	kth := quickselect(sel, k-1)

	neighbors = out[:0]
	for i, d := range dists {
		if d <= kth && i != q {
			neighbors = append(neighbors, Neighbor{ID: i, Dist: math.Sqrt(d)})
		}
	}
	return neighbors, math.Sqrt(kth)
}

// quickselect returns the k-th smallest element (0-based) of xs,
// partially reordering xs in place. Median-of-three pivoting keeps the
// expected cost linear even on sorted inputs.
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case k == p:
			return xs[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return xs[k]
}

func partition(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order xs[lo], xs[mid], xs[hi].
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi-1] = xs[hi-1], xs[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi-1] = xs[hi-1], xs[i]
	return i
}

// CountWithin returns how many objects (excluding q) lie within eps of q.
// Used by the RIS core-object criterion.
func (s *Searcher) CountWithin(q int, eps float64, sc *Scratch) int {
	eps2 := eps * eps
	dists := sc.dists
	for i := range dists {
		dists[i] = 0
	}
	for _, col := range s.cols {
		cq := col[q]
		for i, v := range col {
			d := v - cq
			dists[i] += d * d
		}
	}
	count := 0
	for i, d := range dists {
		if i != q && d <= eps2 {
			count++
		}
	}
	return count
}
