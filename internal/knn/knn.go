// Package knn provides exact k-nearest-neighbor queries under the Euclidean
// metric restricted to an arbitrary subspace projection.
//
// The neighbor search itself lives in the internal/neighbors subsystem,
// which serves every query through a unified Index with a brute-force and a
// k-d tree backend; this package is the thin adapter that the subspace
// searchers (SURFING, RIS, OUTRES) use. New defaults to automatic backend
// selection — results are bit-for-bit identical across backends, so callers
// only ever observe the speed difference — while NewWithKind pins a backend,
// e.g. to preserve the quadratic ranking-step complexity the paper's
// figures (Fig. 5, Fig. 6) are calibrated against, or to skip the index
// build when only Dist/CountWithin will be used.
package knn

import (
	"fmt"

	"hics/internal/dataset"
	"hics/internal/neighbors"
)

// Neighbor is one query result: an object id and its distance to the query.
type Neighbor = neighbors.Neighbor

// Searcher answers exact kNN queries on a fixed dataset and subspace.
// It is safe for concurrent queries as long as each goroutine uses its own
// scratch buffer (see NewScratch).
type Searcher struct {
	idx  neighbors.Index
	cols [][]float64 // selected columns, length |S|, for range counting
	n    int
}

// New creates a Searcher over the given subspace dimensions of ds, with
// the neighbor-index backend chosen automatically from (N, |S|).
func New(ds *dataset.Dataset, dims []int) (*Searcher, error) {
	return NewWithKind(ds, dims, neighbors.KindAuto)
}

// NewWithKind creates a Searcher with a pinned neighbor-index backend.
func NewWithKind(ds *dataset.Dataset, dims []int, kind neighbors.Kind) (*Searcher, error) {
	idx, err := neighbors.New(ds, dims, kind)
	if err != nil {
		return nil, fmt.Errorf("knn: %w", err)
	}
	cols := make([][]float64, len(dims))
	for k, d := range dims {
		cols[k] = ds.Col(d)
	}
	return &Searcher{idx: idx, cols: cols, n: ds.N()}, nil
}

// N returns the number of indexed objects.
func (s *Searcher) N() int { return s.n }

// Index exposes the backing neighbor index.
func (s *Searcher) Index() neighbors.Index { return s.idx }

// Dist returns the Euclidean distance between objects i and j in the
// searcher's subspace.
func (s *Searcher) Dist(i, j int) float64 { return s.idx.Dist(i, j) }

// Scratch holds per-goroutine query buffers.
type Scratch struct {
	inner *neighbors.Scratch
	dists []float64 // range-count accumulator, allocated on first CountWithin
}

// NewScratch allocates query buffers for the searcher.
func (s *Searcher) NewScratch() *Scratch {
	return &Scratch{inner: s.idx.NewScratch()}
}

// Neighborhood returns the LOF-style k-neighborhood of object q: the
// k-distance (distance to the k-th nearest distinct object, excluding q
// itself) and every object within that distance. Because of ties the result
// may contain more than k neighbors, matching the original LOF definition.
// Neighbors are returned in ascending object-id order (deterministic).
//
// k is clamped to n−1. The scratch buffer must not be shared across
// concurrent calls.
func (s *Searcher) Neighborhood(q, k int, sc *Scratch, out []Neighbor) (neighbors []Neighbor, kdist float64) {
	return s.idx.KNN(q, k, sc.inner, out)
}

// CountWithin returns how many objects (excluding q) lie within eps of q.
// Used by the RIS core-object criterion.
func (s *Searcher) CountWithin(q int, eps float64, sc *Scratch) int {
	eps2 := eps * eps
	if sc.dists == nil {
		sc.dists = make([]float64, s.n)
	}
	dists := sc.dists
	for i := range dists {
		dists[i] = 0
	}
	for _, col := range s.cols {
		cq := col[q]
		for i, v := range col {
			d := v - cq
			dists[i] += d * d
		}
	}
	count := 0
	for i, d := range dists {
		if i != q && d <= eps2 {
			count++
		}
	}
	return count
}
