package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestDeriveIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	c1again := parent.Derive(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Derive with same label is not deterministic")
	}
	// Fresh copies for the divergence check.
	c1 = parent.Derive(1)
	c2 = parent.Derive(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams overlap: %d/100 identical", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(8)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("IntRange(2,5) = %d", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 5; v++ {
		if !seen[v] {
			t.Fatalf("IntRange never produced %d", v)
		}
	}
	if got := r.IntRange(3, 3); got != 3 {
		t.Fatalf("IntRange(3,3) = %d", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermInto(t *testing.T) {
	r := New(10)
	dst := make([]int, 8)
	r.PermInto(dst)
	seen := make([]bool, 8)
	for _, v := range dst {
		if v < 0 || v >= 8 || seen[v] {
			t.Fatalf("PermInto produced %v", dst)
		}
		seen[v] = true
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestNormalScaled(t *testing.T) {
	r := New(12)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormalScaled(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Fatalf("scaled normal mean = %v, want ~5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform(-2,3) = %v", v)
		}
	}
}

// Property: Intn output is always within bounds for arbitrary seeds and n.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical Float64 streams.
func TestQuickDeterministicStreams(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Normal()
	}
	_ = sink
}
