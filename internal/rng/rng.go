// Package rng provides small, fast, deterministic pseudo-random number
// generators for reproducible experiments.
//
// The HiCS contrast computation is a Monte Carlo procedure; the paper's
// experiments are reported as averages over seeded runs. To make every
// figure in this reproduction bit-for-bit repeatable, all stochastic
// components (slice sampling, candidate shuffling, data synthesis) draw
// from explicitly seeded generators from this package instead of the
// global math/rand source.
//
// The generator is xoshiro256**, seeded through splitmix64 as recommended
// by its authors. Independent sub-streams for parallel workers are derived
// with Derive, which hashes the parent state together with a stream label
// so that two workers never share a sequence.
package rng

import "math"

// splitmix64 advances a 64-bit state and returns the next output.
// It is used only for seeding and stream derivation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. The zero value is invalid; use New.
type RNG struct {
	s [4]uint64

	// cached second normal deviate for the polar method
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded from the given 64-bit seed. Any seed,
// including zero, yields a valid non-degenerate state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// Derive returns a new independent generator for the given stream label.
// The parent generator is not advanced, so Derive may be called
// concurrently with other Derive calls (but not with Uint64 etc.).
func (r *RNG) Derive(label uint64) *RNG {
	// Mix all four state words with the label through splitmix64.
	sm := r.s[0] ^ (r.s[1] << 1) ^ (r.s[2] << 2) ^ (r.s[3] << 3) ^ (label * 0x9e3779b97f4a7c15)
	child := &RNG{}
	for i := range child.s {
		child.s[i] = splitmix64(&sm)
	}
	return child
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi += aHi*bHi + t>>32
	return hi, lo
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// PermInto fills dst (len n) with a random permutation of [0, n),
// avoiding an allocation in hot loops.
func (r *RNG) PermInto(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Normal returns a standard normal deviate using the Marsaglia polar method.
func (r *RNG) Normal() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// NormalScaled returns a normal deviate with the given mean and stddev.
func (r *RNG) NormalScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}
