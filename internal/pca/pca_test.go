package pca

import (
	"math"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
	"hics/internal/rng"
)

func TestFitKnownAxis(t *testing.T) {
	// Points along the 45° diagonal with tiny orthogonal noise:
	// the first principal axis must be ±(1,1)/√2.
	r := rng.New(1)
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		tv := r.Normal()
		noise := r.NormalScaled(0, 0.01)
		x[i] = tv + noise
		y[i] = tv - noise
	}
	ds := dataset.MustNew(nil, [][]float64{x, y})
	p, err := Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	c0 := p.Component(0)
	want := 1 / math.Sqrt2
	if math.Abs(math.Abs(c0[0])-want) > 0.01 || math.Abs(math.Abs(c0[1])-want) > 0.01 {
		t.Errorf("first component = %v, want ±(0.707, 0.707)", c0)
	}
	vals := p.Eigenvalues()
	if vals[0] < vals[1] {
		t.Error("eigenvalues not sorted descending")
	}
	if vals[0]/vals[1] < 100 {
		t.Errorf("variance ratio %v too small for a near-degenerate line", vals[0]/vals[1])
	}
}

func TestEigenOrthonormal(t *testing.T) {
	r := rng.New(2)
	const d = 8
	// Random symmetric matrix via A = B + Bᵀ.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := r.Normal()
			a[i][j] = v
			a[j][i] = v
		}
	}
	// Copy for the residual check.
	orig := make([][]float64, d)
	for i := range orig {
		orig[i] = append([]float64(nil), a[i]...)
	}
	vals, vecs := jacobiEigen(a)
	// Orthonormality of eigenvector columns.
	for c1 := 0; c1 < d; c1++ {
		for c2 := c1; c2 < d; c2++ {
			dot := 0.0
			for row := 0; row < d; row++ {
				dot += vecs[row][c1] * vecs[row][c2]
			}
			want := 0.0
			if c1 == c2 {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("columns %d,%d dot = %v, want %v", c1, c2, dot, want)
			}
		}
	}
	// Eigen equation residual: A v = λ v.
	for c := 0; c < d; c++ {
		for row := 0; row < d; row++ {
			av := 0.0
			for k := 0; k < d; k++ {
				av += orig[row][k] * vecs[k][c]
			}
			if math.Abs(av-vals[c]*vecs[row][c]) > 1e-8 {
				t.Fatalf("eigen residual at (%d,%d): %v vs %v", row, c, av, vals[c]*vecs[row][c])
			}
		}
	}
}

func TestTransformShapeAndVariance(t *testing.T) {
	r := rng.New(3)
	n, d := 200, 6
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = r.Normal()
		}
	}
	ds := dataset.MustNew(nil, cols)
	p, err := Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := p.Transform(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if proj.N() != n || proj.D() != 3 {
		t.Fatalf("projected shape %dx%d", proj.N(), proj.D())
	}
	if proj.Name(0) != "pc0" {
		t.Errorf("component name = %q", proj.Name(0))
	}
	// Variance of pc0 equals the top eigenvalue.
	_, v := meanVar(proj.Col(0))
	if math.Abs(v-p.Eigenvalues()[0]) > 1e-8*(1+v) {
		t.Errorf("pc0 variance %v != eigenvalue %v", v, p.Eigenvalues()[0])
	}
	// Projected components are uncorrelated.
	c01 := covar(proj.Col(0), proj.Col(1))
	if math.Abs(c01) > 1e-8 {
		t.Errorf("pc0/pc1 covariance = %v, want 0", c01)
	}
}

func meanVar(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, v / float64(len(xs)-1)
}

func covar(a, b []float64) float64 {
	ma, _ := meanVar(a)
	mb, _ := meanVar(b)
	c := 0.0
	for i := range a {
		c += (a[i] - ma) * (b[i] - mb)
	}
	return c / float64(len(a)-1)
}

func TestExplainedVariance(t *testing.T) {
	r := rng.New(4)
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.NormalScaled(0, 10)
		y[i] = r.NormalScaled(0, 1)
	}
	ds := dataset.MustNew(nil, [][]float64{x, y})
	p, _ := Fit(ds)
	ev1 := p.ExplainedVariance(1)
	if ev1 < 0.95 {
		t.Errorf("explained variance of dominant axis = %v", ev1)
	}
	if got := p.ExplainedVariance(2); math.Abs(got-1) > 1e-12 {
		t.Errorf("full explained variance = %v", got)
	}
}

func TestTransformErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1, 2, 3}, {4, 5, 6}})
	p, err := Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Transform(ds, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := p.Transform(ds, 3); err == nil {
		t.Error("k>D should fail")
	}
	other := dataset.MustNew(nil, [][]float64{{1, 2}})
	if _, err := p.Transform(other, 1); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestFitErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1}})
	if _, err := Fit(ds); err == nil {
		t.Error("single object should fail")
	}
}

func TestFitTransform(t *testing.T) {
	r := rng.New(5)
	n := 50
	cols := make([][]float64, 4)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = r.Normal()
		}
	}
	ds := dataset.MustNew(nil, cols)
	proj, err := FitTransform(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if proj.D() != 2 || proj.N() != n {
		t.Errorf("FitTransform shape %dx%d", proj.N(), proj.D())
	}
}

// Property: total variance is preserved by a full-rank transform
// (trace invariance under orthogonal rotation).
func TestQuickVariancePreservation(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		r := rng.New(seed)
		d := int(dRaw%5) + 2
		n := 60
		cols := make([][]float64, d)
		for j := range cols {
			cols[j] = make([]float64, n)
			for i := range cols[j] {
				cols[j][i] = r.Normal()
			}
		}
		ds := dataset.MustNew(nil, cols)
		p, err := Fit(ds)
		if err != nil {
			return false
		}
		totalOrig := 0.0
		for j := 0; j < d; j++ {
			_, v := meanVar(ds.Col(j))
			totalOrig += v
		}
		totalEig := 0.0
		for _, v := range p.Eigenvalues() {
			totalEig += v
		}
		return math.Abs(totalOrig-totalEig) < 1e-8*(1+totalOrig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
