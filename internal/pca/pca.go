// Package pca implements principal component analysis as the traditional
// dimensionality-reduction competitor of the paper's evaluation (PCALOF1
// reduces to 50% of the attributes, PCALOF2 to a constant 10 components,
// both followed by full-space LOF on the projected data).
//
// The eigendecomposition of the covariance matrix uses the cyclic Jacobi
// rotation method: it is exact for symmetric matrices, free of external
// dependencies, and comfortably fast for the attribute counts in the
// paper's experiments (D ≤ a few hundred).
package pca

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hics/internal/dataset"
)

// PCA holds a fitted principal component basis.
type PCA struct {
	mean       []float64   // per-attribute mean of the training data
	components [][]float64 // components[k][d]: k-th eigenvector (unit norm)
	eigenvals  []float64   // descending, one per component
}

// Fit computes the principal components of ds from its covariance matrix.
func Fit(ds *dataset.Dataset) (*PCA, error) {
	n, d := ds.N(), ds.D()
	if n < 2 {
		return nil, errors.New("pca: need at least 2 objects")
	}
	mean := make([]float64, d)
	for j := 0; j < d; j++ {
		sum := 0.0
		for _, v := range ds.Col(j) {
			sum += v
		}
		mean[j] = sum / float64(n)
	}
	// Covariance matrix (symmetric d×d).
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for a := 0; a < d; a++ {
		ca := ds.Col(a)
		for b := a; b < d; b++ {
			cb := ds.Col(b)
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += (ca[i] - mean[a]) * (cb[i] - mean[b])
			}
			c := sum / float64(n-1)
			cov[a][b] = c
			cov[b][a] = c
		}
	}
	vals, vecs := jacobiEigen(cov)
	// Sort descending by eigenvalue.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })
	p := &PCA{mean: mean, components: make([][]float64, d), eigenvals: make([]float64, d)}
	for k, idx := range order {
		p.eigenvals[k] = vals[idx]
		comp := make([]float64, d)
		for row := 0; row < d; row++ {
			comp[row] = vecs[row][idx] // eigenvectors are columns of vecs
		}
		p.components[k] = comp
	}
	return p, nil
}

// Eigenvalues returns the eigenvalues in descending order.
func (p *PCA) Eigenvalues() []float64 {
	return append([]float64(nil), p.eigenvals...)
}

// Component returns the k-th principal axis (unit vector).
func (p *PCA) Component(k int) []float64 {
	return append([]float64(nil), p.components[k]...)
}

// ExplainedVariance returns the fraction of total variance captured by the
// first k components.
func (p *PCA) ExplainedVariance(k int) float64 {
	total, head := 0.0, 0.0
	for i, v := range p.eigenvals {
		if v < 0 { // numerical noise on rank-deficient input
			v = 0
		}
		total += v
		if i < k {
			head += v
		}
	}
	if total == 0 {
		return 0
	}
	return head / total
}

// Transform projects ds onto the first k principal components and returns
// the projected dataset with columns named pc0..pc(k-1).
func (p *PCA) Transform(ds *dataset.Dataset, k int) (*dataset.Dataset, error) {
	d := len(p.mean)
	if ds.D() != d {
		return nil, fmt.Errorf("pca: dataset has %d attributes, model has %d", ds.D(), d)
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("pca: k=%d out of range [1,%d]", k, d)
	}
	n := ds.N()
	out := make([][]float64, k)
	names := make([]string, k)
	for c := 0; c < k; c++ {
		names[c] = fmt.Sprintf("pc%d", c)
		col := make([]float64, n)
		comp := p.components[c]
		for j := 0; j < d; j++ {
			w := comp[j]
			if w == 0 {
				continue
			}
			src := ds.Col(j)
			m := p.mean[j]
			for i := 0; i < n; i++ {
				col[i] += w * (src[i] - m)
			}
		}
		out[c] = col
	}
	return dataset.New(names, out)
}

// FitTransform is Fit followed by Transform with k components.
func FitTransform(ds *dataset.Dataset, k int) (*dataset.Dataset, error) {
	p, err := Fit(ds)
	if err != nil {
		return nil, err
	}
	return p.Transform(ds, k)
}

// jacobiEigen diagonalizes the symmetric matrix a (destroyed in the
// process) with cyclic Jacobi rotations. It returns the eigenvalues and the
// matrix of eigenvectors stored column-wise.
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	vecs = make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, n)
		vecs[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-300 {
					continue
				}
				// Rotation angle zeroing a[p][q].
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)

				app, aqq, apq := a[p][p], a[q][q], a[p][q]
				a[p][p] = app - t*apq
				a[q][q] = aqq + t*apq
				a[p][q] = 0
				a[q][p] = 0
				for i := 0; i < n; i++ {
					if i != p && i != q {
						aip, aiq := a[i][p], a[i][q]
						a[i][p] = aip - s*(aiq+tau*aip)
						a[p][i] = a[i][p]
						a[i][q] = aiq + s*(aip-tau*aiq)
						a[q][i] = a[i][q]
					}
					vip, viq := vecs[i][p], vecs[i][q]
					vecs[i][p] = vip - s*(viq+tau*vip)
					vecs[i][q] = viq + s*(vip-tau*viq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	return vals, vecs
}
