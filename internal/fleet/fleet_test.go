package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hics"
	"hics/internal/rng"
)

// fitModel fits a small model; seed varies the data so two models score
// differently.
func fitModel(t *testing.T, seed uint64, n int) *hics.Model {
	t.Helper()
	r := rng.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		c := 0.3
		if r.Float64() < 0.5 {
			c = 0.7
		}
		rows[i] = []float64{r.NormalScaled(c, 0.04), r.NormalScaled(c, 0.04), r.Float64()}
	}
	m, err := hics.Fit(rows, hics.Options{M: 10, Seed: seed, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// readyFleet constructs an in-memory fleet, restored (ready) and empty.
func readyFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f := New(cfg)
	if err := f.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPutAcquireRelease(t *testing.T) {
	f := readyFleet(t, Config{})
	m := fitModel(t, 1, 120)
	if err := f.Put("alpha", m, Quota{}, false); err != nil {
		t.Fatal(err)
	}
	// First Put becomes the default; "" resolves to it.
	for _, name := range []string{"alpha", ""} {
		h, err := f.Acquire(name, UseRequest)
		if err != nil {
			t.Fatalf("Acquire(%q): %v", name, err)
		}
		if h.Model() != m {
			t.Errorf("Acquire(%q) returned a different model", name)
		}
		if h.Name() != "alpha" {
			t.Errorf("Acquire(%q).Name() = %q, want alpha", name, h.Name())
		}
		h.Release()
	}
	if _, err := f.Acquire("missing", UseMeta); err == nil {
		t.Error("Acquire(missing) succeeded")
	} else {
		var nf *NotFoundError
		if !errors.As(err, &nf) || nf.Name != "missing" {
			t.Errorf("Acquire(missing) error = %v, want NotFoundError", err)
		}
	}
}

func TestPutValidation(t *testing.T) {
	f := readyFleet(t, Config{})
	m := fitModel(t, 1, 120)
	for _, name := range []string{"", ".hidden", "a/b", "a b", "-x", string(make([]byte, 70))} {
		if err := f.Put(name, m, Quota{}, false); err == nil {
			t.Errorf("Put(%q) accepted an invalid name", name)
		}
	}
	if err := f.Put("ok", nil, Quota{}, false); err == nil {
		t.Error("Put with nil model succeeded")
	}
	if err := f.Put("ok", m, Quota{MaxStreams: -1}, false); err == nil {
		t.Error("Put with negative quota succeeded")
	}
}

// TestHotSwapCoherent: replacing a model mid-flight leaves outstanding
// handles on the old model while new acquires see the new one.
func TestHotSwapCoherent(t *testing.T) {
	f := readyFleet(t, Config{})
	m1 := fitModel(t, 1, 120)
	m2 := fitModel(t, 2, 120)
	if err := f.Put("alpha", m1, Quota{}, false); err != nil {
		t.Fatal(err)
	}
	h1, err := f.Acquire("alpha", UseRequest)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put("alpha", m2, Quota{}, false); err != nil {
		t.Fatal(err)
	}
	if h1.Model() != m1 {
		t.Error("outstanding handle lost its model across the swap")
	}
	h2, err := f.Acquire("alpha", UseRequest)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Model() != m2 {
		t.Error("post-swap acquire did not see the new model")
	}
	h1.Release()
	h2.Release()
}

func TestQuotaAdmission(t *testing.T) {
	f := readyFleet(t, Config{})
	m := fitModel(t, 1, 120)
	if err := f.Put("alpha", m, Quota{MaxConcurrent: 2, MaxStreams: 1}, false); err != nil {
		t.Fatal(err)
	}
	h1, err := f.Acquire("alpha", UseRequest)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := f.Acquire("alpha", UseRequest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Acquire("alpha", UseRequest); err == nil {
		t.Fatal("third concurrent request admitted past MaxConcurrent=2")
	} else {
		var qe *QuotaError
		if !errors.As(err, &qe) || qe.Kind != "request" || qe.Limit != 2 {
			t.Errorf("quota error = %v, want request/2", err)
		}
	}
	// Meta acquires are never quota-bound.
	hm, err := f.Acquire("alpha", UseMeta)
	if err != nil {
		t.Fatalf("meta acquire rejected: %v", err)
	}
	hm.Release()
	// Streams have their own dimension.
	hs, err := f.Acquire("alpha", UseStream)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Acquire("alpha", UseStream); err == nil {
		t.Error("second stream admitted past MaxStreams=1")
	}
	// Releasing frees the slot; double-release must not free two.
	h1.Release()
	h1.Release()
	h3, err := f.Acquire("alpha", UseRequest)
	if err != nil {
		t.Fatalf("released slot not reusable: %v", err)
	}
	if _, err := f.Acquire("alpha", UseRequest); err == nil {
		t.Error("double-release freed two slots")
	}
	st, err := f.ModelStatus("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveRequests != 2 || st.ActiveStreams != 1 {
		t.Errorf("status active = %d req / %d streams, want 2/1", st.ActiveRequests, st.ActiveStreams)
	}
	h2.Release()
	h3.Release()
	hs.Release()
}

// TestDeleteDrains: Delete returns only after outstanding handles are
// released, and new acquires fail immediately.
func TestDeleteDrains(t *testing.T) {
	f := readyFleet(t, Config{})
	m := fitModel(t, 1, 120)
	if err := f.Put("alpha", m, Quota{}, false); err != nil {
		t.Fatal(err)
	}
	h, err := f.Acquire("alpha", UseRequest)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Delete(context.Background(), "alpha") }()

	// The name disappears promptly even while the handle pins the entry.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h2, err := f.Acquire("alpha", UseRequest)
		if err != nil {
			break
		}
		h2.Release()
		if time.Now().After(deadline) {
			t.Fatal("deleted model still acquirable")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("Delete returned before the handle drained: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// The handle still scores coherently during the drain.
	if h.Model() != m {
		t.Error("handle lost its model during delete")
	}
	h.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Delete: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Delete did not return after the last release")
	}
	// Deleting the default clears the alias.
	if d := f.DefaultModel(); d != "" {
		t.Errorf("default after delete = %q, want empty", d)
	}
	if err := f.Delete(context.Background(), "alpha"); err == nil {
		t.Error("second delete succeeded")
	}
}

// TestManifestRoundTrip: a restarted fleet restores from the manifest
// and serves bit-identical scores.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Dir: dir})
	if err := f.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	mA := fitModel(t, 1, 120)
	mB := fitModel(t, 2, 150)
	if err := f.Put("alpha", mA, Quota{MaxStreams: 4}, false); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("beta", mB, Quota{}, true); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.31, 0.69, 0.5}
	wantA, err := mA.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := mB.Score(probe)
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh fleet over the same directory.
	f2 := New(Config{Dir: dir})
	if f2.Ready() {
		t.Error("fleet ready before Restore")
	}
	if err := f2.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !f2.Ready() {
		t.Error("fleet not ready after Restore")
	}
	if got := f2.DefaultModel(); got != "beta" {
		t.Errorf("restored default = %q, want beta", got)
	}
	for name, want := range map[string]float64{"alpha": wantA, "beta": wantB} {
		h, err := f2.Acquire(name, UseRequest)
		if err != nil {
			t.Fatalf("Acquire(%q) after restore: %v", name, err)
		}
		got, err := h.Model().Score(probe)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("restored %q scores %v, want %v (bit-identical)", name, got, want)
		}
		h.Release()
	}
	st, err := f2.ModelStatus("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if st.Quota.MaxStreams != 4 {
		t.Errorf("restored quota = %+v, want MaxStreams 4", st.Quota)
	}

	// Delete removes the file and the manifest entry.
	if err := f2.Delete(context.Background(), "alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "alpha.hics")); !os.IsNotExist(err) {
		t.Errorf("alpha.hics survives delete: %v", err)
	}
	f3 := New(Config{Dir: dir})
	if err := f3.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := f3.Acquire("alpha", UseRequest); err == nil {
		t.Error("deleted model restored from manifest")
	}
	if _, err := f3.Acquire("beta", UseRequest); err != nil {
		t.Errorf("surviving model not restored: %v", err)
	}
}

// TestRestoreFailedEntry: a manifest entry whose file is corrupt leaves
// a failed entry naming the error; the rest of the fleet serves.
func TestRestoreFailedEntry(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Dir: dir})
	if err := f.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("good", fitModel(t, 1, 120), Quota{}, false); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("bad", fitModel(t, 2, 120), Quota{}, false); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.hics"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	f2 := New(Config{Dir: dir})
	if err := f2.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Acquire("good", UseRequest); err != nil {
		t.Errorf("good model: %v", err)
	}
	_, err := f2.Acquire("bad", UseRequest)
	var nr *NotReadyError
	if !errors.As(err, &nr) || nr.State != StateFailed {
		t.Errorf("bad model error = %v, want NotReadyError(failed)", err)
	}
	var st ModelStatus
	for _, s := range f2.Status() {
		if s.Name == "bad" {
			st = s
		}
	}
	if st.State != StateFailed || st.Error == "" {
		t.Errorf("bad model status = %+v, want failed with error text", st)
	}
}

// TestRestoreCorruptManifest: a malformed manifest errors but still
// marks the fleet ready (empty), so the server is not wedged.
func TestRestoreCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := New(Config{Dir: dir})
	if err := f.Restore(context.Background()); err == nil {
		t.Error("corrupt manifest did not error")
	}
	if !f.Ready() {
		t.Error("fleet not ready after failed restore")
	}
}

// TestRestoreSkipsExistingNames: a model loaded explicitly before
// Restore wins over its manifest entry.
func TestRestoreSkipsExistingNames(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Dir: dir})
	if err := f.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("alpha", fitModel(t, 1, 120), Quota{}, true); err != nil {
		t.Fatal(err)
	}

	f2 := New(Config{Dir: dir})
	fresh := fitModel(t, 9, 80)
	if err := f2.Put("alpha", fresh, Quota{}, true); err != nil {
		t.Fatal(err)
	}
	if err := f2.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	h, err := f2.Acquire("alpha", UseRequest)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Model() != fresh {
		t.Error("manifest restore overwrote an explicitly loaded model")
	}
}

// TestManifestFormat pins the on-disk JSON shape operators script
// against.
func TestManifestFormat(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Dir: dir})
	if err := f.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("alpha", fitModel(t, 1, 120), Quota{MaxConcurrent: 8}, true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var mf struct {
		Version int    `json:"version"`
		Default string `json:"default"`
		Models  []struct {
			Name  string `json:"name"`
			File  string `json:"file"`
			Quota Quota  `json:"quota"`
		} `json:"models"`
	}
	if err := json.Unmarshal(raw, &mf); err != nil {
		t.Fatalf("manifest is not JSON: %v\n%s", err, raw)
	}
	if mf.Version != 1 || mf.Default != "alpha" || len(mf.Models) != 1 {
		t.Errorf("manifest = %+v", mf)
	}
	if m := mf.Models[0]; m.Name != "alpha" || m.File != "alpha.hics" || m.Quota.MaxConcurrent != 8 {
		t.Errorf("manifest entry = %+v", mf.Models[0])
	}
}

// TestConcurrentSwapAndAcquire hammers Acquire/score during repeated
// hot swaps under the race detector: every handle scores with a
// coherent model (one of the two planted values, never torn).
func TestConcurrentSwapAndAcquire(t *testing.T) {
	f := readyFleet(t, Config{})
	m1 := fitModel(t, 1, 120)
	m2 := fitModel(t, 2, 120)
	probe := []float64{0.31, 0.69, 0.5}
	want1, err := m1.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := m2.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	if want1 == want2 {
		t.Fatal("test models score identically; pick different seeds")
	}
	if err := f.Put("alpha", m1, Quota{}, false); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var swaps sync.WaitGroup
	swaps.Add(1)
	go func() {
		defer swaps.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := m1
			if i%2 == 1 {
				m = m2
			}
			if err := f.Put("alpha", m, Quota{}, false); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()
	var workers sync.WaitGroup
	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 200; i++ {
				h, err := f.Acquire("alpha", UseRequest)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				got, err := h.Model().Score(probe)
				h.Release()
				if err != nil {
					t.Errorf("score: %v", err)
					return
				}
				if got != want1 && got != want2 {
					t.Errorf("torn score %v, want %v or %v", got, want1, want2)
					return
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	swaps.Wait()
}
