// Package fleet is the named-model store behind a multi-model hicsd: a
// concurrency-safe registry of trained hics.Model instances that can be
// loaded, hot-swapped and unloaded at runtime, with per-model admission
// quotas and a persisted JSON manifest so a restart restores the fleet.
//
// # Swap discipline
//
// Every request path resolves its model through Acquire, which returns a
// Handle snapshotting one coherent *hics.Model pointer. Replacing a
// model (Put on an existing name) stores a new pointer atomically — the
// same discipline the streaming refit path uses — so in-flight requests
// keep scoring against the model they started with while new requests
// see the replacement. A response is therefore always computed by
// exactly one model version, old or new, never a torn mix.
//
// # Drain discipline
//
// Each entry carries a reference count of outstanding Handles. Delete
// removes the name from the table immediately (new Acquires fail with
// NotFoundError) and then waits, bounded by its context, for the
// reference count to drain before removing the persisted model file —
// an unload never races in-flight requests.
//
// # Persistence
//
// With Config.Dir set, Put saves the model to <dir>/<name>.hics and
// rewrites <dir>/manifest.json (both atomically: temp file + rename).
// Restore reads the manifest and loads each recorded model; entries
// appear in "loading" state while their files are read, so a readiness
// probe can report a cold fleet, and a file that fails to load leaves a
// "failed" entry that names the error instead of taking the whole fleet
// down.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hics"
	"hics/internal/metrics"
)

// Per-model metadata gauges, labelled by model name. The series for a
// model is deleted when the model is unloaded, so a scrape reflects the
// live fleet.
var (
	mFleetModels = metrics.Default.NewGauge("hicsd_fleet_models",
		"Models currently loaded and ready to serve.")
	mFleetReady = metrics.Default.NewGauge("hicsd_fleet_ready",
		"1 once the manifest restore has completed (the fleet may still be empty), 0 while it is in flight.")
	mModelSubspaces = metrics.Default.NewGaugeVec("hicsd_model_subspaces",
		"Frozen subspace projections per served model.", "model")
	mModelFormatVersion = metrics.Default.NewGaugeVec("hicsd_model_format_version",
		"Persistence format version each served model was loaded from.", "model")
)

// DefaultName is the model name the single-model surface aliases: a
// server started with a lone -model flag serves it under this name, and
// requests that do not route by name resolve to the fleet's default.
const DefaultName = "default"

// validName bounds model names to one path- and label-safe component:
// they become file names under Config.Dir and metric label values.
var validName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// ValidName reports whether name is an acceptable model name: 1-64
// characters, alphanumeric plus "_", ".", "-", starting alphanumeric.
func ValidName(name string) bool { return validName.MatchString(name) }

// Use is the admission class of an Acquire: which quota dimension the
// caller consumes.
type Use int

const (
	// UseMeta reads model metadata (/info, /healthz, listings) — never
	// quota-limited, but still refcounted so unloads drain it.
	UseMeta Use = iota
	// UseRequest is one bounded compute request (/score, /rank),
	// admitted against Quota.MaxConcurrent.
	UseRequest
	// UseStream is one streaming session, admitted against
	// Quota.MaxStreams.
	UseStream
)

// Quota is a model's admission policy. Zero values impose no bound.
type Quota struct {
	// MaxConcurrent caps in-flight compute requests (/score, /rank)
	// against the model; the request over the cap is rejected with a
	// QuotaError (HTTP 429), not queued.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxStreams caps concurrently open streaming sessions.
	MaxStreams int `json:"max_streams,omitempty"`
	// Workers bounds the goroutines one request on this model may fan
	// out over (/rank rankings, stream refits, batch scoring); 0 defers
	// to the server-wide bound.
	Workers int `json:"workers,omitempty"`
}

// NotFoundError reports a model name with no fleet entry.
type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string {
	if e.Name == "" {
		return "fleet: no default model is configured"
	}
	return fmt.Sprintf("fleet: model %q not found", e.Name)
}

// NotReadyError reports an entry that exists but cannot serve: its file
// is still loading, or its last load failed.
type NotReadyError struct {
	Name string
	// State is the entry state ("loading" or "failed").
	State string
	// Err is the load failure for failed entries, nil while loading.
	Err error
}

func (e *NotReadyError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("fleet: model %q failed to load: %v", e.Name, e.Err)
	}
	return fmt.Sprintf("fleet: model %q is still loading", e.Name)
}

// QuotaError reports an admission rejection: the model's quota for the
// requested use is exhausted.
type QuotaError struct {
	Name string
	// Kind is the exhausted dimension: "request" or "stream".
	Kind string
	// Limit is the configured cap that was hit.
	Limit int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("fleet: model %q is at its %s quota (%d)", e.Name, e.Kind, e.Limit)
}

// Entry states.
const (
	StateLoading = "loading"
	StateReady   = "ready"
	StateFailed  = "failed"
)

// entry is one named slot of the fleet. The model pointer is swapped
// atomically on replacement; counters are atomics so admission never
// takes the fleet lock on the hot path.
type entry struct {
	name string

	model atomic.Pointer[hics.Model]
	quota atomic.Pointer[Quota]

	state   atomic.Pointer[string] // StateLoading / StateReady / StateFailed
	loadErr atomic.Pointer[error]  // set when state is StateFailed

	refs     atomic.Int64 // outstanding Handles
	requests atomic.Int64 // admitted UseRequest handles
	streams  atomic.Int64 // admitted UseStream handles

	removed atomic.Bool
	drainMu sync.Mutex
	drained chan struct{} // closed once removed and refs == 0
}

func newEntry(name, state string) *entry {
	e := &entry{name: name, drained: make(chan struct{})}
	e.setState(state, nil)
	e.quota.Store(&Quota{})
	return e
}

func (e *entry) setState(state string, err error) {
	e.state.Store(&state)
	if err != nil {
		e.loadErr.Store(&err)
	}
}

// maybeDrain closes the drained channel once the entry is removed and
// no Handles remain. Called from Release and from markRemoved, so
// whichever observes the final state completes the drain.
func (e *entry) maybeDrain() {
	if !e.removed.Load() || e.refs.Load() != 0 {
		return
	}
	e.drainMu.Lock()
	defer e.drainMu.Unlock()
	select {
	case <-e.drained:
	default:
		close(e.drained)
	}
}

func (e *entry) markRemoved() {
	e.removed.Store(true)
	e.maybeDrain()
}

// Handle is one acquired reference to a coherent model snapshot. Release
// it when the request completes; the model pointer stays valid (and the
// entry undrained) until then, even across hot swaps and unloads.
type Handle struct {
	e        *entry
	m        *hics.Model
	use      Use
	released atomic.Bool
}

// Model returns the snapshot the handle was acquired with — one coherent
// model version for the whole request.
func (h *Handle) Model() *hics.Model { return h.m }

// Name returns the fleet name the handle resolved to (the concrete name
// even when acquired via the default alias).
func (h *Handle) Name() string { return h.e.name }

// Workers returns the model's per-quota worker bound, or fallback when
// the quota imposes none.
func (h *Handle) Workers(fallback int) int {
	if q := h.e.quota.Load(); q.Workers > 0 {
		return q.Workers
	}
	return fallback
}

// Release returns the reference. Idempotent.
func (h *Handle) Release() {
	if !h.released.CompareAndSwap(false, true) {
		return
	}
	switch h.use {
	case UseRequest:
		h.e.requests.Add(-1)
	case UseStream:
		h.e.streams.Add(-1)
	}
	h.e.refs.Add(-1)
	h.e.maybeDrain()
}

// Config wires a Fleet.
type Config struct {
	// Dir is the persistence root: Put saves models here and Restore
	// loads them back. Empty disables persistence (an in-memory fleet).
	Dir string
	// Manifest overrides the manifest path (default <Dir>/manifest.json).
	// Ignored when Dir is empty.
	Manifest string
	// DefaultWorkers is applied via Model.SetWorkers to every model a
	// quota does not bound tighter; 0 leaves the model's own setting.
	DefaultWorkers int
	// Logger receives restore and persistence events. Nil discards.
	Logger *slog.Logger
}

// Fleet is the concurrency-safe named-model store. Construct with New,
// then call Restore exactly once (it is what marks the fleet ready, even
// for in-memory fleets).
type Fleet struct {
	dir            string
	manifestPath   string
	defaultWorkers int
	log            *slog.Logger

	mu          sync.RWMutex
	models      map[string]*entry
	defaultName string

	ready atomic.Bool
}

// New constructs an empty, not-yet-ready fleet.
func New(cfg Config) *Fleet {
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	manifest := cfg.Manifest
	if manifest == "" && cfg.Dir != "" {
		manifest = filepath.Join(cfg.Dir, "manifest.json")
	}
	mFleetReady.Set(0)
	mFleetModels.Set(0)
	return &Fleet{
		dir:            cfg.Dir,
		manifestPath:   manifest,
		defaultWorkers: cfg.DefaultWorkers,
		log:            log,
		models:         make(map[string]*entry),
	}
}

// Ready reports whether the manifest restore has completed. A ready
// fleet may still be empty.
func (f *Fleet) Ready() bool { return f.ready.Load() }

// DefaultModel returns the current default model name ("" when unset).
func (f *Fleet) DefaultModel() string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.defaultName
}

// manifest is the persisted fleet state.
type manifest struct {
	Version int             `json:"version"`
	Default string          `json:"default,omitempty"`
	Models  []manifestEntry `json:"models"`
}

type manifestEntry struct {
	Name string `json:"name"`
	// File is the model file name, relative to the manifest's directory.
	File  string `json:"file"`
	Quota Quota  `json:"quota,omitempty"`
}

const manifestVersion = 1

// Restore loads the persisted fleet from the manifest and marks the
// fleet ready. Call it once, after New — concurrently with serving if
// startup latency matters (readiness probes report the in-flight
// restore). A model file that fails to load leaves a failed entry and a
// log record; only an unreadable or malformed manifest is returned as an
// error (the fleet is still marked ready, empty, so the server is not
// wedged). Names already present — loaded explicitly before Restore ran
// — win over their manifest entry.
func (f *Fleet) Restore(ctx context.Context) error {
	defer func() {
		f.ready.Store(true)
		mFleetReady.Set(1)
	}()
	if f.manifestPath == "" {
		return nil
	}
	raw, err := os.ReadFile(f.manifestPath)
	if os.IsNotExist(err) {
		return nil // first boot: empty fleet
	}
	if err != nil {
		return fmt.Errorf("fleet: reading manifest: %w", err)
	}
	var mf manifest
	if err := json.Unmarshal(raw, &mf); err != nil {
		return fmt.Errorf("fleet: parsing manifest %s: %w", f.manifestPath, err)
	}
	if mf.Version != manifestVersion {
		return fmt.Errorf("fleet: manifest %s has version %d, want %d", f.manifestPath, mf.Version, manifestVersion)
	}

	// Register every entry as loading first, so a readiness probe sees
	// the whole cold fleet immediately.
	dir := filepath.Dir(f.manifestPath)
	var toLoad []manifestEntry
	f.mu.Lock()
	for _, me := range mf.Models {
		if !ValidName(me.Name) {
			f.log.Warn("fleet restore: skipping invalid model name", "name", me.Name)
			continue
		}
		if _, exists := f.models[me.Name]; exists {
			continue // an explicit runtime load beat the manifest
		}
		e := newEntry(me.Name, StateLoading)
		q := me.Quota
		e.quota.Store(&q)
		f.models[me.Name] = e
		toLoad = append(toLoad, me)
	}
	if f.defaultName == "" && mf.Default != "" {
		f.defaultName = mf.Default
	}
	f.mu.Unlock()

	for _, me := range toLoad {
		if err := ctx.Err(); err != nil {
			return err
		}
		path := filepath.Join(dir, me.File)
		m, err := loadModelFile(path)
		f.mu.Lock()
		e := f.models[me.Name]
		if e == nil || e.removed.Load() {
			f.mu.Unlock()
			continue // deleted while we were loading
		}
		if err != nil {
			e.setState(StateFailed, err)
			f.mu.Unlock()
			f.log.Error("fleet restore: model failed to load", "model", me.Name, "path", path, "error", err)
			continue
		}
		f.applyWorkers(m, e.quota.Load())
		e.model.Store(m)
		e.setState(StateReady, nil)
		f.updateModelMetricsLocked(me.Name, m)
		f.mu.Unlock()
		f.log.Info("fleet restore: model loaded", "model", me.Name,
			"objects", m.N(), "attributes", m.D(), "subspaces", len(m.Subspaces()))
	}
	return nil
}

func loadModelFile(path string) (*hics.Model, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return hics.LoadModel(r)
}

// applyWorkers bounds the model's batch-scoring parallelism by the
// quota, falling back to the fleet-wide default.
func (f *Fleet) applyWorkers(m *hics.Model, q *Quota) {
	switch {
	case q != nil && q.Workers > 0:
		m.SetWorkers(q.Workers)
	case f.defaultWorkers > 0:
		m.SetWorkers(f.defaultWorkers)
	}
}

// Put loads (or hot-swaps) a model under the given name and persists it
// when the fleet has a directory. Existing Handles keep the old model;
// new Acquires see the replacement — the swap is atomic, never torn.
// makeDefault additionally routes unnamed requests to this model.
func (f *Fleet) Put(name string, m *hics.Model, q Quota, makeDefault bool) error {
	if !ValidName(name) {
		return fmt.Errorf("fleet: invalid model name %q (want 1-64 chars of [a-zA-Z0-9_.-], starting alphanumeric)", name)
	}
	if m == nil {
		return fmt.Errorf("fleet: model %q: nil model", name)
	}
	if q.MaxConcurrent < 0 || q.MaxStreams < 0 || q.Workers < 0 {
		return fmt.Errorf("fleet: model %q: quota values must be non-negative, got %+v", name, q)
	}
	f.applyWorkers(m, &q)

	// Persist outside the lock: the save is the slow part, and a rename
	// is atomic. The manifest is rewritten under the lock afterwards so
	// concurrent Puts serialize on a consistent snapshot.
	if f.dir != "" {
		if err := f.saveModelFile(name, m); err != nil {
			return err
		}
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	e, exists := f.models[name]
	if !exists || e.removed.Load() {
		e = newEntry(name, StateReady)
		f.models[name] = e
	}
	q2 := q
	e.quota.Store(&q2)
	e.model.Store(m)
	e.setState(StateReady, nil)
	if makeDefault || f.defaultName == "" {
		f.defaultName = name
	}
	f.updateModelMetricsLocked(name, m)
	if f.dir != "" {
		if err := f.writeManifestLocked(); err != nil {
			return err
		}
	}
	f.log.Info("fleet: model loaded", "model", name, "default", f.defaultName == name,
		"objects", m.N(), "attributes", m.D(), "subspaces", len(m.Subspaces()))
	return nil
}

// SetDefault routes unnamed requests to the named model.
func (f *Fleet) SetDefault(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.models[name]; !ok {
		return &NotFoundError{Name: name}
	}
	f.defaultName = name
	if f.dir != "" {
		return f.writeManifestLocked()
	}
	return nil
}

// Delete unloads the named model: the name disappears immediately (new
// Acquires fail), in-flight Handles drain — bounded by ctx — and then
// the persisted model file is removed. A drain cut short by ctx still
// completes the unload; the in-flight requests keep their (memory-held)
// model snapshot and the file removal proceeds.
func (f *Fleet) Delete(ctx context.Context, name string) error {
	f.mu.Lock()
	e, ok := f.models[name]
	if !ok {
		f.mu.Unlock()
		return &NotFoundError{Name: name}
	}
	delete(f.models, name)
	if f.defaultName == name {
		f.defaultName = ""
	}
	mModelSubspaces.Delete(name)
	mModelFormatVersion.Delete(name)
	mFleetModels.Set(float64(f.readyCountLocked()))
	var manifestErr error
	if f.dir != "" {
		manifestErr = f.writeManifestLocked()
	}
	f.mu.Unlock()

	e.markRemoved()
	select {
	case <-e.drained:
	case <-ctx.Done():
		f.log.Warn("fleet: unload drain cut short", "model", name, "error", ctx.Err(),
			"outstanding", e.refs.Load())
	}
	if f.dir != "" {
		if err := os.Remove(f.modelPath(name)); err != nil && !os.IsNotExist(err) {
			f.log.Error("fleet: removing model file", "model", name, "error", err)
		}
	}
	f.log.Info("fleet: model unloaded", "model", name)
	return manifestErr
}

// Acquire resolves a model name ("" = the default) to a Handle holding a
// coherent model snapshot, admitted against the model's quota for the
// given use. Callers must Release the handle.
func (f *Fleet) Acquire(name string, use Use) (*Handle, error) {
	f.mu.RLock()
	resolved := name
	if resolved == "" {
		resolved = f.defaultName
	}
	e := f.models[resolved]
	f.mu.RUnlock()
	if e == nil || resolved == "" {
		return nil, &NotFoundError{Name: name}
	}
	if state := *e.state.Load(); state != StateReady {
		var err error
		if p := e.loadErr.Load(); p != nil {
			err = *p
		}
		return nil, &NotReadyError{Name: resolved, State: state, Err: err}
	}
	// In-flight work is always counted (Status reports it); a bounded
	// quota additionally rejects the admission that would exceed it.
	q := e.quota.Load()
	switch use {
	case UseRequest:
		if n := e.requests.Add(1); q.MaxConcurrent > 0 && n > int64(q.MaxConcurrent) {
			e.requests.Add(-1)
			return nil, &QuotaError{Name: resolved, Kind: "request", Limit: q.MaxConcurrent}
		}
	case UseStream:
		if n := e.streams.Add(1); q.MaxStreams > 0 && n > int64(q.MaxStreams) {
			e.streams.Add(-1)
			return nil, &QuotaError{Name: resolved, Kind: "stream", Limit: q.MaxStreams}
		}
	}
	e.refs.Add(1)
	m := e.model.Load()
	if e.removed.Load() || m == nil {
		// Lost the race with Delete: back out as if never admitted.
		h := &Handle{e: e, use: use}
		h.Release()
		return nil, &NotFoundError{Name: name}
	}
	return &Handle{e: e, m: m, use: use}, nil
}

// ModelStatus is one model's externally visible state.
type ModelStatus struct {
	Name    string `json:"name"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Default bool   `json:"default"`

	Objects       int    `json:"objects,omitempty"`
	Attributes    int    `json:"attributes,omitempty"`
	Subspaces     int    `json:"subspaces,omitempty"`
	Search        string `json:"search,omitempty"`
	Scorer        string `json:"scorer,omitempty"`
	FormatVersion int    `json:"format_version,omitempty"`

	Quota          Quota `json:"quota"`
	ActiveRequests int64 `json:"active_requests"`
	ActiveStreams  int64 `json:"active_streams"`
}

// Status reports every model, sorted by name.
func (f *Fleet) Status() []ModelStatus {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]ModelStatus, 0, len(f.models))
	for name, e := range f.models {
		out = append(out, f.statusLocked(name, e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ModelStatus reports one model by name.
func (f *Fleet) ModelStatus(name string) (ModelStatus, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.models[name]
	if !ok {
		return ModelStatus{}, &NotFoundError{Name: name}
	}
	return f.statusLocked(name, e), nil
}

func (f *Fleet) statusLocked(name string, e *entry) ModelStatus {
	st := ModelStatus{
		Name:           name,
		State:          *e.state.Load(),
		Default:        name == f.defaultName,
		Quota:          *e.quota.Load(),
		ActiveRequests: e.requests.Load(),
		ActiveStreams:  e.streams.Load(),
	}
	if p := e.loadErr.Load(); p != nil && st.State == StateFailed {
		st.Error = (*p).Error()
	}
	if m := e.model.Load(); m != nil && st.State == StateReady {
		st.Objects = m.N()
		st.Attributes = m.D()
		st.Subspaces = len(m.Subspaces())
		st.Search = m.SearchMethod()
		st.Scorer = m.ScorerMethod()
		st.FormatVersion = m.FormatVersion()
	}
	return st
}

// Len returns the number of ready models.
func (f *Fleet) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.readyCountLocked()
}

func (f *Fleet) readyCountLocked() int {
	n := 0
	for _, e := range f.models {
		if *e.state.Load() == StateReady {
			n++
		}
	}
	return n
}

func (f *Fleet) updateModelMetricsLocked(name string, m *hics.Model) {
	mModelSubspaces.With(name).Set(float64(len(m.Subspaces())))
	mModelFormatVersion.With(name).Set(float64(m.FormatVersion()))
	mFleetModels.Set(float64(f.readyCountLocked()))
}

func (f *Fleet) modelPath(name string) string {
	return filepath.Join(f.dir, name+".hics")
}

// saveModelFile persists a model atomically: write a temp file in the
// same directory, fsync-free rename over the target.
func (f *Fleet) saveModelFile(name string, m *hics.Model) error {
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return fmt.Errorf("fleet: creating models dir: %w", err)
	}
	tmp, err := os.CreateTemp(f.dir, "."+name+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: saving model %q: %w", name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := m.Save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: saving model %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: saving model %q: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), f.modelPath(name)); err != nil {
		return fmt.Errorf("fleet: saving model %q: %w", name, err)
	}
	return nil
}

// writeManifestLocked rewrites the manifest atomically from the current
// table. Caller holds f.mu.
func (f *Fleet) writeManifestLocked() error {
	mf := manifest{Version: manifestVersion, Default: f.defaultName}
	names := make([]string, 0, len(f.models))
	for name := range f.models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := f.models[name]
		mf.Models = append(mf.Models, manifestEntry{
			Name:  name,
			File:  name + ".hics",
			Quota: *e.quota.Load(),
		})
	}
	if mf.Models == nil {
		mf.Models = []manifestEntry{}
	}
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encoding manifest: %w", err)
	}
	dir := filepath.Dir(f.manifestPath)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleet: creating manifest dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".manifest.tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: writing manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: writing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: writing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), f.manifestPath); err != nil {
		return fmt.Errorf("fleet: writing manifest: %w", err)
	}
	return nil
}

// String renders the fleet for logs.
func (f *Fleet) String() string {
	sts := f.Status()
	names := make([]string, len(sts))
	for i, st := range sts {
		names[i] = st.Name + "(" + st.State + ")"
	}
	return "fleet[" + strings.Join(names, " ") + "]"
}
