// Package dataset provides the columnar in-memory data container used by
// every algorithm in this repository.
//
// The container is column-major: HiCS's subspace slicing walks one attribute
// at a time through a per-attribute sorted index, and LOF's subspace
// distances touch only the selected columns, so storing each attribute
// contiguously is the cache-friendly layout for both access patterns.
//
// Per-attribute sorted index structures (paper Sec. IV-A: "we precalculate
// one-dimensional index structures for all attributes") are built lazily and
// memoized; they are safe for concurrent use once built, matching the
// parallel candidate evaluation in the subspace framework.
package dataset

import (
	"errors"
	"fmt"
	"slices"
	"sync"
)

// Dataset is an immutable N×D table of float64 values.
// All mutating operations return a new Dataset.
type Dataset struct {
	names []string
	cols  [][]float64 // cols[d][i] = value of attribute d for object i
	n     int

	idxOnce []sync.Once
	sorted  [][]int // sorted[d] = object ids ordered by ascending cols[d]
}

// New constructs a Dataset from column-major data. The column slices are
// retained (not copied); callers must not modify them afterwards.
// names may be nil, in which case synthetic names attr0..attrD-1 are used.
func New(names []string, cols [][]float64) (*Dataset, error) {
	if len(cols) == 0 {
		return nil, errors.New("dataset: no columns")
	}
	n := len(cols[0])
	if n == 0 {
		return nil, errors.New("dataset: empty columns")
	}
	for d, c := range cols {
		if len(c) != n {
			return nil, fmt.Errorf("dataset: column %d has %d values, want %d", d, len(c), n)
		}
	}
	if names == nil {
		names = make([]string, len(cols))
		for d := range names {
			names[d] = fmt.Sprintf("attr%d", d)
		}
	}
	if len(names) != len(cols) {
		return nil, fmt.Errorf("dataset: %d names for %d columns", len(names), len(cols))
	}
	return &Dataset{
		names:   names,
		cols:    cols,
		n:       n,
		idxOnce: make([]sync.Once, len(cols)),
		sorted:  make([][]int, len(cols)),
	}, nil
}

// MustNew is New for inputs known to be valid; it panics on error.
// Intended for tests and generators.
func MustNew(names []string, cols [][]float64) *Dataset {
	ds, err := New(names, cols)
	if err != nil {
		panic(err)
	}
	return ds
}

// FromRows constructs a Dataset from row-major data, copying it into the
// internal column-major layout.
func FromRows(names []string, rows [][]float64) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, errors.New("dataset: no rows")
	}
	d := len(rows[0])
	if d == 0 {
		return nil, errors.New("dataset: empty rows")
	}
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, len(rows))
	}
	for i, row := range rows {
		if len(row) != d {
			return nil, fmt.Errorf("dataset: row %d has %d values, want %d", i, len(row), d)
		}
		for j, v := range row {
			cols[j][i] = v
		}
	}
	return New(names, cols)
}

// N returns the number of objects.
func (ds *Dataset) N() int { return ds.n }

// D returns the number of attributes.
func (ds *Dataset) D() int { return len(ds.cols) }

// Name returns the name of attribute d.
func (ds *Dataset) Name(d int) string { return ds.names[d] }

// Names returns a copy of all attribute names.
func (ds *Dataset) Names() []string {
	return append([]string(nil), ds.names...)
}

// Col returns the values of attribute d. The returned slice is the internal
// storage: callers must treat it as read-only.
func (ds *Dataset) Col(d int) []float64 { return ds.cols[d] }

// Value returns the value of attribute d for object i.
func (ds *Dataset) Value(i, d int) float64 { return ds.cols[d][i] }

// Row appends the values of object i to buf and returns the result.
// Pass a slice with sufficient capacity to avoid allocation.
func (ds *Dataset) Row(i int, buf []float64) []float64 {
	buf = buf[:0]
	for d := range ds.cols {
		buf = append(buf, ds.cols[d][i])
	}
	return buf
}

// SortedIndex returns the object indices ordered by ascending value of
// attribute d, computing and memoizing the ordering on first use.
// Ties are broken by object id, making the index deterministic.
// The returned slice is shared: treat it as read-only.
func (ds *Dataset) SortedIndex(d int) []int {
	ds.idxOnce[d].Do(func() {
		idx := make([]int, ds.n)
		for i := range idx {
			idx[i] = i
		}
		col := ds.cols[d]
		// Sorting by (value, id) is a total order, so the non-stable
		// generic sort produces exactly the permutation the previous
		// stable value-sort did (idx starts in ascending id order) at a
		// fraction of the cost — this is the dominant preprocessing step
		// at large N.
		slices.SortFunc(idx, func(a, b int) int {
			switch {
			case col[a] < col[b]:
				return -1
			case col[a] > col[b]:
				return 1
			default:
				return a - b
			}
		})
		ds.sorted[d] = idx
	})
	return ds.sorted[d]
}

// EnsureIndexes forces construction of all sorted indices. Useful to move
// the one-off O(D·N log N) cost out of timed sections.
func (ds *Dataset) EnsureIndexes() {
	for d := 0; d < ds.D(); d++ {
		ds.SortedIndex(d)
	}
}

// Select returns a new Dataset containing only the given attribute columns
// (shared storage, no copy). Dimension order is preserved as given.
func (ds *Dataset) Select(dims []int) (*Dataset, error) {
	if len(dims) == 0 {
		return nil, errors.New("dataset: Select with no dimensions")
	}
	names := make([]string, len(dims))
	cols := make([][]float64, len(dims))
	for k, d := range dims {
		if d < 0 || d >= ds.D() {
			return nil, fmt.Errorf("dataset: dimension %d out of range [0,%d)", d, ds.D())
		}
		names[k] = ds.names[d]
		cols[k] = ds.cols[d]
	}
	return New(names, cols)
}

// Labeled couples a Dataset with a ground-truth outlier flag per object.
type Labeled struct {
	Data    *Dataset
	Outlier []bool
}

// NumOutliers returns the number of flagged objects.
func (l *Labeled) NumOutliers() int {
	c := 0
	for _, o := range l.Outlier {
		if o {
			c++
		}
	}
	return c
}
