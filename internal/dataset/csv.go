package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions controls CSV parsing.
type CSVOptions struct {
	// Header indicates the first record carries attribute names.
	Header bool
	// LabelColumn names a column holding the 0/1 outlier ground truth; it is
	// split off into Labeled.Outlier instead of the data matrix. If empty, a
	// trailing column named "label" or "outlier" (case-insensitive) is used
	// when Header is set. Set to "-" to disable label detection entirely.
	LabelColumn string
	// Comma is the field separator; 0 means ','.
	Comma rune
}

// CSVStream incrementally parses numeric CSV rows: the header (when
// present) is consumed at construction, and each Next call yields one
// data row. It is the row source of the streaming entry points
// (`hics -stream`), and ReadLabeledCSV is built on it, so batch and
// streaming parsing cannot drift apart.
type CSVStream struct {
	cr       *csv.Reader
	names    []string // data attribute names, label excluded; nil without header
	labelIdx int      // index of the label field within a record, -1 if none
	width    int      // fields per record; -1 until the first data row
	line     int      // 1-based line counter for error messages
}

// NewCSVStream wraps r in an incremental CSV row parser, reading the
// header record immediately when opts.Header is set.
func NewCSVStream(r io.Reader, opts CSVOptions) (*CSVStream, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1 // validate ourselves for better messages
	s := &CSVStream{cr: cr, labelIdx: -1, width: -1}
	if !opts.Header {
		if opts.LabelColumn != "" && opts.LabelColumn != "-" {
			return nil, errors.New("dataset: LabelColumn requires Header")
		}
		return s, nil
	}
	rec, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	s.line++
	for i, n := range rec {
		ln := strings.ToLower(strings.TrimSpace(n))
		switch {
		case opts.LabelColumn != "" && opts.LabelColumn != "-" && n == opts.LabelColumn:
			s.labelIdx = i
		case opts.LabelColumn == "" && (ln == "label" || ln == "outlier"):
			s.labelIdx = i
		}
	}
	if opts.LabelColumn != "" && opts.LabelColumn != "-" && s.labelIdx == -1 {
		return nil, fmt.Errorf("dataset: label column %q not found in header", opts.LabelColumn)
	}
	for i, n := range rec {
		if i != s.labelIdx {
			s.names = append(s.names, n)
		}
	}
	return s, nil
}

// Next parses one data row, returning its numeric values (label column
// excluded) and the label flag (false when the stream has no label
// column). The returned error is io.EOF at the end of the input; parse
// failures name the offending line and field. The returned slice is
// freshly allocated each call.
func (s *CSVStream) Next() (row []float64, label bool, err error) {
	rec, err := s.cr.Read()
	if errors.Is(err, io.EOF) {
		return nil, false, io.EOF
	}
	if err != nil {
		return nil, false, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	s.line++
	if s.width == -1 {
		s.width = len(rec)
	}
	if len(rec) != s.width {
		return nil, false, fmt.Errorf("dataset: line %d has %d fields, want %d", s.line, len(rec), s.width)
	}
	row = make([]float64, 0, s.width)
	for i, f := range rec {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, false, fmt.Errorf("dataset: line %d field %d: %q is not numeric", s.line, i+1, f)
		}
		if i == s.labelIdx {
			label = v != 0
			continue
		}
		row = append(row, v)
	}
	return row, label, nil
}

// Names returns the data attribute names from the header (label column
// excluded), or nil for a headerless stream.
func (s *CSVStream) Names() []string {
	return append([]string(nil), s.names...)
}

// HasLabel reports whether a label column was detected in the header.
func (s *CSVStream) HasLabel() bool { return s.labelIdx >= 0 }

// ReadCSV parses numeric CSV data into a Dataset. Rows with a wrong field
// count or non-numeric fields produce an error naming the offending line.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	l, err := ReadLabeledCSV(r, opts)
	if err != nil {
		return nil, err
	}
	return l.Data, nil
}

// ReadLabeledCSV parses numeric CSV data, extracting the ground-truth
// outlier column per opts. If no label column is present, Labeled.Outlier
// is nil.
func ReadLabeledCSV(r io.Reader, opts CSVOptions) (*Labeled, error) {
	s, err := NewCSVStream(r, opts)
	if err != nil {
		return nil, err
	}
	var (
		rows   [][]float64
		labels []bool
	)
	for {
		row, label, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		// A label column index beyond the actual record width never
		// matches a field, so such files keep a nil Outlier slice.
		if s.HasLabel() && s.labelIdx < s.width {
			labels = append(labels, label)
		}
	}
	if len(rows) == 0 {
		return nil, errors.New("dataset: CSV contains no data rows")
	}
	ds, err := FromRows(s.names, rows)
	if err != nil {
		return nil, err
	}
	return &Labeled{Data: ds, Outlier: labels}, nil
}

// WriteCSV writes the dataset with a header row. If labels is non-nil it is
// appended as a trailing 0/1 column named "label"; its length must equal N.
func WriteCSV(w io.Writer, ds *Dataset, labels []bool) error {
	if labels != nil && len(labels) != ds.N() {
		return fmt.Errorf("dataset: %d labels for %d rows", len(labels), ds.N())
	}
	cw := csv.NewWriter(w)
	header := ds.Names()
	if labels != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, 0, len(header))
	for i := 0; i < ds.N(); i++ {
		rec = rec[:0]
		for d := 0; d < ds.D(); d++ {
			rec = append(rec, strconv.FormatFloat(ds.Value(i, d), 'g', -1, 64))
		}
		if labels != nil {
			if labels[i] {
				rec = append(rec, "1")
			} else {
				rec = append(rec, "0")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
