package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions controls CSV parsing.
type CSVOptions struct {
	// Header indicates the first record carries attribute names.
	Header bool
	// LabelColumn names a column holding the 0/1 outlier ground truth; it is
	// split off into Labeled.Outlier instead of the data matrix. If empty, a
	// trailing column named "label" or "outlier" (case-insensitive) is used
	// when Header is set. Set to "-" to disable label detection entirely.
	LabelColumn string
	// Comma is the field separator; 0 means ','.
	Comma rune
}

// ReadCSV parses numeric CSV data into a Dataset. Rows with a wrong field
// count or non-numeric fields produce an error naming the offending line.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	l, err := ReadLabeledCSV(r, opts)
	if err != nil {
		return nil, err
	}
	return l.Data, nil
}

// ReadLabeledCSV parses numeric CSV data, extracting the ground-truth
// outlier column per opts. If no label column is present, Labeled.Outlier
// is nil.
func ReadLabeledCSV(r io.Reader, opts CSVOptions) (*Labeled, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1 // validate ourselves for better messages

	var names []string
	labelIdx := -1
	line := 0

	if opts.Header {
		rec, err := cr.Read()
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
		}
		line++
		names = rec
		for i, n := range rec {
			ln := strings.ToLower(strings.TrimSpace(n))
			switch {
			case opts.LabelColumn != "" && opts.LabelColumn != "-" && n == opts.LabelColumn:
				labelIdx = i
			case opts.LabelColumn == "" && (ln == "label" || ln == "outlier"):
				labelIdx = i
			}
		}
		if opts.LabelColumn != "" && opts.LabelColumn != "-" && labelIdx == -1 {
			return nil, fmt.Errorf("dataset: label column %q not found in header", opts.LabelColumn)
		}
	}

	var (
		rows   [][]float64
		labels []bool
		width  = -1
	)
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		line++
		if width == -1 {
			width = len(rec)
			if !opts.Header && opts.LabelColumn != "" && opts.LabelColumn != "-" {
				return nil, errors.New("dataset: LabelColumn requires Header")
			}
		}
		if len(rec) != width {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), width)
		}
		row := make([]float64, 0, width)
		for i, f := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %q is not numeric", line, i+1, f)
			}
			if i == labelIdx {
				labels = append(labels, v != 0)
				continue
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, errors.New("dataset: CSV contains no data rows")
	}

	var dataNames []string
	if names != nil {
		for i, n := range names {
			if i != labelIdx {
				dataNames = append(dataNames, n)
			}
		}
	}
	ds, err := FromRows(dataNames, rows)
	if err != nil {
		return nil, err
	}
	return &Labeled{Data: ds, Outlier: labels}, nil
}

// WriteCSV writes the dataset with a header row. If labels is non-nil it is
// appended as a trailing 0/1 column named "label"; its length must equal N.
func WriteCSV(w io.Writer, ds *Dataset, labels []bool) error {
	if labels != nil && len(labels) != ds.N() {
		return fmt.Errorf("dataset: %d labels for %d rows", len(labels), ds.N())
	}
	cw := csv.NewWriter(w)
	header := ds.Names()
	if labels != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, 0, len(header))
	for i := 0; i < ds.N(); i++ {
		rec = rec[:0]
		for d := 0; d < ds.D(); d++ {
			rec = append(rec, strconv.FormatFloat(ds.Value(i, d), 'g', -1, 64))
		}
		if labels != nil {
			if labels[i] {
				rec = append(rec, "1")
			} else {
				rec = append(rec, "0")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
