// Fuzz targets for the CSV parsers. /rank and /stream parse user-posted
// data through these functions, so they must never panic and must uphold
// their shape invariants on arbitrary bytes.
package dataset

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// addSeedCorpus feeds the committed testdata CSVs plus a few tricky
// inline cases to the fuzzer.
func addSeedCorpus(f *testing.F) {
	f.Helper()
	entries, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".csv" {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	for _, s := range []string{
		"",
		"\n\n\n",
		"1,2\n3\n",
		"1,abc\n",
		"x,y,label\n1,2,kaboom\n",
		`"unclosed,1`,
		"a,a,a\nNaN,Inf,-Inf\n",
		"1.5;2,5\n",
		"label\n1\n0\n",
		"x,y\r\n1,2\r\n",
		"\xff\xfe,1\n2,3\n",
	} {
		f.Add(s)
	}
}

// checkLabeled asserts the invariants of a successful parse: a non-empty
// rectangular matrix and a label slice that is nil or exactly N long.
func checkLabeled(t *testing.T, l *Labeled) {
	t.Helper()
	if l == nil || l.Data == nil {
		t.Fatal("nil result without error")
	}
	if l.Data.N() < 1 || l.Data.D() < 1 {
		t.Fatalf("degenerate shape %dx%d accepted", l.Data.N(), l.Data.D())
	}
	if l.Outlier != nil && len(l.Outlier) != l.Data.N() {
		t.Fatalf("%d labels for %d rows", len(l.Outlier), l.Data.N())
	}
	if len(l.Data.Names()) != l.Data.D() {
		t.Fatalf("%d names for %d columns", len(l.Data.Names()), l.Data.D())
	}
}

// FuzzReadCSV hammers the plain reader with and without a header row:
// no input may panic, and every accepted input must produce a consistent
// Dataset.
func FuzzReadCSV(f *testing.F) {
	addSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data string) {
		for _, header := range []bool{false, true} {
			ds, err := ReadCSV(strings.NewReader(data), CSVOptions{Header: header})
			if err != nil {
				continue
			}
			if ds.N() < 1 || ds.D() < 1 {
				t.Fatalf("header=%v: degenerate shape %dx%d accepted", header, ds.N(), ds.D())
			}
			// Every cell must be addressable without panicking.
			for i := 0; i < ds.N(); i++ {
				_ = ds.Row(i, nil)
			}
		}
	})
}

// FuzzReadLabeledCSV exercises the label-splitting path and the
// batch/stream equivalence: for any input the incremental CSVStream and
// ReadLabeledCSV must accept the same inputs and produce identical rows
// and labels.
func FuzzReadLabeledCSV(f *testing.F) {
	addSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data string) {
		for _, opts := range []CSVOptions{
			{Header: true},
			{Header: true, LabelColumn: "label"},
			{Header: true, LabelColumn: "-"},
			{Comma: ';'},
		} {
			batch, batchErr := ReadLabeledCSV(strings.NewReader(data), opts)
			if batchErr == nil {
				checkLabeled(t, batch)
			}

			s, err := NewCSVStream(strings.NewReader(data), opts)
			if err != nil {
				if batchErr == nil {
					t.Fatalf("opts %+v: stream construction failed (%v) where batch succeeded", opts, err)
				}
				continue
			}
			var (
				rows      [][]float64
				labels    []bool
				streamErr error
			)
			for {
				row, label, err := s.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					streamErr = err
					break
				}
				rows = append(rows, row)
				labels = append(labels, label)
			}
			if (batchErr == nil) != (streamErr == nil && len(rows) > 0) {
				// The batch reader additionally rejects zero-row inputs and
				// shape mismatches via FromRows; only flag the divergence
				// when the stream accepted strictly less.
				if batchErr == nil {
					t.Fatalf("opts %+v: batch accepted, stream failed: %v", opts, streamErr)
				}
				continue
			}
			if batchErr != nil {
				continue
			}
			if len(rows) != batch.Data.N() {
				t.Fatalf("opts %+v: stream %d rows, batch %d", opts, len(rows), batch.Data.N())
			}
			for i, row := range rows {
				if len(row) != batch.Data.D() {
					t.Fatalf("opts %+v: stream row %d width %d, batch D %d", opts, i, len(row), batch.Data.D())
				}
				for d, v := range row {
					if v != batch.Data.Value(i, d) && !(v != v && batch.Data.Value(i, d) != batch.Data.Value(i, d)) {
						t.Fatalf("opts %+v: cell (%d,%d) stream %v, batch %v", opts, i, d, v, batch.Data.Value(i, d))
					}
				}
				if batch.Outlier != nil && labels[i] != batch.Outlier[i] {
					t.Fatalf("opts %+v: label %d stream %v, batch %v", opts, i, labels[i], batch.Outlier[i])
				}
			}
		}
	})
}
