package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"hics/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := New(nil, [][]float64{{}}); err == nil {
		t.Error("empty columns should fail")
	}
	if _, err := New(nil, [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged columns should fail")
	}
	if _, err := New([]string{"a"}, [][]float64{{1}, {2}}); err == nil {
		t.Error("name count mismatch should fail")
	}
}

func TestNewSyntheticNames(t *testing.T) {
	ds := MustNew(nil, [][]float64{{1, 2}, {3, 4}})
	if ds.Name(0) != "attr0" || ds.Name(1) != "attr1" {
		t.Errorf("names = %v", ds.Names())
	}
}

func TestFromRows(t *testing.T) {
	ds, err := FromRows([]string{"x", "y"}, [][]float64{{1, 10}, {2, 20}, {3, 30}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 2 {
		t.Fatalf("shape = %dx%d", ds.N(), ds.D())
	}
	if ds.Value(1, 1) != 20 {
		t.Errorf("Value(1,1) = %v", ds.Value(1, 1))
	}
	if got := ds.Col(0); got[2] != 3 {
		t.Errorf("Col(0) = %v", got)
	}
	row := ds.Row(2, nil)
	if row[0] != 3 || row[1] != 30 {
		t.Errorf("Row(2) = %v", row)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows(nil, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := FromRows(nil, nil); err == nil {
		t.Error("no rows should fail")
	}
	if _, err := FromRows(nil, [][]float64{{}}); err == nil {
		t.Error("zero-width rows should fail")
	}
}

func TestSortedIndex(t *testing.T) {
	ds := MustNew(nil, [][]float64{{3, 1, 2, 1}})
	idx := ds.SortedIndex(0)
	want := []int{1, 3, 2, 0} // stable: ties (value 1 at ids 1 and 3) keep id order
	for i, v := range want {
		if idx[i] != v {
			t.Fatalf("SortedIndex = %v, want %v", idx, want)
		}
	}
	// Memoized: same slice returned.
	if &ds.SortedIndex(0)[0] != &idx[0] {
		t.Error("SortedIndex not memoized")
	}
}

func TestSortedIndexConcurrent(t *testing.T) {
	r := rng.New(1)
	col := make([]float64, 1000)
	for i := range col {
		col[i] = r.Float64()
	}
	ds := MustNew(nil, [][]float64{col})
	done := make(chan []int, 8)
	for k := 0; k < 8; k++ {
		go func() { done <- ds.SortedIndex(0) }()
	}
	first := <-done
	for k := 1; k < 8; k++ {
		got := <-done
		if &got[0] != &first[0] {
			t.Fatal("concurrent SortedIndex returned distinct slices")
		}
	}
	for i := 1; i < len(first); i++ {
		if col[first[i-1]] > col[first[i]] {
			t.Fatal("SortedIndex is not sorted")
		}
	}
}

func TestSelect(t *testing.T) {
	ds := MustNew([]string{"a", "b", "c"}, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	sub, err := ds.Select([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.D() != 2 || sub.Name(0) != "c" || sub.Value(1, 1) != 2 {
		t.Errorf("Select result wrong: names=%v", sub.Names())
	}
	if _, err := ds.Select(nil); err == nil {
		t.Error("empty Select should fail")
	}
	if _, err := ds.Select([]int{5}); err == nil {
		t.Error("out-of-range Select should fail")
	}
}

func TestMinMaxScaled(t *testing.T) {
	ds := MustNew(nil, [][]float64{{-2, 0, 2}, {7, 7, 7}})
	sc := ds.MinMaxScaled()
	if got := sc.Col(0); got[0] != 0 || got[1] != 0.5 || got[2] != 1 {
		t.Errorf("scaled col0 = %v", got)
	}
	if got := sc.Col(1); got[0] != 0 || got[2] != 0 {
		t.Errorf("constant column should scale to 0, got %v", got)
	}
	// Original unchanged.
	if ds.Value(0, 0) != -2 {
		t.Error("MinMaxScaled mutated the source")
	}
}

func TestStandardized(t *testing.T) {
	ds := MustNew(nil, [][]float64{{1, 2, 3, 4, 5}, {9, 9, 9, 9, 9}})
	st := ds.Standardized()
	col := st.Col(0)
	sum, sumSq := 0.0, 0.0
	for _, v := range col {
		sum += v
		sumSq += v * v
	}
	mean := sum / 5
	if math.Abs(mean) > 1e-12 {
		t.Errorf("standardized mean = %v", mean)
	}
	variance := (sumSq - 5*mean*mean) / 4
	if math.Abs(variance-1) > 1e-12 {
		t.Errorf("standardized variance = %v", variance)
	}
	for _, v := range st.Col(1) {
		if v != 0 {
			t.Errorf("constant column should standardize to 0, got %v", v)
		}
	}
}

func TestLabeledNumOutliers(t *testing.T) {
	l := &Labeled{Outlier: []bool{true, false, true, true}}
	if got := l.NumOutliers(); got != 3 {
		t.Errorf("NumOutliers = %d", got)
	}
}

// Property: SortedIndex always yields a permutation ordering the column.
func TestQuickSortedIndexPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		col := make([]float64, int(n%100)+1)
		for i := range col {
			col[i] = math.Floor(r.Float64() * 10) // force ties
		}
		ds := MustNew(nil, [][]float64{col})
		idx := ds.SortedIndex(0)
		seen := make([]bool, len(col))
		for i, id := range idx {
			if id < 0 || id >= len(col) || seen[id] {
				return false
			}
			seen[id] = true
			if i > 0 && col[idx[i-1]] > col[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinMaxScaled output is always within [0,1].
func TestQuickMinMaxRange(t *testing.T) {
	f := func(seed uint64, n, d uint8) bool {
		r := rng.New(seed)
		nn := int(n%50) + 1
		dd := int(d%5) + 1
		cols := make([][]float64, dd)
		for j := range cols {
			cols[j] = make([]float64, nn)
			for i := range cols[j] {
				cols[j][i] = r.NormalScaled(0, 100)
			}
		}
		sc := MustNew(nil, cols).MinMaxScaled()
		for j := 0; j < dd; j++ {
			for _, v := range sc.Col(j) {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
