package dataset

import "hics/internal/stats"

// MinMaxScaled returns a new Dataset with every attribute linearly rescaled
// to [0, 1]. Constant attributes map to 0. The paper's generators and the
// grid-based competitors (Enclus, RIS) assume data in the unit hypercube;
// HiCS itself is rank-based and unaffected by monotone rescaling.
func (ds *Dataset) MinMaxScaled() *Dataset {
	cols := make([][]float64, ds.D())
	for d := range cols {
		src := ds.cols[d]
		lo, hi := stats.MinMax(src)
		dst := make([]float64, len(src))
		if hi > lo {
			scale := 1 / (hi - lo)
			for i, v := range src {
				dst[i] = (v - lo) * scale
			}
		}
		cols[d] = dst
	}
	return MustNew(ds.Names(), cols)
}

// Standardized returns a new Dataset with every attribute shifted to zero
// mean and unit variance. Constant attributes are shifted to zero.
// PCA requires this preprocessing so that attribute scale does not dominate
// the covariance structure.
func (ds *Dataset) Standardized() *Dataset {
	cols := make([][]float64, ds.D())
	for d := range cols {
		src := ds.cols[d]
		mean, variance := stats.MeanVar(src)
		dst := make([]float64, len(src))
		if variance > 0 {
			inv := 1 / stats.Stddev(src)
			for i, v := range src {
				dst[i] = (v - mean) * inv
			}
		} else {
			for i, v := range src {
				dst[i] = v - mean
			}
		}
		cols[d] = dst
	}
	return MustNew(ds.Names(), cols)
}
