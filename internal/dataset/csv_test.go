package dataset

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestReadCSVNoHeader(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1,2\n3,4\n5,6\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 2 || ds.Value(2, 1) != 6 {
		t.Errorf("parsed shape %dx%d", ds.N(), ds.D())
	}
}

func TestReadCSVHeader(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("x,y\n1,2\n3,4\n"), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name(0) != "x" || ds.Name(1) != "y" {
		t.Errorf("names = %v", ds.Names())
	}
}

func TestReadLabeledCSVAutoDetect(t *testing.T) {
	in := "x,y,label\n1,2,0\n3,4,1\n"
	l, err := ReadLabeledCSV(strings.NewReader(in), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.D() != 2 {
		t.Fatalf("label column not stripped, D = %d", l.Data.D())
	}
	if l.Outlier == nil || !l.Outlier[1] || l.Outlier[0] {
		t.Errorf("labels = %v", l.Outlier)
	}
}

func TestReadLabeledCSVExplicitColumn(t *testing.T) {
	in := "x,truth,y\n1,1,2\n3,0,4\n"
	l, err := ReadLabeledCSV(strings.NewReader(in), CSVOptions{Header: true, LabelColumn: "truth"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.D() != 2 || !l.Outlier[0] || l.Outlier[1] {
		t.Errorf("explicit label parse failed: D=%d labels=%v", l.Data.D(), l.Outlier)
	}
	if l.Data.Name(1) != "y" {
		t.Errorf("names = %v", l.Data.Names())
	}
}

func TestReadLabeledCSVMissingColumn(t *testing.T) {
	in := "x,y\n1,2\n"
	if _, err := ReadLabeledCSV(strings.NewReader(in), CSVOptions{Header: true, LabelColumn: "truth"}); err == nil {
		t.Error("missing label column should fail")
	}
}

func TestReadCSVDisableLabelDetection(t *testing.T) {
	in := "x,label\n1,0\n2,1\n"
	l, err := ReadLabeledCSV(strings.NewReader(in), CSVOptions{Header: true, LabelColumn: "-"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.D() != 2 || l.Outlier != nil {
		t.Errorf("label detection not disabled: D=%d labels=%v", l.Data.D(), l.Outlier)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), CSVOptions{}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n"), CSVOptions{}); err == nil {
		t.Error("non-numeric field should fail")
	}
	if _, err := ReadLabeledCSV(strings.NewReader("1,2\n"), CSVOptions{LabelColumn: "x"}); err == nil {
		t.Error("LabelColumn without Header should fail")
	}
}

func TestReadCSVCustomComma(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1;2\n3;4\n"), CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if ds.D() != 2 || ds.Value(1, 0) != 3 {
		t.Error("semicolon parsing failed")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ds := MustNew([]string{"a", "b"}, [][]float64{{1.5, -2.25}, {0.125, 1e-9}})
	labels := []bool{true, false}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, labels); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLabeledCSV(&buf, CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.D() != 2 || l.Data.N() != 2 {
		t.Fatalf("round trip shape %dx%d", l.Data.N(), l.Data.D())
	}
	for d := 0; d < 2; d++ {
		for i := 0; i < 2; i++ {
			if l.Data.Value(i, d) != ds.Value(i, d) {
				t.Errorf("value (%d,%d) changed: %v != %v", i, d, l.Data.Value(i, d), ds.Value(i, d))
			}
		}
	}
	if !l.Outlier[0] || l.Outlier[1] {
		t.Errorf("labels round trip = %v", l.Outlier)
	}
}

func TestWriteCSVLabelMismatch(t *testing.T) {
	ds := MustNew(nil, [][]float64{{1, 2}})
	if err := WriteCSV(&bytes.Buffer{}, ds, []bool{true}); err == nil {
		t.Error("label length mismatch should fail")
	}
}

// drainStream pulls every row out of a CSVStream.
func drainStream(t *testing.T, s *CSVStream) (rows [][]float64, labels []bool) {
	t.Helper()
	for {
		row, label, err := s.Next()
		if errors.Is(err, io.EOF) {
			return rows, labels
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
		labels = append(labels, label)
	}
}

// TestCSVStreamMatchesBatch: the incremental reader and ReadLabeledCSV
// must agree on every input shape — they share the implementation, and
// this pins that they keep doing so.
func TestCSVStreamMatchesBatch(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts CSVOptions
	}{
		{"no header", "1,2\n3,4\n5,6\n", CSVOptions{}},
		{"header", "x,y\n1,2\n3,4\n", CSVOptions{Header: true}},
		{"auto label", "x,y,label\n1,2,0\n3,4,1\n", CSVOptions{Header: true}},
		{"explicit label", "x,truth,y\n1,1,2\n3,0,4\n", CSVOptions{Header: true, LabelColumn: "truth"}},
		{"label disabled", "x,label\n1,0\n2,1\n", CSVOptions{Header: true, LabelColumn: "-"}},
		{"semicolons", "1;2\n3;4\n", CSVOptions{Comma: ';'}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batch, err := ReadLabeledCSV(strings.NewReader(tc.in), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewCSVStream(strings.NewReader(tc.in), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			rows, labels := drainStream(t, s)
			if len(rows) != batch.Data.N() {
				t.Fatalf("stream yielded %d rows, batch %d", len(rows), batch.Data.N())
			}
			for i, row := range rows {
				if len(row) != batch.Data.D() {
					t.Fatalf("stream row %d has %d values, batch D=%d", i, len(row), batch.Data.D())
				}
				for d, v := range row {
					if v != batch.Data.Value(i, d) {
						t.Errorf("value (%d,%d): stream %v, batch %v", i, d, v, batch.Data.Value(i, d))
					}
				}
				if batch.Outlier != nil && labels[i] != batch.Outlier[i] {
					t.Errorf("label %d: stream %v, batch %v", i, labels[i], batch.Outlier[i])
				}
			}
			if s.HasLabel() != (batch.Outlier != nil) {
				t.Errorf("HasLabel = %v, batch Outlier nil = %v", s.HasLabel(), batch.Outlier == nil)
			}
			if batch.Data.Name(0) != "attr0" { // header present: names must match too
				names := s.Names()
				for d := range names {
					if names[d] != batch.Data.Name(d) {
						t.Errorf("name %d: stream %q, batch %q", d, names[d], batch.Data.Name(d))
					}
				}
			}
		})
	}
}

// TestCSVStreamErrors: mid-stream failures name the offending line, and
// construction-time failures mirror the batch reader.
func TestCSVStreamErrors(t *testing.T) {
	s, err := NewCSVStream(strings.NewReader("1,2\n3\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Next(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("ragged row error = %v, want line 2 named", err)
	}
	s, err = NewCSVStream(strings.NewReader("1,abc\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Next(); err == nil || !strings.Contains(err.Error(), "field 2") {
		t.Errorf("non-numeric error = %v, want field 2 named", err)
	}
	if _, err := NewCSVStream(strings.NewReader("1,2\n"), CSVOptions{LabelColumn: "x"}); err == nil {
		t.Error("LabelColumn without Header should fail at construction")
	}
	if _, err := NewCSVStream(strings.NewReader("x,y\n1,2\n"), CSVOptions{Header: true, LabelColumn: "z"}); err == nil {
		t.Error("missing label column should fail at construction")
	}
	// An empty input with a header is EOF at construction.
	if _, err := NewCSVStream(strings.NewReader(""), CSVOptions{Header: true}); err == nil {
		t.Error("empty headered input should fail at construction")
	}
}

func TestWriteCSVNoLabels(t *testing.T) {
	ds := MustNew([]string{"a"}, [][]float64{{1, 2}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, nil); err != nil {
		t.Fatal(err)
	}
	want := "a\n1\n2\n"
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
}
