package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVNoHeader(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1,2\n3,4\n5,6\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 2 || ds.Value(2, 1) != 6 {
		t.Errorf("parsed shape %dx%d", ds.N(), ds.D())
	}
}

func TestReadCSVHeader(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("x,y\n1,2\n3,4\n"), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name(0) != "x" || ds.Name(1) != "y" {
		t.Errorf("names = %v", ds.Names())
	}
}

func TestReadLabeledCSVAutoDetect(t *testing.T) {
	in := "x,y,label\n1,2,0\n3,4,1\n"
	l, err := ReadLabeledCSV(strings.NewReader(in), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.D() != 2 {
		t.Fatalf("label column not stripped, D = %d", l.Data.D())
	}
	if l.Outlier == nil || !l.Outlier[1] || l.Outlier[0] {
		t.Errorf("labels = %v", l.Outlier)
	}
}

func TestReadLabeledCSVExplicitColumn(t *testing.T) {
	in := "x,truth,y\n1,1,2\n3,0,4\n"
	l, err := ReadLabeledCSV(strings.NewReader(in), CSVOptions{Header: true, LabelColumn: "truth"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.D() != 2 || !l.Outlier[0] || l.Outlier[1] {
		t.Errorf("explicit label parse failed: D=%d labels=%v", l.Data.D(), l.Outlier)
	}
	if l.Data.Name(1) != "y" {
		t.Errorf("names = %v", l.Data.Names())
	}
}

func TestReadLabeledCSVMissingColumn(t *testing.T) {
	in := "x,y\n1,2\n"
	if _, err := ReadLabeledCSV(strings.NewReader(in), CSVOptions{Header: true, LabelColumn: "truth"}); err == nil {
		t.Error("missing label column should fail")
	}
}

func TestReadCSVDisableLabelDetection(t *testing.T) {
	in := "x,label\n1,0\n2,1\n"
	l, err := ReadLabeledCSV(strings.NewReader(in), CSVOptions{Header: true, LabelColumn: "-"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.D() != 2 || l.Outlier != nil {
		t.Errorf("label detection not disabled: D=%d labels=%v", l.Data.D(), l.Outlier)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), CSVOptions{}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n"), CSVOptions{}); err == nil {
		t.Error("non-numeric field should fail")
	}
	if _, err := ReadLabeledCSV(strings.NewReader("1,2\n"), CSVOptions{LabelColumn: "x"}); err == nil {
		t.Error("LabelColumn without Header should fail")
	}
}

func TestReadCSVCustomComma(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1;2\n3;4\n"), CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if ds.D() != 2 || ds.Value(1, 0) != 3 {
		t.Error("semicolon parsing failed")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ds := MustNew([]string{"a", "b"}, [][]float64{{1.5, -2.25}, {0.125, 1e-9}})
	labels := []bool{true, false}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, labels); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLabeledCSV(&buf, CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.D() != 2 || l.Data.N() != 2 {
		t.Fatalf("round trip shape %dx%d", l.Data.N(), l.Data.D())
	}
	for d := 0; d < 2; d++ {
		for i := 0; i < 2; i++ {
			if l.Data.Value(i, d) != ds.Value(i, d) {
				t.Errorf("value (%d,%d) changed: %v != %v", i, d, l.Data.Value(i, d), ds.Value(i, d))
			}
		}
	}
	if !l.Outlier[0] || l.Outlier[1] {
		t.Errorf("labels round trip = %v", l.Outlier)
	}
}

func TestWriteCSVLabelMismatch(t *testing.T) {
	ds := MustNew(nil, [][]float64{{1, 2}})
	if err := WriteCSV(&bytes.Buffer{}, ds, []bool{true}); err == nil {
		t.Error("label length mismatch should fail")
	}
}

func TestWriteCSVNoLabels(t *testing.T) {
	ds := MustNew([]string{"a"}, [][]float64{{1, 2}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, nil); err != nil {
		t.Fatal(err)
	}
	want := "a\n1\n2\n"
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
}
