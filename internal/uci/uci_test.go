package uci

import (
	"testing"

	"hics/internal/eval"
	"hics/internal/lof"
	"hics/internal/stats"
	"hics/internal/subspace"
)

func TestSpecsShapes(t *testing.T) {
	// The shapes the paper reports (Pendigits after downsampling).
	want := map[string][3]int{ // name -> N, D, outliers
		"Ann-Thyroid": {3428, 6, 250},
		"Arrhythmia":  {452, 120, 66},
		"Breast":      {683, 9, 239},
		"Breast-Diag": {569, 30, 212},
		"Diabetes":    {768, 8, 268},
		"Glass":       {214, 9, 9},
		"Ionosphere":  {351, 34, 126},
		"Pendigits":   {6792, 16, 78},
	}
	if len(Specs) != len(want) {
		t.Fatalf("have %d specs, want %d", len(Specs), len(want))
	}
	for _, s := range Specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected dataset %q", s.Name)
			continue
		}
		if s.N != w[0] || s.D != w[1] || s.Outliers != w[2] {
			t.Errorf("%s shape (%d,%d,%d), want (%d,%d,%d)", s.Name, s.N, s.D, s.Outliers, w[0], w[1], w[2])
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("Glass")
	if err != nil || s.Name != "Glass" {
		t.Errorf("Lookup(Glass) = %v, %v", s, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestGenerateFullSize(t *testing.T) {
	for _, spec := range Specs {
		if spec.N > 1000 {
			continue // keep the unit-test budget small; large ones covered below at scale
		}
		l, err := Generate(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if l.Data.N() != spec.N || l.Data.D() != spec.D {
			t.Errorf("%s shape %dx%d", spec.Name, l.Data.N(), l.Data.D())
		}
		if got := l.NumOutliers(); got != spec.Outliers {
			t.Errorf("%s outliers = %d, want %d", spec.Name, got, spec.Outliers)
		}
		for d := 0; d < l.Data.D(); d++ {
			lo, hi := stats.MinMax(l.Data.Col(d))
			if lo < 0 || hi > 1 {
				t.Errorf("%s attribute %d out of unit range [%v,%v]", spec.Name, d, lo, hi)
			}
		}
	}
}

func TestGenerateScaled(t *testing.T) {
	l, err := Load("Pendigits", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Data.N() != 679 {
		t.Errorf("scaled N = %d, want 679", l.Data.N())
	}
	if l.NumOutliers() < 5 {
		t.Errorf("scaled outliers = %d, want >= 5", l.NumOutliers())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Load("Glass", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("Glass", 1)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < a.Data.D(); d++ {
		ca, cb := a.Data.Col(d), b.Data.Col(d)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("bogus", 1); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestNamesAndSortedNames(t *testing.T) {
	if len(Names()) != len(Specs) {
		t.Error("Names length mismatch")
	}
	sorted := SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Error("SortedNames not sorted")
		}
	}
}

// Difficulty profile: the easy datasets must be clearly easier than the
// hard ones for a plain LOF ranking, mirroring the paper's Fig. 11
// ordering (Ann-Thyroid/Breast-Diag/Pendigits high, Arrhythmia/Breast low).
func TestDifficultyProfile(t *testing.T) {
	auc := func(name string, scale float64) float64 {
		l, err := Load(name, scale)
		if err != nil {
			t.Fatal(err)
		}
		scores, err := lof.Scores(l.Data, subspace.Full(l.Data.D()), 10)
		if err != nil {
			t.Fatal(err)
		}
		a, err := eval.AUC(scores, l.Outlier)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	easy := auc("Breast-Diag", 1)
	hard := auc("Breast", 1)
	if easy < hard+0.1 {
		t.Errorf("Breast-Diag (%.3f) should be much easier than Breast (%.3f)", easy, hard)
	}
	if easy < 0.7 {
		t.Errorf("Breast-Diag LOF AUC = %.3f, want reasonably high", easy)
	}
	if hard > 0.75 {
		t.Errorf("Breast LOF AUC = %.3f, want low (hard dataset)", hard)
	}
}
