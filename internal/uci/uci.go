// Package uci provides simulated analogs of the eight UCI ML Repository
// benchmark datasets of the paper's real-world evaluation (Fig. 10/11).
//
// The build environment is offline, so the original datasets cannot be
// fetched. Per the substitution policy in DESIGN.md §4, each analog
// reproduces the *shape* and *difficulty profile* the paper's comparison
// depends on rather than the raw values:
//
//   - the same number of objects and attributes,
//   - the same outlier (minority-class) fraction, including the paper's
//     10% downsampling of digit "0" for Pendigits,
//   - a majority class organized in correlated low-dimensional attribute
//     groups plus irrelevant noise attributes,
//   - a minority class deviating inside a few of those groups, with a
//     dataset-specific separation (how cleanly outliers deviate) and
//     trivial fraction (how many are visible in a single attribute),
//     tuned so that easy datasets (Ann-Thyroid, Breast Diagnostic) stay
//     easy and hard ones (Arrhythmia, Breast) stay hard.
//
// The method ordering of the paper emerges from this structure: subspace
// searchers profit where outliers hide in low-dimensional projections,
// and nobody profits where the classes barely separate.
package uci

import (
	"fmt"
	"sort"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/subspace"
)

// Spec describes one simulated benchmark dataset.
type Spec struct {
	// Name is the dataset identifier used by the harness and reports.
	Name string
	// N and D are the object and attribute counts of the original dataset.
	N, D int
	// Outliers is the number of minority-class objects.
	Outliers int
	// GroupDims lists the sizes of the correlated attribute groups; the
	// remaining attributes are independent noise.
	GroupDims []int
	// Separation in (0,1] controls how distinctly the minority deviates
	// inside its groups (1 = clean deviation, small = heavy overlap).
	Separation float64
	// TrivialFrac is the fraction of outliers additionally made extreme in
	// one attribute (the "trivial" outliers real data contains).
	TrivialFrac float64
	// ClusterStddev is the majority-cluster spread.
	ClusterStddev float64
	// Clusters is the number of diagonal clusters per group.
	Clusters int
	// DeviateProb is the probability that a minority object deviates in a
	// given group (0 selects 0.6). High values make outliers visible in
	// many projections at once — which is what lets full-space LOF do well
	// on datasets like Pendigits.
	DeviateProb float64
	// Spread is the stddev multiplier of minority placements relative to
	// ClusterStddev (0 selects 2.2). Values near 1 make the minority blend
	// into the majority clusters — the hard datasets.
	Spread float64
	// Seed fixes the generated data.
	Seed uint64
}

// Specs lists the eight datasets of the paper's Fig. 11 with their
// original shapes and minority sizes (Pendigits after the 10% reduction
// of digit "0").
var Specs = []Spec{
	{Name: "Ann-Thyroid", N: 3428, D: 6, Outliers: 250, GroupDims: []int{3, 3}, Separation: 1.0, TrivialFrac: 0.15, ClusterStddev: 0.035, Clusters: 4, DeviateProb: 0.45, Spread: 1.2, Seed: 101},
	{Name: "Arrhythmia", N: 452, D: 120, Outliers: 66, GroupDims: []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4}, Separation: 0.08, TrivialFrac: 0.1, ClusterStddev: 0.09, Clusters: 2, DeviateProb: 0.3, Spread: 1.05, Seed: 102},
	{Name: "Breast", N: 683, D: 9, Outliers: 239, GroupDims: []int{2, 2}, Separation: 0.1, TrivialFrac: 0.05, ClusterStddev: 0.1, Clusters: 2, DeviateProb: 0.5, Spread: 1.4, Seed: 103},
	{Name: "Breast-Diag", N: 569, D: 30, Outliers: 212, GroupDims: []int{3, 3, 3, 3, 3, 3, 3, 3, 3}, Separation: 0.75, TrivialFrac: 0.1, ClusterStddev: 0.05, Clusters: 2, DeviateProb: 0.55, Spread: 1.6, Seed: 104},
	{Name: "Diabetes", N: 768, D: 8, Outliers: 268, GroupDims: []int{2, 2}, Separation: 0.25, TrivialFrac: 0.1, ClusterStddev: 0.09, Clusters: 2, DeviateProb: 0.6, Spread: 1.8, Seed: 105},
	{Name: "Glass", N: 214, D: 9, Outliers: 9, GroupDims: []int{3, 2}, Separation: 0.5, TrivialFrac: 0.2, ClusterStddev: 0.06, Clusters: 3, DeviateProb: 0.8, Spread: 2.2, Seed: 106},
	{Name: "Ionosphere", N: 351, D: 34, Outliers: 126, GroupDims: []int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}, Separation: 0.12, TrivialFrac: 0.3, ClusterStddev: 0.06, Clusters: 2, DeviateProb: 0.7, Spread: 1.25, Seed: 107},
	{Name: "Pendigits", N: 6792, D: 16, Outliers: 78, GroupDims: []int{4, 4, 4, 4}, Separation: 0.6, TrivialFrac: 0.05, ClusterStddev: 0.06, Clusters: 4, DeviateProb: 0.6, Spread: 1.5, Seed: 108},
}

// Names returns the dataset names in Fig. 11 order.
func Names() []string {
	out := make([]string, len(Specs))
	for i, s := range Specs {
		out[i] = s.Name
	}
	return out
}

// Lookup finds a spec by (case-sensitive) name.
func Lookup(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("uci: unknown dataset %q (have %v)", name, Names())
}

// Generate builds the simulated dataset of a spec. scale in (0,1] reduces
// the object count proportionally (outlier count scales along, with a
// minimum of 5) so the quadratic ranking step stays tractable in quick
// runs; scale <= 0 or >= 1 yields the original size.
func Generate(spec Spec, scale float64) (*dataset.Labeled, error) {
	n, outliers := spec.N, spec.Outliers
	if scale > 0 && scale < 1 {
		n = int(float64(n) * scale)
		outliers = int(float64(outliers) * scale)
		if outliers < 5 {
			outliers = 5
		}
	}
	if n < 20 || outliers >= n/2+n/4 {
		return nil, fmt.Errorf("uci: degenerate size n=%d outliers=%d for %s", n, outliers, spec.Name)
	}
	total := 0
	for _, g := range spec.GroupDims {
		if g < 2 {
			return nil, fmt.Errorf("uci: group dims must be >= 2 in %s", spec.Name)
		}
		total += g
	}
	if total > spec.D {
		return nil, fmt.Errorf("uci: groups need %d attributes, spec has %d", total, spec.D)
	}

	r := rng.New(spec.Seed)
	cols := make([][]float64, spec.D)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	labels := make([]bool, n)
	// The first `outliers` objects are the minority class; shuffling object
	// order is unnecessary since all algorithms are order-insensitive.
	for i := 0; i < outliers; i++ {
		labels[i] = true
	}

	// Attribute layout: groups first, then noise.
	perm := r.Perm(spec.D)
	var groups []subspace.Subspace
	at := 0
	for _, g := range spec.GroupDims {
		groups = append(groups, subspace.New(perm[at:at+g]...))
		at += g
	}
	noise := perm[at:]

	// Noise attributes: uniform for everyone.
	for _, d := range noise {
		for i := 0; i < n; i++ {
			cols[d][i] = r.Float64()
		}
	}

	// Correlated groups with minority deviation.
	k := spec.Clusters
	if k < 2 {
		k = 2
	}
	for _, g := range groups {
		centers := make([]float64, k)
		for c := range centers {
			centers[c] = 0.15 + 0.7*(float64(c)+0.5*r.Float64())/float64(k)
		}
		for i := 0; i < n; i++ {
			c := centers[r.Intn(k)]
			for _, d := range g {
				cols[d][i] = clamp01(r.NormalScaled(c, spec.ClusterStddev))
			}
		}
		// Minority objects deviate in this group with probability 0.6 —
		// mirroring real data where a minority object is anomalous in some
		// attribute combinations, regular in others. Each deviating object
		// picks its attribute values from *independently* chosen cluster
		// centers (so marginals stay dense while the joint position leaves
		// the diagonal) with a widened spread, keeping the minority diffuse
		// instead of letting it form dense clusters of its own. Separation
		// is the per-attribute probability of leaving the home cluster.
		deviateProb := spec.DeviateProb
		if deviateProb <= 0 {
			deviateProb = 0.6
		}
		spread := spec.Spread
		if spread <= 0 {
			spread = 2.2
		}
		for i := 0; i < outliers; i++ {
			if r.Float64() > deviateProb {
				continue
			}
			home := centers[r.Intn(k)]
			for _, d := range g {
				c := home
				if r.Float64() < spec.Separation {
					c = centers[r.Intn(k)]
				}
				cols[d][i] = clamp01(r.NormalScaled(c, spec.ClusterStddev*spread))
			}
		}
	}

	// Trivial outliers: extreme in a single random attribute.
	trivial := int(float64(outliers) * spec.TrivialFrac)
	for t := 0; t < trivial; t++ {
		i := r.Intn(outliers)
		d := r.Intn(spec.D)
		if r.Float64() < 0.5 {
			cols[d][i] = clamp01(1 - 0.02*r.Float64())
		} else {
			cols[d][i] = clamp01(0.02 * r.Float64())
		}
	}

	names := make([]string, spec.D)
	for j := range names {
		names[j] = fmt.Sprintf("a%02d", j)
	}
	ds := dataset.MustNew(names, cols)
	return &dataset.Labeled{Data: ds, Outlier: labels}, nil
}

// Load generates the named dataset at the given scale.
func Load(name string, scale float64) (*dataset.Labeled, error) {
	spec, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return Generate(spec, scale)
}

// SortedNames returns the dataset names sorted alphabetically (for stable
// iteration in tests).
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
