// Package stream implements the sliding-window online outlier detector
// behind hics.NewStream, the hicsd /stream endpoint and `hics -stream`:
// every arriving row is scored against the current frozen model, the last
// Window rows are retained in a ring buffer, and every RefitEvery
// arrivals the model is refitted over the window and swapped atomically.
//
// The package is deliberately model-agnostic: it scores through the Model
// interface and refits through a RefitFunc, so the detector logic is unit
// testable without running the Monte Carlo pipeline, and the hics root
// package can wire it to hics.Model/hics.FitContext without an import
// cycle.
//
// # Refit modes
//
//   - synchronous (Config.Async = false): the refit runs inline on the
//     pushing goroutine, so the model a row is scored against is a pure
//     function of the input order — for a deterministic RefitFunc the
//     whole score sequence is bit-for-bit reproducible.
//   - asynchronous (Config.Async = true): the refit runs on a background
//     goroutine while scoring continues against the previous model;
//     throughput never stalls on a refit, at the price of a
//     scheduling-dependent swap point. Drain waits for an in-flight
//     refit, restoring the synchronous sequence when called after every
//     push.
//
// # Concurrency
//
// Push is single-producer: a stream is an ordered sequence, so calls must
// not be concurrent (the async refit goroutine is coordinated
// internally). Close aborts any in-flight refit and must only be called
// once pushing has stopped.
//
// # Observability
//
// Every detector reports into the process metrics registry
// (internal/metrics): active-detector and accepted-row counts, completed
// refits by mode (initial cold fit, inline sync, background async),
// refit failures and refit wall-time histograms — see docs/metrics.md
// for the full series reference. Config.Logger (optional) receives one
// structured record per refit; callers that serve requests pass a logger
// annotated with the request ID so events from async refit goroutines
// stay attributable to the session that spawned them.
package stream
