package stream

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hics/internal/metrics"
	"hics/internal/trace"
)

// Detector-level instrumentation, shared by every stream in the process
// (the hicsd /stream sessions and `hics -stream` alike). The refit mode
// label separates the initial cold fit from steady-state sync/async
// replacements, so a scrape can tell warmup cost from drift-following
// cost.
var (
	mDetectorsActive = metrics.Default.NewGauge("hics_stream_detectors_active",
		"Open streaming detectors (New minus Close).")
	mRows = metrics.Default.NewCounter("hics_stream_rows_total",
		"Rows accepted by streaming detectors (validated arrivals).")
	mRefits = metrics.Default.NewCounterVec("hics_stream_refits_total",
		"Completed streaming model fits by mode: the initial cold fit, inline sync refits, background async refits.",
		"mode")
	mRefitFailures = metrics.Default.NewCounter("hics_stream_refit_failures_total",
		"Streaming model fits that returned an error (cancelled async refits during Close excluded).")
	mRefitDuration = metrics.Default.NewHistogram("hics_stream_refit_duration_seconds",
		"Wall time of completed streaming model fits.", nil)
)

// Model is the frozen scoring state a detector scores arrivals against.
// *hics.Model satisfies it; tests substitute fakes.
type Model interface {
	// ScoreBatchContext scores the rows out of sample against the frozen
	// state; it must be safe for concurrent use with itself.
	ScoreBatchContext(ctx context.Context, rows [][]float64) ([]float64, error)
}

// RefitFunc fits a replacement model on a window snapshot, oldest row
// first. The slice and its rows are only valid for the duration of the
// call and must not be retained. A deterministic RefitFunc makes a
// synchronous-refit detector bit-for-bit reproducible.
type RefitFunc func(ctx context.Context, window [][]float64) (Model, error)

// Config wires a Detector.
type Config struct {
	// Model is the initial frozen model. Nil starts the detector cold:
	// arrivals are buffered unscored until the window fills, then Refit
	// fits the first model and the buffered rows are scored in one flush.
	Model Model
	// Refit fits a replacement model over the current window. Required
	// when Model is nil (the initial fit) or RefitEvery > 0.
	Refit RefitFunc
	// Window is the ring-buffer capacity: the number of most recent rows
	// a refit sees. Must be positive.
	Window int
	// RefitEvery is the refit cadence in arrivals; 0 never refits after
	// the initial model.
	RefitEvery int
	// Async moves refits onto a background goroutine; scoring continues
	// against the previous model until the swap. Requires RefitEvery > 0.
	Async bool
	// Dims fixes the expected row width; 0 infers it from the first
	// arrival.
	Dims int
	// Logger receives structured refit events (start, completion with
	// duration, failure). Nil discards them. Callers that serve requests
	// pass a logger annotated with the request ID, so events from async
	// refit goroutines stay attributable to the session that spawned
	// them.
	Logger *slog.Logger
}

// Result is one scored arrival.
type Result struct {
	// Index is the zero-based arrival number of the row.
	Index int
	// Score is the outlier score against the model current at scoring
	// time; higher means more outlying.
	Score float64
	// Refits is the number of completed model replacements at scoring
	// time (the initial cold fit does not count).
	Refits int
}

// Detector is the sliding-window online outlier detector. Construct with
// New; Push rows from one goroutine; Close when done.
type Detector struct {
	window     int
	refitEvery int
	async      bool
	dims       int
	refit      RefitFunc
	log        *slog.Logger

	model  atomic.Pointer[Model]
	refits atomic.Int64 // completed model replacements

	// Single-pusher state: owned by the Push goroutine.
	count    int         // total arrivals
	sinceFit int         // arrivals since the last refit trigger
	buf      [][]float64 // ring buffer, grows to window then wraps
	next     int         // slot the next row overwrites once full

	mu       sync.Mutex
	inflight bool          // an async refit is running
	done     chan struct{} // closed when the in-flight refit finishes
	err      error         // sticky async refit failure
	closed   bool

	baseCtx context.Context // lifecycle context of async refits
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New validates the configuration and constructs a Detector.
func New(cfg Config) (*Detector, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("stream: Window must be positive, got %d", cfg.Window)
	}
	if cfg.RefitEvery < 0 {
		return nil, fmt.Errorf("stream: RefitEvery must be non-negative, got %d (0 never refits)", cfg.RefitEvery)
	}
	if cfg.Async && cfg.RefitEvery == 0 {
		return nil, errors.New("stream: Async requires RefitEvery > 0")
	}
	if cfg.Refit == nil && cfg.Model == nil {
		return nil, errors.New("stream: a cold detector (no initial Model) needs a Refit function")
	}
	if cfg.Refit == nil && cfg.RefitEvery > 0 {
		return nil, errors.New("stream: RefitEvery > 0 needs a Refit function")
	}
	if cfg.Dims < 0 {
		return nil, fmt.Errorf("stream: Dims must be non-negative, got %d (0 infers the width from the first row)", cfg.Dims)
	}
	ctx, cancel := context.WithCancel(context.Background())
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	d := &Detector{
		window:     cfg.Window,
		refitEvery: cfg.RefitEvery,
		async:      cfg.Async,
		dims:       cfg.Dims,
		refit:      cfg.Refit,
		log:        log,
		buf:        make([][]float64, 0, cfg.Window),
		baseCtx:    ctx,
		cancel:     cancel,
	}
	if cfg.Model != nil {
		m := cfg.Model
		d.model.Store(&m)
	}
	mDetectorsActive.Add(1)
	return d, nil
}

// timedRefit runs the refit function with duration instrumentation and
// structured logging; mode labels the metric and log record.
func (d *Detector) timedRefit(ctx context.Context, mode string, window [][]float64) (Model, error) {
	// One span per refit — never per row — so a traced /stream session
	// shows its refits as children without touching the zero-alloc row
	// path. Free (nil span) when the session is not traced.
	ctx, span := trace.StartSpan(ctx, "stream.refit")
	span.SetAttr("mode", mode)
	span.SetAttr("window", len(window))
	defer span.End()
	start := time.Now()
	m, err := d.refit(ctx, window)
	elapsed := time.Since(start)
	if err != nil {
		// An abort during Close is the expected shutdown path; everything
		// else is a failed fit worth counting and logging.
		if d.baseCtx.Err() == nil {
			mRefitFailures.Inc()
			d.log.Warn("stream refit failed", "mode", mode, "window", len(window),
				"duration", elapsed, "error", err)
			span.SetError(err)
		}
		return nil, err
	}
	mRefits.With(mode).Inc()
	mRefitDuration.Observe(elapsed.Seconds())
	d.log.Debug("stream refit complete", "mode", mode, "window", len(window),
		"duration", elapsed)
	return m, nil
}

// pointScorer is the optional single-row fast path of a Model:
// *hics.Model implements it, so a warm detector scores one arrival
// without building the per-call slice headers and worker-pool machinery
// of a batch scoring pass. Batch and point scores are identical — the
// batch path calls the same per-point function.
type pointScorer interface {
	Score(point []float64) (float64, error)
}

// Push feeds one arriving row. The row is validated (width and
// finiteness, errors naming the arrival and attribute), scored against
// the current model, appended to the window, and — every RefitEvery
// arrivals on a full window — the model is refitted.
//
// The returned slice holds zero results (cold detector still warming
// up), one result (the common case), or a whole window of results (the
// flush after a cold detector's initial fit). The row slice is copied;
// callers may reuse it.
//
// On error the arrival is still consumed (it counts and stays in the
// window), so a stream can recover from a deadlined refit by pushing on
// with a fresh context. Push must not be called concurrently.
func (d *Detector) Push(ctx context.Context, row []float64) ([]Result, error) {
	return d.PushAppend(ctx, row, nil)
}

// PushAppend is Push appending the scored results to out and returning
// the extended slice — the allocation-free form for serving hot paths,
// which pass the same backing slice on every call. Semantics are
// otherwise identical to Push.
func (d *Detector) PushAppend(ctx context.Context, row []float64, out []Result) ([]Result, error) {
	d.mu.Lock()
	closed, sticky := d.closed, d.err
	d.mu.Unlock()
	if closed {
		return out, errors.New("stream: detector is closed")
	}
	if sticky != nil {
		return out, sticky
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	idx := d.count
	if len(row) == 0 {
		return out, fmt.Errorf("stream: row %d is empty", idx)
	}
	if d.dims == 0 {
		d.dims = len(row)
	}
	if len(row) != d.dims {
		return out, fmt.Errorf("stream: row %d has %d attributes, want %d", idx, len(row), d.dims)
	}
	for j, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return out, fmt.Errorf("stream: row %d attribute %d is %v, want a finite value", idx, j, v)
		}
	}
	d.count++
	mRows.Inc()

	cur := d.model.Load()
	if cur == nil {
		// Cold: buffer until the window fills, then fit the first model
		// and flush the whole window's scores (bit-identical to the
		// model's training scores — the rows are its training set). The
		// model is only installed once the flush has been scored, so a
		// fit or scoring failure (e.g. a deadline) leaves the detector
		// cold and the next push retries the whole warmup — no arrival
		// can lose its promised result.
		d.append(row)
		if len(d.buf) < d.window {
			return out, nil
		}
		win := d.chrono(false)
		m, err := d.timedRefit(ctx, "initial", win)
		if err != nil {
			return out, err
		}
		scores, err := m.ScoreBatchContext(ctx, win)
		if err != nil {
			return out, err
		}
		d.model.Store(&m)
		d.sinceFit = 0
		refits := int(d.refits.Load())
		first := d.count - len(scores)
		for i, s := range scores {
			out = append(out, Result{Index: first + i, Score: s, Refits: refits})
		}
		return out, nil
	}

	// The row joins the window before scoring: scoring reads only the
	// frozen model, so the order does not affect the score, and it keeps
	// the documented contract that an arrival consumed by a failing push
	// stays in the window.
	d.append(row)
	base := len(out)
	var score float64
	if ps, ok := (*cur).(pointScorer); ok {
		// Single-point fast path: same per-point scoring function as the
		// batch pass, minus its slice allocations and fan-out bookkeeping.
		s, err := ps.Score(row)
		if err != nil {
			return out, err
		}
		score = s
	} else {
		scores, err := (*cur).ScoreBatchContext(ctx, [][]float64{row})
		if err != nil {
			return out, err
		}
		score = scores[0]
	}
	out = append(out, Result{Index: idx, Score: score, Refits: int(d.refits.Load())})
	d.sinceFit++
	if d.refitEvery > 0 && d.sinceFit >= d.refitEvery && len(d.buf) == d.window {
		// Triggers on a part-filled window are deferred (sinceFit keeps
		// accumulating) until enough rows exist to refit on.
		d.sinceFit = 0
		if d.async {
			d.tryAsyncRefit(ctx)
		} else if err := d.syncRefit(ctx); err != nil {
			// The arrival is consumed but its result is withheld, exactly
			// like Push: the caller sees the slice it passed in.
			return out[:base], err
		}
	}
	return out, nil
}

// append copies row into the ring buffer, overwriting the oldest row once
// the window is full (the overwritten slot's backing array is reused).
func (d *Detector) append(row []float64) {
	if len(d.buf) < d.window {
		d.buf = append(d.buf, append([]float64(nil), row...))
		return
	}
	copy(d.buf[d.next], row)
	d.next = (d.next + 1) % d.window
}

// chrono assembles the window in arrival order, oldest first. With
// copyRows the rows are deep-copied (required when the snapshot outlives
// the call, i.e. for async refits — the ring slots get overwritten).
func (d *Detector) chrono(copyRows bool) [][]float64 {
	out := make([][]float64, 0, len(d.buf))
	if len(d.buf) < d.window {
		out = append(out, d.buf...)
	} else {
		out = append(out, d.buf[d.next:]...)
		out = append(out, d.buf[:d.next]...)
	}
	if copyRows {
		for i, r := range out {
			out[i] = append([]float64(nil), r...)
		}
	}
	return out
}

// syncRefit refits inline and swaps the model; the pushing goroutine
// carries the cost, keeping the score sequence deterministic.
func (d *Detector) syncRefit(ctx context.Context) error {
	m, err := d.timedRefit(ctx, "sync", d.chrono(false))
	if err != nil {
		return err
	}
	d.model.Store(&m)
	d.refits.Add(1)
	return nil
}

// tryAsyncRefit launches a background refit over a window snapshot,
// unless one is already running (triggers coalesce: the next chance is
// RefitEvery arrivals later). ctx is the triggering push's context,
// used only to link the refit span into the session's trace — the
// refit itself runs under the detector's lifecycle context, so a
// request deadline cannot abort a background fit.
func (d *Detector) tryAsyncRefit(ctx context.Context) {
	d.mu.Lock()
	if d.inflight || d.closed {
		d.mu.Unlock()
		return
	}
	d.inflight = true
	done := make(chan struct{})
	d.done = done
	d.mu.Unlock()

	snap := d.chrono(true)
	// Carry the session's span (if any) onto the lifecycle context so
	// the async refit appears in the trace while cancellation still
	// follows the detector, not the triggering push.
	rctx := trace.ContextWithSpan(d.baseCtx, trace.SpanFromContext(ctx))
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		m, err := d.timedRefit(rctx, "async", snap)
		d.mu.Lock()
		defer d.mu.Unlock()
		defer close(done)
		d.inflight = false
		if err != nil {
			// A refit aborted by Close is the expected shutdown path, not
			// a stream failure; any other error poisons the stream and
			// surfaces on the next Push (or Drain/Close).
			if d.baseCtx.Err() == nil && d.err == nil {
				d.err = err
			}
			return
		}
		d.model.Store(&m)
		d.refits.Add(1)
	}()
}

// Drain waits until no refit is in flight (a no-op for synchronous
// detectors) and reports any sticky refit failure. After a Drain the next
// Push scores against the newest model, so an async stream drained after
// every push reproduces the synchronous score sequence exactly.
func (d *Detector) Drain(ctx context.Context) error {
	d.mu.Lock()
	done, inflight, sticky := d.done, d.inflight, d.err
	d.mu.Unlock()
	if sticky != nil {
		return sticky
	}
	if !inflight {
		return nil
	}
	select {
	case <-done:
		d.mu.Lock()
		sticky = d.err
		d.mu.Unlock()
		return sticky
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close aborts any in-flight refit, waits for the background goroutine to
// exit, and reports any sticky refit failure. Idempotent; must not be
// called concurrently with Push.
func (d *Detector) Close() error {
	d.mu.Lock()
	if d.closed {
		sticky := d.err
		d.mu.Unlock()
		return sticky
	}
	d.closed = true
	d.mu.Unlock()
	mDetectorsActive.Add(-1)
	d.cancel()
	d.wg.Wait()
	d.mu.Lock()
	sticky := d.err
	d.mu.Unlock()
	return sticky
}

// Refits returns the number of completed model replacements (the initial
// cold fit does not count). Safe to call concurrently with an async
// refit.
func (d *Detector) Refits() int { return int(d.refits.Load()) }

// Seen returns the number of rows pushed so far.
func (d *Detector) Seen() int { return d.count }

// Warm reports whether the detector holds a model yet (false only for a
// cold detector still filling its first window).
func (d *Detector) Warm() bool { return d.model.Load() != nil }

// WindowLen returns the number of rows currently retained.
func (d *Detector) WindowLen() int { return len(d.buf) }
