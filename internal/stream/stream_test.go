package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeModel scores a row as gen + sum(row): the generation stamp makes
// model swaps visible in the score sequence.
type fakeModel struct {
	gen float64
}

func (f fakeModel) ScoreBatchContext(_ context.Context, rows [][]float64) ([]float64, error) {
	out := make([]float64, len(rows))
	for i, r := range rows {
		s := f.gen
		for _, v := range r {
			s += v
		}
		out[i] = s
	}
	return out, nil
}

// recordingRefit returns a RefitFunc that captures every window it is
// handed (deep-copied) and produces models with increasing generations.
func recordingRefit(windows *[][][]float64) RefitFunc {
	gen := 0.0
	return func(_ context.Context, window [][]float64) (Model, error) {
		snap := make([][]float64, len(window))
		for i, r := range window {
			snap[i] = append([]float64(nil), r...)
		}
		*windows = append(*windows, snap)
		gen += 1000
		return fakeModel{gen: gen}, nil
	}
}

func row(v float64) []float64 { return []float64{v, v} }

func TestNewValidation(t *testing.T) {
	refit := func(context.Context, [][]float64) (Model, error) { return fakeModel{}, nil }
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero window", Config{Refit: refit}, "Window"},
		{"negative window", Config{Window: -3, Refit: refit}, "Window"},
		{"negative refit cadence", Config{Window: 4, RefitEvery: -1, Refit: refit}, "RefitEvery"},
		{"async without refits", Config{Window: 4, Async: true, Refit: refit}, "Async"},
		{"cold without refit func", Config{Window: 4}, "Refit"},
		{"refits without refit func", Config{Window: 4, RefitEvery: 2, Model: fakeModel{}}, "Refit"},
		{"negative dims", Config{Window: 4, Refit: refit, Dims: -1}, "Dims"},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestWarmPushScoresAndSlides checks the basic warm-start flow: one
// result per push, indices counting arrivals, and refits receiving the
// chronologically ordered ring-buffer content.
func TestWarmPushScoresAndSlides(t *testing.T) {
	var windows [][][]float64
	d, err := New(Config{Model: fakeModel{}, Refit: recordingRefit(&windows), Window: 3, RefitEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	for i := 0; i < 7; i++ {
		res, err := d.Push(ctx, row(float64(i)))
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if len(res) != 1 || res[0].Index != i {
			t.Fatalf("push %d: results %+v", i, res)
		}
	}
	// The trigger at arrival 1 (sinceFit 2) is deferred — the window is
	// not full yet — so the first refit fires at arrival 2 over rows
	// 0..2, then every 2 arrivals: rows 2..4 at arrival 4, rows 4..6 at
	// arrival 6.
	want := [][][]float64{
		{row(0), row(1), row(2)},
		{row(2), row(3), row(4)},
		{row(4), row(5), row(6)},
	}
	if len(windows) != len(want) {
		t.Fatalf("refits = %d windows %v, want %d", len(windows), windows, len(want))
	}
	for k, w := range want {
		for i := range w {
			if windows[k][i][0] != w[i][0] {
				t.Errorf("refit %d window = %v, want %v", k, windows[k], w)
				break
			}
		}
	}
	if d.Refits() != 3 || d.Seen() != 7 || d.WindowLen() != 3 {
		t.Errorf("Refits=%d Seen=%d WindowLen=%d", d.Refits(), d.Seen(), d.WindowLen())
	}
	// Scores after the third refit carry its generation stamp.
	res, err := d.Push(ctx, row(0))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Score != 3000 || res[0].Refits != 3 {
		t.Errorf("post-refit result %+v, want score 3000 refits 3", res[0])
	}
}

// TestColdWarmupFlush checks a cold detector buffers silently, then
// flushes the whole first window with scores from the initial fit.
func TestColdWarmupFlush(t *testing.T) {
	var windows [][][]float64
	d, err := New(Config{Refit: recordingRefit(&windows), Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		res, err := d.Push(ctx, row(float64(i)))
		if err != nil || len(res) != 0 {
			t.Fatalf("warmup push %d: res %v err %v, want none", i, res, err)
		}
		if d.Warm() {
			t.Fatalf("detector warm after %d of 3 rows", i+1)
		}
	}
	res, err := d.Push(ctx, row(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("flush = %d results, want 3", len(res))
	}
	for i, r := range res {
		want := 1000 + 2*float64(i) // gen 1000 + sum(row(i))
		if r.Index != i || r.Score != want || r.Refits != 0 {
			t.Errorf("flush[%d] = %+v, want index %d score %v refits 0", i, r, i, want)
		}
	}
	if len(windows) != 1 || !d.Warm() {
		t.Fatalf("initial fit count = %d, warm = %v", len(windows), d.Warm())
	}
	if d.Refits() != 0 {
		t.Errorf("initial cold fit counted as a refit")
	}
}

func TestPushValidation(t *testing.T) {
	d, err := New(Config{Model: fakeModel{}, Window: 3, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	if _, err := d.Push(ctx, nil); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty row: %v", err)
	}
	if _, err := d.Push(ctx, []float64{1}); err == nil || !strings.Contains(err.Error(), "attributes") {
		t.Errorf("short row: %v", err)
	}
	// Rejected rows never enter the stream, so they do not consume an
	// arrival index: this is still row 0.
	if _, err := d.Push(ctx, []float64{1, math.NaN()}); err == nil ||
		!strings.Contains(err.Error(), "row 0") || !strings.Contains(err.Error(), "attribute 1") {
		t.Errorf("NaN row: err = %v, want row/attribute named", err)
	}
	if _, err := d.Push(ctx, []float64{math.Inf(-1), 1}); err == nil || !strings.Contains(err.Error(), "attribute 0") {
		t.Errorf("Inf row: %v", err)
	}
	// A cancelled context never scores.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := d.Push(cctx, row(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled push: %v", err)
	}
}

// TestRowCopied verifies the caller can reuse the pushed slice: the ring
// buffer must hold copies.
func TestRowCopied(t *testing.T) {
	var windows [][][]float64
	d, err := New(Config{Model: fakeModel{}, Refit: recordingRefit(&windows), Window: 2, RefitEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := []float64{1, 1}
	for i := 0; i < 2; i++ {
		buf[0], buf[1] = float64(i), float64(i)
		if _, err := d.Push(context.Background(), buf); err != nil {
			t.Fatal(err)
		}
	}
	if len(windows) != 1 {
		t.Fatalf("refits = %d, want 1", len(windows))
	}
	if windows[0][0][0] != 0 || windows[0][1][0] != 1 {
		t.Errorf("refit saw %v: pushed slice was not copied", windows[0])
	}
}

// TestSyncRefitCancellation: a refit that observes its context must
// surface ctx.Err() from Push, and pushing on with a fresh context
// recovers.
func TestSyncRefitCancellation(t *testing.T) {
	blockRefit := func(ctx context.Context, _ [][]float64) (Model, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	d, err := New(Config{Model: fakeModel{}, Refit: blockRefit, Window: 2, RefitEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := d.Push(ctx, row(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(ctx, row(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("refit-triggering push: err = %v, want deadline exceeded", err)
	}
	// The failed sync refit is not sticky: sinceFit was reset at the
	// trigger, so the next push scores normally with a fresh context.
	if _, err := d.Push(context.Background(), row(2)); err != nil {
		t.Fatalf("push after deadlined refit: %v", err)
	}
}

// TestSyncRefitRecovers: after a deadlined refit the stream keeps
// working, and the next trigger with a healthy context succeeds.
func TestSyncRefitRecovers(t *testing.T) {
	fail := true
	refit := func(ctx context.Context, _ [][]float64) (Model, error) {
		if fail {
			return nil, context.DeadlineExceeded
		}
		return fakeModel{gen: 1000}, nil
	}
	d, err := New(Config{Model: fakeModel{}, Refit: refit, Window: 2, RefitEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	if _, err := d.Push(ctx, row(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(ctx, row(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error from refit, got %v", err)
	}
	fail = false
	// sinceFit was reset at the trigger; two more arrivals re-trigger.
	if _, err := d.Push(ctx, row(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(ctx, row(3)); err != nil {
		t.Fatal(err)
	}
	if d.Refits() != 1 {
		t.Errorf("Refits = %d after recovery, want 1", d.Refits())
	}
}

// TestAsyncRefitKeepsScoring: with the refit blocked, pushes keep scoring
// against the old model; releasing the refit and draining swaps it in.
func TestAsyncRefitKeepsScoring(t *testing.T) {
	release := make(chan struct{})
	var refitCalls atomic.Int64
	refit := func(ctx context.Context, _ [][]float64) (Model, error) {
		refitCalls.Add(1)
		select {
		case <-release:
			return fakeModel{gen: 1000}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	d, err := New(Config{Model: fakeModel{}, Refit: refit, Window: 2, RefitEvery: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	// Arrival 1 fills the window and triggers the (blocked) async refit;
	// arrivals 2..5 keep scoring on generation 0 (two more triggers
	// coalesce into the in-flight refit).
	for i := 0; i < 6; i++ {
		res, err := d.Push(ctx, row(float64(i)))
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if res[0].Score != 2*float64(i) || res[0].Refits != 0 {
			t.Fatalf("push %d scored %+v, want old model (gen 0)", i, res[0])
		}
	}
	// The launch happens on a background goroutine; wait for it, then
	// check the two later triggers coalesced into the in-flight refit.
	for i := 0; i < 500 && refitCalls.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if n := refitCalls.Load(); n != 1 {
		t.Fatalf("refit launched %d times while blocked, want 1 (coalesced)", n)
	}
	close(release)
	if err := d.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := d.Push(ctx, row(0))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Score != 1000 || res[0].Refits != 1 {
		t.Errorf("post-drain result %+v, want gen-1000 model, refits 1", res[0])
	}
}

// TestAsyncRefitErrorPoisons: a failed async refit surfaces on the next
// Push and on Close.
func TestAsyncRefitErrorPoisons(t *testing.T) {
	boom := errors.New("refit exploded")
	refit := func(context.Context, [][]float64) (Model, error) { return nil, boom }
	d, err := New(Config{Model: fakeModel{}, Refit: refit, Window: 2, RefitEvery: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := d.Push(ctx, row(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(ctx, row(1)); err != nil { // triggers the failing refit
		t.Fatal(err)
	}
	if err := d.Drain(ctx); !errors.Is(err, boom) {
		t.Fatalf("Drain = %v, want the refit error", err)
	}
	if _, err := d.Push(ctx, row(2)); !errors.Is(err, boom) {
		t.Fatalf("Push after failed refit = %v, want the refit error", err)
	}
	if err := d.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want the refit error", err)
	}
}

// TestCloseAbortsInflightRefit: Close cancels a blocked async refit and
// joins its goroutine without recording a sticky error, and no goroutine
// outlives the detector.
func TestCloseAbortsInflightRefit(t *testing.T) {
	before := runtime.NumGoroutine()
	refit := func(ctx context.Context, _ [][]float64) (Model, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	d, err := New(Config{Model: fakeModel{}, Refit: refit, Window: 2, RefitEvery: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := d.Push(ctx, row(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(ctx, row(1)); err != nil { // blocked refit in flight
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close after aborting a refit = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return; the refit was not cancelled")
	}
	if _, err := d.Push(ctx, row(2)); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Push after Close = %v, want closed error", err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	// Give any stray goroutine a moment, then compare counts.
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines %d -> %d: detector leaked", before, after)
	}
}

// TestAsyncDrainedMatchesSync: draining after every push makes the async
// score sequence bit-identical to the synchronous one.
func TestAsyncDrainedMatchesSync(t *testing.T) {
	input := make([][]float64, 20)
	for i := range input {
		input[i] = []float64{float64(i), float64(2 * i)}
	}
	run := func(async bool) []float64 {
		var windows [][][]float64
		d, err := New(Config{Model: fakeModel{}, Refit: recordingRefit(&windows), Window: 4, RefitEvery: 3, Async: async})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		var scores []float64
		for _, r := range input {
			res, err := d.Push(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			for _, rr := range res {
				scores = append(scores, rr.Score)
			}
			if async {
				if err := d.Drain(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
		}
		return scores
	}
	sync, asyncDrained := run(false), run(true)
	if len(sync) != len(asyncDrained) {
		t.Fatalf("sync scored %d rows, drained async %d", len(sync), len(asyncDrained))
	}
	for i := range sync {
		if sync[i] != asyncDrained[i] {
			t.Fatalf("score %d: sync %v, drained async %v", i, sync[i], asyncDrained[i])
		}
	}
}

// TestDimsInferredFromFirstRow: without Config.Dims the first arrival
// fixes the width.
func TestDimsInferredFromFirstRow(t *testing.T) {
	d, err := New(Config{Model: fakeModel{}, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Push(context.Background(), []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(context.Background(), []float64{1}); err == nil || !strings.Contains(err.Error(), "want 3") {
		t.Errorf("width mismatch after inference: %v", err)
	}
}

func TestZeroRowStream(t *testing.T) {
	d, err := New(Config{Model: fakeModel{}, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Drain(context.Background()); err != nil {
		t.Errorf("Drain on idle detector: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close with zero rows: %v", err)
	}
}

// ExampleDetector demonstrates the warm-start flow.
func ExampleDetector() {
	d, _ := New(Config{Model: fakeModel{}, Window: 4})
	defer d.Close()
	res, _ := d.Push(context.Background(), []float64{1, 2})
	fmt.Println(res[0].Index, res[0].Score)
	// Output: 0 3
}
