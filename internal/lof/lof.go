// Package lof implements the density-based outlier scores used as the
// ranking step of the two-step pipeline: the Local Outlier Factor of
// Breunig et al. (SIGMOD 2000) — the paper's reference scorer — and the
// simpler average-kNN-distance score (the ORCA-style alternative named in
// the paper's future work).
//
// Both scorers accept an explicit subspace so that, as proposed by
// Lazarevic & Kumar and adopted by HiCS, object distances are measured
// only w.r.t. the given projection.
package lof

import (
	"fmt"
	"math"

	"hics/internal/dataset"
	"hics/internal/knn"
)

// DefaultMinPts is the LOF neighborhood size used throughout the paper's
// experiments when nothing else is specified.
const DefaultMinPts = 10

// Scores computes the Local Outlier Factor of every object w.r.t. the given
// subspace dims. minPts is the neighborhood size (MinPts in the original
// paper); values below 1 fall back to DefaultMinPts.
//
// Duplicate-heavy data is handled per the original definition: a point
// whose neighborhood has zero reachability distance gets an infinite local
// reachability density, and ratios ∞/∞ resolve to 1.
func Scores(ds *dataset.Dataset, dims []int, minPts int) ([]float64, error) {
	if minPts < 1 {
		minPts = DefaultMinPts
	}
	searcher, err := knn.New(ds, dims)
	if err != nil {
		return nil, fmt.Errorf("lof: %w", err)
	}
	n := ds.N()
	if n < 2 {
		return nil, fmt.Errorf("lof: need at least 2 objects, have %d", n)
	}

	// Pass 1: materialize neighborhoods and k-distances.
	neighborhoods := make([][]knn.Neighbor, n)
	kdist := make([]float64, n)
	sc := searcher.NewScratch()
	for i := 0; i < n; i++ {
		nb, kd := searcher.Neighborhood(i, minPts, sc, nil)
		neighborhoods[i] = append([]knn.Neighbor(nil), nb...)
		kdist[i] = kd
	}

	// Pass 2: local reachability densities.
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, nb := range neighborhoods[i] {
			reach := nb.Dist
			if kdist[nb.ID] > reach {
				reach = kdist[nb.ID]
			}
			sum += reach
		}
		if sum == 0 || len(neighborhoods[i]) == 0 {
			lrd[i] = math.Inf(1)
		} else {
			lrd[i] = float64(len(neighborhoods[i])) / sum
		}
	}

	// Pass 3: LOF = mean ratio of neighbor lrd to own lrd.
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		if len(neighborhoods[i]) == 0 {
			scores[i] = 1
			continue
		}
		sum := 0.0
		for _, nb := range neighborhoods[i] {
			r := lrd[nb.ID] / lrd[i]
			if math.IsInf(lrd[nb.ID], 1) && math.IsInf(lrd[i], 1) {
				r = 1
			}
			sum += r
		}
		scores[i] = sum / float64(len(neighborhoods[i]))
	}
	return scores, nil
}

// KNNScores computes the average distance to the k nearest neighbors of
// every object in the given subspace — a simple density-based score that is
// monotone in "outlierness" like LOF but cheaper and non-local.
func KNNScores(ds *dataset.Dataset, dims []int, k int) ([]float64, error) {
	if k < 1 {
		k = DefaultMinPts
	}
	searcher, err := knn.New(ds, dims)
	if err != nil {
		return nil, fmt.Errorf("lof: %w", err)
	}
	n := ds.N()
	if n < 2 {
		return nil, fmt.Errorf("lof: need at least 2 objects, have %d", n)
	}
	scores := make([]float64, n)
	sc := searcher.NewScratch()
	var buf []knn.Neighbor
	for i := 0; i < n; i++ {
		nb, _ := searcher.Neighborhood(i, k, sc, buf)
		buf = nb
		if len(nb) == 0 {
			continue
		}
		sum := 0.0
		for _, x := range nb {
			sum += x.Dist
		}
		scores[i] = sum / float64(len(nb))
	}
	return scores, nil
}
