// Package lof implements the density-based outlier scores used as the
// ranking step of the two-step pipeline: the Local Outlier Factor of
// Breunig et al. (SIGMOD 2000) — the paper's reference scorer — and the
// simpler average-kNN-distance score (the ORCA-style alternative named in
// the paper's future work).
//
// Both scorers accept an explicit subspace so that, as proposed by
// Lazarevic & Kumar and adopted by HiCS, object distances are measured
// only w.r.t. the given projection. Neighborhoods come from the
// internal/neighbors index subsystem; the *With variants pin a backend,
// the plain variants use automatic selection. Backends are bit-for-bit
// equivalent, so the choice only affects speed.
package lof

import (
	"fmt"
	"math"

	"hics/internal/dataset"
	"hics/internal/neighbors"
)

// DefaultMinPts is the LOF neighborhood size used throughout the paper's
// experiments when nothing else is specified.
const DefaultMinPts = 10

// Scores computes the Local Outlier Factor of every object w.r.t. the
// given subspace dims with the automatically selected neighbor index.
func Scores(ds *dataset.Dataset, dims []int, minPts int) ([]float64, error) {
	return ScoresWith(ds, dims, minPts, neighbors.KindAuto)
}

// ScoresWith computes the Local Outlier Factor of every object w.r.t. the
// given subspace dims, using the requested neighbor-index backend. minPts
// is the neighborhood size (MinPts in the original paper); values below 1
// fall back to DefaultMinPts.
//
// Duplicate-heavy data is handled per the original definition: a point
// whose neighborhood has zero reachability distance gets an infinite local
// reachability density, and ratios ∞/∞ resolve to 1.
func ScoresWith(ds *dataset.Dataset, dims []int, minPts int, kind neighbors.Kind) ([]float64, error) {
	if minPts < 1 {
		minPts = DefaultMinPts
	}
	idx, err := neighbors.New(ds, dims, kind)
	if err != nil {
		return nil, fmt.Errorf("lof: %w", err)
	}
	n := ds.N()
	if n < 2 {
		return nil, fmt.Errorf("lof: need at least 2 objects, have %d", n)
	}

	// Pass 1: materialize neighborhoods and k-distances (batched, parallel).
	neighborhoods, kdist := idx.KNNAll(minPts)

	// Pass 2: local reachability densities.
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, nb := range neighborhoods[i] {
			reach := nb.Dist
			if kdist[nb.ID] > reach {
				reach = kdist[nb.ID]
			}
			sum += reach
		}
		if sum == 0 || len(neighborhoods[i]) == 0 {
			lrd[i] = math.Inf(1)
		} else {
			lrd[i] = float64(len(neighborhoods[i])) / sum
		}
	}

	// Pass 3: LOF = mean ratio of neighbor lrd to own lrd.
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		if len(neighborhoods[i]) == 0 {
			scores[i] = 1
			continue
		}
		sum := 0.0
		for _, nb := range neighborhoods[i] {
			r := lrd[nb.ID] / lrd[i]
			if math.IsInf(lrd[nb.ID], 1) && math.IsInf(lrd[i], 1) {
				r = 1
			}
			sum += r
		}
		scores[i] = sum / float64(len(neighborhoods[i]))
	}
	return scores, nil
}

// KNNScores computes the average-kNN-distance score with the automatically
// selected neighbor index.
func KNNScores(ds *dataset.Dataset, dims []int, k int) ([]float64, error) {
	return KNNScoresWith(ds, dims, k, neighbors.KindAuto)
}

// KNNScoresWith computes the average distance to the k nearest neighbors
// of every object in the given subspace — a simple density-based score
// that is monotone in "outlierness" like LOF but cheaper and non-local —
// using the requested neighbor-index backend.
func KNNScoresWith(ds *dataset.Dataset, dims []int, k int, kind neighbors.Kind) ([]float64, error) {
	if k < 1 {
		k = DefaultMinPts
	}
	idx, err := neighbors.New(ds, dims, kind)
	if err != nil {
		return nil, fmt.Errorf("lof: %w", err)
	}
	n := ds.N()
	if n < 2 {
		return nil, fmt.Errorf("lof: need at least 2 objects, have %d", n)
	}
	neighborhoods, _ := idx.KNNAll(k)
	scores := make([]float64, n)
	for i, nb := range neighborhoods {
		if len(nb) == 0 {
			continue
		}
		sum := 0.0
		for _, x := range nb {
			sum += x.Dist
		}
		scores[i] = sum / float64(len(nb))
	}
	return scores, nil
}
