// Package lof implements the density-based outlier scores used as the
// ranking step of the two-step pipeline: the Local Outlier Factor of
// Breunig et al. (SIGMOD 2000) — the paper's reference scorer — and the
// simpler average-kNN-distance score (the ORCA-style alternative named in
// the paper's future work).
//
// Both scorers accept an explicit subspace so that, as proposed by
// Lazarevic & Kumar and adopted by HiCS, object distances are measured
// only w.r.t. the given projection. Neighborhoods come from the
// internal/neighbors index subsystem; the *With variants pin a backend,
// the plain variants use automatic selection. Backends are bit-for-bit
// equivalent, so the choice only affects speed.
//
// Beyond the batch scorers the package supports a fit/score split: Fit
// (resp. FitKNN) freezes the per-subspace state a query needs — the
// neighbor index plus, for LOF, the training k-distances and local
// reachability densities — and ScoreQuery scores an out-of-sample point
// against that state without refitting, following the standard
// generalization of LOF to query points (the query participates only in
// its own neighborhood, never in the training statistics).
package lof

import (
	"context"
	"fmt"
	"math"
	"sync"

	"hics/internal/dataset"
	"hics/internal/neighbors"
	"hics/internal/trace"
)

// DefaultMinPts is the LOF neighborhood size used throughout the paper's
// experiments when nothing else is specified.
const DefaultMinPts = 10

// Scores computes the Local Outlier Factor of every object w.r.t. the
// given subspace dims with the automatically selected neighbor index.
func Scores(ds *dataset.Dataset, dims []int, minPts int) ([]float64, error) {
	return ScoresWith(ds, dims, minPts, neighbors.KindAuto)
}

// ScoresWith computes the Local Outlier Factor of every object w.r.t. the
// given subspace dims, using the requested neighbor-index backend. minPts
// is the neighborhood size (MinPts in the original paper); values below 1
// fall back to DefaultMinPts.
//
// Duplicate-heavy data is handled per the original definition: a point
// whose neighborhood has zero reachability distance gets an infinite local
// reachability density, and ratios ∞/∞ resolve to 1.
func ScoresWith(ds *dataset.Dataset, dims []int, minPts int, kind neighbors.Kind) ([]float64, error) {
	_, scores, err := Fit(ds, dims, minPts, kind)
	return scores, err
}

// ScoresContext is ScoresWith with cooperative cancellation and a bound
// on the batch-pass parallelism (workers <= 0 means one per CPU): a
// cancelled ctx stops the neighborhood pass within one chunk of queries
// per worker. Results are bit-for-bit independent of both.
func ScoresContext(ctx context.Context, ds *dataset.Dataset, dims []int, minPts int, kind neighbors.Kind, workers int) ([]float64, error) {
	_, scores, err := FitContext(ctx, ds, dims, minPts, kind, workers)
	return scores, err
}

// buildIndex constructs the neighbor index under a trace span, so a
// traced request shows each per-subspace index build as its own phase
// (the dominant cost for the tree and LSH backends). ctx carries only
// the span — index construction is not cancellable.
func buildIndex(ctx context.Context, ds *dataset.Dataset, dims []int, kind neighbors.Kind) (neighbors.Index, error) {
	_, span := trace.StartSpan(ctx, "neighbors.build")
	span.SetAttr("kind", kind.String())
	span.SetAttr("dims", len(dims))
	span.SetAttr("objects", ds.N())
	idx, err := neighbors.New(ds, dims, kind)
	span.SetError(err)
	span.End()
	return idx, err
}

// Fitted is the frozen state of a LOF fit on one subspace: the neighbor
// index over the training objects plus their k-distances and local
// reachability densities. It scores out-of-sample points via ScoreQuery
// and is safe for concurrent queries. Training scores are returned by Fit
// but not retained — query scoring only needs kdist and lrd.
type Fitted struct {
	idx    neighbors.Index
	minPts int
	kdist  []float64
	lrd    []float64

	scratch sync.Pool // *queryScratch, per concurrent query
}

type queryScratch struct {
	sc   *neighbors.Scratch
	buf  []neighbors.Neighbor
	proj []float64
}

// Fit runs the batch LOF passes on the given subspace and freezes the
// state an out-of-sample query needs, returning it together with the
// training LOF scores — bit-for-bit the ScoresWith result (ScoresWith is
// implemented on top of Fit).
func Fit(ds *dataset.Dataset, dims []int, minPts int, kind neighbors.Kind) (*Fitted, []float64, error) {
	return FitContext(context.Background(), ds, dims, minPts, kind, 0)
}

// FitContext is Fit with cooperative cancellation and a bound on the
// batch-pass parallelism (workers <= 0 means one per CPU). The dominant
// neighborhood pass observes ctx between query chunks; the linear
// follow-up passes run to completion.
func FitContext(ctx context.Context, ds *dataset.Dataset, dims []int, minPts int, kind neighbors.Kind, workers int) (*Fitted, []float64, error) {
	if minPts < 1 {
		minPts = DefaultMinPts
	}
	idx, err := buildIndex(ctx, ds, dims, kind)
	if err != nil {
		return nil, nil, fmt.Errorf("lof: %w", err)
	}
	n := ds.N()
	if n < 2 {
		return nil, nil, fmt.Errorf("lof: need at least 2 objects, have %d", n)
	}

	// Pass 1: materialize neighborhoods and k-distances (batched, parallel).
	neighborhoods, kdist, err := idx.KNNAllContext(ctx, minPts, workers)
	if err != nil {
		return nil, nil, err
	}

	// Pass 2: local reachability densities.
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, nb := range neighborhoods[i] {
			reach := nb.Dist
			if kdist[nb.ID] > reach {
				reach = kdist[nb.ID]
			}
			sum += reach
		}
		if sum == 0 || len(neighborhoods[i]) == 0 {
			lrd[i] = math.Inf(1)
		} else {
			lrd[i] = float64(len(neighborhoods[i])) / sum
		}
	}

	// Pass 3: LOF = mean ratio of neighbor lrd to own lrd.
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		if len(neighborhoods[i]) == 0 {
			scores[i] = 1
			continue
		}
		sum := 0.0
		for _, nb := range neighborhoods[i] {
			r := lrd[nb.ID] / lrd[i]
			if math.IsInf(lrd[nb.ID], 1) && math.IsInf(lrd[i], 1) {
				r = 1
			}
			sum += r
		}
		scores[i] = sum / float64(len(neighborhoods[i]))
	}
	return newFitted(idx, minPts, kdist, lrd), scores, nil
}

// NewFitted reassembles a Fitted from persisted state: the (rebuilt)
// neighbor index plus the stored k-distances and local reachability
// densities.
func NewFitted(idx neighbors.Index, minPts int, kdist, lrd []float64) (*Fitted, error) {
	if minPts < 1 {
		return nil, fmt.Errorf("lof: fitted state needs minPts >= 1, got %d", minPts)
	}
	if len(kdist) != idx.N() || len(lrd) != idx.N() {
		return nil, fmt.Errorf("lof: fitted state for %d objects has %d k-distances and %d lrd values",
			idx.N(), len(kdist), len(lrd))
	}
	return newFitted(idx, minPts, kdist, lrd), nil
}

func newFitted(idx neighbors.Index, minPts int, kdist, lrd []float64) *Fitted {
	f := &Fitted{idx: idx, minPts: minPts, kdist: kdist, lrd: lrd}
	f.scratch.New = func() any { return &queryScratch{sc: idx.NewScratch()} }
	return f
}

// MinPts returns the effective neighborhood size of the fit.
func (f *Fitted) MinPts() int { return f.minPts }

// Kind reports the resolved neighbor-index backend of the fit.
func (f *Fitted) Kind() neighbors.Kind { return f.idx.Kind() }

// N returns the number of training objects.
func (f *Fitted) N() int { return f.idx.N() }

// KDist returns the training k-distances (shared slice, read-only).
func (f *Fitted) KDist() []float64 { return f.kdist }

// LRD returns the training local reachability densities (shared slice,
// read-only).
func (f *Fitted) LRD() []float64 { return f.lrd }

// ScoreQuery computes the LOF of an out-of-sample point q (given in
// subspace coordinates, one value per fitted dimension) against the
// training state: the query's neighborhood is found among the training
// objects, its reachability distances use the frozen training k-distances,
// and the score is the mean ratio of neighbor lrd to the query's own lrd —
// exactly the batch formula with the query as an extra, non-indexed
// object. Safe for concurrent use.
func (f *Fitted) ScoreQuery(q []float64) float64 {
	s := f.scratch.Get().(*queryScratch)
	defer f.scratch.Put(s)
	return f.scoreQuery(q, s)
}

// ScoreQueryAt is ScoreQuery for a full-space point, projected onto dims
// into pooled scratch — the allocation-free form for serving hot paths.
func (f *Fitted) ScoreQueryAt(full []float64, dims []int) float64 {
	s := f.scratch.Get().(*queryScratch)
	defer f.scratch.Put(s)
	proj := s.proj[:0]
	for _, d := range dims {
		proj = append(proj, full[d])
	}
	s.proj = proj
	return f.scoreQuery(proj, s)
}

func (f *Fitted) scoreQuery(q []float64, s *queryScratch) float64 {
	nb, _ := f.idx.KNNPoint(q, f.minPts, s.sc, s.buf[:0])
	s.buf = nb
	if len(nb) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range nb {
		reach := x.Dist
		if f.kdist[x.ID] > reach {
			reach = f.kdist[x.ID]
		}
		sum += reach
	}
	lrdq := math.Inf(1)
	if sum != 0 {
		lrdq = float64(len(nb)) / sum
	}
	total := 0.0
	for _, x := range nb {
		r := f.lrd[x.ID] / lrdq
		if math.IsInf(f.lrd[x.ID], 1) && math.IsInf(lrdq, 1) {
			r = 1
		}
		total += r
	}
	return total / float64(len(nb))
}

// KNNScores computes the average-kNN-distance score with the automatically
// selected neighbor index.
func KNNScores(ds *dataset.Dataset, dims []int, k int) ([]float64, error) {
	return KNNScoresWith(ds, dims, k, neighbors.KindAuto)
}

// KNNScoresWith computes the average distance to the k nearest neighbors
// of every object in the given subspace — a simple density-based score
// that is monotone in "outlierness" like LOF but cheaper and non-local —
// using the requested neighbor-index backend.
func KNNScoresWith(ds *dataset.Dataset, dims []int, k int, kind neighbors.Kind) ([]float64, error) {
	_, scores, err := FitKNN(ds, dims, k, kind)
	return scores, err
}

// KNNScoresContext is KNNScoresWith with cooperative cancellation and a
// bound on the batch-pass parallelism, mirroring ScoresContext.
func KNNScoresContext(ctx context.Context, ds *dataset.Dataset, dims []int, k int, kind neighbors.Kind, workers int) ([]float64, error) {
	_, scores, err := FitKNNContext(ctx, ds, dims, k, kind, workers)
	return scores, err
}

// FittedKNN is the frozen state of an average-kNN-distance fit on one
// subspace. Unlike LOF the score needs no per-object training statistics —
// the neighbor index alone answers queries. Safe for concurrent queries.
type FittedKNN struct {
	idx neighbors.Index
	k   int

	scratch sync.Pool // *queryScratch
}

// FitKNN freezes the neighbor index for out-of-sample queries and returns
// it together with the batch average-kNN-distance training scores —
// bit-for-bit the KNNScoresWith result.
func FitKNN(ds *dataset.Dataset, dims []int, k int, kind neighbors.Kind) (*FittedKNN, []float64, error) {
	return FitKNNContext(context.Background(), ds, dims, k, kind, 0)
}

// FitKNNContext is FitKNN with cooperative cancellation and a bound on
// the batch-pass parallelism, mirroring FitContext.
func FitKNNContext(ctx context.Context, ds *dataset.Dataset, dims []int, k int, kind neighbors.Kind, workers int) (*FittedKNN, []float64, error) {
	if k < 1 {
		k = DefaultMinPts
	}
	idx, err := buildIndex(ctx, ds, dims, kind)
	if err != nil {
		return nil, nil, fmt.Errorf("lof: %w", err)
	}
	n := ds.N()
	if n < 2 {
		return nil, nil, fmt.Errorf("lof: need at least 2 objects, have %d", n)
	}
	neighborhoods, _, err := idx.KNNAllContext(ctx, k, workers)
	if err != nil {
		return nil, nil, err
	}
	scores := make([]float64, n)
	for i, nb := range neighborhoods {
		if len(nb) == 0 {
			continue
		}
		sum := 0.0
		for _, x := range nb {
			sum += x.Dist
		}
		scores[i] = sum / float64(len(nb))
	}
	return newFittedKNN(idx, k), scores, nil
}

// NewFittedKNN reassembles a FittedKNN from persisted state.
func NewFittedKNN(idx neighbors.Index, k int) (*FittedKNN, error) {
	if k < 1 {
		return nil, fmt.Errorf("lof: fitted state needs k >= 1, got %d", k)
	}
	return newFittedKNN(idx, k), nil
}

func newFittedKNN(idx neighbors.Index, k int) *FittedKNN {
	f := &FittedKNN{idx: idx, k: k}
	f.scratch.New = func() any { return &queryScratch{sc: idx.NewScratch()} }
	return f
}

// K returns the effective neighborhood size of the fit.
func (f *FittedKNN) K() int { return f.k }

// Kind reports the resolved neighbor-index backend of the fit.
func (f *FittedKNN) Kind() neighbors.Kind { return f.idx.Kind() }

// N returns the number of training objects.
func (f *FittedKNN) N() int { return f.idx.N() }

// ScoreQuery computes the average distance from the out-of-sample point q
// (in subspace coordinates) to its k nearest training objects. Safe for
// concurrent use.
func (f *FittedKNN) ScoreQuery(q []float64) float64 {
	s := f.scratch.Get().(*queryScratch)
	defer f.scratch.Put(s)
	return f.scoreQuery(q, s)
}

// ScoreQueryAt is ScoreQuery for a full-space point, projected onto dims
// into pooled scratch.
func (f *FittedKNN) ScoreQueryAt(full []float64, dims []int) float64 {
	s := f.scratch.Get().(*queryScratch)
	defer f.scratch.Put(s)
	proj := s.proj[:0]
	for _, d := range dims {
		proj = append(proj, full[d])
	}
	s.proj = proj
	return f.scoreQuery(proj, s)
}

func (f *FittedKNN) scoreQuery(q []float64, s *queryScratch) float64 {
	nb, _ := f.idx.KNNPoint(q, f.k, s.sc, s.buf[:0])
	s.buf = nb
	if len(nb) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range nb {
		sum += x.Dist
	}
	return sum / float64(len(nb))
}
