package lof

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
	"hics/internal/neighbors"
	"hics/internal/rng"
)

// clusterWithOutlier builds a tight Gaussian blob plus one far-away point
// (the last object).
func clusterWithOutlier(seed uint64, n int) *dataset.Dataset {
	r := rng.New(seed)
	x := make([]float64, n+1)
	y := make([]float64, n+1)
	for i := 0; i < n; i++ {
		x[i] = r.NormalScaled(0, 0.1)
		y[i] = r.NormalScaled(0, 0.1)
	}
	x[n], y[n] = 5, 5
	return dataset.MustNew(nil, [][]float64{x, y})
}

func TestLOFFlagsObviousOutlier(t *testing.T) {
	ds := clusterWithOutlier(1, 60)
	scores, err := Scores(ds, []int{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := scores[len(scores)-1]
	for i := 0; i < len(scores)-1; i++ {
		if scores[i] >= out {
			t.Fatalf("inlier %d score %v >= outlier score %v", i, scores[i], out)
		}
	}
	if out < 2 {
		t.Errorf("outlier LOF = %v, expected clearly above cluster scores", out)
	}
}

func TestLOFUniformScoresNearOne(t *testing.T) {
	// Points on a regular grid have uniform density: LOF ≈ 1 everywhere.
	var x, y []float64
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			x = append(x, float64(i))
			y = append(y, float64(j))
		}
	}
	ds := dataset.MustNew(nil, [][]float64{x, y})
	scores, err := Scores(ds, []int{0, 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if s < 0.8 || s > 1.35 {
			t.Errorf("grid point %d LOF = %v, want ~1", i, s)
		}
	}
}

func TestLOFSubspaceRestriction(t *testing.T) {
	// Outlier only in dim 0; dim 1 is pure noise that would mask it.
	r := rng.New(2)
	n := 80
	x := make([]float64, n+1)
	y := make([]float64, n+1)
	for i := 0; i < n; i++ {
		x[i] = r.NormalScaled(0, 0.05)
		y[i] = r.Float64() * 100
	}
	x[n] = 3
	y[n] = 50
	ds := dataset.MustNew(nil, [][]float64{x, y})

	sub, err := Scores(ds, []int{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	rank := 0
	for i := 0; i < n; i++ {
		if sub[i] >= sub[n] {
			rank++
		}
	}
	if rank > 2 {
		t.Errorf("outlier not top-ranked in its subspace (beaten by %d)", rank)
	}
}

func TestLOFDuplicatePoints(t *testing.T) {
	// Many exact duplicates: lrd is infinite, LOF must stay finite (=1)
	// for the duplicated points rather than NaN.
	x := []float64{1, 1, 1, 1, 1, 9}
	ds := dataset.MustNew(nil, [][]float64{x})
	scores, err := Scores(ds, []int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.IsNaN(scores[i]) {
			t.Fatalf("duplicate point %d has NaN LOF", i)
		}
		if scores[i] != 1 {
			t.Errorf("duplicate point %d LOF = %v, want 1", i, scores[i])
		}
	}
	// The isolated point's neighbors all have infinite lrd while its own is
	// finite, so its LOF is +Inf per the original definition — it must rank
	// above every duplicate and must not be NaN.
	if math.IsNaN(scores[5]) {
		t.Errorf("isolated point LOF = %v, want non-NaN", scores[5])
	}
	if scores[5] <= 1 {
		t.Errorf("isolated point LOF = %v, want > 1", scores[5])
	}
}

func TestLOFErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1}})
	if _, err := Scores(ds, []int{0}, 3); err == nil {
		t.Error("single object should fail")
	}
	ds2 := dataset.MustNew(nil, [][]float64{{1, 2}})
	if _, err := Scores(ds2, []int{7}, 3); err == nil {
		t.Error("bad dimension should fail")
	}
	if _, err := Scores(ds2, nil, 3); err == nil {
		t.Error("empty subspace should fail")
	}
}

func TestLOFDefaultMinPts(t *testing.T) {
	ds := clusterWithOutlier(3, 40)
	a, err := Scores(ds, []int{0, 1}, 0) // falls back to default
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scores(ds, []int{0, 1}, DefaultMinPts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("minPts<1 should equal DefaultMinPts")
		}
	}
}

func TestKNNScoresOutlier(t *testing.T) {
	ds := clusterWithOutlier(4, 50)
	scores, err := KNNScores(ds, []int{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := scores[len(scores)-1]
	for i := 0; i < len(scores)-1; i++ {
		if scores[i] >= out {
			t.Fatalf("kNN score of inlier %d >= outlier", i)
		}
	}
}

func TestKNNScoresErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1}})
	if _, err := KNNScores(ds, []int{0}, 3); err == nil {
		t.Error("single object should fail")
	}
	if _, err := KNNScores(dataset.MustNew(nil, [][]float64{{1, 2}}), nil, 3); err == nil {
		t.Error("empty dims should fail")
	}
}

// Property: LOF scores are finite, positive numbers for data without exact
// duplicates.
func TestQuickLOFFinite(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%60) + 12
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Normal()
			y[i] = r.Normal()
		}
		ds := dataset.MustNew(nil, [][]float64{x, y})
		scores, err := Scores(ds, []int{0, 1}, 5)
		if err != nil {
			return false
		}
		for _, s := range scores {
			if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: LOF is invariant under translation and uniform scaling of the
// data (it is a ratio of densities).
func TestQuickLOFScaleInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 40
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Normal()
			y[i] = r.Normal()
		}
		ds := dataset.MustNew(nil, [][]float64{x, y})
		a, err := Scores(ds, []int{0, 1}, 5)
		if err != nil {
			return false
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range x {
			xs[i] = 3*x[i] + 7
			ys[i] = 3*y[i] + 7
		}
		ds2 := dataset.MustNew(nil, [][]float64{xs, ys})
		b, err := Scores(ds2, []int{0, 1}, 5)
		if err != nil {
			return false
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestScoresIndexEquivalence is the tentpole contract at the LOF level:
// KD-tree-backed scores equal brute-force scores bit for bit.
func TestScoresIndexEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for _, n := range []int{30, 150, 400} {
			ds := clusterWithOutlier(seed, n)
			brute, err := ScoresWith(ds, []int{0, 1}, 10, neighbors.KindBrute)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := ScoresWith(ds, []int{0, 1}, 10, neighbors.KindKDTree)
			if err != nil {
				t.Fatal(err)
			}
			auto, err := Scores(ds, []int{0, 1}, 10)
			if err != nil {
				t.Fatal(err)
			}
			for i := range brute {
				if brute[i] != tree[i] {
					t.Fatalf("seed=%d n=%d: LOF[%d] brute %v != kdtree %v", seed, n, i, brute[i], tree[i])
				}
				if brute[i] != auto[i] {
					t.Fatalf("seed=%d n=%d: LOF[%d] brute %v != auto %v", seed, n, i, brute[i], auto[i])
				}
			}
		}
	}
}

func TestKNNScoresIndexEquivalence(t *testing.T) {
	ds := clusterWithOutlier(6, 300)
	brute, err := KNNScoresWith(ds, []int{0, 1}, 10, neighbors.KindBrute)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := KNNScoresWith(ds, []int{0, 1}, 10, neighbors.KindKDTree)
	if err != nil {
		t.Fatal(err)
	}
	for i := range brute {
		if brute[i] != tree[i] {
			t.Fatalf("kNN score[%d] brute %v != kdtree %v", i, brute[i], tree[i])
		}
	}
}

func TestFitScoresMatchBatch(t *testing.T) {
	ds := clusterWithOutlier(7, 120)
	for _, kind := range []neighbors.Kind{neighbors.KindBrute, neighbors.KindKDTree} {
		batch, err := ScoresWith(ds, []int{0, 1}, 10, kind)
		if err != nil {
			t.Fatal(err)
		}
		f, scores, err := Fit(ds, []int{0, 1}, 10, kind)
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			if scores[i] != batch[i] {
				t.Fatalf("%v: Fit score[%d] = %v, batch = %v", kind, i, scores[i], batch[i])
			}
		}
		if f.MinPts() != 10 || f.N() != ds.N() {
			t.Errorf("%v: fitted state MinPts=%d N=%d", kind, f.MinPts(), f.N())
		}
	}
}

func TestScoreQueryFlagsOutlierPoint(t *testing.T) {
	ds := clusterWithOutlier(8, 100)
	f, _, err := Fit(ds, []int{0, 1}, 10, neighbors.KindAuto)
	if err != nil {
		t.Fatal(err)
	}
	far := f.ScoreQuery([]float64{8, -8})
	center := f.ScoreQuery([]float64{0, 0})
	if far <= center {
		t.Errorf("far query LOF %v <= central query LOF %v", far, center)
	}
	if center < 0.5 || center > 1.5 {
		t.Errorf("central query LOF = %v, want ~1", center)
	}
	if far < 2 {
		t.Errorf("far query LOF = %v, want clearly outlying", far)
	}
}

// TestScoreQueryIndexEquivalence extends the backend contract to
// out-of-sample scoring: queries against a brute-backed and a tree-backed
// fit must agree bit for bit.
func TestScoreQueryIndexEquivalence(t *testing.T) {
	ds := clusterWithOutlier(9, 400)
	brute, _, err := Fit(ds, []int{0, 1}, 10, neighbors.KindBrute)
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := Fit(ds, []int{0, 1}, 10, neighbors.KindKDTree)
	if err != nil {
		t.Fatal(err)
	}
	bruteK, _, err := FitKNN(ds, []int{0, 1}, 10, neighbors.KindBrute)
	if err != nil {
		t.Fatal(err)
	}
	treeK, _, err := FitKNN(ds, []int{0, 1}, 10, neighbors.KindKDTree)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	for trial := 0; trial < 300; trial++ {
		q := []float64{r.Float64()*12 - 6, r.Float64()*12 - 6}
		if a, b := brute.ScoreQuery(q), tree.ScoreQuery(q); a != b {
			t.Fatalf("LOF query %v: brute %v != kdtree %v", q, a, b)
		}
		if a, b := bruteK.ScoreQuery(q), treeK.ScoreQuery(q); a != b {
			t.Fatalf("kNN query %v: brute %v != kdtree %v", q, a, b)
		}
	}
}

// TestScoreQueryConcurrent exercises the per-query scratch pool under the
// race detector.
func TestScoreQueryConcurrent(t *testing.T) {
	ds := clusterWithOutlier(10, 200)
	f, _, err := Fit(ds, []int{0, 1}, 10, neighbors.KindKDTree)
	if err != nil {
		t.Fatal(err)
	}
	want := f.ScoreQuery([]float64{1, 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w))
			for i := 0; i < 200; i++ {
				f.ScoreQuery([]float64{r.Float64(), r.Float64()})
				if got := f.ScoreQuery([]float64{1, 1}); got != want {
					t.Errorf("concurrent ScoreQuery = %v, want %v", got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestFitKNNMatchesBatchAndQueries(t *testing.T) {
	ds := clusterWithOutlier(11, 90)
	batch, err := KNNScoresWith(ds, []int{0, 1}, 10, neighbors.KindBrute)
	if err != nil {
		t.Fatal(err)
	}
	f, scores, err := FitKNN(ds, []int{0, 1}, 10, neighbors.KindBrute)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if scores[i] != batch[i] {
			t.Fatalf("FitKNN score[%d] = %v, batch = %v", i, scores[i], batch[i])
		}
	}
	if far, near := f.ScoreQuery([]float64{9, 9}), f.ScoreQuery([]float64{0, 0}); far <= near {
		t.Errorf("far kNN query %v <= near query %v", far, near)
	}
}

func TestNewFittedValidation(t *testing.T) {
	ds := clusterWithOutlier(12, 20)
	idx, err := neighbors.New(ds, []int{0, 1}, neighbors.KindBrute)
	if err != nil {
		t.Fatal(err)
	}
	n := idx.N()
	if _, err := NewFitted(idx, 0, make([]float64, n), make([]float64, n)); err == nil {
		t.Error("minPts<1 should fail")
	}
	if _, err := NewFitted(idx, 5, make([]float64, n-1), make([]float64, n)); err == nil {
		t.Error("short kdist should fail")
	}
	if _, err := NewFittedKNN(idx, 0); err == nil {
		t.Error("k<1 should fail")
	}
	// A correctly reassembled state answers queries like the original fit.
	orig, _, err := Fit(ds, []int{0, 1}, 5, neighbors.KindBrute)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewFitted(idx, 5, orig.KDist(), orig.LRD())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]float64{{0, 0}, {3, -2}, {7, 7}} {
		if a, b := orig.ScoreQuery(q), rebuilt.ScoreQuery(q); a != b {
			t.Fatalf("rebuilt ScoreQuery(%v) = %v, original = %v", q, b, a)
		}
	}
}

func BenchmarkLOF1000x3(b *testing.B) {
	r := rng.New(1)
	const n = 1000
	cols := make([][]float64, 3)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = r.Float64()
		}
	}
	ds := dataset.MustNew(nil, cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scores(ds, []int{0, 1, 2}, 10); err != nil {
			b.Fatal(err)
		}
	}
}
