package registry

import (
	"fmt"
	"sort"
	"strings"

	"hics/internal/core"
	"hics/internal/enclus"
	"hics/internal/neighbors"
	"hics/internal/orca"
	"hics/internal/outres"
	"hics/internal/randsub"
	"hics/internal/ranking"
	"hics/internal/ris"
	"hics/internal/surfing"
)

// Default method names: the paper's instantiation, HiCS + LOF.
const (
	DefaultSearcher = "hics"
	DefaultScorer   = "lof"
)

// SearcherOptions carries one option struct per registered searcher; a
// constructor reads only its own method's struct, so callers configure the
// whole matrix once and select by name afterwards. Zero values select each
// method's documented defaults.
type SearcherOptions struct {
	// HiCS configures the "hics" searcher (the paper's contrast search).
	HiCS core.Params
	// Enclus configures the "enclus" grid-entropy searcher.
	Enclus enclus.Params
	// RIS configures the "ris" density-connectivity searcher.
	RIS ris.Params
	// RandSub configures the "randsub" feature-bagging baseline.
	RandSub randsub.Params
	// Surfing configures the "surfing" kNN-distance-variance searcher.
	Surfing surfing.Params
	// The "fullspace" searcher has no options.
}

// LOFOptions configures the "lof" scorer.
type LOFOptions struct {
	// MinPts is the LOF neighborhood size (0 = lof.DefaultMinPts).
	MinPts int
	// Index selects the neighbor-index backend (default automatic).
	Index neighbors.Kind
}

// KNNOptions configures the "knn" (average kNN-distance) scorer.
type KNNOptions struct {
	// K is the neighborhood size (0 = lof.DefaultMinPts).
	K int
	// Index selects the neighbor-index backend (default automatic).
	Index neighbors.Kind
}

// ORCAOptions configures the "orca" randomized top-n distance miner.
type ORCAOptions struct {
	// K is the neighborhood size (0 = 10).
	K int
	// TopN is the number of outliers mined per subspace (0 = 30).
	TopN int
	// Seed drives the randomized scan orders.
	Seed uint64
	// Index selects the neighbor-index backend.
	Index neighbors.Kind
}

// OUTRESOptions configures the "outres" adaptive kernel-density scorer.
type OUTRESOptions struct {
	// BandwidthScale multiplies the dimensionality-adaptive bandwidth
	// (0 = 1).
	BandwidthScale float64
}

// ScorerOptions carries one option struct per registered scorer.
type ScorerOptions struct {
	LOF    LOFOptions
	KNN    KNNOptions
	ORCA   ORCAOptions
	OUTRES OUTRESOptions
}

var searcherBuilders = map[string]func(SearcherOptions) ranking.SubspaceSearcher{
	"hics":      func(o SearcherOptions) ranking.SubspaceSearcher { return &core.Searcher{Params: o.HiCS} },
	"enclus":    func(o SearcherOptions) ranking.SubspaceSearcher { return &enclus.Searcher{Params: o.Enclus} },
	"ris":       func(o SearcherOptions) ranking.SubspaceSearcher { return &ris.Searcher{Params: o.RIS} },
	"randsub":   func(o SearcherOptions) ranking.SubspaceSearcher { return &randsub.Searcher{Params: o.RandSub} },
	"surfing":   func(o SearcherOptions) ranking.SubspaceSearcher { return &surfing.Searcher{Params: o.Surfing} },
	"fullspace": func(SearcherOptions) ranking.SubspaceSearcher { return ranking.FullSpace{} },
}

var scorerBuilders = map[string]func(ScorerOptions) ranking.Scorer{
	"lof": func(o ScorerOptions) ranking.Scorer {
		return ranking.LOFScorer{MinPts: o.LOF.MinPts, Index: o.LOF.Index}
	},
	"knn": func(o ScorerOptions) ranking.Scorer {
		return ranking.KNNScorer{K: o.KNN.K, Index: o.KNN.Index}
	},
	"orca": func(o ScorerOptions) ranking.Scorer {
		return orca.Scorer{K: o.ORCA.K, TopN: o.ORCA.TopN, Seed: o.ORCA.Seed, Index: o.ORCA.Index}
	},
	"outres": func(o ScorerOptions) ranking.Scorer {
		return outres.Scorer{BandwidthScale: o.OUTRES.BandwidthScale}
	},
}

// SearcherNames lists the registered searcher names, sorted.
func SearcherNames() []string { return sortedKeys(searcherBuilders) }

// ScorerNames lists the registered scorer names, sorted.
func ScorerNames() []string { return sortedKeys(scorerBuilders) }

// FitScorerNames lists the scorer names supporting the fit/score split
// (ranking.FitScorer), i.e. the combinations hics.Fit and model
// persistence accept.
func FitScorerNames() []string {
	var out []string
	for _, name := range ScorerNames() {
		if ScorerSupportsFit(name) {
			out = append(out, name)
		}
	}
	return out
}

// KnownSearcher reports whether name is a registered searcher.
func KnownSearcher(name string) bool { _, ok := searcherBuilders[name]; return ok }

// KnownScorer reports whether name is a registered scorer.
func KnownScorer(name string) bool { _, ok := scorerBuilders[name]; return ok }

// ScorerSupportsFit reports whether the named scorer implements the
// fit/score split. Unknown names report false.
func ScorerSupportsFit(name string) bool {
	build, ok := scorerBuilders[name]
	if !ok {
		return false
	}
	_, ok = build(ScorerOptions{}).(ranking.FitScorer)
	return ok
}

// NewSearcher constructs the named subspace searcher from its option
// struct. The empty name selects DefaultSearcher; unknown names error,
// enumerating the valid values.
func NewSearcher(name string, o SearcherOptions) (ranking.SubspaceSearcher, error) {
	if name == "" {
		name = DefaultSearcher
	}
	build, ok := searcherBuilders[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown searcher %q (valid: %s)",
			name, strings.Join(SearcherNames(), ", "))
	}
	return build(o), nil
}

// NewScorer constructs the named scorer from its option struct. The empty
// name selects DefaultScorer; unknown names error, enumerating the valid
// values.
func NewScorer(name string, o ScorerOptions) (ranking.Scorer, error) {
	if name == "" {
		name = DefaultScorer
	}
	build, ok := scorerBuilders[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown scorer %q (valid: %s)",
			name, strings.Join(ScorerNames(), ", "))
	}
	return build(o), nil
}

// PipelineOptions bundles the method options with the pipeline-level knobs
// NewPipeline threads through to ranking.Pipeline.
type PipelineOptions struct {
	Searchers SearcherOptions
	Scorers   ScorerOptions
	// Agg selects the score aggregation (default: the paper's average).
	Agg ranking.Aggregation
	// MaxSubspaces caps the scored subspaces (0 = the paper's 100, -1 = all).
	MaxSubspaces int
	// Index pins the neighbor-index backend of indexable scorers.
	Index neighbors.Kind
	// Workers bounds the batch-pass parallelism of context-aware scorers
	// (0 = one worker per CPU).
	Workers int
}

// NewPipeline resolves a (searcher, scorer) name pair into the assembled
// two-step ranking pipeline.
func NewPipeline(search, scorer string, o PipelineOptions) (ranking.Pipeline, error) {
	s, err := NewSearcher(search, o.Searchers)
	if err != nil {
		return ranking.Pipeline{}, err
	}
	sc, err := NewScorer(scorer, o.Scorers)
	if err != nil {
		return ranking.Pipeline{}, err
	}
	return ranking.Pipeline{
		Searcher:     s,
		Scorer:       sc,
		Agg:          o.Agg,
		MaxSubspaces: o.MaxSubspaces,
		Index:        o.Index,
		Workers:      o.Workers,
	}, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
