package registry

import (
	"reflect"
	"strings"
	"testing"

	"hics/internal/core"
	"hics/internal/neighbors"
	"hics/internal/ranking"
)

func TestNames(t *testing.T) {
	wantSearchers := []string{"enclus", "fullspace", "hics", "randsub", "ris", "surfing"}
	if got := SearcherNames(); !reflect.DeepEqual(got, wantSearchers) {
		t.Errorf("SearcherNames() = %v, want %v", got, wantSearchers)
	}
	wantScorers := []string{"knn", "lof", "orca", "outres"}
	if got := ScorerNames(); !reflect.DeepEqual(got, wantScorers) {
		t.Errorf("ScorerNames() = %v, want %v", got, wantScorers)
	}
	wantFit := []string{"knn", "lof"}
	if got := FitScorerNames(); !reflect.DeepEqual(got, wantFit) {
		t.Errorf("FitScorerNames() = %v, want %v", got, wantFit)
	}
}

// Every registered name must construct, and the constructed component must
// implement the pipeline interface it is registered under.
func TestEveryNameConstructs(t *testing.T) {
	for _, name := range SearcherNames() {
		s, err := NewSearcher(name, SearcherOptions{})
		if err != nil {
			t.Errorf("NewSearcher(%q): %v", name, err)
		}
		if s == nil || s.Name() == "" {
			t.Errorf("NewSearcher(%q) returned unnamed searcher %v", name, s)
		}
		if !KnownSearcher(name) {
			t.Errorf("KnownSearcher(%q) = false", name)
		}
	}
	for _, name := range ScorerNames() {
		sc, err := NewScorer(name, ScorerOptions{})
		if err != nil {
			t.Errorf("NewScorer(%q): %v", name, err)
		}
		if sc == nil || sc.Name() == "" {
			t.Errorf("NewScorer(%q) returned unnamed scorer %v", name, sc)
		}
		if !KnownScorer(name) {
			t.Errorf("KnownScorer(%q) = false", name)
		}
	}
}

func TestDefaultsAndErrors(t *testing.T) {
	s, err := NewSearcher("", SearcherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "HiCS" {
		t.Errorf("default searcher is %s, want HiCS", s.Name())
	}
	sc, err := NewScorer("", ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "LOF" {
		t.Errorf("default scorer is %s, want LOF", sc.Name())
	}

	// Unknown names must enumerate every valid value.
	if _, err := NewSearcher("bogus", SearcherOptions{}); err == nil {
		t.Error("unknown searcher accepted")
	} else {
		for _, name := range SearcherNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("searcher error %q does not enumerate %q", err, name)
			}
		}
	}
	if _, err := NewScorer("bogus", ScorerOptions{}); err == nil {
		t.Error("unknown scorer accepted")
	} else {
		for _, name := range ScorerNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("scorer error %q does not enumerate %q", err, name)
			}
		}
	}
	if _, err := NewPipeline("hics", "bogus", PipelineOptions{}); err == nil {
		t.Error("NewPipeline accepted unknown scorer")
	}
	if _, err := NewPipeline("bogus", "lof", PipelineOptions{}); err == nil {
		t.Error("NewPipeline accepted unknown searcher")
	}
}

// Per-method options must reach the constructed component.
func TestOptionsReachComponents(t *testing.T) {
	p := core.Params{M: 7, Alpha: 0.25, Seed: 3}
	s, err := NewSearcher("hics", SearcherOptions{HiCS: p})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*core.Searcher).Params; got != p {
		t.Errorf("hics params = %+v, want %+v", got, p)
	}
	sc, err := NewScorer("lof", ScorerOptions{LOF: LOFOptions{MinPts: 17, Index: neighbors.KindBrute}})
	if err != nil {
		t.Fatal(err)
	}
	want := ranking.LOFScorer{MinPts: 17, Index: neighbors.KindBrute}
	if sc.(ranking.LOFScorer) != want {
		t.Errorf("lof scorer = %+v, want %+v", sc, want)
	}
}

func TestScorerSupportsFit(t *testing.T) {
	cases := map[string]bool{
		"lof": true, "knn": true, "orca": false, "outres": false, "bogus": false,
	}
	for name, want := range cases {
		if got := ScorerSupportsFit(name); got != want {
			t.Errorf("ScorerSupportsFit(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestNewPipelineWiring(t *testing.T) {
	pipe, err := NewPipeline("enclus", "knn", PipelineOptions{
		Scorers:      ScorerOptions{KNN: KNNOptions{K: 5}},
		Agg:          ranking.Max,
		MaxSubspaces: -1,
		Index:        neighbors.KindKDTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Searcher.Name() != "Enclus" || pipe.Scorer.Name() != "kNN" {
		t.Errorf("pipeline pair = %s+%s", pipe.Searcher.Name(), pipe.Scorer.Name())
	}
	if pipe.Agg != ranking.Max || pipe.MaxSubspaces != -1 || pipe.Index != neighbors.KindKDTree {
		t.Errorf("pipeline knobs not threaded: %+v", pipe)
	}
	if pipe.Scorer.(ranking.KNNScorer).K != 5 {
		t.Errorf("scorer option not threaded: %+v", pipe.Scorer)
	}
}
