// Package registry resolves user-facing method names to constructed
// pipeline components: the subspace searchers and density scorers of the
// paper's evaluation matrix (Sec. V), each addressable by a stable string
// name with a per-method option struct.
//
// The registry is the single place the searcher × scorer matrix is
// enumerated. Every layer that selects methods by name — the public
// hics.Options, the cmd/hics and cmd/hicsbench flags, model persistence,
// and the experiment harness — routes through NewSearcher / NewScorer /
// NewPipeline, so adding a method here makes it reachable everywhere at
// once.
//
// # Names
//
// Names are lowercase and fixed: searchers "hics", "enclus", "ris",
// "randsub", "surfing", "fullspace"; scorers "lof", "knn", "orca",
// "outres". Unknown names produce errors enumerating the valid values.
// SearcherNames and ScorerNames list them sorted; FitScorerNames lists
// the scorers that additionally support the fit/score split (frozen
// models, persistence, streaming refits).
package registry
