package randsub

import (
	"context"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
)

func TestSelectCountAndBounds(t *testing.T) {
	const d = 20
	list, err := Select(d, Params{Count: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 50 {
		t.Fatalf("got %d subspaces, want 50", len(list))
	}
	seen := map[string]bool{}
	for _, sc := range list {
		dim := sc.S.Dim()
		if dim < d/2 || dim > d-1 {
			t.Errorf("dim %d outside feature-bagging bounds [%d,%d]", dim, d/2, d-1)
		}
		if err := sc.S.Validate(d); err != nil {
			t.Errorf("invalid subspace: %v", err)
		}
		if seen[sc.S.Key()] {
			t.Errorf("duplicate subspace %v", sc.S)
		}
		seen[sc.S.Key()] = true
	}
}

func TestSelectDeterministic(t *testing.T) {
	a, _ := Select(10, Params{Count: 20, Seed: 42})
	b, _ := Select(10, Params{Count: 20, Seed: 42})
	for i := range a {
		if !a[i].S.Equal(b[i].S) {
			t.Fatal("same seed produced different selections")
		}
	}
	c, _ := Select(10, Params{Count: 20, Seed: 43})
	same := 0
	for i := range a {
		if a[i].S.Equal(c[i].S) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical selections")
	}
}

func TestSelectExplicitDims(t *testing.T) {
	list, err := Select(10, Params{Count: 30, MinDim: 2, MaxDim: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range list {
		if sc.S.Dim() < 2 || sc.S.Dim() > 3 {
			t.Errorf("dim %d outside [2,3]", sc.S.Dim())
		}
	}
}

func TestSelectExhaustsSmallSpace(t *testing.T) {
	// Only 3 distinct 2-dim subspaces exist in a 3-dim space.
	list, err := Select(3, Params{Count: 100, MinDim: 2, MaxDim: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Errorf("exhaustion should stop at 3 subspaces, got %d", len(list))
	}
}

func TestSelectSmallD(t *testing.T) {
	if _, err := Select(1, Params{}); err == nil {
		t.Error("d=1 should fail")
	}
	// d=2: MinDim clamps to 2, MaxDim = 1 -> clamped to valid.
	list, err := Select(2, Params{Count: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Error("d=2 should yield at least one subspace")
	}
}

func TestSearcherAdapter(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	s := &Searcher{Params: Params{Count: 5, Seed: 1}}
	list, err := s.Search(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Error("adapter returned nothing")
	}
	if s.Name() != "RANDSUB" {
		t.Errorf("Name = %q", s.Name())
	}
}

// Property: every selected subspace is valid and within the dim bounds.
func TestQuickSelectValid(t *testing.T) {
	f := func(seed uint64, dRaw, countRaw uint8) bool {
		d := int(dRaw%30) + 2
		count := int(countRaw%50) + 1
		list, err := Select(d, Params{Count: count, Seed: seed})
		if err != nil {
			return false
		}
		for _, sc := range list {
			if sc.S.Validate(d) != nil || sc.S.Dim() < 2 || sc.S.Dim() > d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
