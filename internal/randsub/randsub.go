// Package randsub implements the feature-bagging baseline of Lazarevic &
// Kumar (KDD 2005): the decoupled predecessor of HiCS that selects
// subspace projections uniformly at random.
//
// Following the original formulation, each subspace has a dimensionality
// drawn uniformly from [⌊D/2⌋, D−1] — considerably larger on average than
// the subspaces HiCS or Enclus select, which is what makes RANDSUB's
// ranking step slower than the informed searchers in the paper's Fig. 5/6
// despite doing no search work at all.
package randsub

import (
	"context"
	"fmt"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/subspace"
)

// DefaultCount matches the "best 100 subspaces" budget every method gets
// in the paper's experiments.
const DefaultCount = 100

// Params configures the random selection. Zero values select defaults.
type Params struct {
	// Count is the number of subspaces to draw.
	Count int
	// MinDim/MaxDim bound the drawn dimensionality. Zero selects the
	// feature-bagging bounds ⌊D/2⌋ and D−1.
	MinDim, MaxDim int
	// Seed makes the selection reproducible.
	Seed uint64
}

func (p Params) withDefaults(d int) Params {
	if p.Count <= 0 {
		p.Count = DefaultCount
	}
	if p.MinDim <= 0 {
		p.MinDim = d / 2
		if p.MinDim < 2 {
			p.MinDim = 2
		}
	}
	if p.MaxDim <= 0 {
		p.MaxDim = d - 1
	}
	if p.MaxDim < 2 {
		p.MaxDim = 2 // subspaces below two dimensions carry no correlation
	}
	if p.MaxDim > d {
		p.MaxDim = d
	}
	if p.MinDim > p.MaxDim {
		p.MinDim = p.MaxDim
	}
	return p
}

// Select draws Count random subspaces of a D-dimensional space. Duplicates
// are avoided up to the number of available distinct subspaces; all scores
// are zero (the method expresses no preference).
func Select(d int, p Params) ([]subspace.Scored, error) {
	return SelectContext(context.Background(), d, p)
}

// SelectContext is Select with cooperative cancellation: ctx is checked
// between draws. The checks never touch the random stream, so an
// uncancelled selection is identical to Select.
func SelectContext(ctx context.Context, d int, p Params) ([]subspace.Scored, error) {
	if d < 2 {
		return nil, fmt.Errorf("randsub: need at least 2 attributes, have %d", d)
	}
	p = p.withDefaults(d)
	r := rng.New(p.Seed)
	seen := make(map[string]bool, p.Count)
	out := make([]subspace.Scored, 0, p.Count)
	dims := make([]int, d)

	const maxAttemptsPerPick = 64
	for len(out) < p.Count {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		picked := false
		for attempt := 0; attempt < maxAttemptsPerPick; attempt++ {
			k := r.IntRange(p.MinDim, p.MaxDim)
			r.PermInto(dims)
			s := subspace.New(dims[:k]...)
			if key := s.Key(); !seen[key] {
				seen[key] = true
				out = append(out, subspace.Scored{S: s})
				picked = true
				break
			}
		}
		if !picked {
			// Space of distinct subspaces is (close to) exhausted.
			break
		}
	}
	return out, nil
}

// Searcher adapts Select to the ranking pipeline.
type Searcher struct {
	Params Params
}

// Search implements the two-step pipeline's subspace search step; the
// dataset is consulted only for its dimensionality.
func (s *Searcher) Search(ctx context.Context, ds *dataset.Dataset) ([]subspace.Scored, error) {
	return SelectContext(ctx, ds.D(), s.Params)
}

// Name identifies the method in experiment reports.
func (s *Searcher) Name() string { return "RANDSUB" }
