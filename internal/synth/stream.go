package synth

import (
	"fmt"

	"hics/internal/rng"
	"hics/internal/subspace"
)

// Stream generates the same family of benchmark datasets as Generate but
// emits rows one at a time instead of materializing the N×D column
// matrix, so arbitrarily large datasets can be written to disk with O(D)
// memory. Each group of correlated attributes draws from its own derived
// random stream, and the per-group outlier rewrites are precomputed up
// front, so row i is fully determined before yield is called.
//
// yield receives the object id, the reused row buffer (valid only for the
// duration of the call), and the ground-truth outlier flag. A non-nil
// error from yield aborts generation and is returned verbatim. Stream
// returns the planted correlated attribute groups.
//
// Stream draws from differently-labeled substreams than Generate, so the
// two constructions are not value-identical for the same Config; they are
// statistically equivalent.
func Stream(cfg Config, yield func(id int, row []float64, outlier bool) error) ([]subspace.Subspace, error) {
	cfg = cfg.withDefaults()
	if cfg.D < 2 {
		return nil, fmt.Errorf("synth: need at least 2 attributes, got %d", cfg.D)
	}
	if cfg.N < 4*cfg.OutliersPerSubspace {
		return nil, fmt.Errorf("synth: N=%d too small for %d outliers per subspace", cfg.N, cfg.OutliersPerSubspace)
	}
	r := rng.New(cfg.Seed)

	// Attribute partition: identical construction to Generate, on the
	// parent stream.
	perm := r.Perm(cfg.D)
	var groups []subspace.Subspace
	for at := 0; at < cfg.D; {
		size := r.IntRange(cfg.MinSubspaceDim, cfg.MaxSubspaceDim)
		if rest := cfg.D - at; size > rest {
			size = rest
		}
		if size == 1 && len(groups) > 0 {
			last := groups[len(groups)-1]
			groups[len(groups)-1] = subspace.New(append(last.Clone(), perm[at])...)
			at++
			continue
		}
		groups = append(groups, subspace.New(perm[at:at+size]...))
		at += size
	}

	gens := make([]*groupGen, len(groups))
	for gi, g := range groups {
		gens[gi] = newGroupGen(r.Derive(uint64(gi)+1), g, cfg)
	}

	row := make([]float64, cfg.D)
	for i := 0; i < cfg.N; i++ {
		outlier := false
		for _, gg := range gens {
			if gg.fillRow(row, i) {
				outlier = true
			}
		}
		if err := yield(i, row, outlier); err != nil {
			return nil, err
		}
	}
	return groups, nil
}

// groupGen holds one correlated group's cluster layout, its private
// random stream, and the precomputed outlier rewrites.
type groupGen struct {
	r       *rng.RNG
	g       subspace.Subspace
	k       int
	centers []float64
	stddev  float64
	// outliers maps object id to its rewritten coordinates, in the
	// group's dimension order.
	outliers map[int][]float64
}

func newGroupGen(r *rng.RNG, g subspace.Subspace, cfg Config) *groupGen {
	gg := &groupGen{r: r, g: g, stddev: cfg.ClusterStddev}
	gg.k = r.IntRange(cfg.MinClusters, cfg.MaxClusters)
	gg.centers = make([]float64, gg.k)
	for c := range gg.centers {
		gg.centers[c] = 0.15 + (0.7*float64(c)+0.35*r.Float64())/float64(gg.k)
	}

	if gg.k < 2 || g.Dim() < 2 {
		return gg // cannot construct non-trivial outliers without choice
	}

	// Precompute the outlier rewrites on a derived substream so the
	// per-row draws below stay in a fixed order regardless of which ids
	// were chosen.
	or := r.Derive(0xa11ce)
	gg.outliers = make(map[int][]float64, cfg.OutliersPerSubspace)
	for o := 0; o < cfg.OutliersPerSubspace; o++ {
		id := or.Intn(cfg.N)
		for gg.outliers[id] != nil {
			id = or.Intn(cfg.N)
		}
		ca := or.Intn(gg.k)
		cb := or.Intn(gg.k - 1)
		if cb >= ca {
			cb++
		}
		split := or.IntRange(1, g.Dim()-1)
		dimPerm := or.Perm(g.Dim())
		coords := make([]float64, g.Dim())
		for idx, di := range dimPerm {
			c := gg.centers[ca]
			if idx >= split {
				c = gg.centers[cb]
			}
			coords[di] = clamp01(or.NormalScaled(c, gg.stddev/2))
		}
		gg.outliers[id] = coords
	}
	return gg
}

// fillRow writes object i's values for this group's attributes into row
// and reports whether i is one of the group's planted outliers. The
// cluster draw happens unconditionally so the stream position after row
// i is independent of the outlier set.
func (gg *groupGen) fillRow(row []float64, i int) bool {
	c := gg.centers[gg.r.Intn(gg.k)]
	for _, d := range gg.g {
		row[d] = clamp01(gg.r.NormalScaled(c, gg.stddev))
	}
	if coords := gg.outliers[i]; coords != nil {
		for di, d := range gg.g {
			row[d] = coords[di]
		}
		return true
	}
	return false
}
