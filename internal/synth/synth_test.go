package synth

import (
	"math"
	"testing"
	"testing/quick"

	"hics/internal/core"
	"hics/internal/stats"
	"hics/internal/subspace"
)

func TestGenerateShape(t *testing.T) {
	b, err := Generate(Config{N: 500, D: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Data.Data.N() != 500 || b.Data.Data.D() != 20 {
		t.Fatalf("shape %dx%d", b.Data.Data.N(), b.Data.Data.D())
	}
	if len(b.Data.Outlier) != 500 {
		t.Fatal("label length mismatch")
	}
	if b.Data.NumOutliers() == 0 {
		t.Fatal("no outliers planted")
	}
}

func TestGenerateGroupsPartition(t *testing.T) {
	b, err := Generate(Config{N: 300, D: 23, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 23)
	for _, g := range b.Subspaces {
		if g.Dim() < 2 || g.Dim() > 6 { // 5 + possible folded remainder
			t.Errorf("group %v has unexpected size", g)
		}
		for _, d := range g {
			if seen[d] {
				t.Errorf("attribute %d in two groups", d)
			}
			seen[d] = true
		}
	}
	for d, s := range seen {
		if !s {
			t.Errorf("attribute %d not covered by any group", d)
		}
	}
}

func TestGenerateValuesInUnitRange(t *testing.T) {
	b, err := Generate(Config{N: 400, D: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Data.Data
	for d := 0; d < ds.D(); d++ {
		lo, hi := stats.MinMax(ds.Col(d))
		if lo < 0 || hi > 1 {
			t.Errorf("attribute %d range [%v,%v] outside [0,1]", d, lo, hi)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{N: 200, D: 10, Seed: 7})
	b, _ := Generate(Config{N: 200, D: 10, Seed: 7})
	for d := 0; d < 10; d++ {
		ca, cb := a.Data.Data.Col(d), b.Data.Data.Col(d)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c, _ := Generate(Config{N: 200, D: 10, Seed: 8})
	diff := false
	for i := 0; i < 200 && !diff; i++ {
		if a.Data.Data.Value(i, 0) != c.Data.Data.Value(i, 0) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

// Non-triviality: outliers must not stand out in one-dimensional
// projections. We check that every outlier's attribute values stay inside
// the central 99% value range of the regular objects.
func TestGenerateOutliersHiddenInMarginals(t *testing.T) {
	b, err := Generate(Config{N: 1000, D: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Data.Data
	for d := 0; d < ds.D(); d++ {
		var inliers []float64
		for i := 0; i < ds.N(); i++ {
			if !b.Data.Outlier[i] {
				inliers = append(inliers, ds.Value(i, d))
			}
		}
		lo := stats.Quantile(inliers, 0.005)
		hi := stats.Quantile(inliers, 0.995)
		for i := 0; i < ds.N(); i++ {
			if b.Data.Outlier[i] {
				v := ds.Value(i, d)
				if v < lo-0.05 || v > hi+0.05 {
					t.Errorf("outlier %d attribute %d value %v escapes the marginal range [%v,%v]",
						i, d, v, lo, hi)
				}
			}
		}
	}
}

// The planted groups must carry detectably higher contrast than random
// attribute pairs spanning two groups.
func TestGenerateGroupsHaveContrast(t *testing.T) {
	b, err := Generate(Config{N: 800, D: 10, MinSubspaceDim: 2, MaxSubspaceDim: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Data.Data
	p := core.Params{M: 100, Seed: 1}
	var planted, crossing float64
	var nPlanted, nCrossing int
	for _, g := range b.Subspaces {
		c, err := core.ContrastOf(ds, subspace.New(g[0], g[1]), p)
		if err != nil {
			t.Fatal(err)
		}
		planted += c
		nPlanted++
	}
	if len(b.Subspaces) >= 2 {
		g0, g1 := b.Subspaces[0], b.Subspaces[1]
		c, err := core.ContrastOf(ds, subspace.New(g0[0], g1[0]), p)
		if err != nil {
			t.Fatal(err)
		}
		crossing += c
		nCrossing++
	}
	if nCrossing > 0 && planted/float64(nPlanted) <= crossing/float64(nCrossing) {
		t.Errorf("planted contrast %v not above crossing contrast %v",
			planted/float64(nPlanted), crossing/float64(nCrossing))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{N: 100, D: 1, MinSubspaceDim: 1, MaxSubspaceDim: 1}); err == nil {
		t.Error("D=1 should fail")
	}
	if _, err := Generate(Config{N: 10, D: 10, OutliersPerSubspace: 5}); err == nil {
		t.Error("tiny N should fail")
	}
}

func TestTwoDemoProperties(t *testing.T) {
	demo := TwoDemo(400, 1)
	// Shapes.
	if demo.A.Data.N() != 402 || demo.B.Data.N() != 402 {
		t.Fatal("demo size wrong")
	}
	// o1 is an outlier in both; o2 only in B.
	if !demo.A.Outlier[demo.TrivialIdx] || !demo.B.Outlier[demo.TrivialIdx] {
		t.Error("o1 must be labeled in both datasets")
	}
	if demo.A.Outlier[demo.NonTrivialIdx] {
		t.Error("o2 must not be an outlier in dataset A")
	}
	if !demo.B.Outlier[demo.NonTrivialIdx] {
		t.Error("o2 must be an outlier in dataset B")
	}
	// B has clearly higher contrast than A.
	p := core.Params{M: 100, Seed: 2}
	cA, err := core.ContrastOf(demo.A.Data, subspace.New(0, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	cB, err := core.ContrastOf(demo.B.Data, subspace.New(0, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	if cB <= cA+0.1 {
		t.Errorf("contrast B (%v) not clearly above A (%v)", cB, cA)
	}
}

func TestTwoDemoMinimumSize(t *testing.T) {
	demo := TwoDemo(1, 1) // clamped to 10
	if demo.A.Data.N() != 12 {
		t.Errorf("minimum demo size = %d", demo.A.Data.N())
	}
}

func TestXORBoxProjectionsUniform(t *testing.T) {
	ds := XORBox(4000, 3)
	// Two-dimensional projections are uniform: grid-cell counts of a 2x2
	// grid should be balanced.
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for _, pr := range pairs {
		var counts [4]int
		for i := 0; i < ds.N(); i++ {
			cx, cy := 0, 0
			if ds.Value(i, pr[0]) >= 0.5 {
				cx = 1
			}
			if ds.Value(i, pr[1]) >= 0.5 {
				cy = 1
			}
			counts[2*cx+cy]++
		}
		want := float64(ds.N()) / 4
		for q, c := range counts {
			if math.Abs(float64(c)-want) > 0.15*want {
				t.Errorf("projection %v quadrant %d count %d deviates from uniform %v", pr, q, c, want)
			}
		}
	}
	// The 3-d space occupies only even-parity octants.
	for i := 0; i < ds.N(); i++ {
		parity := 0
		for d := 0; d < 3; d++ {
			if ds.Value(i, d) >= 0.5 {
				parity++
			}
		}
		if parity%2 != 0 {
			t.Fatalf("object %d lies in an odd-parity octant", i)
		}
	}
}

// Property: generation succeeds and labels/groups stay consistent for
// arbitrary reasonable configurations.
func TestQuickGenerateConsistent(t *testing.T) {
	f := func(seed uint64, dRaw, nRaw uint8) bool {
		d := int(dRaw%30) + 2
		n := int(nRaw)%500 + 100
		b, err := Generate(Config{N: n, D: d, Seed: seed})
		if err != nil {
			return false
		}
		if b.Data.Data.N() != n || b.Data.Data.D() != d || len(b.Data.Outlier) != n {
			return false
		}
		covered := 0
		for _, g := range b.Subspaces {
			covered += g.Dim()
			if g.Validate(d) != nil {
				return false
			}
		}
		return covered == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
