package synth

import (
	"errors"
	"testing"
)

// TestStreamShapeAndLabels: the streaming generator covers every
// attribute, keeps values in [0, 1], and plants outliers in every group
// that can hold them.
func TestStreamShapeAndLabels(t *testing.T) {
	cfg := Config{N: 800, D: 12, Seed: 7}
	rows := 0
	outliers := 0
	var lastID int = -1
	groups, err := Stream(cfg, func(id int, row []float64, outlier bool) error {
		if id != lastID+1 {
			t.Fatalf("ids not sequential: %d after %d", id, lastID)
		}
		lastID = id
		if len(row) != cfg.D {
			t.Fatalf("row %d has %d values, want %d", id, len(row), cfg.D)
		}
		for j, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("row %d attr %d = %v outside [0,1]", id, j, v)
			}
		}
		rows++
		if outlier {
			outliers++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != cfg.N {
		t.Errorf("yielded %d rows, want %d", rows, cfg.N)
	}
	covered := 0
	for _, g := range groups {
		covered += g.Dim()
		if g.Validate(cfg.D) != nil {
			t.Errorf("invalid group %v", g)
		}
	}
	if covered != cfg.D {
		t.Errorf("groups cover %d attributes, want %d", covered, cfg.D)
	}
	if outliers == 0 {
		t.Error("no outliers planted")
	}
	// Per group at most OutliersPerSubspace (default 5) rewrites; overlaps
	// across groups only shrink the flagged count.
	if max := 5 * len(groups); outliers > max {
		t.Errorf("%d outliers flagged, at most %d possible", outliers, max)
	}
}

// TestStreamDeterministic: the same config always streams the identical
// sequence of rows, flags, and groups.
func TestStreamDeterministic(t *testing.T) {
	cfg := Config{N: 300, D: 9, Seed: 11}
	type rec struct {
		row     []float64
		outlier bool
	}
	collect := func() []rec {
		var got []rec
		_, err := Stream(cfg, func(id int, row []float64, outlier bool) error {
			got = append(got, rec{append([]float64(nil), row...), outlier})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i].outlier != b[i].outlier {
			t.Fatalf("row %d outlier flag differs across runs", i)
		}
		for j := range a[i].row {
			if a[i].row[j] != b[i].row[j] {
				t.Fatalf("row %d attr %d differs across runs: %v vs %v", i, j, a[i].row[j], b[i].row[j])
			}
		}
	}
}

// TestStreamYieldError: a yield error aborts generation and surfaces
// verbatim.
func TestStreamYieldError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Stream(Config{N: 100, D: 4, Seed: 3}, func(id int, row []float64, outlier bool) error {
		calls++
		if id == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 11 {
		t.Fatalf("yield called %d times after abort at row 10", calls)
	}
}

// TestStreamRejectsBadConfig mirrors Generate's validation.
func TestStreamRejectsBadConfig(t *testing.T) {
	if _, err := Stream(Config{N: 100, D: 1, Seed: 1}, nil); err == nil {
		t.Error("D=1 should be rejected")
	}
	if _, err := Stream(Config{N: 10, D: 8, OutliersPerSubspace: 5, Seed: 1}, nil); err == nil {
		t.Error("N too small for outlier count should be rejected")
	}
}
