package synth

import (
	"hics/internal/dataset"
	"hics/internal/rng"
)

// TwoDemoResult bundles the Fig. 2 illustration datasets: A (uncorrelated)
// and B (correlated) share identical marginal distributions; both contain
// the trivial outlier o1, and only B contains the non-trivial outlier o2.
type TwoDemoResult struct {
	A, B *dataset.Labeled
	// TrivialIdx and NonTrivialIdx are the object indices of o1 and o2
	// (o2 is an inlier position in A).
	TrivialIdx, NonTrivialIdx int
}

// TwoDemo reproduces the two-dimensional toy example of the paper's
// Fig. 2 with n regular objects. The marginal distribution of both
// attributes is a balanced two-component Gaussian mixture at 0.3 and 0.7:
//
//   - Dataset A samples the attributes independently — the plane fills
//     with all four mixture combinations and the only outlier is o1,
//     whose s2 value (0.95) is extreme in one dimension alone.
//   - Dataset B couples the attributes (both take the same mixture
//     component) — only the diagonal combinations are populated, and o2
//     at the anti-diagonal position (0.3, 0.7) becomes a non-trivial
//     outlier: dense in each marginal, empty jointly.
func TwoDemo(n int, seed uint64) *TwoDemoResult {
	if n < 10 {
		n = 10
	}
	r := rng.New(seed)
	const (
		lo, hi = 0.3, 0.7
		sd     = 0.05
	)
	total := n + 2
	mk := func(correlated bool) *dataset.Labeled {
		x := make([]float64, total)
		y := make([]float64, total)
		labels := make([]bool, total)
		for i := 0; i < n; i++ {
			cx := lo
			if r.Float64() < 0.5 {
				cx = hi
			}
			cy := cx
			if !correlated {
				cy = lo
				if r.Float64() < 0.5 {
					cy = hi
				}
			}
			x[i] = clamp01(r.NormalScaled(cx, sd))
			y[i] = clamp01(r.NormalScaled(cy, sd))
		}
		// o1: trivial outlier — extreme in s2 only.
		x[n] = clamp01(r.NormalScaled(0.5, sd))
		y[n] = 0.95
		labels[n] = true
		// o2: anti-diagonal combination. In B this region is empty
		// (non-trivial outlier); in A it is a regular combination.
		x[n+1] = clamp01(r.NormalScaled(lo, sd/2))
		y[n+1] = clamp01(r.NormalScaled(hi, sd/2))
		labels[n+1] = correlated
		return &dataset.Labeled{
			Data:    dataset.MustNew([]string{"s1", "s2"}, [][]float64{x, y}),
			Outlier: labels,
		}
	}
	return &TwoDemoResult{
		A:             mk(false),
		B:             mk(true),
		TrivialIdx:    n,
		NonTrivialIdx: n + 1,
	}
}

// XORBox reproduces the counterexample of the paper's Fig. 3: a
// three-dimensional dataset built from four equal-density box clusters
// placed on the even-parity corners of the unit cube. Every
// two-dimensional projection is uniformly filled (no correlation visible),
// while the three-dimensional joint distribution occupies only half the
// cube — the correlation exists only in the full subspace, defeating any
// strictly monotone bottom-up criterion.
func XORBox(n int, seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	// Even-parity corners: (0,0,0), (0,1,1), (1,0,1), (1,1,0).
	corners := [4][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	for i := 0; i < n; i++ {
		c := corners[r.Intn(4)]
		x[i] = c[0]/2 + r.Float64()/2
		y[i] = c[1]/2 + r.Float64()/2
		z[i] = c[2]/2 + r.Float64()/2
	}
	return dataset.MustNew([]string{"x", "y", "z"}, [][]float64{x, y, z})
}
