// Package synth generates the synthetic benchmark data of the paper's
// evaluation (Sec. V-A): datasets whose attributes are partitioned into
// 2–5 dimensional correlated subspaces, each filled with high-density
// clusters, plus a handful of non-trivial outliers per subspace — objects
// that deviate from every cluster inside the subspace while each of their
// individual attribute values stays in a high-density marginal region, so
// no one-dimensional view reveals them.
//
// The generator reproduces the construction that makes HiCS's headline
// experiment (Fig. 4) meaningful: clusters are placed on the subspace
// diagonal so that all attributes of a group share identical marginal
// mixtures, and an outlier receives coordinates from *different* clusters
// in different attributes — a combination that lies in empty space
// jointly, but in dense regions marginally.
package synth

import (
	"fmt"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/subspace"
)

// Config parameterizes dataset generation. Zero values select the paper's
// setup.
type Config struct {
	// N is the number of objects (paper: 1000).
	N int
	// D is the total number of attributes.
	D int
	// MinSubspaceDim/MaxSubspaceDim bound the sizes of the correlated
	// attribute groups (paper: 2 and 5).
	MinSubspaceDim, MaxSubspaceDim int
	// OutliersPerSubspace is the number of objects modified to deviate in
	// each group (paper: 5).
	OutliersPerSubspace int
	// MinClusters/MaxClusters bound the number of diagonal clusters per
	// group.
	MinClusters, MaxClusters int
	// ClusterStddev is the Gaussian spread of each cluster.
	ClusterStddev float64
	// Seed drives all randomness.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 1000
	}
	if c.D <= 0 {
		c.D = 10
	}
	if c.MinSubspaceDim <= 0 {
		c.MinSubspaceDim = 2
	}
	if c.MaxSubspaceDim <= 0 {
		c.MaxSubspaceDim = 5
	}
	if c.MaxSubspaceDim > c.D {
		c.MaxSubspaceDim = c.D
	}
	if c.MinSubspaceDim > c.MaxSubspaceDim {
		c.MinSubspaceDim = c.MaxSubspaceDim
	}
	if c.OutliersPerSubspace <= 0 {
		c.OutliersPerSubspace = 5
	}
	if c.MinClusters <= 0 {
		c.MinClusters = 3
	}
	if c.MaxClusters <= 0 {
		c.MaxClusters = 5
	}
	if c.MinClusters > c.MaxClusters {
		c.MinClusters = c.MaxClusters
	}
	if c.ClusterStddev <= 0 {
		c.ClusterStddev = 0.03
	}
	return c
}

// Benchmark is a generated dataset with ground truth.
type Benchmark struct {
	Data *dataset.Labeled
	// Subspaces lists the correlated attribute groups that were planted.
	Subspaces []subspace.Subspace
}

// Generate builds a benchmark dataset per the configuration. Attribute
// values lie in [0, 1].
func Generate(cfg Config) (*Benchmark, error) {
	cfg = cfg.withDefaults()
	if cfg.D < 2 {
		return nil, fmt.Errorf("synth: need at least 2 attributes, got %d", cfg.D)
	}
	if cfg.N < 4*cfg.OutliersPerSubspace {
		return nil, fmt.Errorf("synth: N=%d too small for %d outliers per subspace", cfg.N, cfg.OutliersPerSubspace)
	}
	r := rng.New(cfg.Seed)

	// Partition the attributes into groups of size MinSubspaceDim..MaxSubspaceDim.
	perm := r.Perm(cfg.D)
	var groups []subspace.Subspace
	for at := 0; at < cfg.D; {
		size := r.IntRange(cfg.MinSubspaceDim, cfg.MaxSubspaceDim)
		if rest := cfg.D - at; size > rest {
			size = rest
		}
		// Avoid a trailing 1-dimensional group: fold it into the previous one.
		if size == 1 && len(groups) > 0 {
			last := groups[len(groups)-1]
			groups[len(groups)-1] = subspace.New(append(last.Clone(), perm[at])...)
			at++
			continue
		}
		groups = append(groups, subspace.New(perm[at:at+size]...))
		at += size
	}

	cols := make([][]float64, cfg.D)
	for j := range cols {
		cols[j] = make([]float64, cfg.N)
	}
	labels := make([]bool, cfg.N)

	for _, g := range groups {
		fillGroup(r, cols, labels, g, cfg)
	}

	ds := dataset.MustNew(nil, cols)
	return &Benchmark{
		Data:      &dataset.Labeled{Data: ds, Outlier: labels},
		Subspaces: groups,
	}, nil
}

// fillGroup populates the columns of one correlated group: diagonal
// Gaussian clusters for all objects, then OutliersPerSubspace objects
// rewritten as non-trivial outliers.
func fillGroup(r *rng.RNG, cols [][]float64, labels []bool, g subspace.Subspace, cfg Config) {
	n := cfg.N
	k := r.IntRange(cfg.MinClusters, cfg.MaxClusters)

	// Cluster centers spread evenly on the diagonal, jittered slightly so
	// different groups do not align.
	centers := make([]float64, k)
	for c := range centers {
		centers[c] = 0.15 + (0.7*float64(c)+0.35*r.Float64())/float64(k)
	}

	assign := make([]int, n)
	for i := 0; i < n; i++ {
		assign[i] = r.Intn(k)
		c := centers[assign[i]]
		for _, d := range g {
			cols[d][i] = clamp01(r.NormalScaled(c, cfg.ClusterStddev))
		}
	}

	if k < 2 || g.Dim() < 2 {
		return // cannot construct non-trivial outliers without choice
	}

	// Non-trivial outliers: coordinates drawn from at least two different
	// clusters, so each marginal value is dense but the joint lies in empty
	// space. Candidate objects are drawn without replacement.
	chosen := map[int]bool{}
	for o := 0; o < cfg.OutliersPerSubspace; o++ {
		id := r.Intn(n)
		for chosen[id] {
			id = r.Intn(n)
		}
		chosen[id] = true
		labels[id] = true

		// Pick two distinct clusters and split the group's dimensions
		// between them (at least one dimension from each).
		ca := r.Intn(k)
		cb := r.Intn(k - 1)
		if cb >= ca {
			cb++
		}
		split := r.IntRange(1, g.Dim()-1)
		dimPerm := r.Perm(g.Dim())
		for idx, di := range dimPerm {
			c := centers[ca]
			if idx >= split {
				c = centers[cb]
			}
			cols[g[di]][id] = clamp01(r.NormalScaled(c, cfg.ClusterStddev/2))
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
