package shard

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hics/internal/metrics"
)

// Shard-layer instrumentation. The shard label is an operator-supplied
// backend address — bounded by configuration, never by traffic — so the
// cardinality stays fixed.
var (
	mShardHealthy = metrics.Default.NewGaugeVec("hicsd_shard_healthy",
		"1 while the shard answers its health probe, 0 after the circuit opens (consecutive failures or failed probes).", "shard")
	mShardDraining = metrics.Default.NewGaugeVec("hicsd_shard_draining",
		"1 while the shard reports draining from /healthz, 0 otherwise.", "shard")
	mShardProxied = metrics.Default.NewCounterVec("hicsd_shard_proxied_total",
		"Requests the front proxied, by owning shard and endpoint.", "shard", "endpoint")
	mShardProxyErrors = metrics.Default.NewCounterVec("hicsd_shard_proxy_errors_total",
		"Proxied requests that failed in transport (connection refused, reset mid-stream), by shard.", "shard")
	mShardReroutes = metrics.Default.NewCounter("hicsd_shard_reroutes_total",
		"Sessions routed past the rendezvous owner because it was unhealthy or draining.")
	mShardProbes = metrics.Default.NewCounterVec("hicsd_shard_probes_total",
		"Health probes by shard and result (ok, draining, error).", "shard", "result")
)

// RouterConfig wires a Router.
type RouterConfig struct {
	// Shards are the backend addresses (host:port) of the shard map.
	Shards []string
	// Client performs probe and proxy requests; nil uses a dedicated
	// client with sane streaming defaults (no global timeout — /stream
	// sessions are long-lived).
	Client *http.Client
	// ProbeInterval is the health-probe cadence (default 2s).
	ProbeInterval time.Duration
	// FailThreshold opens a shard's circuit after this many consecutive
	// proxy/transport failures (default 3). A successful probe or proxy
	// closes it again.
	FailThreshold int
	// Logger receives shard state transitions. Nil discards them.
	Logger *slog.Logger
}

// shardState is one backend's tracked health.
type shardState struct {
	healthy  atomic.Bool
	draining atomic.Bool
	fails    atomic.Int64 // consecutive transport failures
}

// Router owns the shard map plus live per-shard health, and picks the
// serving shard for each session key: the rendezvous rank order,
// skipping shards whose circuit is open or that report draining.
type Router struct {
	m      *Map
	client *http.Client
	cfg    RouterConfig
	log    *slog.Logger

	states map[string]*shardState

	mu     sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}
}

// NewRouter builds a router over the given shards. All shards start
// healthy (optimistic: the first probe or failure corrects it); call
// Start to run the background prober.
func NewRouter(cfg RouterConfig) (*Router, error) {
	m, err := NewMap(cfg.Shards)
	if err != nil {
		return nil, err
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	r := &Router{m: m, client: client, cfg: cfg, log: log, states: map[string]*shardState{}}
	for _, s := range m.Shards() {
		st := &shardState{}
		st.healthy.Store(true)
		r.states[s] = st
		mShardHealthy.With(s).Set(1)
		mShardDraining.With(s).Set(0)
	}
	return r, nil
}

// Map returns the underlying shard map.
func (r *Router) Map() *Map { return r.m }

// Owner returns the rendezvous owner of key, health ignored.
func (r *Router) Owner(key string) string { return r.m.Owner(key) }

// Pick returns the shard a new session for key should go to: the first
// shard in rendezvous rank order that is believed healthy and not
// draining. When every shard is out, it returns "" — the caller turns
// that into a 503 with Retry-After. The second return reports whether
// the pick had to pass over the true owner (a reroute).
func (r *Router) Pick(key string) (string, bool) {
	rank := r.m.Rank(key)
	for i, s := range rank {
		st := r.states[s]
		if st.healthy.Load() && !st.draining.Load() {
			if i > 0 {
				mShardReroutes.Inc()
			}
			return s, i > 0
		}
	}
	return "", false
}

// ReportSuccess records a successful proxied exchange with shard,
// closing its circuit.
func (r *Router) ReportSuccess(shard string) {
	st, ok := r.states[shard]
	if !ok {
		return
	}
	st.fails.Store(0)
	if !st.healthy.Swap(true) {
		mShardHealthy.With(shard).Set(1)
		r.log.Info("shard recovered", "shard", shard)
	}
}

// ReportFailure records a transport failure with shard; FailThreshold
// consecutive failures open the circuit until a probe or success closes
// it.
func (r *Router) ReportFailure(shard string) {
	st, ok := r.states[shard]
	if !ok {
		return
	}
	mShardProxyErrors.With(shard).Inc()
	if st.fails.Add(1) >= int64(r.cfg.FailThreshold) && st.healthy.Swap(false) {
		mShardHealthy.With(shard).Set(0)
		r.log.Warn("shard circuit opened", "shard", shard, "consecutive_failures", st.fails.Load())
	}
}

// MarkDraining records that shard reported draining (from a probe or a
// proxied 503); new sessions route past it until a probe clears it.
func (r *Router) MarkDraining(shard string) {
	st, ok := r.states[shard]
	if !ok {
		return
	}
	if !st.draining.Swap(true) {
		mShardDraining.With(shard).Set(1)
		r.log.Info("shard draining", "shard", shard)
	}
}

// ShardStatus is one backend's health snapshot for the front /healthz.
type ShardStatus struct {
	Shard    string `json:"shard"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
}

// Status snapshots every shard's health, sorted by shard name.
func (r *Router) Status() []ShardStatus {
	out := make([]ShardStatus, 0, r.m.Len())
	for _, s := range r.m.Shards() {
		st := r.states[s]
		out = append(out, ShardStatus{Shard: s, Healthy: st.healthy.Load(), Draining: st.draining.Load()})
	}
	return out
}

// Start launches the background health prober. Stop with Close.
func (r *Router) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.cfg.ProbeInterval)
		defer t.Stop()
		r.probeAll(ctx)
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				r.probeAll(ctx)
			}
		}
	}()
}

// Close stops the prober.
func (r *Router) Close() {
	r.mu.Lock()
	cancel, done := r.cancel, r.done
	r.cancel = nil
	r.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// ProbeNow probes every shard once, synchronously — the front calls it
// after a surprising shard response so routing state converges faster
// than the next tick.
func (r *Router) ProbeNow(ctx context.Context) { r.probeAll(ctx) }

func (r *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, s := range r.m.Shards() {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			r.probe(ctx, shard)
		}(s)
	}
	wg.Wait()
}

// healthzBody is the slice of the shard /healthz response the prober
// reads.
type healthzBody struct {
	Status string `json:"status"`
}

func (r *Router) probe(ctx context.Context, shard string) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+shard+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		mShardProbes.With(shard, "error").Inc()
		r.ReportFailure(shard)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	var h healthzBody
	_ = json.Unmarshal(body, &h)
	st := r.states[shard]
	switch {
	case h.Status == "draining":
		mShardProbes.With(shard, "draining").Inc()
		r.MarkDraining(shard)
		// A draining shard is still alive: transport works, so the
		// circuit stays closed for the sessions it is finishing.
		st.fails.Store(0)
	case resp.StatusCode == http.StatusOK:
		mShardProbes.With(shard, "ok").Inc()
		if st.draining.Swap(false) {
			mShardDraining.With(shard).Set(0)
			r.log.Info("shard drain cleared", "shard", shard)
		}
		r.ReportSuccess(shard)
	default:
		// Alive but not ready (starting, degraded): treat as a probe
		// failure so new sessions avoid it, without the immediacy of a
		// transport error.
		mShardProbes.With(shard, "error").Inc()
		r.ReportFailure(shard)
	}
}
