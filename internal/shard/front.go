package shard

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"hics"
	"hics/internal/metrics"
	"hics/internal/trace"
)

// maxUnaryProxyBytes caps a buffered /score, /rank or /info proxy body;
// it mirrors the backend's own request cap, so the front never buffers
// more than a shard would accept.
const maxUnaryProxyBytes = 64 << 20

// FrontConfig wires a Front.
type FrontConfig struct {
	// Router owns the shard map and health state. Required.
	Router *Router
	// SessionKeyParam names the query parameter carrying the routing
	// key of a request (default "session"). Requests without it fall
	// back to the ?model parameter, then to the client IP — so a bare
	// v1.7.0 client still routes deterministically per source host.
	SessionKeyParam string
	// Logger receives proxy events. Nil discards them.
	Logger *slog.Logger
	// Tracer records a span per proxied request and injects traceparent
	// toward the shards, so one trace covers front and shard. Nil uses
	// the process-global trace.Default.
	Tracer *trace.Tracer
}

// Front is the stateless routing tier: an http.Handler that proxies
// /stream (full-duplex NDJSON pass-through), /score, /rank and /info to
// the shard owning the request's session key, and serves its own
// /healthz (aggregated shard states) and /metrics. Any number of fronts
// can run side by side — placement is pure rendezvous hashing, so they
// agree without coordination.
type Front struct {
	router   *Router
	keyParam string
	log      *slog.Logger
	tracer   *trace.Tracer
	mux      *http.ServeMux
}

// NewFront builds the front handler over the given router.
func NewFront(cfg FrontConfig) *Front {
	if cfg.Router == nil {
		panic("shard: FrontConfig.Router is required")
	}
	keyParam := cfg.SessionKeyParam
	if keyParam == "" {
		keyParam = "session"
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.Default
	}
	f := &Front{router: cfg.Router, keyParam: keyParam, log: log, tracer: tracer}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.Handle("/metrics", metrics.Default.Handler())
	mux.Handle("GET /debug/traces", tracer.Handler())
	mux.HandleFunc("/stream", f.handleStream)
	mux.HandleFunc("/score", f.handleUnary)
	mux.HandleFunc("/rank", f.handleUnary)
	mux.HandleFunc("/info", f.handleUnary)
	f.mux = mux
	return f
}

// frontCtxKey keys the request-scoped values the front middleware
// injects: the request ID and the annotated logger.
type frontCtxKey int

const (
	frontRequestIDKey frontCtxKey = iota
	frontLoggerKey
)

// reqID returns the request's ID, or "" outside the middleware.
func reqID(ctx context.Context) string {
	id, _ := ctx.Value(frontRequestIDKey).(string)
	return id
}

// reqLog returns the request-scoped logger (annotated with request,
// trace and span IDs), falling back to the front's base logger.
func (f *Front) reqLog(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(frontLoggerKey).(*slog.Logger); ok {
		return l
	}
	return f.log
}

// frontStatusWriter records the response status for the completion log.
// Unwrap keeps http.ResponseController (EnableFullDuplex, flushing)
// working through the wrapper; the explicit Flush preserves the
// http.Flusher fast path the stream relay uses.
type frontStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *frontStatusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *frontStatusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *frontStatusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *frontStatusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// ServeHTTP is the front's observability middleware: every request gets
// an ID (an inbound X-Request-Id is honored, otherwise minted), a root
// span (continuing an inbound traceparent when a caller sent one, else
// reusing the request ID as trace ID) and a request-scoped logger
// carrying all three IDs — so a front log line and the owning shard's
// log line for the same request share one trace_id.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := frontRequestID(r)
	remote, _ := trace.Extract(r.Header)
	ctx, span := f.tracer.StartRoot(r.Context(), "front."+strings.TrimPrefix(r.URL.Path, "/"), remote, trace.TraceIDFromString(id))
	log := f.log.With("request_id", id,
		"trace_id", span.TraceIDString(), "span_id", span.SpanIDString())
	ctx = context.WithValue(ctx, frontRequestIDKey, id)
	ctx = context.WithValue(ctx, frontLoggerKey, log)
	sw := &frontStatusWriter{ResponseWriter: w}
	w.Header().Set("X-Request-Id", id)
	f.mux.ServeHTTP(sw, r.WithContext(ctx))
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	elapsed := time.Since(start)
	span.SetAttr("method", r.Method)
	span.SetAttr("path", r.URL.Path)
	span.SetAttr("status", status)
	if status >= 500 {
		span.SetError(fmt.Errorf("status %d", status))
	}
	span.End()
	log.Info("request", "method", r.Method, "path", r.URL.Path,
		"status", status, "duration", elapsed)
}

// frontRequestID honors a token-shaped inbound X-Request-Id and mints a
// 16-hex-digit ID otherwise, mirroring the serve middleware's rule.
func frontRequestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if n := len(id); n >= 1 && n <= 64 {
		ok := true
		for i := 0; i < n; i++ {
			c := id[i]
			if (c < '0' || c > '9') && (c < 'a' || c > 'z') && (c < 'A' || c > 'Z') &&
				c != '.' && c != '_' && c != '-' {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// Key returns the routing key of a request: the session-key query
// parameter, else the model name, else the client host.
func (f *Front) Key(r *http.Request) string {
	q := r.URL.Query()
	if k := q.Get(f.keyParam); k != "" {
		return k
	}
	if k := q.Get("model"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// frontHealth is the front /healthz body.
type frontHealth struct {
	Status  string        `json:"status"`
	Role    string        `json:"role"`
	Version string        `json:"version"`
	Shards  []ShardStatus `json:"shards"`
}

// handleHealthz aggregates shard health: "ok" while at least one shard
// accepts sessions, "degraded" when some are out, 503 "unavailable"
// when none can take traffic.
func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sts := f.router.Status()
	avail := 0
	for _, st := range sts {
		if st.Healthy && !st.Draining {
			avail++
		}
	}
	h := frontHealth{Status: "ok", Role: "front", Version: hics.Version, Shards: sts}
	code := http.StatusOK
	switch {
	case avail == 0:
		h.Status = "unavailable"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "5")
	case avail < len(sts):
		h.Status = "degraded"
	}
	writeJSON(w, code, h)
}

// handleUnary proxies a buffered request to the owning shard, walking
// the rendezvous rank order past unhealthy shards and retrying the next
// candidate on transport errors (safe: the body is buffered, and
// scoring is read-only compute).
func (f *Front) handleUnary(w http.ResponseWriter, r *http.Request) {
	endpoint := strings.TrimPrefix(r.URL.Path, "/")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUnaryProxyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("reading request: %v", err)})
		return
	}
	key := f.Key(r)
	rank := f.router.m.Rank(key)
	tried := 0
	for i, shard := range rank {
		st := f.router.states[shard]
		if !st.healthy.Load() || st.draining.Load() {
			continue
		}
		if i > 0 {
			mShardReroutes.Inc()
		}
		tried++
		// One span per proxy attempt: a failover request shows each
		// candidate shard tried, and the shard's own root span parents
		// under the attempt that reached it.
		pctx, psp := trace.StartSpan(r.Context(), "front.proxy")
		psp.SetAttr("shard", shard)
		psp.SetAttr("endpoint", endpoint)
		psp.SetAttr("attempt", tried)
		resp, err := f.proxyOnce(pctx, r, shard, bytes.NewReader(body))
		if err != nil {
			psp.SetError(err)
			psp.End()
			f.router.ReportFailure(shard)
			f.reqLog(r.Context()).Warn("unary proxy failed", "shard", shard, "endpoint", endpoint, "error", err)
			continue
		}
		f.router.ReportSuccess(shard)
		mShardProxied.With(shard, endpoint).Inc()
		relayResponse(w, resp)
		psp.End()
		return
	}
	w.Header().Set("Retry-After", "5")
	if tried == 0 {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no shard available for this key; retry shortly"})
		return
	}
	writeJSON(w, http.StatusBadGateway, errorBody{Error: "every candidate shard failed; retry shortly"})
}

// proxyOnce forwards one buffered request to shard and returns its
// response. ctx carries the attempt's span, which becomes the shard's
// parent via the injected traceparent.
func (f *Front) proxyOnce(ctx context.Context, r *http.Request, shard string, body io.Reader) (*http.Response, error) {
	out, err := http.NewRequestWithContext(ctx, r.Method, shardURL(shard, r.URL), body)
	if err != nil {
		return nil, err
	}
	copyProxyHeaders(out.Header, r.Header)
	f.decorate(ctx, out.Header)
	return f.router.client.Do(out)
}

// decorate stamps the outgoing hop with this request's identity: the
// front's request ID (covering requests that arrived without one) and
// the current span's traceparent, overriding whatever copyProxyHeaders
// carried over so the shard parents under the front's span rather than
// the client's.
func (f *Front) decorate(ctx context.Context, h http.Header) {
	if id := reqID(ctx); id != "" {
		h.Set("X-Request-Id", id)
	}
	trace.Inject(ctx, h)
}

// handleStream proxies one NDJSON session to the owning shard with
// full-duplex pass-through: client rows flow up unbuffered while scored
// records flow back, flushed as they arrive. A stream is never retried
// against a second shard — its body is not replayable — so routing
// failures before the session opens are reported as JSON errors with
// Retry-After, and the prober plus circuit breaker steer the client's
// reconnect to a live shard.
func (f *Front) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	// Full duplex: without this the HTTP/1.1 server drains the (unbounded,
	// chunked) request body before the first response write, which deadlocks
	// a pass-through proxy that must relay scored records while the client
	// is still sending rows.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("streaming unsupported: %v", err)})
		return
	}
	key := f.Key(r)
	shard, rerouted := f.router.Pick(key)
	if shard == "" {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no shard available for this session; retry shortly"})
		return
	}
	if rerouted {
		f.reqLog(r.Context()).Info("stream rerouted past owner", "key", key, "shard", shard)
	}
	pctx, psp := trace.StartSpan(r.Context(), "front.proxy")
	psp.SetAttr("shard", shard)
	psp.SetAttr("endpoint", "stream")
	psp.SetAttr("rerouted", rerouted)
	defer psp.End()
	out, err := http.NewRequestWithContext(pctx, http.MethodPost, shardURL(shard, r.URL), r.Body)
	if err != nil {
		psp.SetError(err)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	// Chunked upload: the session length is unknown and rows must flow
	// as they arrive.
	out.ContentLength = -1
	copyProxyHeaders(out.Header, r.Header)
	f.decorate(pctx, out.Header)
	resp, err := f.router.client.Do(out)
	if err != nil {
		psp.SetError(err)
		f.router.ReportFailure(shard)
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusBadGateway, errorBody{Error: fmt.Sprintf("shard %s unreachable: %v; reconnect to be rerouted", shard, err)})
		return
	}
	defer resp.Body.Close()
	f.router.ReportSuccess(shard)
	mShardProxied.With(shard, "stream").Inc()
	if resp.StatusCode != http.StatusOK {
		// The shard refused the session — most likely it started draining
		// between our last probe and now. Converge routing immediately,
		// then relay its answer (a 503 carries the shard's Retry-After).
		if resp.StatusCode == http.StatusServiceUnavailable {
			f.router.MarkDraining(shard)
			go f.router.ProbeNow(context.Background())
		}
		relayResponse(w, resp)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				// The shard died mid-session. Already-delivered records
				// stand; the terminal record tells the client to reconnect
				// (rendezvous will route it to the next live shard).
				f.router.ReportFailure(shard)
				f.writeStreamError(w, flusher, fmt.Sprintf("shard connection lost mid-stream: %v; reconnect to continue on another shard", rerr))
			}
			return
		}
	}
}

// writeStreamError emits a terminal NDJSON error record on an
// already-open stream response.
func (f *Front) writeStreamError(w io.Writer, flusher http.Flusher, msg string) {
	data, _ := json.Marshal(errorBody{Error: msg})
	_, _ = w.Write(append(data, '\n'))
	if flusher != nil {
		flusher.Flush()
	}
}

// shardURL rebuilds the request URL against a backend shard, keeping
// path and query intact.
func shardURL(shard string, u *url.URL) string {
	target := url.URL{Scheme: "http", Host: shard, Path: u.Path, RawQuery: u.RawQuery}
	return target.String()
}

// copyProxyHeaders forwards the headers that matter across the hop;
// hop-by-hop headers stay behind. Traceparent rides along so a client's
// own trace context survives even when the front's tracer overrides it
// with a more specific span via decorate.
func copyProxyHeaders(dst, src http.Header) {
	for _, k := range []string{"Content-Type", "Accept", "Authorization", "X-Request-Id", "Traceparent"} {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

// relayResponse copies a buffered backend response to the client:
// status, safe headers, body.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	data, _ := json.Marshal(body)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}

// DrainAnnounceWindow is the default pause a draining shard holds
// between flipping /healthz to "draining" (kicking its sessions) and
// actually shutting its listener down — long enough for every front's
// next probe tick to observe the drain and stop routing here.
const DrainAnnounceWindow = 3 * time.Second
