package shard

import (
	"fmt"
	"math"
	"testing"
)

func mustMap(t *testing.T, shards ...string) *Map {
	t.Helper()
	m, err := NewMap(shards)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestOwnerDeterministicAcrossProcesses pins placement to golden values:
// the weight function is pure FNV-1a over fixed bytes, so any process on
// any architecture must agree with the owners recorded here. A failure
// means placement changed — a breaking rollout event, never a refactor
// detail.
func TestOwnerDeterministicGolden(t *testing.T) {
	m := mustMap(t, "shard-a:9001", "shard-b:9002", "shard-c:9003")
	golden := map[string]string{
		"alice":     "shard-b:9002",
		"bob":       "shard-c:9003",
		"carol":     "shard-a:9001",
		"session-1": "shard-a:9001",
		"session-2": "shard-c:9003",
		"session-3": "shard-c:9003",
		"":          "shard-c:9003",
		"10.0.0.7":  "shard-b:9002",
	}
	for key, want := range golden {
		if got := m.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestOwnerOrderIndependent: the construction order of the shard list
// must not affect placement.
func TestOwnerOrderIndependent(t *testing.T) {
	a := mustMap(t, "s1:1", "s2:2", "s3:3", "s4:4")
	b := mustMap(t, "s4:4", "s2:2", "s3:3", "s1:1")
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner differs with shard order (%q vs %q)", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRankIsOwnerFirstPermutation: Rank starts at the owner and is a
// permutation of the membership.
func TestRankIsOwnerFirstPermutation(t *testing.T) {
	m := mustMap(t, "a:1", "b:2", "c:3", "d:4", "e:5")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		rank := m.Rank(key)
		if rank[0] != m.Owner(key) {
			t.Fatalf("key %q: rank[0] = %q, owner %q", key, rank[0], m.Owner(key))
		}
		seen := map[string]bool{}
		for _, s := range rank {
			seen[s] = true
		}
		if len(rank) != m.Len() || len(seen) != m.Len() {
			t.Fatalf("key %q: rank %v is not a permutation of the membership", key, rank)
		}
	}
}

// TestRemoveShardMovesOnlyItsKeys: removing one shard of n reassigns
// exactly the keys it owned (~1/n of the keyspace) and no others — the
// rendezvous stability property that makes membership changes cheap.
func TestRemoveShardMovesOnlyItsKeys(t *testing.T) {
	shards := []string{"s1:1", "s2:2", "s3:3", "s4:4", "s5:5"}
	before := mustMap(t, shards...)
	after := mustMap(t, shards[1:]...) // drop s1:1
	const keys = 20000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("session-%d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob == "s1:1" {
			moved++
			continue // its keys must move somewhere
		}
		if ob != oa {
			t.Fatalf("key %q moved %q -> %q though its owner stayed a member", key, ob, oa)
		}
	}
	want := float64(keys) / float64(len(shards))
	if frac := math.Abs(float64(moved)-want) / want; frac > 0.15 {
		t.Fatalf("removing 1 of %d shards moved %d of %d keys, want ~%.0f (+-15%%)", len(shards), moved, keys, want)
	}
}

// TestAddShardStealsOnlyItsKeys: a new member takes ~1/(n+1) of the
// keys, all of them, and every moved key moves to it.
func TestAddShardStealsOnlyItsKeys(t *testing.T) {
	before := mustMap(t, "s1:1", "s2:2", "s3:3", "s4:4", "s5:5")
	after := mustMap(t, "s1:1", "s2:2", "s3:3", "s4:4", "s5:5", "s6:6")
	const keys = 20000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("session-%d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob == oa {
			continue
		}
		if oa != "s6:6" {
			t.Fatalf("key %q moved %q -> %q, but only the new shard may steal keys", key, ob, oa)
		}
		moved++
	}
	want := float64(keys) / 6
	if frac := math.Abs(float64(moved)-want) / want; frac > 0.15 {
		t.Fatalf("adding a 6th shard moved %d of %d keys, want ~%.0f (+-15%%)", moved, keys, want)
	}
}

// TestOwnerBalance: the keyspace spreads evenly across members.
func TestOwnerBalance(t *testing.T) {
	m := mustMap(t, "a:1", "b:2", "c:3")
	counts := map[string]int{}
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[m.Owner(fmt.Sprintf("user-%d", i))]++
	}
	want := float64(keys) / 3
	for s, c := range counts {
		if frac := math.Abs(float64(c)-want) / want; frac > 0.1 {
			t.Fatalf("shard %q owns %d of %d keys, want ~%.0f (+-10%%)", s, c, keys, want)
		}
	}
}

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(nil); err == nil {
		t.Error("NewMap(nil) should fail")
	}
	if _, err := NewMap([]string{"a:1", ""}); err == nil {
		t.Error("empty shard name should fail")
	}
	m := mustMap(t, "a:1", "a:1", "b:2")
	if m.Len() != 2 {
		t.Errorf("duplicates not collapsed: %v", m.Shards())
	}
}
