// Package shard is the horizontal scale-out layer of hicsd streaming: a
// rendezvous-hash shard map assigning session keys to backend shards, a
// health-tracking router with per-shard circuit breaking, and the
// stateless front handler that proxies /stream (full-duplex NDJSON
// pass-through), /score and /rank to the owning shard.
//
// Rendezvous (highest-random-weight) hashing was chosen over a hash
// ring for its exactness: every (shard, key) pair gets an independent
// pseudo-random weight and the key lives on the highest-weighted shard,
// so removing one shard of n reassigns exactly the keys it owned —
// 1/n of the keyspace in expectation — and adding one steals only the
// keys it now wins. No virtual-node tuning, no ring imbalance.
package shard

import (
	"fmt"
	"slices"
)

// Map is an immutable rendezvous hash over a set of shard names.
// Placement is a pure function of the name set and the key — two
// processes constructing a Map over the same names agree on every
// owner, which is what lets any number of stateless fronts route
// without coordination.
type Map struct {
	shards []string
}

// NewMap builds a map over the given shard names (typically host:port
// addresses). Names are deduplicated; order does not matter. At least
// one shard is required.
func NewMap(shards []string) (*Map, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: a map needs at least one shard")
	}
	s := slices.Clone(shards)
	slices.Sort(s)
	s = slices.Compact(s)
	for _, name := range s {
		if name == "" {
			return nil, fmt.Errorf("shard: empty shard name")
		}
	}
	return &Map{shards: s}, nil
}

// Shards returns the member names, sorted.
func (m *Map) Shards() []string { return slices.Clone(m.shards) }

// Len returns the number of shards.
func (m *Map) Len() int { return len(m.shards) }

// Owner returns the shard owning key: the member with the highest
// rendezvous weight. Ties (astronomically unlikely with 64-bit weights,
// but possible) break toward the lexically smaller name so placement
// stays deterministic.
func (m *Map) Owner(key string) string {
	best, bestW := "", uint64(0)
	for _, s := range m.shards {
		if w := weight(s, key); best == "" || w > bestW {
			best, bestW = s, w
		}
	}
	return best
}

// Rank returns all shards ordered by descending rendezvous weight for
// key: the owner first, then the shard that would own the key if the
// owner left, and so on. A router walks this order for failover, which
// preserves the rendezvous stability property at every step.
func (m *Map) Rank(key string) []string {
	type sw struct {
		name string
		w    uint64
	}
	ws := make([]sw, len(m.shards))
	for i, s := range m.shards {
		ws[i] = sw{s, weight(s, key)}
	}
	slices.SortStableFunc(ws, func(a, b sw) int {
		switch {
		case a.w > b.w:
			return -1
		case a.w < b.w:
			return 1
		}
		return 0
	})
	out := make([]string, len(ws))
	for i, s := range ws {
		out[i] = s.name
	}
	return out
}

// weight is the rendezvous score of key on shard: FNV-1a 64 over
// shard + "\x00" + key, passed through a 64-bit avalanche finalizer.
// FNV alone leaves weights of similar shard names correlated (its
// prefix mixing is weak), which shows up as multi-percent keyspace
// imbalance; the finalizer — murmur3's fmix64 — decorrelates every
// output bit. Both stages are pure integer arithmetic with fixed
// constants, stable across Go versions, architectures and processes —
// unlike hash/maphash — which makes placement reproducible everywhere.
// (The adversarial-collision concern of exposed hash functions does not
// apply: shard names come from the operator, and a client who controls
// session keys only chooses which shard serves them.)
func weight(shard, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(shard); i++ {
		h ^= uint64(shard[i])
		h *= prime64
	}
	h ^= 0 // the separator byte
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// fmix64: full avalanche over the combined state.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
