package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"hics"
	"hics/internal/rng"
	"hics/internal/serve"
)

// fitModel builds one small model shared by every test backend.
var (
	modelOnce sync.Once
	model     *hics.Model
	modelErr  error
)

func testModel(t *testing.T) *hics.Model {
	t.Helper()
	modelOnce.Do(func() {
		r := rng.New(1)
		rows := make([][]float64, 200)
		for i := range rows {
			c := 0.3
			if r.Float64() < 0.5 {
				c = 0.7
			}
			rows[i] = []float64{r.NormalScaled(c, 0.04), r.NormalScaled(c, 0.04), r.Float64(), r.Float64()}
		}
		model, modelErr = hics.Fit(rows, hics.Options{M: 10, Seed: 1, TopK: 5})
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

// backend is one shard under test: a real serve handler (with drain
// control) plus a counter of the stream sessions it accepted.
type backend struct {
	srv   *serve.Server
	ts    *httptest.Server
	addr  string
	mu    sync.Mutex
	seen  int
	paths []string
}

func newBackend(t *testing.T, m *hics.Model) *backend {
	t.Helper()
	b := &backend{}
	b.srv = serve.NewServer(serve.Config{Model: m, RequestTimeout: time.Minute})
	count := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		if r.URL.Path == "/stream" {
			b.seen++
		}
		b.paths = append(b.paths, r.URL.Path)
		b.mu.Unlock()
		b.srv.ServeHTTP(w, r)
	})
	b.ts = httptest.NewServer(count)
	u, err := url.Parse(b.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	b.addr = u.Host
	t.Cleanup(b.ts.Close)
	return b
}

func (b *backend) streams() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seen
}

// newFront wires a front over the given backends with a fast probe.
func newFront(t *testing.T, backends ...*backend) (*Front, *Router, *httptest.Server) {
	t.Helper()
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.addr
	}
	router, err := NewRouter(RouterConfig{Shards: addrs, ProbeInterval: 100 * time.Millisecond, FailThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	f := NewFront(FrontConfig{Router: router})
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	return f, router, ts
}

// streamRows posts rows as one NDJSON session and returns the scored
// records plus any error-record strings, in arrival order.
func streamRows(t *testing.T, base, query string, rows int) ([]serve.StreamRecord, []string) {
	t.Helper()
	var body strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&body, "[0.%d,0.5,0.5,0.5]\n", i%10)
	}
	resp, err := http.Post(base+"/stream?window=60&"+query, "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, b)
	}
	return readSession(t, resp.Body)
}

func readSession(t *testing.T, r io.Reader) ([]serve.StreamRecord, []string) {
	t.Helper()
	var (
		records []serve.StreamRecord
		errs    []string
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.Contains(line, `"error"`) {
			errs = append(errs, line)
			continue
		}
		var rec serve.StreamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return records, errs
}

// TestFrontRoutesByKey: sessions with different keys spread across both
// shards per the rendezvous map, scored records come back intact, and
// the same key always lands on the same shard.
func TestFrontRoutesByKey(t *testing.T) {
	m := testModel(t)
	b1, b2 := newBackend(t, m), newBackend(t, m)
	_, router, ts := newFront(t, b1, b2)

	const rows = 5
	byAddr := map[string]*backend{b1.addr: b1, b2.addr: b2}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("user-%d", i)
		owner := router.Owner(key)
		before := byAddr[owner].streams()
		records, errs := streamRows(t, ts.URL, "session="+key, rows)
		if len(errs) > 0 {
			t.Fatalf("key %s: error records %v", key, errs)
		}
		if len(records) != rows {
			t.Fatalf("key %s: %d records, want %d", key, len(records), rows)
		}
		for j, rec := range records {
			if rec.Index != j {
				t.Fatalf("key %s: record %d has index %d", key, j, rec.Index)
			}
		}
		if after := byAddr[owner].streams(); after != before+1 {
			t.Fatalf("key %s: owner %s saw %d sessions, want %d", key, owner, after, before+1)
		}
	}
	if b1.streams() == 0 || b2.streams() == 0 {
		t.Fatalf("keyspace did not spread: shard1=%d shard2=%d sessions", b1.streams(), b2.streams())
	}
}

// TestFrontUnaryProxy: /score and /info route through to a shard and
// come back byte-compatible; a dead owner fails over to the next
// candidate within the same request.
func TestFrontUnaryProxy(t *testing.T) {
	m := testModel(t)
	b1, b2 := newBackend(t, m), newBackend(t, m)
	_, router, ts := newFront(t, b1, b2)

	resp, err := http.Post(ts.URL+"/score?session=k1", "application/json", strings.NewReader(`{"point":[0.5,0.5,0.5,0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"score"`) {
		t.Fatalf("proxied score: %d %s", resp.StatusCode, body)
	}

	ir, err := http.Get(ts.URL + "/info?session=k1")
	if err != nil {
		t.Fatal(err)
	}
	ibody, _ := io.ReadAll(ir.Body)
	ir.Body.Close()
	if ir.StatusCode != http.StatusOK || !strings.Contains(string(ibody), `"server"`) {
		t.Fatalf("proxied info: %d %s", ir.StatusCode, ibody)
	}

	// Kill the owner of key "failover"; the request must still succeed
	// via the surviving shard.
	key := "failover"
	owner := router.Owner(key)
	for _, b := range []*backend{b1, b2} {
		if b.addr == owner {
			b.ts.Close()
		}
	}
	fr, err := http.Post(ts.URL+"/score?session="+key, "application/json", strings.NewReader(`{"point":[0.5,0.5,0.5,0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	fbody, _ := io.ReadAll(fr.Body)
	fr.Body.Close()
	if fr.StatusCode != http.StatusOK || !strings.Contains(string(fbody), `"score"`) {
		t.Fatalf("failover score: %d %s", fr.StatusCode, fbody)
	}
}

// TestFrontDrainMidStream: draining the owning shard mid-session
// delivers every already-scored record plus the shard's terminal
// draining error record through the front, the front's health view
// flips the shard to draining, and the next session for the same key
// reroutes to the survivor.
func TestFrontDrainMidStream(t *testing.T) {
	m := testModel(t)
	b1, b2 := newBackend(t, m), newBackend(t, m)
	_, router, ts := newFront(t, b1, b2)

	key := "drain-me"
	owner := router.Owner(key)
	byAddr := map[string]*backend{b1.addr: b1, b2.addr: b2}
	owning, other := byAddr[owner], b1
	if owning == b1 {
		other = b2
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/stream?window=60&session="+key, pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	const scored = 4
	for i := 0; i < scored; i++ {
		if _, err := io.WriteString(pw, "[0.5,0.5,0.5,0.5]\n"); err != nil {
			t.Fatal(err)
		}
	}
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("no streaming response through the front")
	}
	defer resp.Body.Close()

	br := bufio.NewReader(resp.Body)
	readLine := func() string {
		linec := make(chan string, 1)
		errc := make(chan error, 1)
		go func() {
			l, err := br.ReadString('\n')
			if err != nil {
				errc <- err
				return
			}
			linec <- l
		}()
		select {
		case l := <-linec:
			return l
		case err := <-errc:
			t.Fatalf("reading proxied stream: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("timed out reading proxied stream")
		}
		return ""
	}
	for i := 0; i < scored; i++ {
		var rec serve.StreamRecord
		if err := json.Unmarshal([]byte(readLine()), &rec); err != nil || rec.Index != i {
			t.Fatalf("proxied record %d: %v (err %v)", i, rec, err)
		}
	}

	// Drain the owner mid-session: the terminal record must pass through
	// with the scored lines already delivered above.
	owning.srv.Drain()
	terminal := readLine()
	if !strings.Contains(terminal, serve.DrainingStreamError) {
		t.Fatalf("terminal line %q does not carry the draining record", terminal)
	}
	pw.Close()

	// The front's next probe marks the shard draining.
	router.ProbeNow(t.Context())
	var st ShardStatus
	for _, s := range router.Status() {
		if s.Shard == owner {
			st = s
		}
	}
	if !st.Draining {
		t.Fatalf("owner %s not marked draining after probe: %+v", owner, router.Status())
	}

	// Front health reports the drained shard and stays serving.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !strings.Contains(string(hbody), `"degraded"`) {
		t.Fatalf("front health after drain: %d %s", hr.StatusCode, hbody)
	}

	// New sessions for the drained owner's keys reroute to the survivor.
	before := other.streams()
	records, errs := streamRows(t, ts.URL, "session="+key, 3)
	if len(errs) > 0 || len(records) != 3 {
		t.Fatalf("rerouted session: %d records, errs %v", len(records), errs)
	}
	if other.streams() != before+1 {
		t.Fatalf("session did not reroute to the survivor (saw %d, want %d)", other.streams(), before+1)
	}
}

// TestFrontAllShardsOut: with every shard draining, new sessions get a
// 503 with Retry-After and a JSON error, not a hang.
func TestFrontAllShardsOut(t *testing.T) {
	m := testModel(t)
	b1 := newBackend(t, m)
	_, router, ts := newFront(t, b1)
	b1.srv.Drain()
	router.ProbeNow(t.Context())

	resp, err := http.Post(ts.URL+"/stream?session=x", "application/x-ndjson", strings.NewReader("[0.5,0.5,0.5,0.5]\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("all-out stream: %d (Retry-After %q) %s", resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	if !strings.Contains(string(body), `"error"`) {
		t.Fatalf("all-out stream body %s is not a JSON error", body)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("front health with all shards out: %d, want 503", hr.StatusCode)
	}
}

// TestFrontHammer: concurrent sessions through the front while one
// shard drains mid-flight. Sessions owned by surviving shards must not
// lose a single row; sessions on the draining shard must either
// complete or end with the terminal draining record after a contiguous
// scored prefix. Run with -race in CI.
func TestFrontHammer(t *testing.T) {
	m := testModel(t)
	b1, b2, b3 := newBackend(t, m), newBackend(t, m), newBackend(t, m)
	_, router, ts := newFront(t, b1, b2, b3)
	byAddr := map[string]*backend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	drainAddr := b2.addr

	const (
		sessions = 12
		rows     = 30
	)
	type result struct {
		key     string
		records []serve.StreamRecord
		errs    []string
		fail    string
	}
	results := make([]result, sessions)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			res.key = fmt.Sprintf("hammer-%d", i)
			pr, pw := io.Pipe()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/stream?window=60&session="+res.key, pr)
			if err != nil {
				res.fail = err.Error()
				return
			}
			respc := make(chan *http.Response, 1)
			cerrc := make(chan error, 1)
			go func() {
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					cerrc <- err
					return
				}
				respc <- resp
			}()
			<-start
			writeDone := make(chan struct{})
			go func() {
				defer close(writeDone)
				defer pw.Close()
				for j := 0; j < rows; j++ {
					if _, err := io.WriteString(pw, "[0.5,0.5,0.5,0.5]\n"); err != nil {
						return // session torn down mid-write (drain): fine
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()
			select {
			case resp := <-respc:
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b, _ := io.ReadAll(resp.Body)
					res.fail = fmt.Sprintf("status %d: %s", resp.StatusCode, b)
					return
				}
				res.records, res.errs = readSession(t, resp.Body)
			case err := <-cerrc:
				res.fail = err.Error()
				return
			case <-time.After(30 * time.Second):
				res.fail = "timed out"
				return
			}
			<-writeDone
		}(i)
	}
	close(start)
	time.Sleep(20 * time.Millisecond)
	byAddr[drainAddr].srv.Drain()
	wg.Wait()

	for _, res := range results {
		if res.fail != "" {
			t.Fatalf("session %s failed: %s", res.key, res.fail)
		}
		for j, rec := range res.records {
			if rec.Index != j {
				t.Fatalf("session %s: non-contiguous records (index %d at position %d)", res.key, rec.Index, j)
			}
		}
		owner := router.Owner(res.key)
		if owner != drainAddr {
			// Survivor-owned session: zero lost rows, no error records.
			if len(res.records) != rows || len(res.errs) != 0 {
				t.Fatalf("session %s on surviving shard %s: %d/%d records, errs %v",
					res.key, owner, len(res.records), rows, res.errs)
			}
			continue
		}
		// Drained-shard session: full completion (finished before the
		// kick) or a terminal draining record after the scored prefix.
		if len(res.records) == rows && len(res.errs) == 0 {
			continue
		}
		if len(res.errs) != 1 || !strings.Contains(res.errs[0], serve.DrainingStreamError) {
			t.Fatalf("session %s on drained shard: %d records, errs %v", res.key, len(res.records), res.errs)
		}
	}
}
