// Package ris implements RIS ("Ranking Interesting Subspaces", Kailing et
// al., PKDD 2003), the DBSCAN-based subspace search competitor of the
// paper's evaluation.
//
// RIS rates a subspace by its core objects: an object is a core object if
// its ε-neighborhood in the subspace holds at least MinPts objects. The
// quality of a subspace aggregates the neighborhood counts of all core
// objects, normalized by the count a uniform distribution would produce in
// the same volume, so that higher-dimensional subspaces are not penalized
// merely for being sparser. Candidates are grown level-wise: a subspace
// can only contain core objects if its projections do (density shrinks
// monotonically with added dimensions), giving an Apriori-style pruning.
//
// The cubic runtime the paper observes (Fig. 6) stems from the O(N²)
// neighborhood counting performed for the many candidates of each level;
// this implementation reproduces that behaviour faithfully.
package ris

import (
	"context"
	"fmt"
	"math"

	"hics/internal/dataset"
	"hics/internal/knn"
	"hics/internal/neighbors"
	"hics/internal/subspace"
)

// Defaults tuned for min-max normalized data.
const (
	DefaultEps    = 0.1 // neighborhood radius
	DefaultMinPts = 10  // core-object density threshold
	DefaultTopK   = 100 // subspaces handed to the ranking step
	DefaultCutoff = 400 // candidates retained per level
	DefaultMaxDim = 6   // safety bound
)

// Params configures the RIS search. Zero values select defaults.
type Params struct {
	Eps    float64 // neighborhood radius in the normalized data space
	MinPts int     // minimum neighbors for a core object
	TopK   int     // returned subspaces (-1 = all)
	Cutoff int     // candidates retained per level
	MaxDim int     // candidate dimensionality bound
}

func (p Params) withDefaults() Params {
	if p.Eps <= 0 {
		p.Eps = DefaultEps
	}
	if p.MinPts <= 0 {
		p.MinPts = DefaultMinPts
	}
	if p.TopK == 0 {
		p.TopK = DefaultTopK
	}
	if p.Cutoff <= 0 {
		p.Cutoff = DefaultCutoff
	}
	if p.MaxDim <= 0 {
		p.MaxDim = DefaultMaxDim
	}
	return p
}

// Quality measures subspace s: the mean ε-neighborhood count over core
// objects, normalized by the expected count N·v(d) of a uniform unit-cube
// distribution, where v(d) is the volume of the d-dimensional ε-ball
// clipped to the unit cube. It returns 0 when no core object exists.
func Quality(ds *dataset.Dataset, s subspace.Subspace, p Params) (quality float64, coreObjects int, err error) {
	p = p.withDefaults()
	// Pin the brute backend: RIS only range-counts (CountWithin), so a
	// k-d tree would be built per candidate subspace and never queried.
	searcher, err := knn.NewWithKind(ds, s, neighbors.KindBrute)
	if err != nil {
		return 0, 0, fmt.Errorf("ris: %w", err)
	}
	sc := searcher.NewScratch()
	n := ds.N()
	total := 0
	for i := 0; i < n; i++ {
		c := searcher.CountWithin(i, p.Eps, sc)
		if c >= p.MinPts {
			coreObjects++
			total += c
		}
	}
	if coreObjects == 0 {
		return 0, 0, nil
	}
	expected := float64(n) * ballVolume(s.Dim(), p.Eps)
	if expected <= 0 {
		return 0, coreObjects, nil
	}
	mean := float64(total) / float64(coreObjects)
	return mean / expected, coreObjects, nil
}

// ballVolume returns the volume of a d-dimensional Euclidean ε-ball,
// capped at 1 (the unit cube the normalized data lives in).
func ballVolume(d int, eps float64) float64 {
	// V_d(r) = π^{d/2} r^d / Γ(d/2 + 1)
	lg, _ := math.Lgamma(float64(d)/2 + 1)
	v := math.Exp(float64(d)/2*math.Log(math.Pi) + float64(d)*math.Log(eps) - lg)
	if v > 1 {
		return 1
	}
	return v
}

// Result carries the outcome of a RIS search.
type Result struct {
	Subspaces []subspace.Scored // ranked by descending quality
	Evaluated int               // quality computations performed
}

// Search runs the level-wise RIS procedure on min-max normalized data.
func Search(ds *dataset.Dataset, p Params) (*Result, error) {
	return SearchContext(context.Background(), ds, p)
}

// SearchContext is Search with cooperative cancellation: ctx is checked
// between candidate quality evaluations, so a cancelled context surfaces
// ctx.Err() within one candidate's O(N²) neighborhood-counting pass.
func SearchContext(ctx context.Context, ds *dataset.Dataset, p Params) (*Result, error) {
	p = p.withDefaults()
	if ds.D() < 2 {
		return nil, fmt.Errorf("ris: need at least 2 attributes, have %d", ds.D())
	}
	res := &Result{}
	var pool []subspace.Scored

	candidates := subspace.AllPairs(ds.D())
	for dim := 2; len(candidates) > 0 && dim <= p.MaxDim; dim++ {
		var kept []subspace.Scored
		for _, s := range candidates {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			q, cores, err := Quality(ds, s, p)
			res.Evaluated++
			if err != nil {
				return nil, err
			}
			// Apriori-style pruning: only subspaces that still contain core
			// objects seed the next level.
			if cores > 0 {
				kept = append(kept, subspace.Scored{S: s, Score: q})
			}
		}
		kept = subspace.TopK(kept, p.Cutoff)
		pool = append(pool, kept...)
		if dim == p.MaxDim {
			break
		}
		parents := make([]subspace.Subspace, len(kept))
		for i, sc := range kept {
			parents[i] = sc.S
		}
		candidates = subspace.GenerateCandidates(parents)
	}

	res.Subspaces = subspace.TopK(pool, p.TopK)
	return res, nil
}

// Searcher adapts Search to the ranking pipeline.
type Searcher struct {
	Params Params
}

// Search implements the two-step pipeline's subspace search step.
func (r *Searcher) Search(ctx context.Context, ds *dataset.Dataset) ([]subspace.Scored, error) {
	res, err := SearchContext(ctx, ds, r.Params)
	if err != nil {
		return nil, err
	}
	return res.Subspaces, nil
}

// Name identifies the method in experiment reports.
func (r *Searcher) Name() string { return "RIS" }
