package ris

import (
	"context"
	"math"
	"testing"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/subspace"
)

func uniformData(seed uint64, n, d int) *dataset.Dataset {
	r := rng.New(seed)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = r.Float64()
		}
	}
	return dataset.MustNew(nil, cols)
}

func clusteredPair(seed uint64, n, d int) *dataset.Dataset {
	r := rng.New(seed)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		c := 0.25
		if r.Float64() < 0.5 {
			c = 0.75
		}
		cols[0][i] = clamp01(r.NormalScaled(c, 0.02))
		cols[1][i] = clamp01(r.NormalScaled(c, 0.02))
		for j := 2; j < d; j++ {
			cols[j][i] = r.Float64()
		}
	}
	return dataset.MustNew(nil, cols)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestBallVolume(t *testing.T) {
	// 1-d "ball" of radius 0.1 is an interval of length 0.2.
	if v := ballVolume(1, 0.1); math.Abs(v-0.2) > 1e-12 {
		t.Errorf("1-d volume = %v, want 0.2", v)
	}
	// 2-d: π r².
	if v := ballVolume(2, 0.1); math.Abs(v-math.Pi*0.01) > 1e-12 {
		t.Errorf("2-d volume = %v, want %v", v, math.Pi*0.01)
	}
	// Huge radius is capped at the unit cube.
	if v := ballVolume(2, 10); v != 1 {
		t.Errorf("capped volume = %v, want 1", v)
	}
}

func TestQualityClusteredAboveUniform(t *testing.T) {
	clus := clusteredPair(1, 600, 2)
	unif := uniformData(2, 600, 2)
	s := subspace.New(0, 1)
	qC, coresC, err := Quality(clus, s, Params{})
	if err != nil {
		t.Fatal(err)
	}
	qU, _, err := Quality(unif, s, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if coresC == 0 {
		t.Fatal("clustered data produced no core objects")
	}
	if qC <= qU {
		t.Errorf("clustered quality %v <= uniform quality %v", qC, qU)
	}
}

func TestQualityNoCoreObjects(t *testing.T) {
	// 20 widely spread points, eps small: no cores.
	r := rng.New(3)
	x := make([]float64, 20)
	y := make([]float64, 20)
	for i := range x {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	ds := dataset.MustNew(nil, [][]float64{x, y})
	q, cores, err := Quality(ds, subspace.New(0, 1), Params{Eps: 0.001, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cores != 0 || q != 0 {
		t.Errorf("expected no cores, got q=%v cores=%d", q, cores)
	}
}

func TestQualityBadSubspace(t *testing.T) {
	ds := uniformData(4, 50, 2)
	if _, _, err := Quality(ds, subspace.New(0, 9), Params{}); err == nil {
		t.Error("out-of-range subspace should fail")
	}
}

func TestSearchFindsClusteredSubspace(t *testing.T) {
	ds := clusteredPair(5, 500, 5)
	res, err := Search(ds, Params{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) == 0 {
		t.Fatal("no subspaces found")
	}
	if !res.Subspaces[0].S.SupersetOf(subspace.New(0, 1)) {
		t.Errorf("top subspace %v does not cover planted pair", res.Subspaces[0].S)
	}
}

func TestSearchRespectsBounds(t *testing.T) {
	ds := clusteredPair(6, 300, 5)
	res, err := Search(ds, Params{TopK: 4, MaxDim: 2, Cutoff: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) > 4 {
		t.Errorf("TopK violated: %d", len(res.Subspaces))
	}
	for _, sc := range res.Subspaces {
		if sc.S.Dim() > 2 {
			t.Errorf("MaxDim violated by %v", sc.S)
		}
	}
}

func TestSearchSortedDescending(t *testing.T) {
	ds := clusteredPair(7, 400, 4)
	res, err := Search(ds, Params{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Subspaces); i++ {
		if res.Subspaces[i].Score > res.Subspaces[i-1].Score {
			t.Fatal("result not sorted by descending quality")
		}
	}
}

func TestSearchErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1, 2}})
	if _, err := Search(ds, Params{}); err == nil {
		t.Error("single attribute should fail")
	}
}

func TestSearcherAdapter(t *testing.T) {
	ds := clusteredPair(8, 300, 4)
	s := &Searcher{}
	list, err := s.Search(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Error("adapter returned nothing")
	}
	if s.Name() != "RIS" {
		t.Errorf("Name = %q", s.Name())
	}
}
