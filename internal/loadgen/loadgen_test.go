package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hics"
	"hics/internal/fleet"
	"hics/internal/rng"
	"hics/internal/serve"
)

var (
	testModelOnce sync.Once
	testModel     *hics.Model
)

// model fits one small model shared across the package's tests.
func model(t *testing.T) *hics.Model {
	t.Helper()
	testModelOnce.Do(func() {
		r := rng.New(7)
		rows := make([][]float64, 150)
		for i := range rows {
			rows[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		}
		m, err := hics.Fit(rows, hics.Options{M: 10, Seed: 7, TopK: 3})
		if err != nil {
			panic(err)
		}
		testModel = m
	})
	return testModel
}

// newTarget serves a single-model hicsd handler with the given stream
// quota (0 = unlimited).
func newTarget(t *testing.T, maxStreams int) *httptest.Server {
	t.Helper()
	fl := fleet.New(fleet.Config{})
	if err := fl.Put(fleet.DefaultName, model(t), fleet.Quota{MaxStreams: maxStreams}, true); err != nil {
		t.Fatal(err)
	}
	if err := fl.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(serve.Config{Fleet: fl}))
	t.Cleanup(ts.Close)
	return ts
}

func TestStreamLoad(t *testing.T) {
	ts := newTarget(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{Target: ts.URL, Mode: "stream", Sessions: 3, Rows: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsSent != 60 || rep.RecordsReceived != 60 {
		t.Errorf("rows sent %d records %d, want 60/60", rep.RowsSent, rep.RecordsReceived)
	}
	if rep.Errors != 0 || rep.AdmissionRetries != 0 {
		t.Errorf("errors %d retries %d, want 0/0", rep.Errors, rep.AdmissionRetries)
	}
	if rep.LatencyMS.Max <= 0 || rep.LatencyMS.P50 > rep.LatencyMS.Max {
		t.Errorf("latency percentiles inconsistent: %+v", rep.LatencyMS)
	}
	if rep.RowsPerSecond <= 0 {
		t.Errorf("throughput %v, want > 0", rep.RowsPerSecond)
	}
	human := rep.Human()
	for _, want := range []string{"records received 60", "latency ms", "throughput"} {
		if !strings.Contains(human, want) {
			t.Errorf("Human() missing %q:\n%s", want, human)
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report must serialize: %v", err)
	}
}

func TestStreamLoadRated(t *testing.T) {
	ts := newTarget(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Config{Target: ts.URL, Sessions: 1, Rows: 6, Rate: 50})
	if err != nil {
		t.Fatal(err)
	}
	// 6 rows at 50 rows/s paces the session to ~100ms.
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("rated run finished in %v, want >= 80ms of pacing", elapsed)
	}
	if rep.RecordsReceived != 6 {
		t.Errorf("records %d, want 6", rep.RecordsReceived)
	}
}

// TestStreamLoadQuotaRetry: with a 1-stream admission quota and 2
// concurrent sessions, the refused session must back off, retry under a
// rotated key, and still complete all rows.
func TestStreamLoadQuotaRetry(t *testing.T) {
	ts := newTarget(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{Target: ts.URL, Sessions: 2, Rows: 30, Rate: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsReceived != 60 {
		t.Errorf("records %d, want 60 (both sessions complete eventually)", rep.RecordsReceived)
	}
	if rep.AdmissionRetries == 0 {
		t.Error("expected at least one 429 admission retry under a 1-stream quota")
	}
	if rep.Errors != 0 {
		t.Errorf("errors %d, want 0 — quota bounces are retries, not errors", rep.Errors)
	}
}

func TestScoreLoad(t *testing.T) {
	ts := newTarget(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{Target: ts.URL, Mode: "score", Sessions: 2, Rows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsReceived != 20 || rep.Errors != 0 {
		t.Errorf("records %d errors %d, want 20/0", rep.RecordsReceived, rep.Errors)
	}
	if rep.LatencyMS.P99 <= 0 {
		t.Errorf("latency percentiles empty: %+v", rep.LatencyMS)
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Error("missing target should fail")
	}
	if _, err := Run(ctx, Config{Target: "http://x", Mode: "bogus"}); err == nil {
		t.Error("bad mode should fail")
	}
	if _, err := Run(ctx, Config{Target: "http://x", Rate: -1}); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestPercentiles(t *testing.T) {
	p := percentiles(nil)
	if p.Max != 0 {
		t.Errorf("empty percentiles = %+v, want zeros", p)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1) // 1..100
	}
	p = percentiles(ms)
	if p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles of 1..100 = %+v, want 50/90/99/100", p)
	}
}
