package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hics"
	"hics/internal/fleet"
	"hics/internal/rng"
	"hics/internal/serve"
)

var (
	testModelOnce sync.Once
	testModel     *hics.Model
)

// model fits one small model shared across the package's tests.
func model(t *testing.T) *hics.Model {
	t.Helper()
	testModelOnce.Do(func() {
		r := rng.New(7)
		rows := make([][]float64, 150)
		for i := range rows {
			rows[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		}
		m, err := hics.Fit(rows, hics.Options{M: 10, Seed: 7, TopK: 3})
		if err != nil {
			panic(err)
		}
		testModel = m
	})
	return testModel
}

// newTarget serves a single-model hicsd handler with the given stream
// quota (0 = unlimited).
func newTarget(t *testing.T, maxStreams int) *httptest.Server {
	t.Helper()
	fl := fleet.New(fleet.Config{})
	if err := fl.Put(fleet.DefaultName, model(t), fleet.Quota{MaxStreams: maxStreams}, true); err != nil {
		t.Fatal(err)
	}
	if err := fl.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(serve.Config{Fleet: fl}))
	t.Cleanup(ts.Close)
	return ts
}

func TestStreamLoad(t *testing.T) {
	ts := newTarget(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{Target: ts.URL, Mode: "stream", Sessions: 3, Rows: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsSent != 60 || rep.RecordsReceived != 60 {
		t.Errorf("rows sent %d records %d, want 60/60", rep.RowsSent, rep.RecordsReceived)
	}
	if rep.Errors != 0 || rep.AdmissionRetries != 0 {
		t.Errorf("errors %d retries %d, want 0/0", rep.Errors, rep.AdmissionRetries)
	}
	if rep.LatencyMS.Max <= 0 || rep.LatencyMS.P50 > rep.LatencyMS.Max {
		t.Errorf("latency percentiles inconsistent: %+v", rep.LatencyMS)
	}
	if rep.RowsPerSecond <= 0 {
		t.Errorf("throughput %v, want > 0", rep.RowsPerSecond)
	}
	human := rep.Human()
	for _, want := range []string{"records received 60", "latency ms", "throughput"} {
		if !strings.Contains(human, want) {
			t.Errorf("Human() missing %q:\n%s", want, human)
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report must serialize: %v", err)
	}
}

func TestStreamLoadRated(t *testing.T) {
	ts := newTarget(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Config{Target: ts.URL, Sessions: 1, Rows: 6, Rate: 50})
	if err != nil {
		t.Fatal(err)
	}
	// 6 rows at 50 rows/s paces the session to ~100ms.
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("rated run finished in %v, want >= 80ms of pacing", elapsed)
	}
	if rep.RecordsReceived != 6 {
		t.Errorf("records %d, want 6", rep.RecordsReceived)
	}
}

// TestStreamLoadQuotaRetry: with a 1-stream admission quota and 2
// concurrent sessions, the refused session must back off, retry under a
// rotated key, and still complete all rows.
func TestStreamLoadQuotaRetry(t *testing.T) {
	ts := newTarget(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{Target: ts.URL, Sessions: 2, Rows: 30, Rate: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsReceived != 60 {
		t.Errorf("records %d, want 60 (both sessions complete eventually)", rep.RecordsReceived)
	}
	if rep.AdmissionRetries == 0 {
		t.Error("expected at least one 429 admission retry under a 1-stream quota")
	}
	if rep.Errors != 0 {
		t.Errorf("errors %d, want 0 — quota bounces are retries, not errors", rep.Errors)
	}
}

func TestScoreLoad(t *testing.T) {
	ts := newTarget(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{Target: ts.URL, Mode: "score", Sessions: 2, Rows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsReceived != 20 || rep.Errors != 0 {
		t.Errorf("records %d errors %d, want 20/0", rep.RecordsReceived, rep.Errors)
	}
	if rep.LatencyMS.P99 <= 0 {
		t.Errorf("latency percentiles empty: %+v", rep.LatencyMS)
	}
}

// TestTracedLoadReportsSlowTraces: with Trace on, every mode reports
// the p99-slowest trace IDs — valid 32-hex W3C IDs, slowest first — and
// the summary prints them.
func TestTracedLoadReportsSlowTraces(t *testing.T) {
	ts := newTarget(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, mode := range []string{"stream", "score"} {
		rep, err := Run(ctx, Config{Target: ts.URL, Mode: mode, Sessions: 2, Rows: 10, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.RecordsReceived != 20 || rep.Errors != 0 {
			t.Fatalf("%s: records %d errors %d, want 20/0", mode, rep.RecordsReceived, rep.Errors)
		}
		if len(rep.SlowTraces) == 0 {
			t.Fatalf("%s: no slow traces reported with Trace on", mode)
		}
		for i, st := range rep.SlowTraces {
			if len(st.TraceID) != 32 || strings.Trim(st.TraceID, "0123456789abcdef") != "" {
				t.Errorf("%s: trace ID %q is not 32 lowercase hex digits", mode, st.TraceID)
			}
			if st.LatencyMS < rep.LatencyMS.P99 {
				t.Errorf("%s: slow trace %d at %.2fms is below p99 %.2fms", mode, i, st.LatencyMS, rep.LatencyMS.P99)
			}
			if i > 0 && st.LatencyMS > rep.SlowTraces[i-1].LatencyMS {
				t.Errorf("%s: slow traces not sorted slowest-first", mode)
			}
		}
		if !strings.Contains(rep.Human(), "p99+ traces") {
			t.Errorf("%s: Human() missing the p99+ traces block:\n%s", mode, rep.Human())
		}
	}
}

// TestTracedLoadSendsIdenticalRows: the trace identities draw from
// their own random stream, so a traced run generates byte-identical
// rows to an untraced one (asserted via identical latency sample
// counts and scores — here, identical record counts suffice plus the
// deterministic row stream being untouched by construction; the cheap
// observable is that two runs with the same seed score the same rows).
func TestTracedRowStreamUnperturbed(t *testing.T) {
	r1 := rng.New(1 + 0*1000003)
	r2 := rng.New(1 + 0*1000003)
	// Drawing the trace stream must not advance the row stream.
	_ = mintSpanContext(rng.New(1 + 0*1000003).Derive(traceRNGLabel))
	a := appendRowLine(nil, r1, 3)
	b := appendRowLine(nil, r2, 3)
	if string(a) != string(b) {
		t.Errorf("row streams diverged: %q vs %q", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Error("missing target should fail")
	}
	if _, err := Run(ctx, Config{Target: "http://x", Mode: "bogus"}); err == nil {
		t.Error("bad mode should fail")
	}
	if _, err := Run(ctx, Config{Target: "http://x", Rate: -1}); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestPercentiles(t *testing.T) {
	p := percentiles(nil)
	if p.Max != 0 {
		t.Errorf("empty percentiles = %+v, want zeros", p)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1) // 1..100
	}
	p = percentiles(ms)
	if p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles of 1..100 = %+v, want 50/90/99/100", p)
	}
}
