// Package loadgen drives synthetic scoring load at a hicsd deployment —
// standalone, shard or front — and measures what the server actually
// delivered: end-to-end per-row latency percentiles, sustained
// throughput, error and admission-retry counts.
//
// Two modes mirror the two serving shapes. "stream" opens N concurrent
// NDJSON /stream sessions, each feeding rows at a configured rate and
// timing every row from the moment its line is written until its scored
// record returns — the number that matters for a live feed, including
// transport, queuing and scoring. "score" issues sequential unary
// /score requests over N workers, timing each round trip.
//
// Sessions refused with 429 (admission quota) back off for the server's
// Retry-After and retry under a rotated session key, so a front spreads
// the retry across the shard map instead of hammering the same full
// backend. Refusals are reported separately from errors: a quota bounce
// is the system working, a mid-stream error record is not.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"hics/internal/metrics"
	"hics/internal/rng"
	"hics/internal/trace"
)

// Load-generator instrumentation, registered in the shared registry so
// an embedding process (tests, a long-running soak harness) can expose
// them; the hicsload command itself reports through its summary record.
var (
	mRowsSent = metrics.Default.NewCounter("hicsload_rows_sent_total",
		"Rows written to the target across all sessions.")
	mRecords = metrics.Default.NewCounter("hicsload_records_total",
		"Scored records received back across all sessions.")
	mErrors = metrics.Default.NewCounterVec("hicsload_errors_total",
		"Load-generation failures by kind (connect, status, record, read).", "kind")
	mRetries = metrics.Default.NewCounter("hicsload_admission_retries_total",
		"Sessions re-attempted under a rotated key after a 429 admission refusal.")
	mLatency = metrics.Default.NewHistogram("hicsload_row_latency_seconds",
		"End-to-end per-row latency: line written to scored record received.", nil)
)

// Config shapes one load run.
type Config struct {
	// Target is the base URL of the deployment under load
	// (e.g. http://127.0.0.1:8080). Required.
	Target string
	// Mode is "stream" (concurrent NDJSON sessions) or "score"
	// (sequential unary requests per worker). Default "stream".
	Mode string
	// Sessions is the number of concurrent sessions (stream) or workers
	// (score). Default 1.
	Sessions int
	// Rows is the number of rows each session sends (stream) or requests
	// each worker issues (score). Default 100.
	Rows int
	// Rate throttles each session to this many rows per second
	// (0 = as fast as the server accepts them).
	Rate float64
	// Dim is the row width; it must match the served model. Default 3.
	Dim int
	// Model routes requests to a named model (?model=). Empty uses the
	// default model.
	Model string
	// KeyParam is the query parameter carrying the session key
	// (default "session" — what a front routes on).
	KeyParam string
	// KeyPrefix prefixes generated session keys (default "load").
	KeyPrefix string
	// Seed makes the generated rows reproducible. Default 1.
	Seed uint64
	// MaxRetries bounds the 429 admission retries per session
	// (default 50).
	MaxRetries int
	// Trace sends a W3C traceparent with every session (stream mode:
	// one trace per session attempt) or request (score mode), minted
	// deterministically from Seed, and reports the trace IDs behind the
	// p99-slowest latencies — the IDs to paste into the server's
	// GET /debug/traces to see where the time went.
	Trace bool
	// Client performs the requests; nil uses a streaming-safe default
	// (no global timeout — sessions are long-lived by design).
	Client *http.Client
}

func (cfg *Config) fill() error {
	if cfg.Target == "" {
		return fmt.Errorf("loadgen: Target is required")
	}
	if _, err := url.Parse(cfg.Target); err != nil {
		return fmt.Errorf("loadgen: bad target: %w", err)
	}
	if cfg.Mode == "" {
		cfg.Mode = "stream"
	}
	if cfg.Mode != "stream" && cfg.Mode != "score" {
		return fmt.Errorf("loadgen: mode must be stream or score, got %q", cfg.Mode)
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 100
	}
	if cfg.Rate < 0 {
		return fmt.Errorf("loadgen: rate must be non-negative, got %v", cfg.Rate)
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 3
	}
	if cfg.KeyParam == "" {
		cfg.KeyParam = "session"
	}
	if cfg.KeyPrefix == "" {
		cfg.KeyPrefix = "load"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	cfg.Target = strings.TrimRight(cfg.Target, "/")
	return nil
}

// Percentiles are latency quantiles in milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Report is the outcome of one load run — both the human summary and
// the machine-comparable record serialize from it.
type Report struct {
	Mode             string      `json:"mode"`
	Target           string      `json:"target"`
	Sessions         int         `json:"sessions"`
	RowsPerSession   int         `json:"rows_per_session"`
	RateRowsPerSec   float64     `json:"rate_rows_per_sec,omitempty"`
	Dim              int         `json:"dim"`
	DurationSeconds  float64     `json:"duration_seconds"`
	RowsSent         int64       `json:"rows_sent"`
	RecordsReceived  int64       `json:"records_received"`
	Errors           int64       `json:"errors"`
	AdmissionRetries int64       `json:"admission_retries"`
	RowsPerSecond    float64     `json:"rows_per_second"`
	LatencyMS        Percentiles `json:"latency_ms"`
	// SlowTraces lists the distinct trace IDs behind the slowest
	// latencies at or above p99, slowest first, when tracing was on.
	SlowTraces []SlowTrace `json:"slow_traces,omitempty"`
}

// SlowTrace ties a slow measurement to the distributed trace that can
// explain it.
type SlowTrace struct {
	TraceID   string  `json:"trace_id"`
	LatencyMS float64 `json:"latency_ms"`
}

// Human renders the operator-facing summary.
func (r *Report) Human() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hicsload %s against %s\n", r.Mode, r.Target)
	fmt.Fprintf(&b, "  sessions         %d x %d rows", r.Sessions, r.RowsPerSession)
	if r.RateRowsPerSec > 0 {
		fmt.Fprintf(&b, " @ %.4g rows/s each", r.RateRowsPerSec)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  duration         %.2fs\n", r.DurationSeconds)
	fmt.Fprintf(&b, "  rows sent        %d\n", r.RowsSent)
	fmt.Fprintf(&b, "  records received %d\n", r.RecordsReceived)
	fmt.Fprintf(&b, "  throughput       %.1f rows/s\n", r.RowsPerSecond)
	fmt.Fprintf(&b, "  latency ms       p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		r.LatencyMS.P50, r.LatencyMS.P90, r.LatencyMS.P99, r.LatencyMS.Max)
	fmt.Fprintf(&b, "  errors           %d\n", r.Errors)
	fmt.Fprintf(&b, "  admission 429s   %d\n", r.AdmissionRetries)
	if len(r.SlowTraces) > 0 {
		b.WriteString("  p99+ traces      ")
		for i, st := range r.SlowTraces {
			if i > 0 {
				b.WriteString("\n                   ")
			}
			fmt.Fprintf(&b, "%s (%.2f ms)", st.TraceID, st.LatencyMS)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// sessionResult is one worker's tally.
type sessionResult struct {
	rowsSent  int64
	records   int64
	errors    int64
	retries   int64
	latencies []float64 // milliseconds
	// traceIDs parallels latencies when Config.Trace is on: the trace
	// each measurement rode in (one per session attempt in stream mode,
	// one per request in score mode).
	traceIDs []string
}

// traceRNGLabel derives the trace-identity stream from a worker's seed.
// It is distinct from the row stream, so -trace never perturbs the
// generated data: a traced run sends byte-identical rows.
const traceRNGLabel = 0x74726163 // "trac"

// mintSpanContext draws a sampled trace identity from r. Zero IDs are
// invalid per W3C, so it redraws on the (cosmically unlikely) zero.
func mintSpanContext(r *rng.RNG) trace.SpanContext {
	var sc trace.SpanContext
	for sc.TraceID.IsZero() {
		binary.BigEndian.PutUint64(sc.TraceID[:8], r.Uint64())
		binary.BigEndian.PutUint64(sc.TraceID[8:], r.Uint64())
	}
	for sc.SpanID.IsZero() {
		binary.BigEndian.PutUint64(sc.SpanID[:], r.Uint64())
	}
	sc.Sampled = true
	return sc
}

// Run executes the configured load and aggregates the report. It
// returns an error only for unusable configuration or a cancelled
// context — server-side failures are load results, counted in the
// report, not reasons to abort the measurement.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	start := time.Now()
	results := make([]sessionResult, cfg.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch cfg.Mode {
			case "stream":
				results[i] = runStreamSession(ctx, cfg, i)
			case "score":
				results[i] = runScoreWorker(ctx, cfg, i)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Mode:            cfg.Mode,
		Target:          cfg.Target,
		Sessions:        cfg.Sessions,
		RowsPerSession:  cfg.Rows,
		RateRowsPerSec:  cfg.Rate,
		Dim:             cfg.Dim,
		DurationSeconds: elapsed.Seconds(),
	}
	var all []float64
	var samples []SlowTrace
	for _, r := range results {
		rep.RowsSent += r.rowsSent
		rep.RecordsReceived += r.records
		rep.Errors += r.errors
		rep.AdmissionRetries += r.retries
		all = append(all, r.latencies...)
		for i, id := range r.traceIDs {
			samples = append(samples, SlowTrace{TraceID: id, LatencyMS: r.latencies[i]})
		}
	}
	if elapsed > 0 {
		rep.RowsPerSecond = float64(rep.RecordsReceived) / elapsed.Seconds()
	}
	rep.LatencyMS = percentiles(all)
	rep.SlowTraces = slowTraces(samples, rep.LatencyMS.P99)
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// slowTraces selects the distinct traces measured at or above the p99
// latency, slowest first, capped at five so the summary stays readable.
// In stream mode one session trace can carry many slow rows; only its
// slowest measurement is reported.
func slowTraces(samples []SlowTrace, p99 float64) []SlowTrace {
	slices.SortFunc(samples, func(a, b SlowTrace) int {
		switch {
		case a.LatencyMS > b.LatencyMS:
			return -1
		case a.LatencyMS < b.LatencyMS:
			return 1
		}
		return strings.Compare(a.TraceID, b.TraceID)
	})
	seen := make(map[string]bool)
	var out []SlowTrace
	for _, s := range samples {
		if s.LatencyMS < p99 || seen[s.TraceID] {
			continue
		}
		seen[s.TraceID] = true
		out = append(out, s)
		if len(out) == 5 {
			break
		}
	}
	return out
}

// percentiles computes the latency quantiles of a sample set.
func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	slices.Sort(ms)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(ms)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ms) {
			i = len(ms) - 1
		}
		return ms[i]
	}
	return Percentiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: ms[len(ms)-1]}
}

// appendRowLine renders one random row as an NDJSON line into dst.
func appendRowLine(dst []byte, r *rng.RNG, dim int) []byte {
	dst = append(dst, '[')
	for d := 0; d < dim; d++ {
		if d > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendFloat(dst, r.Float64(), 'g', 6, 64)
	}
	return append(dst, ']', '\n')
}

// streamRecord is a scored-record or error line of a /stream response.
type streamRecord struct {
	Index *int    `json:"index"`
	Score float64 `json:"score"`
	Error string  `json:"error"`
}

// runStreamSession drives one /stream session to completion, retrying
// admission refusals under rotated keys.
func runStreamSession(ctx context.Context, cfg Config, worker int) sessionResult {
	var res sessionResult
	var traceRNG *rng.RNG
	if cfg.Trace {
		traceRNG = rng.New(cfg.Seed + uint64(worker)*1000003).Derive(traceRNGLabel)
	}
	for attempt := 0; ; attempt++ {
		key := fmt.Sprintf("%s-%d", cfg.KeyPrefix, worker)
		if attempt > 0 {
			key = fmt.Sprintf("%s-r%d", key, attempt)
		}
		var sc trace.SpanContext
		if cfg.Trace {
			// A fresh trace per attempt: a retried session must not
			// splice its spans into the refused attempt's trace.
			sc = mintSpanContext(traceRNG)
		}
		retryAfter, done := streamOnce(ctx, cfg, worker, key, sc, &res)
		if done {
			return res
		}
		// Admission refused (429): the server named its backoff.
		res.retries++
		mRetries.Inc()
		if attempt+1 >= cfg.MaxRetries {
			res.errors++
			mErrors.With("status").Inc()
			return res
		}
		select {
		case <-ctx.Done():
			return res
		case <-time.After(retryAfter):
		}
	}
}

// streamOnce runs a single session attempt. It returns done=false only
// for a retryable admission refusal, with the server-requested backoff.
func streamOnce(ctx context.Context, cfg Config, worker int, key string, sc trace.SpanContext, res *sessionResult) (retryAfter time.Duration, done bool) {
	q := url.Values{}
	q.Set(cfg.KeyParam, key)
	if cfg.Model != "" {
		q.Set("model", cfg.Model)
	}
	target := cfg.Target + "/stream?" + q.Encode()

	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, pr)
	if err != nil {
		res.errors++
		mErrors.With("connect").Inc()
		return 0, true
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if sc.Valid() {
		req.Header.Set("Traceparent", sc.Traceparent())
	}

	sendTimes := make([]time.Time, cfg.Rows)
	var sent int64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		defer pw.Close()
		r := rng.New(cfg.Seed + uint64(worker)*1000003)
		var interval time.Duration
		if cfg.Rate > 0 {
			interval = time.Duration(float64(time.Second) / cfg.Rate)
		}
		startedAt := time.Now()
		line := make([]byte, 0, 64)
		for i := 0; i < cfg.Rows; i++ {
			if interval > 0 {
				next := startedAt.Add(time.Duration(i) * interval)
				if d := time.Until(next); d > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(d):
					}
				}
			}
			line = appendRowLine(line[:0], r, cfg.Dim)
			sendTimes[i] = time.Now()
			if _, err := pw.Write(line); err != nil {
				return // server closed the session; the reader has the story
			}
			sent++
			mRowsSent.Inc()
		}
	}()
	// The writer feeds the request while Do waits for response headers
	// (they arrive with the first scored record).
	resp, err := cfg.Client.Do(req)
	if err != nil {
		pr.CloseWithError(err)
		<-writerDone
		res.rowsSent += sent
		res.errors++
		mErrors.With("connect").Inc()
		return 0, true
	}
	defer func() {
		resp.Body.Close()
		<-writerDone
		res.rowsSent += sent
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		pr.CloseWithError(fmt.Errorf("admission refused"))
		return parseRetryAfter(resp.Header.Get("Retry-After")), false
	}
	if resp.StatusCode != http.StatusOK {
		pr.CloseWithError(fmt.Errorf("status %d", resp.StatusCode))
		res.errors++
		mErrors.With("status").Inc()
		return 0, true
	}
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for scan.Scan() {
		lineBytes := bytes.TrimSpace(scan.Bytes())
		if len(lineBytes) == 0 {
			continue
		}
		var rec streamRecord
		if err := json.Unmarshal(lineBytes, &rec); err != nil {
			res.errors++
			mErrors.With("record").Inc()
			continue
		}
		if rec.Error != "" {
			// A terminal error record (drain, byte cap, scoring failure)
			// ends the session server-side.
			res.errors++
			mErrors.With("record").Inc()
			return 0, true
		}
		if rec.Index == nil {
			continue
		}
		res.records++
		mRecords.Inc()
		if i := *rec.Index; i >= 0 && i < len(sendTimes) && !sendTimes[i].IsZero() {
			lat := time.Since(sendTimes[i])
			res.latencies = append(res.latencies, float64(lat)/float64(time.Millisecond))
			if sc.Valid() {
				res.traceIDs = append(res.traceIDs, sc.TraceID.String())
			}
			mLatency.Observe(lat.Seconds())
		}
	}
	if err := scan.Err(); err != nil && ctx.Err() == nil {
		res.errors++
		mErrors.With("read").Inc()
	}
	return 0, true
}

// runScoreWorker issues sequential /score requests, retrying 429s in
// place.
func runScoreWorker(ctx context.Context, cfg Config, worker int) sessionResult {
	var res sessionResult
	target := cfg.Target + "/score"
	if cfg.Model != "" {
		target += "?model=" + url.QueryEscape(cfg.Model)
	}
	r := rng.New(cfg.Seed + uint64(worker)*1000003)
	var traceRNG *rng.RNG
	if cfg.Trace {
		traceRNG = rng.New(cfg.Seed + uint64(worker)*1000003).Derive(traceRNGLabel)
	}
	point := make([]float64, cfg.Dim)
	for i := 0; i < cfg.Rows; i++ {
		if ctx.Err() != nil {
			return res
		}
		for d := range point {
			point[d] = r.Float64()
		}
		body, _ := json.Marshal(map[string]any{"point": point})
		var sc trace.SpanContext
		if cfg.Trace {
			sc = mintSpanContext(traceRNG)
		}
		retries := 0
	attempt:
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
		if err != nil {
			res.errors++
			mErrors.With("connect").Inc()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		if sc.Valid() {
			req.Header.Set("Traceparent", sc.Traceparent())
		}
		sentAt := time.Now()
		res.rowsSent++
		mRowsSent.Inc()
		resp, err := cfg.Client.Do(req)
		if err != nil {
			res.errors++
			mErrors.With("connect").Inc()
			continue
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			lat := time.Since(sentAt)
			res.records++
			mRecords.Inc()
			res.latencies = append(res.latencies, float64(lat)/float64(time.Millisecond))
			if sc.Valid() {
				res.traceIDs = append(res.traceIDs, sc.TraceID.String())
			}
			mLatency.Observe(lat.Seconds())
		case resp.StatusCode == http.StatusTooManyRequests && retries < cfg.MaxRetries:
			retries++
			res.retries++
			mRetries.Inc()
			select {
			case <-ctx.Done():
				return res
			case <-time.After(parseRetryAfter(resp.Header.Get("Retry-After"))):
			}
			goto attempt
		default:
			res.errors++
			mErrors.With("status").Inc()
		}
	}
	return res
}

// parseRetryAfter reads a Retry-After seconds value, defaulting to a
// short backoff when absent or malformed.
func parseRetryAfter(v string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > 30*time.Second {
			d = 30 * time.Second
		}
		if d == 0 {
			d = 100 * time.Millisecond
		}
		return d
	}
	return 200 * time.Millisecond
}
