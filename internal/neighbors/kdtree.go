package neighbors

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// KDTree is the space-partitioning backend: a median-split k-d tree stored
// implicitly in a permutation of the object ids (the node of segment
// [lo,hi) sits at its midpoint, children are the two half-segments), so
// the whole structure is one []int with zero per-node allocation.
//
// Queries run in two exact phases: a best-first bound phase that finds the
// k-th smallest squared distance with a size-k max-heap, then a range
// phase that collects every object within that bound. Both phases prune a
// subtree only when the squared split-plane offset strictly exceeds the
// bound, which under floating point can never discard an object whose full
// squared distance is within the bound (the full distance is a sum of
// non-negative rounded terms, hence at least its split-axis term).
type KDTree struct {
	cols [][]float64
	n    int
	ids  []int
}

func newKDTree(cols [][]float64, n int) *KDTree {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	t := &KDTree{cols: cols, n: n, ids: ids}
	t.buildRange(0, n, 0)
	return t
}

// buildRange recursively median-splits ids[lo:hi) on the depth-cycled axis.
func (t *KDTree) buildRange(lo, hi, depth int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	axis := depth % len(t.cols)
	nthElement(t.ids, lo, hi, mid, t.cols[axis])
	next := depth + 1
	t.buildRange(lo, mid, next)
	t.buildRange(mid+1, hi, next)
}

// N implements Index.
func (t *KDTree) N() int { return t.n }

// Kind implements Index.
func (t *KDTree) Kind() Kind { return KindKDTree }

// Dist implements Index.
func (t *KDTree) Dist(i, j int) float64 { return dist(t.cols, i, j) }

// NewScratch implements Index.
func (t *KDTree) NewScratch() *Scratch {
	return &Scratch{
		qv:    make([]float64, 0, len(t.cols)),
		bound: make([]float64, 0, 32),
	}
}

// d2 is the full squared distance from the query (sc.qv) to object id,
// accumulated in subspace column order exactly like the brute backend.
func (t *KDTree) d2(qv []float64, id int) float64 {
	sum := 0.0
	for c, col := range t.cols {
		d := col[id] - qv[c]
		sum += d * d
	}
	return sum
}

// KNN implements Index.
func (t *KDTree) KNN(q, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	if k >= t.n {
		k = t.n - 1
	}
	if k <= 0 {
		return out[:0], 0
	}
	qv := sc.qv[:0]
	for _, col := range t.cols {
		qv = append(qv, col[q])
	}
	sc.qv = qv
	return t.knnQuery(q, k, sc, out)
}

// KNNPoint implements Index.
func (t *KDTree) KNNPoint(q []float64, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	if len(q) != len(t.cols) {
		panic(fmt.Sprintf("neighbors: query point has %d coordinates, index has %d", len(q), len(t.cols)))
	}
	if k > t.n {
		k = t.n
	}
	if k <= 0 {
		return out[:0], 0
	}
	sc.qv = append(sc.qv[:0], q...)
	return t.knnQuery(-1, k, sc, out)
}

// knnQuery answers the query point held in sc.qv, skipping object exclude
// (-1 for out-of-sample point queries, where no indexed object is the
// query itself).
func (t *KDTree) knnQuery(exclude, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	sc.bound = sc.bound[:0]
	t.searchBound(0, t.n, 0, exclude, k, sc)
	tau := sc.bound[0] // k-th smallest squared distance
	sc.cand = sc.cand[:0]
	t.collect(0, t.n, 0, exclude, tau, sc)
	sort.Slice(sc.cand, func(a, b int) bool { return sc.cand[a].id < sc.cand[b].id })
	neighbors := out[:0]
	for _, c := range sc.cand {
		neighbors = append(neighbors, Neighbor{ID: c.id, Dist: math.Sqrt(c.d2)})
	}
	return neighbors, math.Sqrt(tau)
}

// KNNAll implements Index.
func (t *KDTree) KNNAll(k int) ([][]Neighbor, []float64) {
	nbs, kdists, _ := knnAll(context.Background(), t, k, 0)
	return nbs, kdists
}

// KNNAllContext implements Index.
func (t *KDTree) KNNAllContext(ctx context.Context, k, workers int) ([][]Neighbor, []float64, error) {
	return knnAll(ctx, t, k, workers)
}

// searchBound fills sc.bound with the k smallest squared distances from
// the query to objects other than exclude, visiting near subtrees first.
func (t *KDTree) searchBound(lo, hi, depth, exclude, k int, sc *Scratch) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	id := t.ids[mid]
	if id != exclude {
		sc.bound = boundPush(sc.bound, k, t.d2(sc.qv, id))
	}
	axis := depth % len(t.cols)
	diff := sc.qv[axis] - t.cols[axis][id]
	nearLo, nearHi, farLo, farHi := mid+1, hi, lo, mid
	if diff < 0 {
		nearLo, nearHi, farLo, farHi = lo, mid, mid+1, hi
	}
	t.searchBound(nearLo, nearHi, depth+1, exclude, k, sc)
	if len(sc.bound) < k || diff*diff <= sc.bound[0] {
		t.searchBound(farLo, farHi, depth+1, exclude, k, sc)
	}
}

// collect appends every object (except exclude) with squared distance ≤ tau.
func (t *KDTree) collect(lo, hi, depth, exclude int, tau float64, sc *Scratch) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	id := t.ids[mid]
	if id != exclude {
		if d2 := t.d2(sc.qv, id); d2 <= tau {
			sc.cand = append(sc.cand, candidate{id: id, d2: d2})
		}
	}
	axis := depth % len(t.cols)
	diff := sc.qv[axis] - t.cols[axis][id]
	nearLo, nearHi, farLo, farHi := mid+1, hi, lo, mid
	if diff < 0 {
		nearLo, nearHi, farLo, farHi = lo, mid, mid+1, hi
	}
	t.collect(nearLo, nearHi, depth+1, exclude, tau, sc)
	if diff*diff <= tau {
		t.collect(farLo, farHi, depth+1, exclude, tau, sc)
	}
}

// boundPush maintains h as a max-heap of the k smallest values seen.
func boundPush(h []float64, k int, d2 float64) []float64 {
	if len(h) < k {
		h = append(h, d2)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p] >= h[i] {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		return h
	}
	if d2 >= h[0] {
		return h
	}
	h[0] = d2
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && h[l] > h[big] {
			big = l
		}
		if r < len(h) && h[r] > h[big] {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return h
}

// nthElement partially sorts ids[lo:hi) so that position k holds the
// element it would hold after a full sort by (col value, id). The id
// tie-break makes all keys distinct, keeping quickselect linear on
// constant columns (where ids arrive pre-sorted and median-of-three
// pivoting behaves).
func nthElement(ids []int, lo, hi, k int, col []float64) {
	hi--
	for lo < hi {
		p := partitionIDs(ids, lo, hi, col)
		switch {
		case k == p:
			return
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// idLess orders object ids by column value, ties by id.
func idLess(col []float64, a, b int) bool {
	if col[a] != col[b] {
		return col[a] < col[b]
	}
	return a < b
}

func partitionIDs(ids []int, lo, hi int, col []float64) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order ids[lo], ids[mid], ids[hi].
	if idLess(col, ids[mid], ids[lo]) {
		ids[mid], ids[lo] = ids[lo], ids[mid]
	}
	if idLess(col, ids[hi], ids[lo]) {
		ids[hi], ids[lo] = ids[lo], ids[hi]
	}
	if idLess(col, ids[hi], ids[mid]) {
		ids[hi], ids[mid] = ids[mid], ids[hi]
	}
	pivot := ids[mid]
	ids[mid], ids[hi-1] = ids[hi-1], ids[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if idLess(col, ids[j], pivot) {
			ids[i], ids[j] = ids[j], ids[i]
			i++
		}
	}
	ids[i], ids[hi-1] = ids[hi-1], ids[i]
	return i
}
