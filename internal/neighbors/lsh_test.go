package neighbors

import (
	"math"
	"sort"
	"testing"

	"hics/internal/dataset"
	"hics/internal/rng"
)

// recallAt measures |approx ∩ exact| / |exact| over the exact neighborhood.
func recallAt(exact, approx []Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int]bool, len(approx))
	for _, x := range approx {
		in[x.ID] = true
	}
	hit := 0
	for _, x := range exact {
		if in[x.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// TestLSHRecall is the approximate backend's quality contract: on fixed
// seeds and the subspace shapes the ranking step actually queries (2–5
// dimensions), the default forest reaches ≥ 0.95 mean recall against the
// exact neighborhoods, and every reported distance is the exact float64.
func TestLSHRecall(t *testing.T) {
	configs := []struct {
		seed uint64
		n, d int
	}{
		{41, 2000, 2},
		{42, 2000, 3},
		{43, 5000, 3},
		{44, 3000, 5},
	}
	const k = 10
	for _, cfg := range configs {
		ds := randomDataset(cfg.seed, cfg.n, cfg.d, 0)
		dims := allDims(cfg.d)
		exact, err := New(ds, dims, KindKDTree)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := New(ds, dims, KindLSH)
		if err != nil {
			t.Fatal(err)
		}
		if approx.Kind() != KindLSH {
			t.Fatalf("Kind() = %v, want lsh", approx.Kind())
		}
		scE, scA := exact.NewScratch(), approx.NewScratch()
		sum := 0.0
		queries := 0
		for q := 0; q < cfg.n; q += 7 {
			nbE, _ := exact.KNN(q, k, scE, nil)
			nbA, _ := approx.KNN(q, k, scA, nil)
			sum += recallAt(nbE, nbA)
			queries++
			// Reported distances must be the exact float64s.
			for _, x := range nbA {
				if x.Dist != exact.Dist(q, x.ID) {
					t.Fatalf("n=%d d=%d q=%d: lsh distance to %d is %v, exact %v",
						cfg.n, cfg.d, q, x.ID, x.Dist, exact.Dist(q, x.ID))
				}
			}
			// Results in ascending id order, like the exact backends.
			for i := 1; i < len(nbA); i++ {
				if nbA[i-1].ID >= nbA[i].ID {
					t.Fatalf("n=%d d=%d q=%d: lsh neighbors not in ascending id order", cfg.n, cfg.d, q)
				}
			}
		}
		recall := sum / float64(queries)
		t.Logf("n=%d d=%d: mean recall@%d = %.3f", cfg.n, cfg.d, k, recall)
		if recall < 0.95 {
			t.Errorf("n=%d d=%d: mean recall@%d = %.3f, want >= 0.95", cfg.n, cfg.d, k, recall)
		}
	}
}

// TestLSHDeterministicRebuild pins the persistence contract: two forests
// built over the same data with the same parameters answer every query
// identically, so a model reload that rebuilds the index reproduces the
// saved model's scores bit for bit.
func TestLSHDeterministicRebuild(t *testing.T) {
	ds := randomDataset(51, 1500, 3, 0)
	dims := allDims(3)
	a, err := New(ds, dims, KindLSH)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(ds, dims, KindLSH)
	if err != nil {
		t.Fatal(err)
	}
	scA, scB := a.NewScratch(), b.NewScratch()
	for q := 0; q < ds.N(); q += 11 {
		nbA, kdA := a.KNN(q, 10, scA, nil)
		nbB, kdB := b.KNN(q, 10, scB, nil)
		if kdA != kdB || len(nbA) != len(nbB) {
			t.Fatalf("q=%d: rebuilds disagree (kdist %v vs %v, %d vs %d neighbors)",
				q, kdA, kdB, len(nbA), len(nbB))
		}
		for i := range nbA {
			if nbA[i] != nbB[i] {
				t.Fatalf("q=%d neighbor %d: %v vs %v", q, i, nbA[i], nbB[i])
			}
		}
	}
}

// TestLSHSmallFallsBackToExact: when the candidate union cannot fill k
// (tiny datasets, or k beyond the forest's reach), the backend answers
// with an exact scan — bit-for-bit the brute result.
func TestLSHSmallFallsBackToExact(t *testing.T) {
	for _, n := range []int{5, 40, 200} {
		ds := randomDataset(61, n, 2, 0)
		brute, err := New(ds, []int{0, 1}, KindBrute)
		if err != nil {
			t.Fatal(err)
		}
		lsh, err := New(ds, []int{0, 1}, KindLSH)
		if err != nil {
			t.Fatal(err)
		}
		scB, scL := brute.NewScratch(), lsh.NewScratch()
		for _, k := range []int{1, 3, n - 1, n + 5} {
			for q := 0; q < n; q++ {
				nbB, kdB := brute.KNN(q, k, scB, nil)
				nbL, kdL := lsh.KNN(q, k, scL, nil)
				if kdB != kdL || len(nbB) != len(nbL) {
					t.Fatalf("n=%d q=%d k=%d: brute (%d, %v) vs lsh (%d, %v)",
						n, q, k, len(nbB), kdB, len(nbL), kdL)
				}
				for i := range nbB {
					if nbB[i] != nbL[i] {
						t.Fatalf("n=%d q=%d k=%d: neighbor %d brute %v != lsh %v",
							n, q, k, i, nbB[i], nbL[i])
					}
				}
			}
		}
	}
}

// TestLSHPointQueries covers KNNPoint semantics: self-match at distance
// zero for training rows, k clamped to N, dimension-mismatch panic, and
// exact distances for out-of-sample points.
func TestLSHPointQueries(t *testing.T) {
	ds := randomDataset(71, 1000, 2, 0)
	ix, err := New(ds, []int{0, 1}, KindLSH)
	if err != nil {
		t.Fatal(err)
	}
	sc := ix.NewScratch()
	for q := 0; q < ds.N(); q += 37 {
		nb, _ := ix.KNNPoint(ds.Row(q, nil), 3, sc, nil)
		found := false
		for _, x := range nb {
			if x.ID == q && x.Dist == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("point query at row %d did not report the row itself at distance 0: %v", q, nb)
		}
	}
	if nb, kd := ix.KNNPoint([]float64{0.5, 0.5}, 0, sc, nil); len(nb) != 0 || kd != 0 {
		t.Errorf("k=0 gave %v, %v", nb, kd)
	}
	if nb, _ := ix.KNNPoint([]float64{0.5, 0.5}, ds.N()+10, sc, nil); len(nb) != ds.N() {
		t.Errorf("k clamp gave %d neighbors, want %d", len(nb), ds.N())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dimension mismatch should panic")
			}
		}()
		ix.KNNPoint([]float64{1}, 1, sc, nil)
	}()
}

// TestLSHKNNAllMatchesKNN: the batch path answers exactly what the
// per-query path answers, regardless of worker count.
func TestLSHKNNAllMatchesKNN(t *testing.T) {
	ds := randomDataset(81, 600, 3, 0)
	ix, err := New(ds, allDims(3), KindLSH)
	if err != nil {
		t.Fatal(err)
	}
	nbs, kdists := ix.KNNAll(7)
	sc := ix.NewScratch()
	for q := 0; q < ds.N(); q++ {
		nb, kd := ix.KNN(q, 7, sc, nil)
		if kd != kdists[q] || len(nb) != len(nbs[q]) {
			t.Fatalf("KNNAll[%d] disagrees with KNN", q)
		}
		for i := range nb {
			if nb[i] != nbs[q][i] {
				t.Fatalf("KNNAll nbs[%d][%d] = %v, KNN = %v", q, i, nbs[q][i], nb[i])
			}
		}
	}
}

// TestLSHEdgeCases mirrors the exact backends' edge-case contract.
func TestLSHEdgeCases(t *testing.T) {
	ds := randomDataset(91, 5, 2, 0)
	ix, err := New(ds, []int{0, 1}, KindLSH)
	if err != nil {
		t.Fatal(err)
	}
	sc := ix.NewScratch()
	if nb, kd := ix.KNN(0, 0, sc, nil); len(nb) != 0 || kd != 0 {
		t.Errorf("k=0 gave %v, %v", nb, kd)
	}
	if nb, kd := ix.KNN(0, -3, sc, nil); len(nb) != 0 || kd != 0 {
		t.Errorf("k<0 gave %v, %v", nb, kd)
	}
	if nb, _ := ix.KNN(0, 100, sc, nil); len(nb) != 4 {
		t.Errorf("k clamp gave %d neighbors, want 4", len(nb))
	}
	one := dataset.MustNew(nil, [][]float64{{1}, {2}})
	ixOne, err := New(one, []int{0, 1}, KindLSH)
	if err != nil {
		t.Fatal(err)
	}
	if nb, kd := ixOne.KNN(0, 1, ixOne.NewScratch(), nil); len(nb) != 0 || kd != 0 {
		t.Errorf("singleton gave %v, %v", nb, kd)
	}
}

// TestLSHTieHandling: on heavily quantized data the candidate re-rank must
// keep the exact backends' tie semantics — every candidate at the
// k-distance is reported, ids ascending.
func TestLSHTieHandling(t *testing.T) {
	r := rng.New(101)
	n := 2000
	cols := make([][]float64, 2)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = math.Floor(r.Float64()*8) / 8 // heavy ties
		}
	}
	ds := dataset.MustNew(nil, cols)
	ix, err := New(ds, []int{0, 1}, KindLSH)
	if err != nil {
		t.Fatal(err)
	}
	sc := ix.NewScratch()
	for q := 0; q < n; q += 97 {
		nb, kd := ix.KNN(q, 5, sc, nil)
		if len(nb) < 5 {
			t.Fatalf("q=%d: %d neighbors, want >= 5", q, len(nb))
		}
		for i, x := range nb {
			if x.Dist > kd {
				t.Fatalf("q=%d: neighbor %v beyond kdist %v", q, x, kd)
			}
			if i > 0 && nb[i-1].ID >= x.ID {
				t.Fatalf("q=%d: ids not ascending", q)
			}
		}
	}
	// And the sorted result really contains every candidate at the bound:
	// re-query and verify against a manual sort of exact distances.
	q := 0
	nb, kd := ix.KNN(q, 5, sc, nil)
	var dists []float64
	for i := 0; i < n; i++ {
		if i != q {
			dists = append(dists, ix.Dist(q, i))
		}
	}
	sort.Float64s(dists)
	if kd < dists[4] {
		t.Fatalf("kdist %v below the exact 5th distance %v", kd, dists[4])
	}
	_ = nb
}
