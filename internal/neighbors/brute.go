package neighbors

import (
	"context"
	"fmt"
	"math"
)

// Brute is the linear-scan backend: every query computes all N distances
// column by column (cache-friendly over the columnar dataset layout) and
// cuts them at the k-th smallest via quickselect.
type Brute struct {
	cols [][]float64
	n    int
}

// N implements Index.
func (b *Brute) N() int { return b.n }

// Kind implements Index.
func (b *Brute) Kind() Kind { return KindBrute }

// Dist implements Index.
func (b *Brute) Dist(i, j int) float64 { return dist(b.cols, i, j) }

// NewScratch implements Index.
func (b *Brute) NewScratch() *Scratch {
	return &Scratch{
		dists: make([]float64, b.n),
		sel:   make([]float64, 0, b.n),
		qv:    make([]float64, 0, len(b.cols)),
	}
}

// KNN implements Index.
func (b *Brute) KNN(q, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	if k >= b.n {
		k = b.n - 1
	}
	if k <= 0 {
		return out[:0], 0
	}
	qv := sc.qv[:0]
	for _, col := range b.cols {
		qv = append(qv, col[q])
	}
	sc.qv = qv
	return b.scan(q, k, sc, out)
}

// KNNPoint implements Index.
func (b *Brute) KNNPoint(q []float64, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	if len(q) != len(b.cols) {
		panic(fmt.Sprintf("neighbors: query point has %d coordinates, index has %d", len(q), len(b.cols)))
	}
	if k > b.n {
		k = b.n
	}
	if k <= 0 {
		return out[:0], 0
	}
	sc.qv = append(sc.qv[:0], q...)
	return b.scan(-1, k, sc, out)
}

// scan answers the query point held in sc.qv, skipping object exclude
// (-1 for out-of-sample point queries): all squared distances accumulated
// per column, cut at the k-th smallest via quickselect.
func (b *Brute) scan(exclude, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	dists := sc.dists
	for i := range dists {
		dists[i] = 0
	}
	for c, col := range b.cols {
		cq := sc.qv[c]
		for i, v := range col {
			d := v - cq
			dists[i] += d * d
		}
	}
	if exclude >= 0 {
		dists[exclude] = math.Inf(1) // the query itself is not a neighbor
	}

	// k-th smallest squared distance via quickselect on a copy.
	sel := append(sc.sel[:0], dists...)
	kth := quickselect(sel, k-1)

	neighbors := out[:0]
	for i, d := range dists {
		if d <= kth && i != exclude {
			neighbors = append(neighbors, Neighbor{ID: i, Dist: math.Sqrt(d)})
		}
	}
	return neighbors, math.Sqrt(kth)
}

// KNNAll implements Index.
func (b *Brute) KNNAll(k int) ([][]Neighbor, []float64) {
	nbs, kdists, _ := knnAll(context.Background(), b, k, 0)
	return nbs, kdists
}

// KNNAllContext implements Index.
func (b *Brute) KNNAllContext(ctx context.Context, k, workers int) ([][]Neighbor, []float64, error) {
	return knnAll(ctx, b, k, workers)
}

// quickselect returns the k-th smallest element (0-based) of xs,
// partially reordering xs in place. Median-of-three pivoting keeps the
// expected cost linear even on sorted inputs.
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case k == p:
			return xs[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return xs[k]
}

func partition(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order xs[lo], xs[mid], xs[hi].
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi-1] = xs[hi-1], xs[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi-1] = xs[hi-1], xs[i]
	return i
}
