package neighbors

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
	"hics/internal/rng"
)

// randomDataset builds an n×d dataset. quant > 0 floors values onto a
// coarse grid so exact duplicates and distance ties are common.
func randomDataset(seed uint64, n, d int, quant float64) *dataset.Dataset {
	r := rng.New(seed)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			v := r.Float64()
			if quant > 0 {
				v = math.Floor(v*quant) / quant
			}
			cols[j][i] = v
		}
	}
	return dataset.MustNew(nil, cols)
}

func allDims(d int) []int {
	dims := make([]int, d)
	for i := range dims {
		dims[i] = i
	}
	return dims
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"": KindAuto, "auto": KindAuto,
		"brute": KindBrute, "bruteforce": KindBrute, "linear": KindBrute,
		"kdtree": KindKDTree, "kd-tree": KindKDTree, "kd": KindKDTree,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("octree"); err == nil {
		t.Error("ParseKind should reject unknown kinds")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindAuto: "auto", KindBrute: "brute", KindKDTree: "kdtree"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	ds := randomDataset(1, 10, 2, 0)
	for _, kind := range []Kind{KindAuto, KindBrute, KindKDTree} {
		if _, err := New(ds, nil, kind); err == nil {
			t.Errorf("%v: empty subspace should fail", kind)
		}
		if _, err := New(ds, []int{9}, kind); err == nil {
			t.Errorf("%v: out-of-range dim should fail", kind)
		}
	}
}

func TestAutoSelection(t *testing.T) {
	small := randomDataset(2, AutoMinN-1, 2, 0)
	big := randomDataset(3, AutoMinN, 2, 0)
	ix, err := New(small, []int{0, 1}, KindAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != KindBrute {
		t.Errorf("auto on n=%d resolved to %v, want brute", small.N(), ix.Kind())
	}
	ix, err = New(big, []int{0, 1}, KindAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != KindKDTree {
		t.Errorf("auto on n=%d resolved to %v, want kdtree", big.N(), ix.Kind())
	}
	wide := randomDataset(4, AutoMinN, AutoMaxDim+1, 0)
	ix, err = New(wide, allDims(AutoMaxDim+1), KindAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != KindBrute {
		t.Errorf("auto on %d dims resolved to %v, want brute", AutoMaxDim+1, ix.Kind())
	}
}

// TestKDTreeMatchesBruteBitForBit is the subsystem's core contract: for
// every query and every k, the tree and the scan return the identical
// neighbor set, identical float64 distances, and identical k-distance.
func TestKDTreeMatchesBruteBitForBit(t *testing.T) {
	configs := []struct {
		seed    uint64
		n, d    int
		quant   float64 // 0 = continuous, >0 = heavy ties/duplicates
		queries int
	}{
		{1, 50, 1, 0, 50},
		{2, 200, 2, 0, 200},
		{3, 500, 3, 0, 100},
		{4, 300, 2, 4, 300}, // quantized: many exact duplicates
		{5, 120, 5, 0, 120},
		{6, 64, 2, 1, 64}, // near-constant columns
	}
	for _, cfg := range configs {
		ds := randomDataset(cfg.seed, cfg.n, cfg.d, cfg.quant)
		dims := allDims(cfg.d)
		brute, err := New(ds, dims, KindBrute)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := New(ds, dims, KindKDTree)
		if err != nil {
			t.Fatal(err)
		}
		scB, scT := brute.NewScratch(), tree.NewScratch()
		for _, k := range []int{1, 3, 10, cfg.n - 1, cfg.n + 5} {
			for q := 0; q < cfg.queries; q++ {
				nbB, kdB := brute.KNN(q, k, scB, nil)
				nbT, kdT := tree.KNN(q, k, scT, nil)
				if kdB != kdT {
					t.Fatalf("n=%d d=%d q=%d k=%d: kdist brute %v != kdtree %v",
						cfg.n, cfg.d, q, k, kdB, kdT)
				}
				if len(nbB) != len(nbT) {
					t.Fatalf("n=%d d=%d q=%d k=%d: %d neighbors brute vs %d kdtree",
						cfg.n, cfg.d, q, k, len(nbB), len(nbT))
				}
				for i := range nbB {
					if nbB[i] != nbT[i] {
						t.Fatalf("n=%d d=%d q=%d k=%d: neighbor %d brute %v != kdtree %v",
							cfg.n, cfg.d, q, k, i, nbB[i], nbT[i])
					}
				}
			}
		}
	}
}

// TestKNNPointMatchesBruteBitForBit extends the backend contract to
// out-of-sample queries: for random query points (and for training points
// replayed as point queries), both backends must return the identical
// neighbor set, distances and k-distance.
func TestKNNPointMatchesBruteBitForBit(t *testing.T) {
	configs := []struct {
		seed  uint64
		n, d  int
		quant float64
	}{
		{21, 50, 1, 0},
		{22, 200, 2, 0},
		{23, 500, 3, 0},
		{24, 300, 2, 4}, // quantized: many exact duplicates and ties
		{25, 120, 5, 0},
	}
	for _, cfg := range configs {
		ds := randomDataset(cfg.seed, cfg.n, cfg.d, cfg.quant)
		dims := allDims(cfg.d)
		brute, err := New(ds, dims, KindBrute)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := New(ds, dims, KindKDTree)
		if err != nil {
			t.Fatal(err)
		}
		scB, scT := brute.NewScratch(), tree.NewScratch()
		r := rng.New(cfg.seed + 1000)
		check := func(q []float64, k int) {
			t.Helper()
			nbB, kdB := brute.KNNPoint(q, k, scB, nil)
			nbT, kdT := tree.KNNPoint(q, k, scT, nil)
			if kdB != kdT {
				t.Fatalf("n=%d d=%d k=%d q=%v: kdist brute %v != kdtree %v",
					cfg.n, cfg.d, k, q, kdB, kdT)
			}
			if len(nbB) != len(nbT) {
				t.Fatalf("n=%d d=%d k=%d q=%v: %d neighbors brute vs %d kdtree",
					cfg.n, cfg.d, k, q, len(nbB), len(nbT))
			}
			for i := range nbB {
				if nbB[i] != nbT[i] {
					t.Fatalf("n=%d d=%d k=%d q=%v: neighbor %d brute %v != kdtree %v",
						cfg.n, cfg.d, k, q, i, nbB[i], nbT[i])
				}
			}
		}
		for _, k := range []int{1, 3, 10, cfg.n, cfg.n + 5} {
			// Random out-of-sample points.
			for trial := 0; trial < 60; trial++ {
				q := make([]float64, cfg.d)
				for j := range q {
					q[j] = r.Float64()*1.4 - 0.2
					if cfg.quant > 0 && r.Float64() < 0.5 {
						q[j] = math.Floor(q[j]*cfg.quant) / cfg.quant
					}
				}
				check(q, k)
			}
			// Training rows as point queries (self at distance zero).
			for trial := 0; trial < 30; trial++ {
				check(ds.Row(r.Intn(cfg.n), nil), k)
			}
		}
	}
}

// TestKNNPointSelfMatch pins the no-exclusion semantics: querying with a
// training row's coordinates reports that row at distance zero.
func TestKNNPointSelfMatch(t *testing.T) {
	ds := randomDataset(31, 100, 2, 0)
	for _, kind := range []Kind{KindBrute, KindKDTree} {
		ix, err := New(ds, []int{0, 1}, kind)
		if err != nil {
			t.Fatal(err)
		}
		sc := ix.NewScratch()
		for q := 0; q < ds.N(); q += 7 {
			nb, _ := ix.KNNPoint(ds.Row(q, nil), 3, sc, nil)
			found := false
			for _, x := range nb {
				if x.ID == q && x.Dist == 0 {
					found = true
				}
			}
			if !found {
				t.Fatalf("%v: point query at row %d did not report the row itself at distance 0: %v", kind, q, nb)
			}
		}
	}
}

func TestKNNPointEdgeCases(t *testing.T) {
	ds := randomDataset(32, 5, 2, 0)
	q := []float64{0.5, 0.5}
	for _, kind := range []Kind{KindBrute, KindKDTree} {
		ix, err := New(ds, []int{0, 1}, kind)
		if err != nil {
			t.Fatal(err)
		}
		sc := ix.NewScratch()
		if nb, kd := ix.KNNPoint(q, 0, sc, nil); len(nb) != 0 || kd != 0 {
			t.Errorf("%v: k=0 gave %v, %v", kind, nb, kd)
		}
		if nb, kd := ix.KNNPoint(q, -3, sc, nil); len(nb) != 0 || kd != 0 {
			t.Errorf("%v: k<0 gave %v, %v", kind, nb, kd)
		}
		// k beyond N clamps to N — all 5 objects, not N−1 as for KNN.
		if nb, _ := ix.KNNPoint(q, 100, sc, nil); len(nb) != 5 {
			t.Errorf("%v: k clamp gave %d neighbors, want 5", kind, len(nb))
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: dimension mismatch should panic", kind)
				}
			}()
			ix.KNNPoint([]float64{1}, 1, sc, nil)
		}()
	}
	// A singleton index answers point queries with its one object.
	one := dataset.MustNew(nil, [][]float64{{1}, {2}})
	for _, kind := range []Kind{KindBrute, KindKDTree} {
		ix, err := New(one, []int{0, 1}, kind)
		if err != nil {
			t.Fatal(err)
		}
		nb, kd := ix.KNNPoint([]float64{1, 2}, 1, ix.NewScratch(), nil)
		if len(nb) != 1 || nb[0].ID != 0 || nb[0].Dist != 0 || kd != 0 {
			t.Errorf("%v: singleton point query gave %v, %v", kind, nb, kd)
		}
	}
}

func TestKNNAllMatchesKNN(t *testing.T) {
	ds := randomDataset(7, 150, 3, 0)
	dims := allDims(3)
	for _, kind := range []Kind{KindBrute, KindKDTree} {
		ix, err := New(ds, dims, kind)
		if err != nil {
			t.Fatal(err)
		}
		nbs, kdists := ix.KNNAll(7)
		sc := ix.NewScratch()
		for q := 0; q < ds.N(); q++ {
			nb, kd := ix.KNN(q, 7, sc, nil)
			if kd != kdists[q] {
				t.Fatalf("%v: KNNAll kdist[%d] = %v, KNN = %v", kind, q, kdists[q], kd)
			}
			if len(nb) != len(nbs[q]) {
				t.Fatalf("%v: KNNAll nbs[%d] len %d, KNN %d", kind, q, len(nbs[q]), len(nb))
			}
			for i := range nb {
				if nb[i] != nbs[q][i] {
					t.Fatalf("%v: KNNAll nbs[%d][%d] = %v, KNN = %v", kind, q, i, nbs[q][i], nb[i])
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	ds := randomDataset(8, 5, 2, 0)
	for _, kind := range []Kind{KindBrute, KindKDTree} {
		ix, err := New(ds, []int{0, 1}, kind)
		if err != nil {
			t.Fatal(err)
		}
		sc := ix.NewScratch()
		if nb, kd := ix.KNN(0, 0, sc, nil); len(nb) != 0 || kd != 0 {
			t.Errorf("%v: k=0 gave %v, %v", kind, nb, kd)
		}
		if nb, kd := ix.KNN(0, -3, sc, nil); len(nb) != 0 || kd != 0 {
			t.Errorf("%v: k<0 gave %v, %v", kind, nb, kd)
		}
		if nb, _ := ix.KNN(0, 100, sc, nil); len(nb) != 4 {
			t.Errorf("%v: k clamp gave %d neighbors, want 4", kind, len(nb))
		}
	}
	// A dataset of one object has no neighbors at any k.
	one := dataset.MustNew(nil, [][]float64{{1}, {2}})
	for _, kind := range []Kind{KindBrute, KindKDTree} {
		ix, err := New(one, []int{0, 1}, kind)
		if err != nil {
			t.Fatal(err)
		}
		if nb, kd := ix.KNN(0, 1, ix.NewScratch(), nil); len(nb) != 0 || kd != 0 {
			t.Errorf("%v: singleton gave %v, %v", kind, nb, kd)
		}
	}
}

func TestDistMatchesAcrossBackends(t *testing.T) {
	ds := randomDataset(9, 40, 4, 0)
	dims := []int{2, 0, 3} // subspace order matters for FP accumulation
	brute, _ := New(ds, dims, KindBrute)
	tree, _ := New(ds, dims, KindKDTree)
	for i := 0; i < ds.N(); i++ {
		for j := 0; j < ds.N(); j++ {
			if brute.Dist(i, j) != tree.Dist(i, j) {
				t.Fatalf("Dist(%d,%d) differs across backends", i, j)
			}
		}
	}
	if d := brute.Dist(0, 0); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

// Property: the tree neighborhood is exactly the set of points within the
// k-th smallest distance, on adversarially tie-heavy data.
func TestQuickKDTreeDefinition(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw, dRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%60) + 3
		k := int(kRaw)%(n-1) + 1
		d := int(dRaw%3) + 1
		cols := make([][]float64, d)
		for j := range cols {
			cols[j] = make([]float64, n)
			for i := range cols[j] {
				cols[j][i] = math.Floor(r.Float64() * 5) // heavy ties
			}
		}
		ds := dataset.MustNew(nil, cols)
		tree, err := New(ds, allDims(d), KindKDTree)
		if err != nil {
			return false
		}
		sc := tree.NewScratch()
		q := r.Intn(n)
		nb, kd := tree.KNN(q, k, sc, nil)

		type pair struct {
			id int
			d  float64
		}
		var all []pair
		for i := 0; i < n; i++ {
			if i != q {
				all = append(all, pair{i, tree.Dist(q, i)})
			}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		if kd != all[k-1].d {
			return false
		}
		want := map[int]bool{}
		for _, p := range all {
			if p.d <= kd {
				want[p.id] = true
			}
		}
		if len(nb) != len(want) {
			return false
		}
		for i, x := range nb {
			if !want[x.ID] || (i > 0 && nb[i-1].ID >= x.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickselect(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		n := r.IntRange(1, 200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(r.Float64() * 20) // ties likely
		}
		k := r.Intn(n)
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		got := quickselect(append([]float64(nil), xs...), k)
		if got != want[k] {
			t.Fatalf("quickselect(%v, %d) = %v, want %v", xs, k, got, want[k])
		}
	}
}

func TestQuickselectSortedInput(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	if got := quickselect(xs, 500); got != 500 {
		t.Errorf("quickselect sorted = %v", got)
	}
}

func TestNthElement(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		n := r.IntRange(2, 100)
		col := make([]float64, n)
		for i := range col {
			col[i] = math.Floor(r.Float64() * 3) // constant-ish columns
		}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		k := r.Intn(n)
		want := append([]int(nil), ids...)
		sort.Slice(want, func(a, b int) bool { return idLess(col, want[a], want[b]) })
		nthElement(ids, 0, n, k, col)
		if ids[k] != want[k] {
			t.Fatalf("nthElement k=%d got id %d, want %d", k, ids[k], want[k])
		}
	}
}

func BenchmarkKNN(b *testing.B) {
	ds := randomDataset(1, 10000, 3, 0)
	dims := allDims(3)
	for _, kind := range []Kind{KindBrute, KindKDTree, KindLSH} {
		ix, err := New(ds, dims, kind)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) {
			sc := ix.NewScratch()
			var nb []Neighbor
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nb, _ = ix.KNN(i%ds.N(), 10, sc, nb)
			}
		})
	}
}
