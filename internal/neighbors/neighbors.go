// Package neighbors is the neighbor-index subsystem behind the ranking
// step's density scorers (LOF, average-kNN-distance, ORCA).
//
// It answers exact k-nearest-neighbor queries under the Euclidean metric
// restricted to an arbitrary subspace projection, through a unified Index
// interface with two interchangeable backends:
//
//   - Brute: the O(N·|S|) linear scan with a quickselect cutoff — optimal
//     for small N and for high-dimensional subspaces, where space
//     partitioning degenerates to a linear scan anyway.
//   - KDTree: a median-split k-d tree — sub-linear queries in the
//     low-dimensional subspaces the HiCS search actually selects, turning
//     the O(N²) ranking hot path into O(N log N) in practice.
//   - LSH: an approximate random-projection forest — opt-in only (never
//     chosen by KindAuto), trading a bounded recall loss for query cost
//     independent of N. See the LSH type for the recall contract.
//
// The exact backends are bit-for-bit equivalent: they accumulate
// squared distances column by column in subspace order, so every distance,
// k-distance and neighborhood they report is the identical float64. The
// k-d tree's plane pruning is safe under floating point because a computed
// full squared distance is a sum of non-negative rounded terms and
// therefore never less than its computed split-axis term.
//
// KindAuto picks the backend per (N, |S|) — callers that do not care get
// the fast path automatically, and callers that must preserve the paper's
// quadratic ranking-step complexity (the shape its runtime figures Fig. 5
// and Fig. 6 are calibrated against) can pin KindBrute. Note that batch
// queries (KNNAll) are parallelized across CPUs on every backend, so
// absolute wall-clock scales with the core count either way.
package neighbors

import (
	"context"
	"fmt"
	"math"

	"hics/internal/dataset"
	"hics/internal/parallel"
)

// Neighbor is one query result: an object id and its distance to the query.
type Neighbor struct {
	ID   int
	Dist float64
}

// Kind selects the index backend.
type Kind int

const (
	// KindAuto selects KDTree for large, low-dimensional subspaces and
	// Brute otherwise.
	KindAuto Kind = iota
	// KindBrute pins the linear-scan backend.
	KindBrute
	// KindKDTree pins the k-d tree backend.
	KindKDTree
	// KindLSH pins the approximate random-projection forest. It is the
	// only non-exact backend and is therefore never selected by KindAuto —
	// trading recall for speed is an explicit opt-in.
	KindLSH
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBrute:
		return "brute"
	case KindKDTree:
		return "kdtree"
	case KindLSH:
		return "lsh"
	default:
		return "auto"
	}
}

// ParseKind parses a user-facing index name. The empty string means auto.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "auto":
		return KindAuto, nil
	case "brute", "bruteforce", "linear":
		return KindBrute, nil
	case "kdtree", "kd-tree", "kd":
		return KindKDTree, nil
	case "lsh", "rptree", "annoy":
		return KindLSH, nil
	}
	return KindAuto, fmt.Errorf("neighbors: unknown index kind %q (want auto, kdtree, brute or lsh)", s)
}

// Auto-selection thresholds: below AutoMinN the scan's cache behaviour wins
// outright, and above AutoMaxDim the tree visits nearly every node anyway
// (curse of dimensionality).
const (
	AutoMinN   = 256
	AutoMaxDim = 10
)

// Index answers exact kNN queries on a fixed dataset and subspace.
// The index structure is immutable after construction; concurrent queries
// are safe as long as each goroutine uses its own Scratch.
type Index interface {
	// N returns the number of indexed objects.
	N() int
	// Kind reports the concrete backend (never KindAuto).
	Kind() Kind
	// NewScratch allocates per-goroutine query buffers.
	NewScratch() *Scratch
	// Dist returns the Euclidean distance between objects i and j in the
	// index's subspace.
	Dist(i, j int) float64
	// KNN returns the LOF-style k-neighborhood of object q: the k-distance
	// (distance to the k-th nearest distinct object, excluding q itself)
	// and every object within that distance. Because of ties the result may
	// contain more than k neighbors, matching the original LOF definition.
	// Neighbors are returned in ascending object-id order (deterministic).
	// k is clamped to N−1; k ≤ 0 yields an empty neighborhood.
	KNN(q, k int, sc *Scratch, out []Neighbor) (neighbors []Neighbor, kdist float64)
	// KNNPoint answers the same query for an out-of-sample point q, given
	// as one coordinate per subspace column (len(q) must equal the number
	// of indexed dimensions). No object is excluded — a query coinciding
	// with an indexed object reports that object at distance zero. As with
	// KNN, ties may yield more than k neighbors, results are in ascending
	// object-id order, and all backends are bit-for-bit equivalent.
	// k is clamped to N; k ≤ 0 yields an empty neighborhood.
	KNNPoint(q []float64, k int, sc *Scratch, out []Neighbor) (neighbors []Neighbor, kdist float64)
	// KNNAll answers KNN for every object, parallelized over the CPUs.
	// nbs[q] and kdists[q] are what KNN(q, k, ...) would return.
	KNNAll(k int) (nbs [][]Neighbor, kdists []float64)
	// KNNAllContext is KNNAll with cooperative cancellation and a bound
	// on the fan-out (workers <= 0 means one per CPU): a cancelled ctx
	// stops the batch within one chunk of queries per worker and returns
	// ctx.Err(). Results are bit-for-bit independent of the worker count.
	KNNAllContext(ctx context.Context, k, workers int) (nbs [][]Neighbor, kdists []float64, err error)
}

// Scratch holds per-goroutine query buffers, shared across backends so an
// adapter can pass one scratch to whichever Index it was configured with.
type Scratch struct {
	dists   []float64 // brute: all squared distances from the query
	sel     []float64 // brute: quickselect working copy
	qv      []float64 // query point, one value per subspace column
	bound   []float64 // kdtree: max-heap of the k smallest squared distances
	cand    []candidate
	mark    []int32 // lsh: per-object dedup stamps across the tree union
	markGen int32   // lsh: current dedup generation
}

type candidate struct {
	id int
	d2 float64
}

// New builds an index over the given subspace dimensions of ds. KindAuto
// resolves to KindKDTree when the subspace has at most AutoMaxDim
// dimensions and the dataset at least AutoMinN objects, else KindBrute.
func New(ds *dataset.Dataset, dims []int, kind Kind) (Index, error) {
	cols, err := selectCols(ds, dims)
	if err != nil {
		return nil, err
	}
	n := ds.N()
	if kind == KindAuto {
		if len(dims) <= AutoMaxDim && n >= AutoMinN {
			kind = KindKDTree
		} else {
			kind = KindBrute
		}
	}
	switch kind {
	case KindBrute:
		return &Brute{cols: cols, n: n}, nil
	case KindKDTree:
		return newKDTree(cols, n), nil
	case KindLSH:
		return newLSH(cols, n, LSHParams{}), nil
	}
	return nil, fmt.Errorf("neighbors: invalid index kind %d", kind)
}

func selectCols(ds *dataset.Dataset, dims []int) ([][]float64, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("neighbors: empty subspace")
	}
	cols := make([][]float64, len(dims))
	for k, d := range dims {
		if d < 0 || d >= ds.D() {
			return nil, fmt.Errorf("neighbors: dimension %d out of range [0,%d)", d, ds.D())
		}
		cols[k] = ds.Col(d)
	}
	return cols, nil
}

// dist is the shared exact distance: squared differences accumulated in
// subspace column order, so both backends produce identical float64 values.
func dist(cols [][]float64, i, j int) float64 {
	sum := 0.0
	for _, col := range cols {
		d := col[i] - col[j]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// knnAll fans KNN queries for all objects out over the shared parallel
// primitive, bounded by the given worker count (<= 0 means one per CPU)
// and observing ctx between chunks. Each worker owns a scratch and a
// reusable neighbor buffer; results are written to disjoint slots, so no
// locking. Results are bit-for-bit independent of the worker count.
func knnAll(ctx context.Context, ix Index, k, workers int) ([][]Neighbor, []float64, error) {
	n := ix.N()
	nbs := make([][]Neighbor, n)
	kdists := make([]float64, n)
	workers = parallel.WorkerCount(workers, n)
	type state struct {
		sc  *Scratch
		buf []Neighbor
	}
	states := make([]*state, workers)
	// A single KNN query is already O(N) on the brute backend, so claim
	// work in small chunks: the atomic claim counter stays cold while a
	// cancellation is observed within a few queries instead of n/4.
	const chunk = 8
	err := parallel.ForEach(ctx, n, workers, chunk, func(w, q int) error {
		st := states[w]
		if st == nil {
			st = &state{sc: ix.NewScratch()}
			states[w] = st
		}
		nb, kd := ix.KNN(q, k, st.sc, st.buf)
		nbs[q] = append([]Neighbor(nil), nb...)
		kdists[q] = kd
		st.buf = nb[:0]
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return nbs, kdists, nil
}
