package neighbors

import (
	"context"
	"fmt"
	"math"

	"hics/internal/rng"
)

// LSH is the approximate backend: a forest of random-projection trees (a
// locality-sensitive space partition). Each tree recursively splits the
// object set with a random-direction hyperplane through the median
// projection until leaves hold at most LeafSize objects. A query descends
// every tree to one leaf, takes the union of the leaves as its candidate
// set, and re-ranks the candidates by exact distance — so every distance
// the backend *reports* is the same float64 the exact backends compute,
// but the neighborhood may miss true neighbors that fell on the far side
// of a split in every tree.
//
// Recall rises with Params.Trees (independent partitions whose misses must
// coincide) and Params.LeafSize (candidates per tree); the defaults target
// ≥ 0.95 recall at k ≈ 10 (asserted by tests against the exact backends)
// while keeping query cost independent of N. Queries whose candidate set
// is smaller than k fall back to an exact linear scan, so small datasets
// and large k degrade to brute-force correctness, never to an undersized
// neighborhood.
//
// Construction is deterministic: the splitting hyperplanes are drawn from
// a generator seeded by Params.Seed only, so the same data and parameters
// always rebuild the identical forest — which is why model persistence can
// record just the kind string and rebuild the structure at load time.
type LSH struct {
	cols   [][]float64
	n      int
	params LSHParams
	trees  []lshTree
	// points is the row-major copy of cols: points[id*d : id*d+d]. The
	// candidate re-rank touches hundreds of random ids per query, and one
	// contiguous stripe per candidate costs one cache line where the
	// column layout costs d. Distances accumulate in the same subspace
	// column order either way, so the float64 results are unchanged.
	points []float64
}

// LSHParams are the recall knobs of the random-projection forest. The zero
// value selects the package defaults.
type LSHParams struct {
	// Trees is the number of independent random-projection trees (default
	// DefaultLSHTrees(d), scaled to the subspace dimension). More trees
	// raise recall and query cost.
	Trees int
	// LeafSize bounds the objects per leaf (default DefaultLSHLeafSize).
	// Larger leaves raise recall and per-tree candidate count.
	LeafSize int
	// Seed drives the random split directions. The default (zero) is the
	// fixed construction seed persistence relies on; change it only for
	// indices that never round-trip through a model file.
	Seed uint64
}

// DefaultLSHLeafSize is the default leaf bound: ≤32-object leaves keep
// the per-tree candidate contribution small enough that query cost is
// dominated by tree count.
const DefaultLSHLeafSize = 32

// DefaultLSHTrees is the default forest size for a d-dimensional
// subspace. Recall difficulty grows with dimension — a random hyperplane
// separates true neighbors more often the more directions there are to
// disagree in — so the tree count scales with d rather than paying the
// worst case everywhere. The schedule was measured against the exact
// backends on the test suite's fixed seeds and lands each dimension at
// ~0.97 mean recall@10 (gate: ≥ 0.95), so the 2–3 dimensional subspaces
// the ranking step queries most stay roughly half the cost of the
// d = 5 setting.
func DefaultLSHTrees(d int) int {
	switch {
	case d <= 2:
		return 5
	case d == 3:
		return 7
	case d == 4:
		return 9
	case d == 5:
		return 12
	default:
		return 16
	}
}

// lshSeed is the fixed construction stream for LSHParams.Seed == 0, chosen
// once so that every rebuild of an index (including model reload) derives
// identical hyperplanes.
const lshSeed = 0x9d8f3b2c01ab45ef

func (p LSHParams) withDefaults(d int) LSHParams {
	if p.Trees <= 0 {
		p.Trees = DefaultLSHTrees(d)
	}
	if p.LeafSize <= 0 {
		p.LeafSize = DefaultLSHLeafSize
	}
	if p.Seed == 0 {
		p.Seed = lshSeed
	}
	return p
}

// lshTree is one random-projection tree, stored flat. Internal node i
// occupies nodes[i*(d+1) : (i+1)*(d+1)] — d split-direction components
// followed by the threshold — so a descent step reads one contiguous
// stripe instead of chasing a per-node slice; its children are
// kids[2i], kids[2i+1], where a negative link ~leaf indexes the leaf
// table, whose entries are ranges into the ids permutation.
type lshTree struct {
	nodes  []float64  // per internal node, d direction components + threshold
	kids   []int32    // 2 per internal node, child links (negative = ~leaf)
	leaves [][2]int32 // per leaf, [start, end) into ids
	ids    []int32    // object ids grouped by leaf
	nnodes int32      // internal node count
}

// newLSH builds the forest over the given subspace columns.
func newLSH(cols [][]float64, n int, p LSHParams) *LSH {
	p = p.withDefaults(len(cols))
	ix := &LSH{cols: cols, n: n, params: p, trees: make([]lshTree, p.Trees)}
	ix.points = make([]float64, n*len(cols))
	for c, col := range cols {
		for i, v := range col {
			ix.points[i*len(cols)+c] = v
		}
	}
	r := rng.New(p.Seed)
	proj := make([]float64, n)
	for t := range ix.trees {
		// Every tree gets its own derived stream, so trees are independent
		// but the forest as a whole is a pure function of the seed.
		ix.trees[t] = buildLSHTree(ix.points, len(cols), n, p.LeafSize, r.Derive(uint64(t)), proj)
	}
	return ix
}

func buildLSHTree(points []float64, d, n, leafSize int, r *rng.RNG, proj []float64) lshTree {
	t := lshTree{ids: make([]int32, n)}
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	t.splitRange(points, d, 0, n, leafSize, r, proj)
	return t
}

// splitRange recursively partitions t.ids[lo:hi), returning the node link
// (an internal node id, or ~leaf for a leaf).
func (t *lshTree) splitRange(points []float64, d, lo, hi, leafSize int, r *rng.RNG, proj []float64) int32 {
	if hi-lo <= leafSize {
		leaf := int32(len(t.leaves))
		t.leaves = append(t.leaves, [2]int32{int32(lo), int32(hi)})
		return ^leaf
	}
	// A random Gaussian direction; its scale is irrelevant (both sides of
	// the comparison are projected the same way), so it is not normalized.
	node := t.nnodes
	t.nnodes++
	base := len(t.nodes)
	for c := 0; c < d; c++ {
		t.nodes = append(t.nodes, r.Normal())
	}
	dir := t.nodes[base : base+d]
	for _, id := range t.ids[lo:hi] {
		p := 0.0
		for c, v := range points[int(id)*d : int(id)*d+d] {
			p += dir[c] * v
		}
		proj[id] = p
	}
	// Median split on (projection, id) — the id tie-break makes the order
	// total, so the selected cut is a pure function of the element set and
	// the build stays deterministic. Quickselect, not a sort: selection is
	// O(n) per level where sorting would make construction O(n log² n).
	mid := lo + (hi-lo)/2
	lshSelect(t.ids, lo, hi, mid, proj)
	t.nodes = append(t.nodes, proj[t.ids[mid]])
	t.kids = append(t.kids, 0, 0)
	left := t.splitRange(points, d, lo, mid, leafSize, r, proj)
	right := t.splitRange(points, d, mid, hi, leafSize, r, proj)
	t.kids[2*node] = left
	t.kids[2*node+1] = right
	return node
}

// lshSelect partially orders ids[lo:hi) so that position k holds the
// element a full sort by (proj value, id) would put there — the int32
// sibling of the k-d tree's nthElement.
func lshSelect(ids []int32, lo, hi, k int, proj []float64) {
	hi--
	for lo < hi {
		p := lshPartition(ids, lo, hi, proj)
		switch {
		case k == p:
			return
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// projLess orders object ids by projection value, ties by id.
func projLess(proj []float64, a, b int32) bool {
	if proj[a] != proj[b] {
		return proj[a] < proj[b]
	}
	return a < b
}

func lshPartition(ids []int32, lo, hi int, proj []float64) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order ids[lo], ids[mid], ids[hi].
	if projLess(proj, ids[mid], ids[lo]) {
		ids[mid], ids[lo] = ids[lo], ids[mid]
	}
	if projLess(proj, ids[hi], ids[lo]) {
		ids[hi], ids[lo] = ids[lo], ids[hi]
	}
	if projLess(proj, ids[hi], ids[mid]) {
		ids[hi], ids[mid] = ids[mid], ids[hi]
	}
	pivot := ids[mid]
	ids[mid], ids[hi-1] = ids[hi-1], ids[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if projLess(proj, ids[j], pivot) {
			ids[i], ids[j] = ids[j], ids[i]
			i++
		}
	}
	ids[i], ids[hi-1] = ids[hi-1], ids[i]
	return i
}

// leafFor descends from the root to the leaf the query point falls in and
// returns its id range.
func (t *lshTree) leafFor(qv []float64, d int) [2]int32 {
	if t.nnodes == 0 {
		return t.leaves[0]
	}
	nodes, kids := t.nodes, t.kids
	node := 0
	for {
		stripe := nodes[node*(d+1) : node*(d+1)+d+1]
		p := 0.0
		for c := 0; c < d; c++ {
			p += stripe[c] * qv[c]
		}
		side := 1
		if p < stripe[d] {
			side = 0
		}
		next := kids[2*node+side]
		if next < 0 {
			return t.leaves[^next]
		}
		node = int(next)
	}
}

// N implements Index.
func (ix *LSH) N() int { return ix.n }

// Kind implements Index.
func (ix *LSH) Kind() Kind { return KindLSH }

// Dist implements Index.
func (ix *LSH) Dist(i, j int) float64 { return dist(ix.cols, i, j) }

// NewScratch implements Index.
func (ix *LSH) NewScratch() *Scratch {
	return &Scratch{
		qv:   make([]float64, 0, len(ix.cols)),
		mark: make([]int32, ix.n),
		cand: make([]candidate, 0, ix.params.Trees*ix.params.LeafSize),
	}
}

// KNN implements Index.
func (ix *LSH) KNN(q, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	if k >= ix.n {
		k = ix.n - 1
	}
	if k <= 0 {
		return out[:0], 0
	}
	qv := sc.qv[:0]
	for _, col := range ix.cols {
		qv = append(qv, col[q])
	}
	sc.qv = qv
	return ix.query(q, k, sc, out)
}

// KNNPoint implements Index.
func (ix *LSH) KNNPoint(q []float64, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	if len(q) != len(ix.cols) {
		panic(fmt.Sprintf("neighbors: query point has %d coordinates, index has %d", len(q), len(ix.cols)))
	}
	if k > ix.n {
		k = ix.n
	}
	if k <= 0 {
		return out[:0], 0
	}
	sc.qv = append(sc.qv[:0], q...)
	return ix.query(-1, k, sc, out)
}

// query answers the point held in sc.qv, skipping object exclude (-1 for
// out-of-sample queries): gather the union of the matched leaves across
// all trees (deduplicated with a generation-stamped mark array), compute
// exact distances, cut at the k-th smallest via quickselect, and return
// the within-bound candidates in ascending id order — the same tie and
// ordering semantics as the exact backends, restricted to the candidate
// set.
func (ix *LSH) query(exclude, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	sc.markGen++
	if sc.markGen == 0 {
		// The int32 generation wrapped; clear the stamps so stale marks
		// cannot alias the new generation.
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.markGen = 1
	}
	cand := sc.cand[:0]
	d := len(ix.cols)
	for t := range ix.trees {
		leaf := ix.trees[t].leafFor(sc.qv, d)
		for _, id32 := range ix.trees[t].ids[leaf[0]:leaf[1]] {
			id := int(id32)
			if id == exclude || sc.mark[id] == sc.markGen {
				continue
			}
			sc.mark[id] = sc.markGen
			d2 := 0.0
			for c, p := range ix.points[id*d : id*d+d] {
				dd := p - sc.qv[c]
				d2 += dd * dd
			}
			cand = append(cand, candidate{id: id, d2: d2})
		}
	}
	sc.cand = cand

	if len(cand) < k {
		// Too few candidates to fill the neighborhood (tiny data or large
		// k): degrade to an exact linear scan instead of returning an
		// undersized, misleading neighborhood.
		return ix.scanAll(exclude, k, sc, out)
	}

	// k-th smallest squared candidate distance via quickselect on a copy.
	sel := sc.sel[:0]
	for _, c := range cand {
		sel = append(sel, c.d2)
	}
	sc.sel = sel
	kth := quickselect(sel, k-1)

	neighbors := out[:0]
	for _, c := range cand {
		if c.d2 <= kth {
			neighbors = append(neighbors, Neighbor{ID: c.id, Dist: math.Sqrt(c.d2)})
		}
	}
	// Ascending id order, like the exact backends. Insertion sort: the
	// survivor set is ~k elements, small enough that the generic sort's
	// reflection overhead would dominate the comparisons.
	for i := 1; i < len(neighbors); i++ {
		nb := neighbors[i]
		j := i - 1
		for j >= 0 && neighbors[j].ID > nb.ID {
			neighbors[j+1] = neighbors[j]
			j--
		}
		neighbors[j+1] = nb
	}
	return neighbors, math.Sqrt(kth)
}

// scanAll is the exact fallback: all N distances, cut at the k-th
// smallest — the brute backend's semantics.
func (ix *LSH) scanAll(exclude, k int, sc *Scratch, out []Neighbor) ([]Neighbor, float64) {
	if sc.dists == nil {
		sc.dists = make([]float64, ix.n)
	}
	dists := sc.dists
	for i := range dists {
		dists[i] = 0
	}
	for c, col := range ix.cols {
		cq := sc.qv[c]
		for i, v := range col {
			d := v - cq
			dists[i] += d * d
		}
	}
	if exclude >= 0 {
		dists[exclude] = math.Inf(1)
	}
	sel := append(sc.sel[:0], dists...)
	sc.sel = sel
	kth := quickselect(sel, k-1)
	neighbors := out[:0]
	for i, d := range dists {
		if d <= kth && i != exclude {
			neighbors = append(neighbors, Neighbor{ID: i, Dist: math.Sqrt(d)})
		}
	}
	return neighbors, math.Sqrt(kth)
}

// KNNAll implements Index.
func (ix *LSH) KNNAll(k int) ([][]Neighbor, []float64) {
	nbs, kdists, _ := knnAll(context.Background(), ix, k, 0)
	return nbs, kdists
}

// KNNAllContext implements Index.
func (ix *LSH) KNNAllContext(ctx context.Context, k, workers int) ([][]Neighbor, []float64, error) {
	return knnAll(ctx, ix, k, workers)
}
