// Package surfing implements SURFING (Baumgartner et al.: "Subspace
// Selection for Clustering High-Dimensional Data", ICDM 2004), the fourth
// subspace search technique the paper's related work surveys. It is
// included as an extension competitor beyond the paper's evaluated set.
//
// SURFING rates a subspace by the non-uniformity of its k-nearest-neighbor
// distance distribution: in a uniformly scattered subspace all objects
// have similar k-NN distances, while a subspace with structure (clusters
// and sparse regions) produces widely varying ones. The quality measure is
// the mean deviation of the k-NN distances below the mean, normalized by
// the mean distance — scale-free and comparable across dimensionalities.
// The search proceeds level-wise, keeping the highest-quality candidates
// like the other bottom-up frameworks in this repository.
package surfing

import (
	"context"
	"fmt"

	"hics/internal/dataset"
	"hics/internal/knn"
	"hics/internal/subspace"
)

// Defaults chosen per the original publication's guidance (small k).
const (
	DefaultK      = 10
	DefaultTopK   = 100
	DefaultCutoff = 400
	DefaultMaxDim = 6
)

// Params configures the SURFING search. Zero values select defaults.
type Params struct {
	K      int // k-NN distance order
	TopK   int // returned subspaces (-1 = all)
	Cutoff int // candidates retained per level
	MaxDim int // candidate dimensionality bound
}

func (p Params) withDefaults() Params {
	if p.K <= 0 {
		p.K = DefaultK
	}
	if p.TopK == 0 {
		p.TopK = DefaultTopK
	}
	if p.Cutoff <= 0 {
		p.Cutoff = DefaultCutoff
	}
	if p.MaxDim <= 0 {
		p.MaxDim = DefaultMaxDim
	}
	return p
}

// Quality returns the SURFING measure of subspace s: the mean below-mean
// deviation of k-NN distances divided by the mean k-NN distance. Zero for
// perfectly uniform distances, larger for structured subspaces.
func Quality(ds *dataset.Dataset, s subspace.Subspace, p Params) (float64, error) {
	p = p.withDefaults()
	searcher, err := knn.New(ds, s)
	if err != nil {
		return 0, fmt.Errorf("surfing: %w", err)
	}
	n := ds.N()
	if n < p.K+1 {
		return 0, fmt.Errorf("surfing: need more than k=%d objects, have %d", p.K, n)
	}
	sc := searcher.NewScratch()
	kdists := make([]float64, n)
	var buf []knn.Neighbor
	mean := 0.0
	for i := 0; i < n; i++ {
		nb, kd := searcher.Neighborhood(i, p.K, sc, buf)
		buf = nb
		kdists[i] = kd
		mean += kd
	}
	mean /= float64(n)
	if mean == 0 {
		return 0, nil // all objects coincide
	}
	// Mean deviation below the mean ("objects in dense areas"), the
	// SURFING quality numerator.
	below := 0.0
	cnt := 0
	for _, kd := range kdists {
		if kd < mean {
			below += mean - kd
			cnt++
		}
	}
	if cnt == 0 {
		return 0, nil
	}
	return below / (float64(cnt) * mean), nil
}

// Result carries the outcome of a SURFING search.
type Result struct {
	Subspaces []subspace.Scored // ranked by descending quality
	Evaluated int
}

// Search runs the level-wise SURFING procedure.
func Search(ds *dataset.Dataset, p Params) (*Result, error) {
	return SearchContext(context.Background(), ds, p)
}

// SearchContext is Search with cooperative cancellation: ctx is checked
// between candidate quality evaluations, so a cancelled context surfaces
// ctx.Err() within one candidate's k-NN pass.
func SearchContext(ctx context.Context, ds *dataset.Dataset, p Params) (*Result, error) {
	p = p.withDefaults()
	if ds.D() < 2 {
		return nil, fmt.Errorf("surfing: need at least 2 attributes, have %d", ds.D())
	}
	res := &Result{}
	var pool []subspace.Scored

	candidates := subspace.AllPairs(ds.D())
	for dim := 2; len(candidates) > 0 && dim <= p.MaxDim; dim++ {
		var kept []subspace.Scored
		for _, s := range candidates {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			q, err := Quality(ds, s, p)
			res.Evaluated++
			if err != nil {
				return nil, err
			}
			if q > 0 {
				kept = append(kept, subspace.Scored{S: s, Score: q})
			}
		}
		kept = subspace.TopK(kept, p.Cutoff)
		pool = append(pool, kept...)
		if dim == p.MaxDim {
			break
		}
		parents := make([]subspace.Subspace, len(kept))
		for i, sc := range kept {
			parents[i] = sc.S
		}
		candidates = subspace.GenerateCandidates(parents)
	}

	res.Subspaces = subspace.TopK(pool, p.TopK)
	return res, nil
}

// Searcher adapts Search to the ranking pipeline.
type Searcher struct {
	Params Params
}

// Search implements the two-step pipeline's subspace search step.
func (s *Searcher) Search(ctx context.Context, ds *dataset.Dataset) ([]subspace.Scored, error) {
	res, err := SearchContext(ctx, ds, s.Params)
	if err != nil {
		return nil, err
	}
	return res.Subspaces, nil
}

// Name identifies the method in experiment reports.
func (s *Searcher) Name() string { return "SURFING" }
