package surfing

import (
	"context"
	"testing"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/subspace"
)

func uniformData(seed uint64, n, d int) *dataset.Dataset {
	r := rng.New(seed)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = r.Float64()
		}
	}
	return dataset.MustNew(nil, cols)
}

func clusteredPair(seed uint64, n, d int) *dataset.Dataset {
	r := rng.New(seed)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		c := 0.25
		if r.Float64() < 0.5 {
			c = 0.75
		}
		cols[0][i] = r.NormalScaled(c, 0.03)
		cols[1][i] = r.NormalScaled(c, 0.03)
		for j := 2; j < d; j++ {
			cols[j][i] = r.Float64()
		}
	}
	return dataset.MustNew(nil, cols)
}

func TestQualityClusteredAboveUniform(t *testing.T) {
	clus := clusteredPair(1, 400, 2)
	unif := uniformData(2, 400, 2)
	s := subspace.New(0, 1)
	qC, err := Quality(clus, s, Params{})
	if err != nil {
		t.Fatal(err)
	}
	qU, err := Quality(unif, s, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if qC <= qU {
		t.Errorf("clustered quality %v <= uniform %v", qC, qU)
	}
}

func TestQualityDegenerate(t *testing.T) {
	// All objects identical: quality zero (mean k-dist is zero).
	col := make([]float64, 50)
	ds := dataset.MustNew(nil, [][]float64{col, col})
	q, err := Quality(ds, subspace.New(0, 1), Params{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Errorf("degenerate quality = %v", q)
	}
}

func TestQualityErrors(t *testing.T) {
	ds := uniformData(3, 5, 2)
	if _, err := Quality(ds, subspace.New(0, 1), Params{K: 10}); err == nil {
		t.Error("k >= n should fail")
	}
	if _, err := Quality(ds, subspace.New(0, 9), Params{K: 2}); err == nil {
		t.Error("bad dims should fail")
	}
}

func TestSearchFindsClusteredSubspace(t *testing.T) {
	ds := clusteredPair(4, 400, 5)
	res, err := Search(ds, Params{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) == 0 {
		t.Fatal("no subspaces found")
	}
	if !res.Subspaces[0].S.SupersetOf(subspace.New(0, 1)) {
		t.Errorf("top subspace %v does not cover the planted pair", res.Subspaces[0].S)
	}
}

func TestSearchBounds(t *testing.T) {
	ds := clusteredPair(5, 200, 5)
	res, err := Search(ds, Params{TopK: 3, MaxDim: 2, Cutoff: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) > 3 {
		t.Errorf("TopK violated: %d", len(res.Subspaces))
	}
	for _, sc := range res.Subspaces {
		if sc.S.Dim() > 2 {
			t.Errorf("MaxDim violated by %v", sc.S)
		}
	}
}

func TestSearchSorted(t *testing.T) {
	ds := clusteredPair(6, 300, 4)
	res, err := Search(ds, Params{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Subspaces); i++ {
		if res.Subspaces[i].Score > res.Subspaces[i-1].Score {
			t.Fatal("not sorted by descending quality")
		}
	}
}

func TestSearchErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1, 2}})
	if _, err := Search(ds, Params{}); err == nil {
		t.Error("single attribute should fail")
	}
}

func TestSearcherAdapter(t *testing.T) {
	ds := clusteredPair(7, 200, 4)
	s := &Searcher{}
	list, err := s.Search(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Error("adapter returned nothing")
	}
	if s.Name() != "SURFING" {
		t.Errorf("Name = %q", s.Name())
	}
}
