// Package subspace provides the dimension-set algebra behind the HiCS
// subspace framework: canonical subspace values, the Apriori-style join
// that builds (d+1)-dimensional candidates from d-dimensional ones, and
// the redundancy pruning of dominated subspaces (paper Sec. IV-B).
package subspace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Subspace is a set of attribute indices in strictly ascending order.
// The canonical ordering makes equality, hashing and the Apriori join
// cheap. Use New to construct a canonical value from arbitrary input.
type Subspace []int

// New returns a canonical Subspace from the given dimensions: sorted
// ascending with duplicates removed.
func New(dims ...int) Subspace {
	s := append(Subspace(nil), dims...)
	sort.Ints(s)
	out := s[:0]
	for i, d := range s {
		if i == 0 || d != s[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// Full returns the full space {0, ..., d-1}.
func Full(d int) Subspace {
	s := make(Subspace, d)
	for i := range s {
		s[i] = i
	}
	return s
}

// Dim returns the dimensionality |S|.
func (s Subspace) Dim() int { return len(s) }

// Contains reports whether dimension d is part of the subspace.
func (s Subspace) Contains(d int) bool {
	i := sort.SearchInts(s, d)
	return i < len(s) && s[i] == d
}

// Equal reports whether two subspaces contain exactly the same dimensions.
func (s Subspace) Equal(t Subspace) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SupersetOf reports whether s ⊇ t.
func (s Subspace) SupersetOf(t Subspace) bool {
	if len(t) > len(s) {
		return false
	}
	i := 0
	for _, d := range t {
		for i < len(s) && s[i] < d {
			i++
		}
		if i >= len(s) || s[i] != d {
			return false
		}
		i++
	}
	return true
}

// Key returns a canonical string key, e.g. "1-4-7", suitable for map
// deduplication.
func (s Subspace) Key() string {
	var b strings.Builder
	for i, d := range s {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.Itoa(d))
	}
	return b.String()
}

// String renders the subspace as e.g. "{1, 4, 7}".
func (s Subspace) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = strconv.Itoa(d)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Clone returns an independent copy.
func (s Subspace) Clone() Subspace {
	return append(Subspace(nil), s...)
}

// Join merges two d-dimensional subspaces into a (d+1)-dimensional
// candidate when they share the same d−1 leading dimensions, the classical
// Apriori join on the canonical ordering. ok is false when the prefixes
// differ or the dimensionalities do not match.
func Join(a, b Subspace) (merged Subspace, ok bool) {
	if len(a) != len(b) || len(a) == 0 {
		return nil, false
	}
	d := len(a)
	for i := 0; i < d-1; i++ {
		if a[i] != b[i] {
			return nil, false
		}
	}
	if a[d-1] == b[d-1] {
		return nil, false
	}
	lo, hi := a[d-1], b[d-1]
	if lo > hi {
		lo, hi = hi, lo
	}
	merged = make(Subspace, 0, d+1)
	merged = append(merged, a[:d-1]...)
	merged = append(merged, lo, hi)
	return merged, true
}

// Scored couples a subspace with its contrast (or other quality) score.
type Scored struct {
	S     Subspace
	Score float64
}

// SortScoredDesc orders scored subspaces by descending score; ties are
// broken by the canonical key so that ordering is deterministic.
func SortScoredDesc(list []Scored) {
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].Score != list[j].Score {
			return list[i].Score > list[j].Score
		}
		return compare(list[i].S, list[j].S) < 0
	})
}

func compare(a, b Subspace) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// AllPairs enumerates every two-dimensional subspace of a D-dimensional
// space — the starting level of the HiCS framework.
func AllPairs(d int) []Subspace {
	if d < 2 {
		return nil
	}
	out := make([]Subspace, 0, d*(d-1)/2)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out = append(out, Subspace{i, j})
		}
	}
	return out
}

// GenerateCandidates performs the Apriori candidate generation: it joins
// every compatible pair of d-dimensional parents and keeps the merged
// candidates deduplicated. Following the paper's framework, no subset-
// closure check is applied (contrast is not monotone, see Fig. 3); the
// join itself is the heuristic.
//
// Parents must all have the same dimensionality; candidates are returned
// in deterministic order.
func GenerateCandidates(parents []Subspace) []Subspace {
	if len(parents) < 2 {
		return nil
	}
	// Sort parents canonically so joins scan deterministically.
	sorted := make([]Subspace, len(parents))
	copy(sorted, parents)
	sort.SliceStable(sorted, func(i, j int) bool { return compare(sorted[i], sorted[j]) < 0 })

	seen := make(map[string]bool)
	var out []Subspace
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			m, ok := Join(sorted[i], sorted[j])
			if !ok {
				// Parents are sorted; once prefixes diverge no later j matches.
				if !samePrefix(sorted[i], sorted[j]) {
					break
				}
				continue
			}
			if k := m.Key(); !seen[k] {
				seen[k] = true
				out = append(out, m)
			}
		}
	}
	return out
}

func samePrefix(a, b Subspace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PruneRedundant removes every d-dimensional subspace T for which the list
// contains a (d+1)-dimensional superset S with a strictly higher score
// (paper Sec. IV-B). The relative order of survivors is preserved.
func PruneRedundant(list []Scored) []Scored {
	// Bucket by dimensionality for the superset scan.
	byDim := make(map[int][]Scored)
	for _, sc := range list {
		byDim[sc.S.Dim()] = append(byDim[sc.S.Dim()], sc)
	}
	out := make([]Scored, 0, len(list))
	for _, sc := range list {
		dominated := false
		for _, sup := range byDim[sc.S.Dim()+1] {
			if sup.Score > sc.Score && sup.S.SupersetOf(sc.S) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, sc)
		}
	}
	return out
}

// TopK returns the k highest-scoring entries (or all if fewer), sorted
// descending. The input is not modified.
func TopK(list []Scored, k int) []Scored {
	cp := append([]Scored(nil), list...)
	SortScoredDesc(cp)
	if k > 0 && len(cp) > k {
		cp = cp[:k]
	}
	return cp
}

// Validate checks that the subspace is canonical and within [0, d).
func (s Subspace) Validate(d int) error {
	for i, v := range s {
		if v < 0 || v >= d {
			return fmt.Errorf("subspace: dimension %d out of range [0,%d)", v, d)
		}
		if i > 0 && s[i-1] >= v {
			return fmt.Errorf("subspace: not in canonical ascending order: %v", []int(s))
		}
	}
	return nil
}
