package subspace

import (
	"testing"
	"testing/quick"

	"hics/internal/rng"
)

func TestNewCanonical(t *testing.T) {
	s := New(3, 1, 2, 1, 3)
	want := Subspace{1, 2, 3}
	if !s.Equal(want) {
		t.Errorf("New = %v, want %v", s, want)
	}
	if New().Dim() != 0 {
		t.Error("empty New should have dim 0")
	}
}

func TestFull(t *testing.T) {
	f := Full(4)
	if !f.Equal(Subspace{0, 1, 2, 3}) {
		t.Errorf("Full(4) = %v", f)
	}
	if Full(0).Dim() != 0 {
		t.Error("Full(0) should be empty")
	}
}

func TestContains(t *testing.T) {
	s := New(1, 4, 7)
	for _, d := range []int{1, 4, 7} {
		if !s.Contains(d) {
			t.Errorf("Contains(%d) = false", d)
		}
	}
	for _, d := range []int{0, 2, 5, 8} {
		if s.Contains(d) {
			t.Errorf("Contains(%d) = true", d)
		}
	}
}

func TestEqual(t *testing.T) {
	if !New(1, 2).Equal(New(2, 1)) {
		t.Error("canonical order should make {1,2} == {2,1}")
	}
	if New(1, 2).Equal(New(1, 2, 3)) {
		t.Error("different dims should differ")
	}
	if New(1, 2).Equal(New(1, 3)) {
		t.Error("different members should differ")
	}
}

func TestSupersetOf(t *testing.T) {
	s := New(1, 3, 5, 7)
	cases := []struct {
		t    Subspace
		want bool
	}{
		{New(1, 3), true},
		{New(3, 7), true},
		{New(), true},
		{New(1, 3, 5, 7), true},
		{New(1, 2), false},
		{New(1, 3, 5, 7, 9), false},
		{New(8), false},
	}
	for _, c := range cases {
		if got := s.SupersetOf(c.t); got != c.want {
			t.Errorf("%v ⊇ %v = %v, want %v", s, c.t, got, c.want)
		}
	}
}

func TestKeyString(t *testing.T) {
	s := New(0, 10, 2)
	if s.Key() != "0-2-10" {
		t.Errorf("Key = %q", s.Key())
	}
	if s.String() != "{0, 2, 10}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestClone(t *testing.T) {
	s := New(1, 2)
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestJoin(t *testing.T) {
	m, ok := Join(New(1, 2), New(1, 3))
	if !ok || !m.Equal(New(1, 2, 3)) {
		t.Errorf("Join = %v, %v", m, ok)
	}
	// Reversed order of last element.
	m, ok = Join(New(1, 5), New(1, 3))
	if !ok || !m.Equal(New(1, 3, 5)) {
		t.Errorf("Join unsorted tails = %v, %v", m, ok)
	}
	if _, ok := Join(New(1, 2), New(3, 4)); ok {
		t.Error("differing prefixes should not join")
	}
	if _, ok := Join(New(1, 2), New(1, 2)); ok {
		t.Error("identical subspaces should not join")
	}
	if _, ok := Join(New(1, 2), New(1, 2, 3)); ok {
		t.Error("dimension mismatch should not join")
	}
	if _, ok := Join(New(), New()); ok {
		t.Error("empty join should fail")
	}
}

func TestAllPairs(t *testing.T) {
	ps := AllPairs(4)
	if len(ps) != 6 {
		t.Fatalf("AllPairs(4) has %d entries", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Dim() != 2 {
			t.Errorf("pair %v has dim %d", p, p.Dim())
		}
		seen[p.Key()] = true
	}
	if len(seen) != 6 {
		t.Error("duplicate pairs")
	}
	if AllPairs(1) != nil {
		t.Error("AllPairs(1) should be nil")
	}
}

func TestGenerateCandidates(t *testing.T) {
	parents := []Subspace{New(1, 2), New(1, 3), New(2, 3), New(4, 5)}
	cands := GenerateCandidates(parents)
	// Joinable: {1,2}+{1,3} → {1,2,3}. {2,3} and {4,5} share no prefix.
	if len(cands) != 1 || !cands[0].Equal(New(1, 2, 3)) {
		t.Errorf("candidates = %v", cands)
	}
}

func TestGenerateCandidatesDedup(t *testing.T) {
	parents := []Subspace{New(1, 2), New(1, 3), New(1, 4)}
	cands := GenerateCandidates(parents)
	// Joins: {1,2,3}, {1,2,4}, {1,3,4} — all distinct.
	if len(cands) != 3 {
		t.Errorf("candidates = %v", cands)
	}
}

func TestGenerateCandidatesEmpty(t *testing.T) {
	if GenerateCandidates(nil) != nil {
		t.Error("nil parents should give nil")
	}
	if GenerateCandidates([]Subspace{New(1, 2)}) != nil {
		t.Error("single parent should give nil")
	}
}

func TestSortScoredDesc(t *testing.T) {
	list := []Scored{
		{New(3, 4), 0.5},
		{New(1, 2), 0.9},
		{New(0, 5), 0.5},
	}
	SortScoredDesc(list)
	if !list[0].S.Equal(New(1, 2)) {
		t.Errorf("first = %v", list[0])
	}
	// Ties broken by canonical key: {0,5} before {3,4}.
	if !list[1].S.Equal(New(0, 5)) || !list[2].S.Equal(New(3, 4)) {
		t.Errorf("tie order = %v, %v", list[1].S, list[2].S)
	}
}

func TestPruneRedundant(t *testing.T) {
	list := []Scored{
		{New(1, 2), 0.8},  // dominated by {1,2,3} (higher score superset)
		{New(1, 3), 0.95}, // kept: superset has lower score
		{New(1, 2, 3), 0.9},
		{New(4, 5), 0.7}, // kept: no superset present
	}
	out := PruneRedundant(list)
	keys := map[string]bool{}
	for _, sc := range out {
		keys[sc.S.Key()] = true
	}
	if keys["1-2"] {
		t.Error("{1,2} should be pruned")
	}
	if !keys["1-3"] || !keys["1-2-3"] || !keys["4-5"] {
		t.Errorf("pruned list = %v", out)
	}
}

func TestPruneRedundantEqualScore(t *testing.T) {
	// Strictly higher score required: equal-score superset does not prune.
	list := []Scored{
		{New(1, 2), 0.9},
		{New(1, 2, 3), 0.9},
	}
	if out := PruneRedundant(list); len(out) != 2 {
		t.Errorf("equal-score superset should not prune, got %v", out)
	}
}

func TestTopK(t *testing.T) {
	list := []Scored{
		{New(1, 2), 0.1},
		{New(1, 3), 0.9},
		{New(1, 4), 0.5},
	}
	top := TopK(list, 2)
	if len(top) != 2 || top[0].Score != 0.9 || top[1].Score != 0.5 {
		t.Errorf("TopK = %v", top)
	}
	// k<=0 means "all".
	if len(TopK(list, 0)) != 3 {
		t.Error("TopK(0) should return all")
	}
	// Input untouched.
	if list[0].Score != 0.1 {
		t.Error("TopK modified its input")
	}
}

func TestValidate(t *testing.T) {
	if err := New(0, 2, 4).Validate(5); err != nil {
		t.Errorf("valid subspace rejected: %v", err)
	}
	if err := New(0, 5).Validate(5); err == nil {
		t.Error("out-of-range dimension accepted")
	}
	if err := (Subspace{2, 1}).Validate(5); err == nil {
		t.Error("non-canonical order accepted")
	}
	if err := (Subspace{1, 1}).Validate(5); err == nil {
		t.Error("duplicate dimension accepted")
	}
}

// Property: Join output is canonical, has dim+1, and is a superset of both parents.
func TestQuickJoinProperties(t *testing.T) {
	f := func(seed uint64, dim uint8) bool {
		r := rng.New(seed)
		d := int(dim%4) + 2
		// Construct two parents sharing a prefix.
		prefix := make([]int, d-1)
		used := map[int]bool{}
		for i := range prefix {
			v := r.Intn(50)
			for used[v] {
				v = r.Intn(50)
			}
			used[v] = true
			prefix[i] = v
		}
		t1, t2 := -1, -1
		for t1 == t2 || used[t1] || used[t2] {
			t1, t2 = r.Intn(50)+50, r.Intn(50)+50
		}
		a := New(append(append([]int{}, prefix...), t1)...)
		b := New(append(append([]int{}, prefix...), t2)...)
		// After canonicalization the shared prefix may not be leading, so a
		// successful join is not guaranteed — but when it succeeds the result
		// must be sound.
		m, ok := Join(a, b)
		if !ok {
			return true
		}
		if m.Dim() != d+1 {
			return false
		}
		if m.Validate(100) != nil {
			return false
		}
		return m.SupersetOf(a) && m.SupersetOf(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: New always yields a canonical subspace.
func TestQuickNewCanonical(t *testing.T) {
	f := func(dims []int) bool {
		clip := make([]int, 0, len(dims))
		for _, d := range dims {
			v := d % 100
			if v < 0 {
				v = -v
			}
			clip = append(clip, v)
		}
		return New(clip...).Validate(100) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: PruneRedundant never increases the list and survivors are a sublist.
func TestQuickPruneSound(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		list := make([]Scored, int(n%20)+1)
		for i := range list {
			dims := make([]int, r.IntRange(2, 4))
			for j := range dims {
				dims[j] = r.Intn(8)
			}
			list[i] = Scored{S: New(dims...), Score: r.Float64()}
		}
		out := PruneRedundant(list)
		if len(out) > len(list) {
			return false
		}
		// Every survivor must appear in the input.
		for _, sc := range out {
			found := false
			for _, in := range list {
				if in.S.Equal(sc.S) && in.Score == sc.Score {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
