// Package enclus implements the Enclus subspace search of Cheng, Fu & Zhang
// (KDD 1999), the grid-entropy competitor of the paper's evaluation.
//
// Enclus partitions every attribute into ξ equal-width intervals and
// computes the Shannon entropy of the resulting grid-cell histogram of a
// subspace. Subspaces with entropy below a threshold ω exhibit strong
// density variation ("good clustering"); among those, the *interest* —
// the mutual-information-style gap between the sum of the per-attribute
// entropies and the joint entropy — separates correlated subspaces from
// merely skewed ones. Candidates are grown level-wise with the Apriori
// join, exploiting that entropy is monotonically non-decreasing with
// dimensionality (H(S) ≤ H(S ∪ {a})), the downward-closure Enclus is
// built on.
//
// As in the paper's experimental setup, the search is run as a
// pre-processing step and the best subspaces (highest interest) are
// handed to the outlier ranking.
package enclus

import (
	"context"
	"fmt"
	"math"

	"hics/internal/dataset"
	"hics/internal/subspace"
)

// Defaults follow the original publication's suggestions scaled to the
// unit-normalized data used throughout this repository.
const (
	DefaultXi     = 10  // grid resolution per attribute
	DefaultMaxDim = 6   // safety bound on candidate dimensionality
	DefaultTopK   = 100 // subspaces handed to the ranking step
	DefaultCutoff = 400 // candidates retained per level (runtime bound)
)

// Params configures the Enclus search. Zero values select defaults.
type Params struct {
	// Xi is the number of equal-width grid intervals per attribute.
	Xi int
	// Omega is the entropy threshold: subspaces with H(S) > Omega are
	// discarded. Zero selects an adaptive threshold (see Search).
	Omega float64
	// MaxDim caps candidate dimensionality.
	MaxDim int
	// TopK bounds the returned list (-1 = all).
	TopK int
	// Cutoff bounds the candidates retained per level, mirroring the HiCS
	// framework so runtimes stay comparable.
	Cutoff int
}

func (p Params) withDefaults() Params {
	if p.Xi <= 1 {
		p.Xi = DefaultXi
	}
	if p.MaxDim <= 0 {
		p.MaxDim = DefaultMaxDim
	}
	if p.TopK == 0 {
		p.TopK = DefaultTopK
	}
	if p.Cutoff <= 0 {
		p.Cutoff = DefaultCutoff
	}
	return p
}

// Entropy returns the Shannon entropy (in bits) of the ξ-grid histogram of
// ds projected to subspace s. Data is assumed min-max normalized to [0,1];
// values outside are clamped into the boundary cells.
func Entropy(ds *dataset.Dataset, s subspace.Subspace, xi int) float64 {
	n := ds.N()
	cells := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		var key uint64
		for _, d := range s {
			key = key*uint64(xi) + uint64(cellOf(ds.Value(i, d), xi))
		}
		cells[key]++
	}
	h := 0.0
	invN := 1 / float64(n)
	for _, c := range cells {
		p := float64(c) * invN
		h -= p * math.Log2(p)
	}
	return h
}

func cellOf(v float64, xi int) int {
	c := int(v * float64(xi))
	if c < 0 {
		return 0
	}
	if c >= xi {
		return xi - 1
	}
	return c
}

// Interest returns interest(S) = Σ H({s}) − H(S), the total correlation of
// the subspace under the grid approximation. It is zero for independent
// attributes and grows with dependence.
func Interest(ds *dataset.Dataset, s subspace.Subspace, xi int) float64 {
	sum := 0.0
	for _, d := range s {
		sum += Entropy(ds, subspace.New(d), xi)
	}
	return sum - Entropy(ds, s, xi)
}

// Result carries the outcome of an Enclus search.
type Result struct {
	// Subspaces holds the retained subspaces ranked by descending interest.
	Subspaces []subspace.Scored
	// Evaluated counts entropy evaluations of multi-dimensional candidates.
	Evaluated int
}

// Search runs the level-wise Enclus procedure on ds (which must be min-max
// normalized). When Params.Omega is zero an adaptive threshold is used:
// the median two-dimensional entropy, which keeps the low-entropy half of
// the pair candidates — this reproduces the "large number of
// configurations" tuning the paper describes without per-dataset knobs.
func Search(ds *dataset.Dataset, p Params) (*Result, error) {
	return SearchContext(context.Background(), ds, p)
}

// SearchContext is Search with cooperative cancellation: ctx is checked
// between entropy evaluations, so a cancelled context surfaces ctx.Err()
// within one candidate's worth of work.
func SearchContext(ctx context.Context, ds *dataset.Dataset, p Params) (*Result, error) {
	p = p.withDefaults()
	if ds.D() < 2 {
		return nil, fmt.Errorf("enclus: need at least 2 attributes, have %d", ds.D())
	}

	res := &Result{}
	var pool []subspace.Scored

	// Level 2: all pairs.
	pairs := subspace.AllPairs(ds.D())
	level := make([]entScored, 0, len(pairs))
	entropies := make([]float64, 0, len(pairs))
	for _, s := range pairs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		h := Entropy(ds, s, p.Xi)
		res.Evaluated++
		level = append(level, entScored{s, h})
		entropies = append(entropies, h)
	}
	omega := p.Omega
	if omega <= 0 {
		omega = median(entropies)
	}

	for dim := 2; len(level) > 0 && dim <= p.MaxDim; dim++ {
		// Keep candidates passing the entropy threshold; rank by interest.
		var kept []entScored
		for _, c := range level {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if c.h <= omega {
				kept = append(kept, c)
				pool = append(pool, subspace.Scored{S: c.s, Score: Interest(ds, c.s, p.Xi)})
			}
		}
		if len(kept) > p.Cutoff {
			// Lowest entropy first — the Enclus "good clustering" ordering.
			sortByEntropy(kept)
			kept = kept[:p.Cutoff]
		}
		if dim == p.MaxDim {
			break
		}
		parents := make([]subspace.Subspace, len(kept))
		for i, c := range kept {
			parents[i] = c.s
		}
		next := subspace.GenerateCandidates(parents)
		level = level[:0]
		for _, s := range next {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			h := Entropy(ds, s, p.Xi)
			res.Evaluated++
			// Downward closure: a superspace can only raise entropy, so
			// candidates above ω are dropped before the next level.
			if h <= omega {
				level = append(level, entScored{s, h})
			}
		}
	}

	res.Subspaces = subspace.TopK(pool, p.TopK)
	return res, nil
}

func sortByEntropy(cs []entScored) {
	// insertion sort is fine: cutoff-bounded lists are small
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].h < cs[j-1].h; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// entScored pairs a candidate with its grid entropy during the level-wise
// search.
type entScored struct {
	s subspace.Subspace
	h float64
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// selection by partial sort
	for i := 0; i <= len(cp)/2; i++ {
		min := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[min] {
				min = j
			}
		}
		cp[i], cp[min] = cp[min], cp[i]
	}
	return cp[len(cp)/2]
}

// Searcher adapts Search to the ranking pipeline.
type Searcher struct {
	Params Params
}

// Search implements the two-step pipeline's subspace search step.
func (e *Searcher) Search(ctx context.Context, ds *dataset.Dataset) ([]subspace.Scored, error) {
	res, err := SearchContext(ctx, ds, e.Params)
	if err != nil {
		return nil, err
	}
	return res.Subspaces, nil
}

// Name identifies the method in experiment reports.
func (e *Searcher) Name() string { return "Enclus" }
