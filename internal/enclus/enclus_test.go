package enclus

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/subspace"
)

func uniformData(seed uint64, n, d int) *dataset.Dataset {
	r := rng.New(seed)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = r.Float64()
		}
	}
	return dataset.MustNew(nil, cols)
}

// clusteredPair correlates attrs 0 and 1 into two tight clusters; other
// attrs are uniform noise.
func clusteredPair(seed uint64, n, d int) *dataset.Dataset {
	r := rng.New(seed)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		c := 0.25
		if r.Float64() < 0.5 {
			c = 0.75
		}
		cols[0][i] = clamp01(r.NormalScaled(c, 0.03))
		cols[1][i] = clamp01(r.NormalScaled(c, 0.03))
		for j := 2; j < d; j++ {
			cols[j][i] = r.Float64()
		}
	}
	return dataset.MustNew(nil, cols)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestEntropyUniformVsClustered(t *testing.T) {
	unif := uniformData(1, 1000, 2)
	clus := clusteredPair(2, 1000, 2)
	s := subspace.New(0, 1)
	hU := Entropy(unif, s, 10)
	hC := Entropy(clus, s, 10)
	if hC >= hU {
		t.Errorf("clustered entropy %v should be below uniform entropy %v", hC, hU)
	}
	// Uniform 2-d grid with 100 cells and 1000 points: H ≈ log2(100) ≈ 6.6.
	if hU < 6 || hU > math.Log2(100)+0.01 {
		t.Errorf("uniform entropy = %v, want ≈ 6.64", hU)
	}
}

func TestEntropySinglePoint(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{0.5}, {0.5}})
	if h := Entropy(ds, subspace.New(0, 1), 10); h != 0 {
		t.Errorf("single-point entropy = %v, want 0", h)
	}
}

func TestEntropyMonotoneInDim(t *testing.T) {
	ds := uniformData(3, 500, 3)
	h2 := Entropy(ds, subspace.New(0, 1), 10)
	h3 := Entropy(ds, subspace.New(0, 1, 2), 10)
	if h3 < h2 {
		t.Errorf("entropy decreased with dimensionality: %v -> %v", h2, h3)
	}
}

func TestEntropyClampsOutOfRange(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{-0.5, 1.5, 0.5}})
	// All values clamp into valid cells; entropy is computable.
	h := Entropy(ds, subspace.New(0), 10)
	if math.IsNaN(h) || h < 0 {
		t.Errorf("entropy with out-of-range data = %v", h)
	}
}

func TestInterestCorrelatedVsIndependent(t *testing.T) {
	clus := clusteredPair(4, 1000, 2)
	unif := uniformData(5, 1000, 2)
	s := subspace.New(0, 1)
	iC := Interest(clus, s, 10)
	iU := Interest(unif, s, 10)
	if iC <= iU {
		t.Errorf("interest correlated %v <= independent %v", iC, iU)
	}
	if iU > 0.3 {
		t.Errorf("independent interest = %v, want ≈ 0", iU)
	}
}

func TestSearchFindsClusteredSubspace(t *testing.T) {
	ds := clusteredPair(6, 800, 6)
	res, err := Search(ds, Params{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) == 0 {
		t.Fatal("no subspaces found")
	}
	if !res.Subspaces[0].S.SupersetOf(subspace.New(0, 1)) {
		t.Errorf("top subspace %v does not cover the planted pair", res.Subspaces[0].S)
	}
}

func TestSearchRespectsTopKAndMaxDim(t *testing.T) {
	ds := clusteredPair(7, 300, 5)
	res, err := Search(ds, Params{TopK: 3, MaxDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) > 3 {
		t.Errorf("TopK violated: %d", len(res.Subspaces))
	}
	for _, sc := range res.Subspaces {
		if sc.S.Dim() > 2 {
			t.Errorf("MaxDim violated by %v", sc.S)
		}
	}
}

func TestSearchExplicitOmega(t *testing.T) {
	ds := uniformData(8, 200, 4)
	// Impossible threshold: nothing survives.
	res, err := Search(ds, Params{Omega: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) != 0 {
		t.Errorf("omega=0.001 should keep nothing, got %d", len(res.Subspaces))
	}
}

func TestSearchErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1, 2}})
	if _, err := Search(ds, Params{}); err == nil {
		t.Error("single attribute should fail")
	}
}

func TestSearcherAdapter(t *testing.T) {
	ds := clusteredPair(9, 300, 4)
	s := &Searcher{}
	list, err := s.Search(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Error("adapter returned nothing")
	}
	if s.Name() != "Enclus" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 3 {
		t.Errorf("median even (upper) = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median empty = %v", m)
	}
}

// Property: entropy is non-negative and bounded by log2(min(n, xi^d)).
func TestQuickEntropyBounds(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%100) + 1
		d := int(dRaw%3) + 1
		ds := uniformData(seed, n, d)
		h := Entropy(ds, subspace.Full(d), 10)
		if h < 0 || math.IsNaN(h) {
			return false
		}
		maxCells := math.Pow(10, float64(d))
		bound := math.Log2(math.Min(float64(n), maxCells))
		return h <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
