// Package outres implements an adaptive-density outlier scorer in the
// spirit of OUTRES (Müller, Schiffer, Seidl: "Adaptive outlierness for
// subspace outlier ranking", CIKM 2010), the quality upgrade the paper's
// future work names: "OUTRES might improve the quality of our outlier
// ranking due to its adaptive density scoring in subspace projections."
//
// The scorer estimates each object's density with an Epanechnikov kernel
// whose bandwidth adapts to the subspace dimensionality (shrinking
// neighborhoods would otherwise become meaningless as |S| grows), then
// measures outlierness as the object's negative deviation from the mean
// density of its kernel neighborhood in units of two standard deviations
// — OUTRES's significance-based deviation. Objects denser than their
// neighborhood score zero.
//
// Simplification vs. the original: OUTRES couples the scoring with its own
// recursive subspace exploration and multiplies scores across subspaces.
// Here the scorer is decoupled (any searcher provides the subspaces) —
// which is precisely the modularity HiCS argues for — and multiplication
// is available via the ranking pipeline's Product aggregation.
package outres

import (
	"fmt"
	"math"

	"hics/internal/dataset"
	"hics/internal/knn"
	"hics/internal/neighbors"
	"hics/internal/stats"
)

// Scorer is an adaptive kernel-density outlier scorer implementing the
// ranking pipeline's Scorer interface.
type Scorer struct {
	// BandwidthScale multiplies the dimensionality-adaptive bandwidth
	// h = scale · 0.5 · N^(−1/(4+d)). Zero selects 1.
	BandwidthScale float64
}

// Score implements ranking.Scorer: one non-negative outlierness value per
// object, higher = more outlying.
func (s Scorer) Score(ds *dataset.Dataset, dims []int) ([]float64, error) {
	// Pin the brute backend: OUTRES only takes pairwise distances (Dist),
	// so a k-d tree would be built per subspace and never queried.
	searcher, err := knn.NewWithKind(ds, dims, neighbors.KindBrute)
	if err != nil {
		return nil, fmt.Errorf("outres: %w", err)
	}
	n := ds.N()
	if n < 3 {
		return nil, fmt.Errorf("outres: need at least 3 objects, have %d", n)
	}
	scale := s.BandwidthScale
	if scale <= 0 {
		scale = 1
	}
	d := float64(len(dims))
	// Adaptive bandwidth: the Silverman-style N^(−1/(4+d)) rate OUTRES
	// derives its h_optimal from, anchored at half the unit-cube scale.
	h := scale * 0.5 * math.Pow(float64(n), -1/(4+d))

	// Pass 1: kernel densities and kernel neighborhoods.
	dens := make([]float64, n)
	neighbors := make([][]int32, n)
	for i := 0; i < n; i++ {
		var nb []int32
		sum := 0.0
		// CountWithin-style scan, but accumulating the kernel.
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dist := searcher.Dist(i, j)
			if dist < h {
				u := dist / h
				sum += 1 - u*u // Epanechnikov kernel (unnormalized)
				nb = append(nb, int32(j))
			}
		}
		dens[i] = sum
		neighbors[i] = nb
	}

	// Global fallback moments for objects with empty neighborhoods.
	globalMean, globalVar := stats.MeanVar(dens)
	globalStd := math.Sqrt(math.Max(globalVar, 0))

	// Pass 2: significance-scaled negative deviation from the local mean.
	scores := make([]float64, n)
	buf := make([]float64, 0, 64)
	for i := 0; i < n; i++ {
		mean, std := globalMean, globalStd
		if len(neighbors[i]) >= 2 {
			buf = buf[:0]
			for _, j := range neighbors[i] {
				buf = append(buf, dens[j])
			}
			m, v := stats.MeanVar(buf)
			mean, std = m, math.Sqrt(math.Max(v, 0))
		}
		if std == 0 {
			std = 1e-12
		}
		dev := (mean - dens[i]) / (2 * std)
		if dev > 0 {
			scores[i] = dev
		}
	}
	return scores, nil
}

// Name implements ranking.Scorer.
func (Scorer) Name() string { return "OUTRES" }
