package outres

import (
	"math"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
	"hics/internal/eval"
	"hics/internal/rng"
)

func clusterWithOutlier(seed uint64, n int) (*dataset.Dataset, int) {
	r := rng.New(seed)
	x := make([]float64, n+1)
	y := make([]float64, n+1)
	for i := 0; i < n; i++ {
		x[i] = r.NormalScaled(0.5, 0.04)
		y[i] = r.NormalScaled(0.5, 0.04)
	}
	x[n], y[n] = 0.8, 0.2
	return dataset.MustNew(nil, [][]float64{x, y}), n
}

func TestScoreFlagsOutlier(t *testing.T) {
	ds, out := clusterWithOutlier(1, 150)
	scores, err := Scorer{}.Score(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if scores[out] <= 0 {
		t.Fatalf("outlier score = %v, want positive", scores[out])
	}
	better := 0
	for i := 0; i < out; i++ {
		if scores[i] >= scores[out] {
			better++
		}
	}
	if better > 3 {
		t.Errorf("outlier beaten by %d cluster points", better)
	}
}

func TestScoresNonNegative(t *testing.T) {
	ds, _ := clusterWithOutlier(2, 100)
	scores, err := Scorer{}.Score(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
}

func TestBandwidthScaleChangesScores(t *testing.T) {
	ds, _ := clusterWithOutlier(3, 120)
	a, err := Scorer{BandwidthScale: 0.5}.Score(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scorer{BandwidthScale: 2}.Score(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("bandwidth scale has no effect")
	}
}

func TestScoreErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1, 2}})
	if _, err := (Scorer{}).Score(ds, []int{0}); err == nil {
		t.Error("tiny dataset should fail")
	}
	ds2 := dataset.MustNew(nil, [][]float64{{1, 2, 3, 4}})
	if _, err := (Scorer{}).Score(ds2, []int{9}); err == nil {
		t.Error("bad dims should fail")
	}
}

func TestName(t *testing.T) {
	if (Scorer{}).Name() != "OUTRES" {
		t.Error("name wrong")
	}
}

func TestQualityOnBenchmark(t *testing.T) {
	// OUTRES must produce a meaningful ranking on a clustered dataset with
	// scattered minority outliers.
	r := rng.New(4)
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		if i < 15 {
			labels[i] = true
			x[i] = r.Float64()
			y[i] = r.Float64()
		} else {
			c := 0.3
			if r.Float64() < 0.5 {
				c = 0.7
			}
			x[i] = r.NormalScaled(c, 0.03)
			y[i] = r.NormalScaled(c, 0.03)
		}
	}
	ds := dataset.MustNew(nil, [][]float64{x, y})
	scores, err := Scorer{}.Score(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	auc, err := eval.AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.85 {
		t.Errorf("OUTRES AUC = %.3f on easy data, want high", auc)
	}
}

// Property: scores are finite and non-negative on arbitrary data.
func TestQuickScoresSane(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%80) + 10
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		ds := dataset.MustNew(nil, [][]float64{x, y})
		scores, err := Scorer{}.Score(ds, []int{0, 1})
		if err != nil {
			return false
		}
		for _, s := range scores {
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
