package eval

import (
	"errors"
	"sort"
)

// PRPoint is one (recall, precision) coordinate of a precision-recall
// curve.
type PRPoint struct {
	Recall    float64
	Precision float64
}

// PR returns the precision-recall curve, sweeping the decision threshold
// from the highest score downwards. Tied scores advance in one step. The
// curve complements ROC for the heavily imbalanced datasets of outlier
// mining, where small false-positive rates still mean poor precision.
func PR(scores []float64, outlier []bool) ([]PRPoint, error) {
	if len(scores) != len(outlier) {
		return nil, errors.New("eval: scores and labels differ in length")
	}
	var nPos int
	for _, o := range outlier {
		if o {
			nPos++
		}
	}
	if nPos == 0 || nPos == len(outlier) {
		return nil, errors.New("eval: PR needs at least one outlier and one inlier")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var curve []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		for k := i; k <= j; k++ {
			if outlier[idx[k]] {
				tp++
			} else {
				fp++
			}
		}
		curve = append(curve, PRPoint{
			Recall:    float64(tp) / float64(nPos),
			Precision: float64(tp) / float64(tp+fp),
		})
		i = j + 1
	}
	return curve, nil
}

// AveragePrecision returns the area under the precision-recall curve
// using the step-wise interpolation (the "AP" ranking metric): the sum of
// precision values at each recall increment, weighted by the increment.
func AveragePrecision(scores []float64, outlier []bool) (float64, error) {
	curve, err := PR(scores, outlier)
	if err != nil {
		return 0, err
	}
	ap := 0.0
	prevRecall := 0.0
	for _, p := range curve {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return ap, nil
}
